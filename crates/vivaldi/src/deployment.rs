//! Event-driven Vivaldi deployment with churn.
//!
//! [`crate::system::VivaldiSystem::run_rounds`] advances all nodes in
//! lockstep — the right model for reproducing the paper's figures. A
//! deployed coordinate system is messier: nodes probe on their own
//! timers with jitter, join at different times, and leave. This module
//! runs the same spring algorithm on the [`simnet::sim::Simulation`]
//! event queue, so the workspace also covers the asynchronous regime
//! the paper's conclusions point towards ("robust TIV-aware distributed
//! systems").
//!
//! Semantics: each *live* node fires a probe event on average every
//! `probe_interval_ms` (uniformly jittered ±50%), probing the next
//! neighbor in round-robin order. Join events bring a node up with a
//! fresh coordinate; leave events freeze it (probes towards it fail
//! like an unmeasured pair, and it stops probing).

use crate::system::{VivaldiConfig, VivaldiSystem};
use delayspace::matrix::NodeId;
use delayspace::rng::{self, DetRng};
use rand::Rng;
use simnet::net::Network;
use simnet::sim::{SimTime, Simulation};

/// A scheduled event of the deployment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeployEvent {
    /// The node performs one probe-and-update step.
    Probe(NodeId),
    /// The node joins (starts probing).
    Join(NodeId),
    /// The node leaves (stops probing; peers' probes to it fail).
    Leave(NodeId),
}

/// Configuration of the event-driven run.
#[derive(Clone, Copy, Debug)]
pub struct DeploymentConfig {
    /// Vivaldi algorithm parameters.
    pub vivaldi: VivaldiConfig,
    /// Mean per-node probe interval (ms of virtual time); the paper's
    /// round-based simulations correspond to 1000 ms.
    pub probe_interval_ms: f64,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig { vivaldi: VivaldiConfig::default(), probe_interval_ms: 1000.0 }
    }
}

/// An asynchronous Vivaldi deployment.
pub struct Deployment {
    system: VivaldiSystem,
    sim: Simulation<DeployEvent>,
    live: Vec<bool>,
    cfg: DeploymentConfig,
    rng: DetRng,
    /// Steps executed per node (for fairness checks).
    steps: Vec<u64>,
}

impl Deployment {
    /// Creates a deployment of `n` nodes, all scheduled to join at time
    /// zero (staggered within one probe interval to avoid a thundering
    /// herd — as a real deployment's jittered timers would).
    pub fn new(cfg: DeploymentConfig, n: usize, seed: u64) -> Self {
        let system = VivaldiSystem::new(cfg.vivaldi, n, seed);
        let mut sim = Simulation::new();
        let mut r = rng::sub_rng(seed, "deployment");
        for node in 0..n {
            let offset = r.gen_range(0.0..cfg.probe_interval_ms);
            sim.schedule(SimTime::from_ms(offset), DeployEvent::Join(node));
        }
        Deployment { system, sim, live: vec![false; n], cfg, rng: r, steps: vec![0; n] }
    }

    /// Schedules a leave event at `at_ms` of virtual time.
    pub fn schedule_leave(&mut self, node: NodeId, at_ms: f64) {
        self.sim.schedule(SimTime::from_ms(at_ms), DeployEvent::Leave(node));
    }

    /// Schedules a (re)join event at `at_ms` of virtual time.
    pub fn schedule_join(&mut self, node: NodeId, at_ms: f64) {
        self.sim.schedule(SimTime::from_ms(at_ms), DeployEvent::Join(node));
    }

    /// Runs the deployment until virtual time `until_ms`.
    pub fn run_until(&mut self, net: &mut Network<'_>, until_ms: f64) {
        let deadline = SimTime::from_ms(until_ms);
        let live = &mut self.live;
        let system = &mut self.system;
        let cfg = self.cfg;
        let rng = &mut self.rng;
        let steps = &mut self.steps;
        self.sim.run_until(deadline, |sim, ev| match ev {
            DeployEvent::Join(node) => {
                if !live[node] {
                    live[node] = true;
                    sim.schedule_in(0.0, DeployEvent::Probe(node));
                }
            }
            DeployEvent::Leave(node) => {
                live[node] = false;
            }
            DeployEvent::Probe(node) => {
                if !live[node] {
                    return; // left since this was scheduled
                }
                // Round-robin over neighbors, skipping dead peers (the
                // probe would time out; we model that as a no-op).
                let neighbors = system.neighbors_of(node).to_vec();
                if !neighbors.is_empty() {
                    let idx = (steps[node] as usize) % neighbors.len();
                    let peer = neighbors[idx];
                    steps[node] += 1;
                    if live[peer] {
                        let _ = system.step(net, node, peer);
                    }
                }
                // Next probe with ±50% jitter.
                let jitter = rng.gen_range(0.5..1.5);
                sim.schedule_in(cfg.probe_interval_ms * jitter, DeployEvent::Probe(node));
            }
        });
    }

    /// The embedded system (coordinates, neighbors).
    pub fn system(&self) -> &VivaldiSystem {
        &self.system
    }

    /// Whether `node` is currently live.
    pub fn is_live(&self, node: NodeId) -> bool {
        self.live[node]
    }

    /// Probe steps executed by `node` so far.
    pub fn steps_of(&self, node: NodeId) -> u64 {
        self.steps[node]
    }

    /// Current virtual time (ms).
    pub fn now_ms(&self) -> f64 {
        self.sim.now().as_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayspace::matrix::DelayMatrix;
    use delayspace::synth::{Dataset, InternetDelaySpace};
    use simnet::net::JitterModel;

    fn line(n: usize) -> DelayMatrix {
        DelayMatrix::from_complete_fn(n, |i, j| 10.0 * i.abs_diff(j) as f64)
    }

    #[test]
    fn all_nodes_join_and_probe() {
        let m = line(12);
        let cfg = DeploymentConfig {
            vivaldi: VivaldiConfig { neighbors: 4, ..VivaldiConfig::default() },
            ..Default::default()
        };
        let mut dep = Deployment::new(cfg, 12, 1);
        let mut net = Network::new(&m, JitterModel::None, 1);
        dep.run_until(&mut net, 30_000.0);
        for node in 0..12 {
            assert!(dep.is_live(node));
            // ~30 probes each at 1 s mean interval over 30 s.
            let s = dep.steps_of(node);
            assert!((10..60).contains(&s), "node {node} made {s} steps");
        }
    }

    #[test]
    fn async_deployment_converges_like_rounds() {
        let m = line(15);
        let cfg = DeploymentConfig {
            vivaldi: VivaldiConfig { dims: 3, neighbors: 8, ..VivaldiConfig::default() },
            ..Default::default()
        };
        let mut dep = Deployment::new(cfg, 15, 3);
        let mut net = Network::new(&m, JitterModel::None, 3);
        dep.run_until(&mut net, 250_000.0);
        let med = dep.system().embedding().abs_error_cdf(&m).median();
        assert!(med < 5.0, "async run did not converge: median error {med}");
    }

    #[test]
    fn left_nodes_stop_probing() {
        let m = line(10);
        let mut dep = Deployment::new(
            DeploymentConfig {
                vivaldi: VivaldiConfig { neighbors: 3, ..VivaldiConfig::default() },
                ..Default::default()
            },
            10,
            5,
        );
        let mut net = Network::new(&m, JitterModel::None, 5);
        dep.schedule_leave(0, 5_000.0);
        dep.run_until(&mut net, 10_000.0);
        let steps_at_10s = dep.steps_of(0);
        dep.run_until(&mut net, 40_000.0);
        assert_eq!(dep.steps_of(0), steps_at_10s, "node 0 kept probing after leaving");
        assert!(!dep.is_live(0));
        // Others continued.
        assert!(dep.steps_of(1) > 20);
    }

    #[test]
    fn rejoin_resumes_probing() {
        let m = line(8);
        let mut dep = Deployment::new(DeploymentConfig::default(), 8, 7);
        let mut net = Network::new(&m, JitterModel::None, 7);
        dep.schedule_leave(2, 2_000.0);
        dep.schedule_join(2, 20_000.0);
        dep.run_until(&mut net, 40_000.0);
        assert!(dep.is_live(2));
        assert!(dep.steps_of(2) > 10);
    }

    #[test]
    fn churn_does_not_wreck_survivors() {
        let space = InternetDelaySpace::preset(Dataset::Euclidean).with_nodes(40).build(9);
        let m = space.matrix();
        let cfg = DeploymentConfig {
            vivaldi: VivaldiConfig { neighbors: 10, ..VivaldiConfig::default() },
            ..Default::default()
        };
        let mut dep = Deployment::new(cfg, 40, 9);
        // A quarter of the population flaps.
        for node in 0..10 {
            dep.schedule_leave(node, 30_000.0 + node as f64 * 1000.0);
            dep.schedule_join(node, 90_000.0 + node as f64 * 1000.0);
        }
        let mut net = Network::new(m, JitterModel::None, 9);
        dep.run_until(&mut net, 250_000.0);
        // Survivors still embed the (metric) space decently.
        let emb = dep.system().embedding();
        let med = delayspace::stats::Cdf::from_samples(
            m.edges()
                .filter(|&(i, j, _)| i >= 10 && j >= 10)
                .map(|(i, j, d)| (emb.predicted(i, j) - d).abs()),
        )
        .median();
        assert!(med < 20.0, "survivor embedding error {med} too high under churn");
    }

    #[test]
    fn deterministic_under_churn() {
        let m = line(10);
        let run = || {
            let mut dep = Deployment::new(DeploymentConfig::default(), 10, 11);
            let mut net = Network::new(&m, JitterModel::None, 11);
            dep.schedule_leave(3, 7_000.0);
            dep.run_until(&mut net, 60_000.0);
            dep.system().embedding()
        };
        let (a, b) = (run(), run());
        for i in 0..10 {
            assert_eq!(a.coord(i), b.coord(i));
        }
    }
}
