//! Embedding snapshots: a frozen set of coordinates with prediction and
//! error queries.
//!
//! Several parts of the paper operate on a *snapshot* of Vivaldi's
//! steady-state coordinates rather than on the live system — most
//! importantly the TIV alert mechanism, which is driven by the
//! **prediction ratio** `euclidean_distance / measured_delay` of a
//! snapshot (Section 5.1, Figure 19).

use crate::coord::Coord;
use delayspace::matrix::{DelayMatrix, NodeId};
use delayspace::stats::Cdf;

/// A frozen embedding: one coordinate per node.
#[derive(Clone, Debug)]
pub struct Embedding {
    coords: Vec<Coord>,
}

impl Embedding {
    /// Wraps a coordinate vector.
    pub fn new(coords: Vec<Coord>) -> Self {
        assert!(!coords.is_empty(), "embedding of zero nodes");
        let d = coords[0].dims();
        assert!(coords.iter().all(|c| c.dims() == d), "mixed dimensionality");
        Embedding { coords }
    }

    /// Number of embedded nodes.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// True when the embedding is empty (never; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Coordinate of node `i`.
    pub fn coord(&self, i: NodeId) -> &Coord {
        &self.coords[i]
    }

    /// All coordinates.
    pub fn coords(&self) -> &[Coord] {
        &self.coords
    }

    /// Predicted delay between `i` and `j` (Euclidean distance, ms).
    #[inline]
    pub fn predicted(&self, i: NodeId, j: NodeId) -> f64 {
        self.coords[i].distance(&self.coords[j])
    }

    /// Prediction ratio `predicted / measured` for the pair, or `None`
    /// when the pair is unmeasured. Ratios well below 1 mean the edge
    /// was *shrunk* by the embedding — the paper's TIV-alert signal.
    pub fn prediction_ratio(&self, m: &DelayMatrix, i: NodeId, j: NodeId) -> Option<f64> {
        let d = m.get(i, j)?;
        if d <= 0.0 {
            return None;
        }
        Some(self.predicted(i, j) / d)
    }

    /// Signed prediction error `predicted − measured` per measured edge.
    pub fn errors<'a>(
        &'a self,
        m: &'a DelayMatrix,
    ) -> impl Iterator<Item = (NodeId, NodeId, f64)> + 'a {
        m.edges().map(move |(i, j, d)| (i, j, self.predicted(i, j) - d))
    }

    /// CDF of absolute prediction errors over all measured edges.
    ///
    /// The paper reports for DS²: median ≈ 20 ms, 90th ≈ 140 ms.
    pub fn abs_error_cdf(&self, m: &DelayMatrix) -> Cdf {
        Cdf::from_samples(self.errors(m).map(|(_, _, e)| e.abs()))
    }

    /// Among `candidates`, the node with the smallest *predicted* delay
    /// to `client` — the embedding-driven neighbor selection primitive
    /// used by every penalty experiment.
    pub fn select_nearest(&self, client: NodeId, candidates: &[NodeId]) -> Option<NodeId> {
        candidates
            .iter()
            .copied()
            .filter(|&c| c != client)
            .min_by(|&a, &b| self.predicted(client, a).total_cmp(&self.predicted(client, b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_embedding() -> Embedding {
        // Nodes at x = 0, 10, 25 on a line.
        Embedding::new(vec![
            Coord::from_vec(vec![0.0, 0.0]),
            Coord::from_vec(vec![10.0, 0.0]),
            Coord::from_vec(vec![25.0, 0.0]),
        ])
    }

    #[test]
    fn predicted_is_distance() {
        let e = line_embedding();
        assert_eq!(e.predicted(0, 2), 25.0);
        assert_eq!(e.predicted(1, 2), 15.0);
    }

    #[test]
    fn prediction_ratio_detects_shrunk_edges() {
        let e = line_embedding();
        let mut m = DelayMatrix::new(3);
        m.set(0, 2, 100.0); // embedding says 25 → ratio 0.25: shrunk
        m.set(0, 1, 10.0); // exact → ratio 1
        assert_eq!(e.prediction_ratio(&m, 0, 2), Some(0.25));
        assert_eq!(e.prediction_ratio(&m, 0, 1), Some(1.0));
        assert_eq!(e.prediction_ratio(&m, 1, 2), None); // unmeasured
    }

    #[test]
    fn abs_error_cdf_over_measured_edges() {
        let e = line_embedding();
        let mut m = DelayMatrix::new(3);
        m.set(0, 1, 12.0); // err -2
        m.set(0, 2, 20.0); // err +5
        let cdf = e.abs_error_cdf(&m);
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf.quantile(1.0), 5.0);
    }

    #[test]
    fn select_nearest_uses_predictions() {
        let e = line_embedding();
        assert_eq!(e.select_nearest(0, &[1, 2]), Some(1));
        assert_eq!(e.select_nearest(2, &[0, 1]), Some(1));
        assert_eq!(e.select_nearest(1, &[1]), None); // only self
    }

    #[test]
    #[should_panic(expected = "mixed dimensionality")]
    fn mixed_dims_rejected() {
        Embedding::new(vec![Coord::origin(2), Coord::origin(3)]);
    }
}
