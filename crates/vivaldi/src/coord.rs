//! Euclidean coordinates for network embedding.
//!
//! The paper embeds delays into a 5-dimensional Euclidean space
//! ("while any metric space can potentially be used, this paper uses a
//! 5D Euclidean space for simplicity"). Dimensionality is a runtime
//! parameter here because the ablation benches sweep it.

use delayspace::rng::DetRng;
use rand::Rng;

/// A point in a low-dimensional embedding space, optionally augmented
/// with a *height* (the Vivaldi paper's height-vector model). Units are
/// milliseconds.
///
/// Without height, the predicted delay is the Euclidean distance.
/// With heights, it is `‖x_i − x_j‖ + h_i + h_j`: the Euclidean part
/// models the high-speed core, the heights model each node's access
/// link, which every path must traverse at both ends. Heights are
/// clamped non-negative.
#[derive(Clone, Debug, PartialEq)]
pub struct Coord {
    v: Vec<f64>,
    /// Access-link height (ms); 0 in the plain Euclidean model.
    h: f64,
}

impl Coord {
    /// The origin of a `dims`-dimensional space (height 0).
    pub fn origin(dims: usize) -> Self {
        assert!(dims > 0, "embedding needs at least one dimension");
        Coord { v: vec![0.0; dims], h: 0.0 }
    }

    /// A random point in `[-scale, scale]^dims` with height 0; used to
    /// break the symmetry of an all-origin start.
    pub fn random(dims: usize, scale: f64, rng: &mut DetRng) -> Self {
        assert!(dims > 0, "embedding needs at least one dimension");
        Coord { v: (0..dims).map(|_| rng.gen_range(-scale..scale)).collect(), h: 0.0 }
    }

    /// A random point with a random non-negative height in `[0, scale]`.
    pub fn random_with_height(dims: usize, scale: f64, rng: &mut DetRng) -> Self {
        let mut c = Self::random(dims, scale, rng);
        c.h = rng.gen_range(0.0..scale);
        c
    }

    /// Constructs from explicit components (height 0).
    pub fn from_vec(v: Vec<f64>) -> Self {
        assert!(!v.is_empty(), "embedding needs at least one dimension");
        Coord { v, h: 0.0 }
    }

    /// Constructs from components plus a height.
    ///
    /// # Panics
    /// Panics on a negative height.
    pub fn with_height(v: Vec<f64>, h: f64) -> Self {
        assert!(h >= 0.0, "height must be non-negative");
        let mut c = Self::from_vec(v);
        c.h = h;
        c
    }

    /// Dimensionality (excluding the height component).
    pub fn dims(&self) -> usize {
        self.v.len()
    }

    /// Euclidean components.
    pub fn as_slice(&self) -> &[f64] {
        &self.v
    }

    /// The height component (0 in the plain model).
    pub fn height(&self) -> f64 {
        self.h
    }

    /// Predicted delay to `other`: Euclidean distance plus both
    /// heights.
    pub fn distance(&self, other: &Coord) -> f64 {
        debug_assert_eq!(self.v.len(), other.v.len());
        self.euclidean(other) + self.h + other.h
    }

    #[inline]
    fn euclidean(&self, other: &Coord) -> f64 {
        self.v.iter().zip(&other.v).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
    }

    /// Euclidean norm of the planar part plus the height.
    pub fn norm(&self) -> f64 {
        self.v.iter().map(|a| a * a).sum::<f64>().sqrt() + self.h
    }

    /// Moves this point by `step · u` where `u` is the unit vector from
    /// `other` towards `self` in the height-augmented space: the planar
    /// part points away from `other`, the height part is the positive
    /// direction `h_self + h_other` (growing both heights stretches the
    /// predicted delay, per the Vivaldi height-model rules). When the
    /// planar parts coincide the direction is chosen randomly.
    ///
    /// Returns the displacement magnitude actually applied (|step|).
    pub fn nudge_away_from(&mut self, other: &Coord, step: f64, rng: &mut DetRng) -> f64 {
        debug_assert_eq!(self.v.len(), other.v.len());
        let mut dir: Vec<f64> = self.v.iter().zip(&other.v).map(|(a, b)| a - b).collect();
        let dir_h = self.h + other.h;
        let mut norm = (dir.iter().map(|a| a * a).sum::<f64>() + dir_h * dir_h).sqrt();
        if norm < 1e-12 {
            // Coincident points: random unit direction (planar only;
            // heights separate naturally once the plane does).
            for d in &mut dir {
                *d = rng.gen_range(-1.0..1.0);
            }
            norm = dir.iter().map(|a| a * a).sum::<f64>().sqrt().max(1e-12);
        }
        for (c, d) in self.v.iter_mut().zip(&dir) {
            *c += step * d / norm;
        }
        // Height moves along its own (always positive) axis and is
        // clamped at the floor.
        self.h = (self.h + step * dir_h / norm).max(0.0);
        step.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayspace::rng;

    #[test]
    fn distance_is_euclidean() {
        let a = Coord::from_vec(vec![0.0, 0.0]);
        let b = Coord::from_vec(vec![3.0, 4.0]);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.distance(&a), 5.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn nudge_moves_apart_by_step() {
        let mut r = rng::rng(1);
        let mut a = Coord::from_vec(vec![1.0, 0.0]);
        let b = Coord::from_vec(vec![0.0, 0.0]);
        let moved = a.nudge_away_from(&b, 2.0, &mut r);
        assert_eq!(moved, 2.0);
        assert!((a.distance(&b) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn negative_step_moves_towards() {
        let mut r = rng::rng(1);
        let mut a = Coord::from_vec(vec![10.0, 0.0]);
        let b = Coord::from_vec(vec![0.0, 0.0]);
        a.nudge_away_from(&b, -4.0, &mut r);
        assert!((a.distance(&b) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn coincident_points_separate_randomly() {
        let mut r = rng::rng(2);
        let mut a = Coord::origin(5);
        let b = Coord::origin(5);
        a.nudge_away_from(&b, 1.0, &mut r);
        assert!((a.distance(&b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn random_points_within_scale() {
        let mut r = rng::rng(3);
        for _ in 0..100 {
            let c = Coord::random(4, 10.0, &mut r);
            assert!(c.as_slice().iter().all(|&x| (-10.0..10.0).contains(&x)));
        }
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn zero_dims_rejected() {
        Coord::origin(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_coord(dims: usize) -> impl Strategy<Value = Coord> {
        proptest::collection::vec(-1e4f64..1e4, dims).prop_map(Coord::from_vec)
    }

    proptest! {
        #[test]
        fn distance_is_a_metric(a in arb_coord(4), b in arb_coord(4), c in arb_coord(4)) {
            // Symmetry, identity, triangle inequality — the embedding
            // space itself is metric (that is exactly why it cannot
            // represent TIV).
            prop_assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-9);
            prop_assert_eq!(a.distance(&a), 0.0);
            prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-6);
        }

        #[test]
        fn nudge_changes_distance_by_step(
            a in arb_coord(3),
            b in arb_coord(3),
            step in -100.0f64..100.0,
        ) {
            prop_assume!(a.distance(&b) > 1e-6);
            let before = a.distance(&b);
            let mut moved = a.clone();
            let mut rng = delayspace::rng::rng(1);
            moved.nudge_away_from(&b, step, &mut rng);
            let after = moved.distance(&b);
            // Moving along the line through b changes the distance by
            // exactly `step` (clamped at passing through b).
            let expect = (before + step).abs();
            prop_assert!((after - expect).abs() < 1e-6, "{before} + {step} → {after}");
        }
    }
}
