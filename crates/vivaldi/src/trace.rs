//! Instrumentation: per-edge prediction traces and oscillation ranges.
//!
//! Figure 10 of the paper plots the prediction-error trace of the three
//! edges of a TIV triangle over 100 s; Figure 11 plots the distribution
//! of per-edge *oscillation ranges* — `max(predicted) − min(predicted)`
//! over a 500 s run — against edge length, showing that TIV keeps
//! predictions swinging by up to hundreds of milliseconds even for
//! 10 ms edges.

use crate::system::VivaldiSystem;
use delayspace::matrix::{DelayMatrix, NodeId};
use delayspace::stats::BinnedStats;

/// Records the predicted delay of a set of tracked edges after every
/// round.
#[derive(Clone, Debug)]
pub struct EdgeTrace {
    edges: Vec<(NodeId, NodeId)>,
    /// `series[e][r]` = predicted delay of edge `e` after round `r`.
    series: Vec<Vec<f64>>,
}

impl EdgeTrace {
    /// Starts a trace over the given edges.
    pub fn new(edges: Vec<(NodeId, NodeId)>) -> Self {
        let series = vec![Vec::new(); edges.len()];
        EdgeTrace { edges, series }
    }

    /// Samples the current predictions; call once per round.
    pub fn record(&mut self, sys: &VivaldiSystem) {
        for (e, &(i, j)) in self.edges.iter().enumerate() {
            self.series[e].push(sys.predicted(i, j));
        }
    }

    /// The tracked edges.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Prediction series of tracked edge `e`.
    pub fn predictions(&self, e: usize) -> &[f64] {
        &self.series[e]
    }

    /// Error series `predicted − measured` of tracked edge `e`.
    pub fn errors(&self, e: usize, m: &DelayMatrix) -> Vec<f64> {
        let (i, j) = self.edges[e];
        let d = m.get(i, j).unwrap_or(f64::NAN);
        self.series[e].iter().map(|p| p - d).collect()
    }
}

/// Tracks min/max predicted delay per edge — the oscillation range.
///
/// Tracking all O(n²) edges over hundreds of rounds is affordable
/// because only two f64 per edge are kept; for very large matrices use
/// [`OscillationTracker::sampled`] to bound the tracked set.
#[derive(Clone, Debug)]
pub struct OscillationTracker {
    edges: Vec<(NodeId, NodeId)>,
    min: Vec<f64>,
    max: Vec<f64>,
    samples: usize,
}

impl OscillationTracker {
    /// Tracks every measured edge of `m`.
    pub fn all_edges(m: &DelayMatrix) -> Self {
        Self::new(m.edges().map(|(i, j, _)| (i, j)).collect())
    }

    /// Tracks a deterministic sample of at most `k` measured edges.
    pub fn sampled(m: &DelayMatrix, k: usize, seed: u64) -> Self {
        let all: Vec<(NodeId, NodeId)> = m.edges().map(|(i, j, _)| (i, j)).collect();
        if all.len() <= k {
            return Self::new(all);
        }
        let mut r = delayspace::rng::sub_rng(seed, "osc/sample");
        let idx = delayspace::rng::sample_indices(&mut r, all.len(), k);
        Self::new(idx.into_iter().map(|i| all[i]).collect())
    }

    fn new(edges: Vec<(NodeId, NodeId)>) -> Self {
        let n = edges.len();
        OscillationTracker {
            edges,
            min: vec![f64::INFINITY; n],
            max: vec![f64::NEG_INFINITY; n],
            samples: 0,
        }
    }

    /// Samples the current predictions; call once per round.
    pub fn record(&mut self, sys: &VivaldiSystem) {
        self.samples += 1;
        for (e, &(i, j)) in self.edges.iter().enumerate() {
            let p = sys.predicted(i, j);
            if p < self.min[e] {
                self.min[e] = p;
            }
            if p > self.max[e] {
                self.max[e] = p;
            }
        }
    }

    /// Number of rounds recorded so far.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Oscillation range of each tracked edge: `(i, j, max − min)`.
    /// Empty until at least one round is recorded.
    pub fn ranges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(move |_| self.samples > 0)
            .map(move |(e, &(i, j))| (i, j, self.max[e] - self.min[e]))
    }

    /// Figure 11: oscillation ranges binned by measured edge length
    /// (`bin_ms`-wide bins up to `max_ms`), summarised by 10/50/90.
    pub fn by_delay_bins(&self, m: &DelayMatrix, bin_ms: f64, max_ms: f64) -> BinnedStats {
        BinnedStats::build(
            self.ranges().filter_map(|(i, j, r)| m.get(i, j).map(|d| (d, r))),
            bin_ms,
            max_ms,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{VivaldiConfig, VivaldiSystem};
    use delayspace::matrix::DelayMatrix;
    use simnet::net::{JitterModel, Network};

    fn tiv_triangle() -> DelayMatrix {
        let mut m = DelayMatrix::new(3);
        m.set(0, 1, 5.0);
        m.set(1, 2, 5.0);
        m.set(2, 0, 100.0);
        m
    }

    #[test]
    fn edge_trace_records_every_round() {
        let m = tiv_triangle();
        let mut sys =
            VivaldiSystem::new(VivaldiConfig { neighbors: 2, ..VivaldiConfig::default() }, 3, 1);
        let mut net = Network::new(&m, JitterModel::None, 1);
        let mut trace = EdgeTrace::new(vec![(0, 1), (1, 2), (2, 0)]);
        sys.run_rounds_observed(&mut net, 40, |_, s| trace.record(s));
        assert_eq!(trace.predictions(0).len(), 40);
        let errs = trace.errors(2, &m);
        assert_eq!(errs.len(), 40);
        // Edge (2,0) is the TIV edge: it must stay under-predicted at
        // some point (negative error = shrunk below 100 ms).
        assert!(errs.iter().any(|&e| e < -10.0), "TIV edge never shrunk: {errs:?}");
    }

    #[test]
    fn oscillation_ranges_nonzero_under_tiv() {
        let m = tiv_triangle();
        let mut sys =
            VivaldiSystem::new(VivaldiConfig { neighbors: 2, ..VivaldiConfig::default() }, 3, 5);
        let mut net = Network::new(&m, JitterModel::None, 5);
        let mut osc = OscillationTracker::all_edges(&m);
        // Skip warmup, then track.
        sys.run_rounds(&mut net, 50);
        sys.run_rounds_observed(&mut net, 100, |_, s| osc.record(s));
        assert_eq!(osc.samples(), 100);
        let ranges: Vec<f64> = osc.ranges().map(|(_, _, r)| r).collect();
        assert_eq!(ranges.len(), 3);
        assert!(ranges.iter().all(|&r| r > 0.0), "no oscillation under TIV: {ranges:?}");
    }

    #[test]
    fn sampled_tracker_bounds_edge_count() {
        let m = DelayMatrix::from_complete_fn(30, |i, j| (i + j) as f64 + 1.0);
        let t = OscillationTracker::sampled(&m, 50, 3);
        assert_eq!(t.ranges().count(), 0); // nothing recorded yet
        assert_eq!(t.edges.len(), 50);
        let t_all = OscillationTracker::sampled(&m, 10_000, 3);
        assert_eq!(t_all.edges.len(), 30 * 29 / 2);
    }

    #[test]
    fn by_delay_bins_buckets_by_measured_length() {
        let m = tiv_triangle();
        let mut sys =
            VivaldiSystem::new(VivaldiConfig { neighbors: 2, ..VivaldiConfig::default() }, 3, 5);
        let mut net = Network::new(&m, JitterModel::None, 5);
        let mut osc = OscillationTracker::all_edges(&m);
        sys.run_rounds_observed(&mut net, 60, |_, s| osc.record(s));
        let bins = osc.by_delay_bins(&m, 10.0, 200.0);
        // Edges at 5 ms fall in bin 0; edge at 100 ms in bin 10.
        assert_eq!(bins.bins[0].stats.unwrap().count, 2);
        assert_eq!(bins.bins[10].stats.unwrap().count, 1);
    }
}
