//! # `vivaldi` — decentralized network coordinates
//!
//! A from-scratch implementation of Vivaldi (Dabek, Cox, Kaashoek,
//! Morris — SIGCOMM 2004), the network-embedding neighbor-selection
//! mechanism studied by the paper, plus:
//!
//! * [`trace`] — per-edge prediction traces and oscillation-range
//!   tracking (Figures 10 and 11 of the IMC'07 paper),
//! * [`lat`] — the localized-adjustment-term extension of Lee et
//!   al. (Figure 16),
//! * [`embedding`] — frozen coordinate snapshots with prediction-ratio
//!   queries, the input of the TIV alert mechanism.
//!
//! ```
//! use delayspace::synth::{Dataset, InternetDelaySpace};
//! use simnet::net::{JitterModel, Network};
//! use vivaldi::{VivaldiConfig, VivaldiSystem};
//!
//! let space = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(60).build(1);
//! let m = space.matrix();
//! let mut sys = VivaldiSystem::new(VivaldiConfig::default(), m.len(), 1);
//! let mut net = Network::new(m, JitterModel::None, 1);
//! sys.run_rounds(&mut net, 50);
//! let emb = sys.embedding();
//! assert!(emb.predicted(0, 1) >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod coord;
pub mod deployment;
pub mod embedding;
pub mod gnp;
pub mod lat;
pub mod system;
pub mod trace;

pub use coord::Coord;
pub use deployment::{Deployment, DeploymentConfig};
pub use embedding::Embedding;
pub use gnp::{GnpConfig, GnpModel};
pub use lat::LatModel;
pub use system::{RunStats, VivaldiConfig, VivaldiSystem};
pub use trace::{EdgeTrace, OscillationTracker};
