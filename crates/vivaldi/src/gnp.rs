//! GNP — Global Network Positioning (Ng & Zhang, INFOCOM 2002).
//!
//! The centralized landmark predecessor of Vivaldi, cited by the paper
//! as the origin of the coordinates approach (\[17\]). Architecture:
//!
//! 1. A fixed set of **landmarks** measure each other and solve their
//!    own coordinates by minimising squared embedding error.
//! 2. Each **ordinary node** measures only the landmarks and solves its
//!    own coordinate against theirs.
//!
//! GNP therefore needs `O(L)` measurements per node and no gossip, at
//! the cost of landmark placement sensitivity. Like every metric
//! embedding it assumes the triangle inequality, so the TIV analyses of
//! this workspace apply to it unchanged; it appears in the
//! `ablation-coords` comparison.
//!
//! The original uses Nelder–Mead; we use deterministic gradient descent
//! on the same objective, which reaches equivalent optima on these
//! smooth low-dimensional problems and keeps runs reproducible.

use crate::coord::Coord;
use crate::embedding::Embedding;
use delayspace::matrix::{DelayMatrix, NodeId};
use delayspace::rng;
use rand::Rng;

/// Configuration of a GNP fit.
#[derive(Clone, Copy, Debug)]
pub struct GnpConfig {
    /// Embedding dimensionality (GNP paper: 5–8; default 5 to match
    /// the IMC'07 Vivaldi setting).
    pub dims: usize,
    /// Number of landmarks (GNP paper: ~15).
    pub landmarks: usize,
    /// Gradient-descent iterations per solved coordinate set.
    pub iters: usize,
    /// Descent step size.
    pub step: f64,
}

impl Default for GnpConfig {
    fn default() -> Self {
        GnpConfig { dims: 5, landmarks: 15, iters: 400, step: 0.05 }
    }
}

/// A fitted GNP model: one coordinate per node.
#[derive(Clone, Debug)]
pub struct GnpModel {
    embedding: Embedding,
    landmarks: Vec<NodeId>,
}

impl GnpModel {
    /// Fits GNP to a delay matrix: random landmark selection, landmark
    /// coordinate solve, then per-node solves against the landmarks.
    ///
    /// # Panics
    /// Panics when the matrix has fewer nodes than landmarks, or fewer
    /// landmarks than `dims + 1` (the coordinates would be
    /// underdetermined).
    pub fn fit(m: &DelayMatrix, cfg: &GnpConfig, seed: u64) -> Self {
        assert!(cfg.landmarks > cfg.dims, "need more landmarks than dimensions");
        assert!(m.len() > cfg.landmarks, "matrix smaller than landmark set");
        let mut r = rng::sub_rng(seed, "gnp");
        let landmarks = rng::sample_indices(&mut r, m.len(), cfg.landmarks);

        // Phase 1: landmark coordinates against each other.
        let mut lcoords: Vec<Vec<f64>> = (0..cfg.landmarks)
            .map(|_| (0..cfg.dims).map(|_| r.gen_range(-50.0..50.0)).collect())
            .collect();
        for _ in 0..cfg.iters {
            let mut grads = vec![vec![0.0; cfg.dims]; cfg.landmarks];
            for a in 0..cfg.landmarks {
                for b in (a + 1)..cfg.landmarks {
                    let Some(d) = m.get(landmarks[a], landmarks[b]) else { continue };
                    accumulate_gradient(&lcoords[a], &lcoords[b], d, &mut grads, a, b);
                }
            }
            for (c, g) in lcoords.iter_mut().zip(&grads) {
                for (x, gx) in c.iter_mut().zip(g) {
                    *x -= cfg.step * gx;
                }
            }
        }

        // Phase 2: each node against the landmark coordinates.
        let n = m.len();
        let mut coords: Vec<Vec<f64>> = Vec::with_capacity(n);
        for node in 0..n {
            if let Some(pos) = landmarks.iter().position(|&l| l == node) {
                coords.push(lcoords[pos].clone());
                continue;
            }
            let mut c: Vec<f64> = (0..cfg.dims).map(|_| r.gen_range(-50.0..50.0)).collect();
            for _ in 0..cfg.iters {
                let mut g = vec![0.0; cfg.dims];
                for (pos, &lm) in landmarks.iter().enumerate() {
                    let Some(d) = m.get(node, lm) else { continue };
                    gradient_into(&c, &lcoords[pos], d, &mut g);
                }
                for (x, gx) in c.iter_mut().zip(&g) {
                    *x -= cfg.step * gx;
                }
            }
            coords.push(c);
        }

        GnpModel {
            embedding: Embedding::new(coords.into_iter().map(Coord::from_vec).collect()),
            landmarks,
        }
    }

    /// The fitted coordinates as an [`Embedding`] (prediction-ratio
    /// queries, alert integration, penalty experiments all apply).
    pub fn embedding(&self) -> &Embedding {
        &self.embedding
    }

    /// The landmark node ids.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Predicted delay between two nodes.
    pub fn predicted(&self, i: NodeId, j: NodeId) -> f64 {
        self.embedding.predicted(i, j)
    }

    /// Among `candidates`, the node with the smallest predicted delay.
    pub fn select_nearest(&self, client: NodeId, candidates: &[NodeId]) -> Option<NodeId> {
        self.embedding.select_nearest(client, candidates)
    }
}

/// Gradient of `(‖a − b‖ − d)²` w.r.t. `a`, added into `g`.
fn gradient_into(a: &[f64], b: &[f64], d: f64, g: &mut [f64]) {
    let dist: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
    if dist < 1e-9 {
        return; // coincident; gradient undefined, skip this term
    }
    let f = 2.0 * (dist - d) / dist;
    for ((gx, &ax), &bx) in g.iter_mut().zip(a).zip(b) {
        *gx += f * (ax - bx);
    }
}

/// Symmetric pair gradient for the landmark phase.
fn accumulate_gradient(a: &[f64], b: &[f64], d: f64, grads: &mut [Vec<f64>], ia: usize, ib: usize) {
    let mut ga = vec![0.0; a.len()];
    gradient_into(a, b, d, &mut ga);
    for (k, v) in ga.iter().enumerate() {
        grads[ia][k] += v;
        grads[ib][k] -= v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayspace::stats::Cdf;
    use delayspace::synth::{Dataset, InternetDelaySpace};

    #[test]
    fn fits_metric_space_well() {
        let space = InternetDelaySpace::preset(Dataset::Euclidean).with_nodes(80).build(3);
        let m = space.matrix();
        let model = GnpModel::fit(m, &GnpConfig::default(), 3);
        let med = model.embedding().abs_error_cdf(m).median();
        let scale = Cdf::from_samples(m.edge_delays()).median();
        assert!(med < scale * 0.25, "GNP error {med} too large vs median delay {scale}");
    }

    #[test]
    fn tiv_space_fits_worse_than_metric_space() {
        let n = 80;
        let eu = InternetDelaySpace::preset(Dataset::Euclidean).with_nodes(n).build(5);
        let ds = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(n).build(5);
        let cfg = GnpConfig::default();
        let rel = |s: &InternetDelaySpace| {
            let m = s.matrix();
            GnpModel::fit(m, &cfg, 1).embedding().abs_error_cdf(m).median()
                / Cdf::from_samples(m.edge_delays()).median()
        };
        assert!(rel(&ds) > rel(&eu), "TIV space should embed worse under GNP too");
    }

    #[test]
    fn deterministic_in_seed() {
        let space = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(50).build(7);
        let a = GnpModel::fit(space.matrix(), &GnpConfig::default(), 9);
        let b = GnpModel::fit(space.matrix(), &GnpConfig::default(), 9);
        assert_eq!(a.predicted(0, 1), b.predicted(0, 1));
        assert_eq!(a.landmarks(), b.landmarks());
    }

    #[test]
    fn landmarks_keep_their_phase1_coordinates() {
        let space = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(40).build(11);
        let model = GnpModel::fit(space.matrix(), &GnpConfig::default(), 2);
        // Landmark self-prediction is zero; landmark pair predictions
        // finite and symmetric.
        let l = model.landmarks().to_vec();
        assert_eq!(model.predicted(l[0], l[0]), 0.0);
        assert_eq!(model.predicted(l[0], l[1]), model.predicted(l[1], l[0]));
    }

    #[test]
    #[should_panic(expected = "more landmarks than dimensions")]
    fn underdetermined_config_rejected() {
        let space = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(40).build(1);
        let cfg = GnpConfig { dims: 5, landmarks: 4, ..GnpConfig::default() };
        GnpModel::fit(space.matrix(), &cfg, 1);
    }
}
