//! The Vivaldi spring-relaxation algorithm.
//!
//! Each pair of nodes that probe each other corresponds to a spring
//! whose rest length is the measured RTT; the coordinates evolve to
//! minimise total spring energy (squared prediction error). We implement
//! the adaptive-timestep rule of Dabek et al. (SIGCOMM'04), the variant
//! the paper simulates:
//!
//! ```text
//! w   = e_i / (e_i + e_j)                 (confidence weight)
//! es  = |‖x_i − x_j‖ − rtt| / rtt         (relative sample error)
//! e_i = es·c_e·w + e_i·(1 − c_e·w)        (error moving average)
//! x_i = x_i + c_c·w·(rtt − ‖x_i − x_j‖)·u(x_i − x_j)
//! ```
//!
//! One simulation *round* corresponds to one second of virtual time: in
//! a round, every node performs one probe-and-update step against one of
//! its neighbors (round-robin). The paper's "100 seconds of simulation
//! time" is therefore `run_rounds(net, 100)`.

use crate::coord::Coord;
use crate::embedding::Embedding;
use delayspace::matrix::NodeId;
use delayspace::rng::{self, DetRng};
use delayspace::stats::{Cdf, Percentiles};
use simnet::net::Network;

/// Tunable parameters of the Vivaldi algorithm.
#[derive(Clone, Copy, Debug)]
pub struct VivaldiConfig {
    /// Dimensionality of the embedding space (paper: 5).
    pub dims: usize,
    /// Coordinate timestep constant `c_c` (Dabek et al. recommend 0.25).
    pub cc: f64,
    /// Error moving-average constant `c_e` (0.25).
    pub ce: f64,
    /// Number of probing neighbors per node (paper: 32 random nodes).
    pub neighbors: usize,
    /// Scale of the random initial placement, ms. Small but nonzero to
    /// break symmetry deterministically.
    pub init_scale: f64,
    /// Use the Vivaldi height-vector model (`‖x_i − x_j‖ + h_i + h_j`)
    /// instead of plain Euclidean distance. The IMC'07 paper uses the
    /// plain 5-D model, so this defaults to off; heights capture
    /// access-link delay and are exercised by the ablation suite.
    pub use_height: bool,
}

impl Default for VivaldiConfig {
    fn default() -> Self {
        VivaldiConfig {
            dims: 5,
            cc: 0.25,
            ce: 0.25,
            neighbors: 32,
            init_scale: 1.0,
            use_height: false,
        }
    }
}

/// Statistics of one simulation run.
#[derive(Clone, Debug)]
pub struct RunStats {
    /// Per-update displacement magnitudes (ms per step). The paper
    /// reports a median of 1.61 ms/step and 90th percentile of
    /// 6.18 ms/step for DS² — large persistent movement is the
    /// signature of TIV-induced oscillation.
    pub movement: Cdf,
    /// Total probe-and-update steps executed.
    pub steps: u64,
}

impl RunStats {
    /// 10/50/90 summary of the movement speed.
    pub fn movement_percentiles(&self) -> Option<Percentiles> {
        Percentiles::of(self.movement.samples().iter().copied())
    }
}

/// A running Vivaldi system over `n` nodes.
#[derive(Clone, Debug)]
pub struct VivaldiSystem {
    config: VivaldiConfig,
    coords: Vec<Coord>,
    /// Local error estimate `e_i`, in (0, E_MAX].
    errors: Vec<f64>,
    neighbors: Vec<Vec<NodeId>>,
    /// Round-robin cursor into each node's neighbor list.
    cursor: Vec<usize>,
    rng: DetRng,
    steps: u64,
}

/// Upper bound on the local error estimate; keeps early wild samples
/// from saturating the confidence weights forever.
const E_MAX: f64 = 2.0;
/// Lower bound; a node is never infinitely confident.
const E_MIN: f64 = 1e-3;

impl VivaldiSystem {
    /// Creates a system of `n` nodes with random initial placement and
    /// `config.neighbors` random probing neighbors per node.
    pub fn new(config: VivaldiConfig, n: usize, seed: u64) -> Self {
        assert!(n >= 2, "Vivaldi needs at least two nodes");
        let mut r = rng::sub_rng(seed, "vivaldi");
        let coords = (0..n)
            .map(|_| {
                if config.use_height {
                    Coord::random_with_height(config.dims, config.init_scale, &mut r)
                } else {
                    Coord::random(config.dims, config.init_scale, &mut r)
                }
            })
            .collect();
        let neighbors = Self::random_neighbor_sets(n, config.neighbors, &mut r);
        VivaldiSystem {
            config,
            coords,
            errors: vec![1.0; n],
            neighbors,
            cursor: vec![0; n],
            rng: r,
            steps: 0,
        }
    }

    /// Draws `k` distinct random neighbors (excluding self) for each of
    /// `n` nodes.
    pub fn random_neighbor_sets(n: usize, k: usize, r: &mut DetRng) -> Vec<Vec<NodeId>> {
        let k = k.min(n - 1);
        (0..n)
            .map(|i| {
                // Sample from 0..n-1 and shift indices ≥ i to skip self.
                rng::sample_indices(r, n - 1, k)
                    .into_iter()
                    .map(|x| if x >= i { x + 1 } else { x })
                    .collect()
            })
            .collect()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// True when the system is empty (never; API symmetry).
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// The configuration.
    pub fn config(&self) -> &VivaldiConfig {
        &self.config
    }

    /// Current neighbor set of node `i`.
    pub fn neighbors_of(&self, i: NodeId) -> &[NodeId] {
        &self.neighbors[i]
    }

    /// Replaces the neighbor set of node `i` (dynamic-neighbor Vivaldi
    /// rewires between iterations). Resets the probing cursor.
    pub fn set_neighbors(&mut self, i: NodeId, neighbors: Vec<NodeId>) {
        assert!(!neighbors.is_empty(), "node {i} needs at least one neighbor");
        assert!(neighbors.iter().all(|&x| x != i && x < self.len()), "bad neighbor id");
        self.neighbors[i] = neighbors;
        self.cursor[i] = 0;
    }

    /// Predicted delay between `i` and `j` under the current coordinates.
    #[inline]
    pub fn predicted(&self, i: NodeId, j: NodeId) -> f64 {
        self.coords[i].distance(&self.coords[j])
    }

    /// Local error estimate of node `i`.
    pub fn local_error(&self, i: NodeId) -> f64 {
        self.errors[i]
    }

    /// Freezes the current coordinates into an [`Embedding`].
    pub fn embedding(&self) -> Embedding {
        Embedding::new(self.coords.clone())
    }

    /// Fresh RNG stream for auxiliary sampling that must not perturb the
    /// simulation's own stream.
    pub fn fork_rng(&mut self, label: &str) -> DetRng {
        use rand::Rng;
        rng::sub_rng(self.rng.gen(), label)
    }

    /// One probe-and-update step of node `i` against neighbor `j`.
    /// Returns the displacement applied to `i`, or `None` when the pair
    /// is unmeasured in the data set.
    pub fn step(&mut self, net: &mut Network<'_>, i: NodeId, j: NodeId) -> Option<f64> {
        debug_assert_ne!(i, j);
        let rtt = net.probe(i, j)?;
        if rtt <= 0.0 {
            return None;
        }
        self.steps += 1;
        let dist = self.predicted(i, j);
        let (ei, ej) = (self.errors[i], self.errors[j]);
        let w = ei / (ei + ej);
        let es = (dist - rtt).abs() / rtt;
        let ce_w = self.config.ce * w;
        self.errors[i] = (es * ce_w + ei * (1.0 - ce_w)).clamp(E_MIN, E_MAX);
        let delta = self.config.cc * w;
        let step = delta * (rtt - dist);
        // Positive step (rtt > dist) pushes i away from j to stretch the
        // spring; negative pulls it in.
        let other = self.coords[j].clone();
        let moved = self.coords[i].nudge_away_from(&other, step, &mut self.rng);
        Some(moved)
    }

    /// Runs `rounds` rounds (1 round = every node does one step against
    /// its next round-robin neighbor = 1 s of virtual time).
    pub fn run_rounds(&mut self, net: &mut Network<'_>, rounds: usize) -> RunStats {
        let mut movement = Vec::with_capacity(rounds * self.len());
        for _ in 0..rounds {
            self.round(net, &mut movement);
        }
        RunStats { movement: Cdf::from_samples(movement), steps: self.steps }
    }

    /// Runs `rounds` rounds, invoking `observer` after each round with
    /// the round index (0-based) and the system state — used by the
    /// trace and oscillation instrumentation.
    pub fn run_rounds_observed(
        &mut self,
        net: &mut Network<'_>,
        rounds: usize,
        mut observer: impl FnMut(usize, &VivaldiSystem),
    ) -> RunStats {
        let mut movement = Vec::with_capacity(rounds * self.len());
        for round in 0..rounds {
            self.round(net, &mut movement);
            observer(round, self);
        }
        RunStats { movement: Cdf::from_samples(movement), steps: self.steps }
    }

    /// Runs `rounds` rounds invoking `observer` after **every individual
    /// probe-and-update step** (not just every round) with the running
    /// step index. Figure 10 of the paper needs this granularity: at a
    /// TIV-induced equilibrium the per-round snapshots form a limit
    /// cycle whose swing is only visible between steps.
    pub fn run_steps_observed(
        &mut self,
        net: &mut Network<'_>,
        rounds: usize,
        mut observer: impl FnMut(u64, &VivaldiSystem),
    ) -> RunStats {
        let mut movement = Vec::with_capacity(rounds * self.len());
        let n = self.len();
        for _ in 0..rounds {
            for i in 0..n {
                if self.neighbors[i].is_empty() {
                    continue;
                }
                let cur = self.cursor[i] % self.neighbors[i].len();
                self.cursor[i] = cur + 1;
                let j = self.neighbors[i][cur];
                if let Some(moved) = self.step(net, i, j) {
                    movement.push(moved);
                }
                let steps = self.steps;
                observer(steps, self);
            }
        }
        RunStats { movement: Cdf::from_samples(movement), steps: self.steps }
    }

    fn round(&mut self, net: &mut Network<'_>, movement: &mut Vec<f64>) {
        let n = self.len();
        for i in 0..n {
            if self.neighbors[i].is_empty() {
                continue;
            }
            let cur = self.cursor[i] % self.neighbors[i].len();
            self.cursor[i] = cur + 1;
            let j = self.neighbors[i][cur];
            if let Some(moved) = self.step(net, i, j) {
                movement.push(moved);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayspace::matrix::DelayMatrix;
    use delayspace::synth::{Dataset, InternetDelaySpace};
    use simnet::net::JitterModel;

    fn run_system(m: &DelayMatrix, cfg: VivaldiConfig, rounds: usize, seed: u64) -> VivaldiSystem {
        let mut sys = VivaldiSystem::new(cfg, m.len(), seed);
        let mut net = Network::new(m, JitterModel::None, seed);
        sys.run_rounds(&mut net, rounds);
        sys
    }

    #[test]
    fn embeds_a_line_accurately() {
        // Perfectly embeddable 1-D metric: nodes on a line.
        let m = DelayMatrix::from_complete_fn(10, |i, j| 10.0 * (i.abs_diff(j)) as f64);
        let cfg = VivaldiConfig { dims: 3, neighbors: 9, ..VivaldiConfig::default() };
        let sys = run_system(&m, cfg, 300, 42);
        let emb = sys.embedding();
        let cdf = emb.abs_error_cdf(&m);
        assert!(cdf.median() < 3.0, "median error {} too high for a metric space", cdf.median());
    }

    #[test]
    fn euclidean_space_embeds_better_than_tiv_space() {
        let n = 120;
        let eu = InternetDelaySpace::preset(Dataset::Euclidean).with_nodes(n).build(5);
        let ds = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(n).build(5);
        let cfg = VivaldiConfig { neighbors: 16, ..VivaldiConfig::default() };
        let med_eu =
            run_system(eu.matrix(), cfg, 200, 1).embedding().abs_error_cdf(eu.matrix()).median();
        let med_ds =
            run_system(ds.matrix(), cfg, 200, 1).embedding().abs_error_cdf(ds.matrix()).median();
        assert!(
            med_eu < med_ds,
            "metric space should embed better: euclidean {med_eu} vs ds2 {med_ds}"
        );
    }

    #[test]
    fn three_node_tiv_cannot_converge() {
        // The Figure 10 scenario: d(A,B)=5, d(B,C)=5, d(C,A)=100.
        let mut m = DelayMatrix::new(3);
        m.set(0, 1, 5.0);
        m.set(1, 2, 5.0);
        m.set(2, 0, 100.0);
        let cfg = VivaldiConfig { neighbors: 2, ..VivaldiConfig::default() };
        let mut sys = VivaldiSystem::new(cfg, 3, 7);
        let mut net = Network::new(&m, JitterModel::None, 7);
        let stats = sys.run_rounds(&mut net, 200);
        // Errors cannot all go to zero: total squared error stays large.
        let emb = sys.embedding();
        let total_abs: f64 = emb.errors(&m).map(|(_, _, e)| e.abs()).sum();
        assert!(total_abs > 20.0, "TIV triangle should not embed (total err {total_abs})");
        // And the nodes keep moving (oscillation).
        let p = stats.movement_percentiles().unwrap();
        assert!(p.p50 > 0.05, "median movement {} suggests false convergence", p.p50);
    }

    #[test]
    fn movement_decays_on_metric_space() {
        let m = DelayMatrix::from_complete_fn(20, |i, j| 5.0 * (i.abs_diff(j)) as f64);
        let cfg = VivaldiConfig { dims: 3, neighbors: 10, ..VivaldiConfig::default() };
        let mut sys = VivaldiSystem::new(cfg, 20, 3);
        let mut net = Network::new(&m, JitterModel::None, 3);
        sys.run_rounds(&mut net, 150);
        // Movement in a late window should be much smaller than early.
        let late = sys.run_rounds(&mut net, 30);
        let p = late.movement_percentiles().unwrap();
        assert!(p.p50 < 1.0, "median late movement {} — no convergence", p.p50);
    }

    #[test]
    fn run_is_deterministic() {
        let m = DelayMatrix::from_complete_fn(15, |i, j| (3 * i + j) as f64 + 1.0);
        let cfg = VivaldiConfig::default();
        let a = run_system(&m, cfg, 50, 11).embedding();
        let b = run_system(&m, cfg, 50, 11).embedding();
        for i in 0..15 {
            assert_eq!(a.coord(i), b.coord(i));
        }
    }

    #[test]
    fn probe_budget_is_one_per_node_per_round() {
        let m = DelayMatrix::from_complete_fn(10, |_, _| 10.0);
        let cfg = VivaldiConfig { neighbors: 4, ..VivaldiConfig::default() };
        let mut sys = VivaldiSystem::new(cfg, 10, 1);
        let mut net = Network::new(&m, JitterModel::None, 1);
        sys.run_rounds(&mut net, 25);
        assert_eq!(net.stats().total(), 250);
    }

    #[test]
    fn set_neighbors_validates() {
        let cfg = VivaldiConfig::default();
        let mut sys = VivaldiSystem::new(cfg, 5, 1);
        sys.set_neighbors(0, vec![1, 2]);
        assert_eq!(sys.neighbors_of(0), &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "bad neighbor id")]
    fn set_neighbors_rejects_self() {
        let mut sys = VivaldiSystem::new(VivaldiConfig::default(), 5, 1);
        sys.set_neighbors(0, vec![0]);
    }

    #[test]
    fn local_error_shrinks_when_learnable() {
        let m = DelayMatrix::from_complete_fn(12, |i, j| 8.0 * (i.abs_diff(j)) as f64);
        let cfg = VivaldiConfig { dims: 2, neighbors: 6, ..VivaldiConfig::default() };
        let sys = run_system(&m, cfg, 200, 9);
        let mean_err: f64 = (0..12).map(|i| sys.local_error(i)).sum::<f64>() / 12.0;
        assert!(mean_err < 0.5, "mean local error {mean_err} did not shrink");
    }

    #[test]
    fn height_model_wins_on_access_delay_space() {
        // Delays dominated by per-node access links: d(i,j) = a_i + a_j.
        // Such a space is exactly what heights model; a plain Euclidean
        // embedding must distort it (it would need all pairwise
        // distances to be sums, impossible in any R^d for varied a_i).
        let access: Vec<f64> = (0..24).map(|i| 5.0 + (i % 7) as f64 * 12.0).collect();
        let m = DelayMatrix::from_complete_fn(24, |i, j| access[i] + access[j]);
        let run = |use_height: bool| {
            let cfg =
                VivaldiConfig { dims: 2, neighbors: 12, use_height, ..VivaldiConfig::default() };
            run_system(&m, cfg, 400, 21).embedding().abs_error_cdf(&m).median()
        };
        let plain = run(false);
        let height = run(true);
        assert!(
            height < plain,
            "height model should win on access-delay space: {height} !< {plain}"
        );
    }

    #[test]
    fn heights_stay_nonnegative() {
        let m = DelayMatrix::from_complete_fn(10, |i, j| 3.0 * (i + j + 1) as f64);
        let cfg = VivaldiConfig { use_height: true, neighbors: 5, ..VivaldiConfig::default() };
        let sys = run_system(&m, cfg, 100, 23);
        let emb = sys.embedding();
        for i in 0..10 {
            assert!(emb.coord(i).height() >= 0.0);
        }
    }

    #[test]
    fn observer_sees_every_round() {
        let m = DelayMatrix::from_complete_fn(6, |_, _| 10.0);
        let mut sys = VivaldiSystem::new(VivaldiConfig::default(), 6, 1);
        let mut net = Network::new(&m, JitterModel::None, 1);
        let mut rounds_seen = Vec::new();
        sys.run_rounds_observed(&mut net, 7, |r, _| rounds_seen.push(r));
        assert_eq!(rounds_seen, vec![0, 1, 2, 3, 4, 5, 6]);
    }
}
