//! LAT — the localized adjustment term of Lee et al. \[11\].
//!
//! Each node `x` keeps, besides its Euclidean coordinate `c_x`, a scalar
//! adjustment `e_x` equal to half the average residual over a set `S` of
//! sampled measurements:
//!
//! ```text
//! e_x = Σ_{y ∈ S} (d_xy − d̂_xy) / (2|S|)
//! ```
//!
//! and predicts `d̂'_xy = dist(c_x, c_y) + e_x + e_y` (clamped at zero).
//! The adjustment re-introduces a non-Euclidean component, improving
//! aggregate accuracy; Section 4.2 of the paper shows it barely helps
//! *neighbor selection* (Figure 16), which we reproduce.

use crate::embedding::Embedding;
use delayspace::matrix::{DelayMatrix, NodeId};
use delayspace::rng;

/// An embedding augmented with per-node localized adjustment terms.
#[derive(Clone, Debug)]
pub struct LatModel {
    base: Embedding,
    adjust: Vec<f64>,
}

impl LatModel {
    /// Fits adjustment terms from `samples_per_node` random measured
    /// neighbors per node (the paper samples a small random set; we skip
    /// unmeasured pairs).
    pub fn fit(base: Embedding, m: &DelayMatrix, samples_per_node: usize, seed: u64) -> Self {
        let n = base.len();
        assert_eq!(n, m.len(), "embedding/matrix size mismatch");
        assert!(samples_per_node > 0, "need at least one sample per node");
        let mut r = rng::sub_rng(seed, "lat/fit");
        let mut adjust = vec![0.0; n];
        for (x, adj) in adjust.iter_mut().enumerate() {
            let k = samples_per_node.min(n - 1);
            let sample = rng::sample_indices(&mut r, n - 1, k).into_iter().map(|v| {
                if v >= x {
                    v + 1
                } else {
                    v
                }
            });
            let mut sum = 0.0;
            let mut cnt = 0usize;
            for y in sample {
                if let Some(d) = m.get(x, y) {
                    sum += d - base.predicted(x, y);
                    cnt += 1;
                }
            }
            if cnt > 0 {
                *adj = sum / (2.0 * cnt as f64);
            }
        }
        LatModel { base, adjust }
    }

    /// The underlying Euclidean embedding.
    pub fn base(&self) -> &Embedding {
        &self.base
    }

    /// Adjustment term of node `x`.
    pub fn adjustment(&self, x: NodeId) -> f64 {
        self.adjust[x]
    }

    /// LAT-adjusted predicted delay (never negative).
    pub fn predicted(&self, i: NodeId, j: NodeId) -> f64 {
        (self.base.predicted(i, j) + self.adjust[i] + self.adjust[j]).max(0.0)
    }

    /// Among `candidates`, the node with the smallest LAT-predicted
    /// delay to `client`.
    pub fn select_nearest(&self, client: NodeId, candidates: &[NodeId]) -> Option<NodeId> {
        candidates
            .iter()
            .copied()
            .filter(|&c| c != client)
            .min_by(|&a, &b| self.predicted(client, a).total_cmp(&self.predicted(client, b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::Coord;

    /// Embedding that systematically under-predicts by 10 ms per node
    /// pair: nodes at the same place, true delays all 20 ms.
    #[test]
    fn lat_corrects_systematic_underprediction() {
        let emb = Embedding::new(vec![Coord::origin(2); 4]);
        let m = DelayMatrix::from_complete_fn(4, |_, _| 20.0);
        let lat = LatModel::fit(emb, &m, 3, 1);
        // Residual d − d̂ = 20 everywhere → e_x = 10 → prediction 20.
        for i in 0..4 {
            assert!((lat.adjustment(i) - 10.0).abs() < 1e-9);
            for j in 0..4 {
                if i != j {
                    assert!((lat.predicted(i, j) - 20.0).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn prediction_is_clamped_at_zero() {
        // Embedding over-predicts: points 100 apart, true delay 2.
        let emb = Embedding::new(vec![Coord::from_vec(vec![0.0]), Coord::from_vec(vec![100.0])]);
        let m = DelayMatrix::from_complete_fn(2, |_, _| 2.0);
        let lat = LatModel::fit(emb, &m, 1, 1);
        // e_x = (2 − 100)/2 = −49 each; 100 − 98 = 2 → fine, but check
        // clamping with a harsher case by direct computation.
        assert!(lat.predicted(0, 1) >= 0.0);
        assert!((lat.predicted(0, 1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn node_level_adjustment_cannot_fix_one_edge() {
        // Edge (0,1) is hugely over-predicted while the others are
        // exact. LAT averages residuals per *node*, so it smears the
        // correction over all of a node's edges and still ranks node 2
        // closer to 0 — the very limitation Section 4.2 demonstrates.
        let emb = Embedding::new(vec![
            Coord::from_vec(vec![0.0]),
            Coord::from_vec(vec![50.0]),
            Coord::from_vec(vec![30.0]),
        ]);
        let mut m = DelayMatrix::new(3);
        m.set(0, 1, 10.0); // over-predicted by 40
        m.set(0, 2, 30.0); // exact
        m.set(1, 2, 20.0); // exact
        let lat = LatModel::fit(emb, &m, 2, 3);
        assert!(lat.adjustment(1) < 0.0);
        // Adjusted prediction of the bad edge improves (50 → 30) but is
        // still far from the true 10 ms...
        assert!((lat.predicted(0, 1) - 30.0).abs() < 1e-9);
        // ...so neighbor selection still picks the wrong node.
        assert_eq!(lat.select_nearest(0, &[1, 2]), Some(2));
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_rejected() {
        let emb = Embedding::new(vec![Coord::origin(2); 3]);
        let m = DelayMatrix::new(4);
        LatModel::fit(emb, &m, 2, 1);
    }
}
