//! Virtual time and the deterministic event queue.
//!
//! Time is kept in integer microseconds so that event ordering is exact:
//! two events scheduled for the same instant are delivered in schedule
//! order (FIFO tie-break via a monotone sequence number), never in an
//! order that depends on floating-point rounding or heap internals.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A point in virtual time, in integer microseconds since simulation
/// start.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from fractional milliseconds (rounds to microseconds).
    pub fn from_ms(ms: f64) -> Self {
        assert!(ms >= 0.0 && ms.is_finite(), "invalid time {ms} ms");
        SimTime((ms * 1000.0).round() as u64)
    }

    /// Constructs from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// This instant in fractional milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// This instant in fractional seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The instant `ms` milliseconds after `self`.
    pub fn after_ms(self, ms: f64) -> Self {
        SimTime(self.0 + SimTime::from_ms(ms).0)
    }
}

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

// Order by (time, sequence); BinaryHeap is a max-heap so wrap in Reverse
// at the call sites.
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic future-event list.
///
/// Events of equal timestamp are delivered in the order they were
/// scheduled. The queue itself never advances time; [`Simulation`]
/// couples it with a clock.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `event` for instant `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Removes and returns the earliest event, with its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(s)| (s.at, s.event))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A discrete-event simulation: an event queue plus the current virtual
/// time. The handler may schedule further events.
///
/// ```
/// use simnet::sim::{Simulation, SimTime};
///
/// let mut sim: Simulation<&str> = Simulation::new();
/// sim.schedule(SimTime::from_ms(2.0), "b");
/// sim.schedule(SimTime::from_ms(1.0), "a");
/// let mut seen = Vec::new();
/// sim.run(|sim, ev| {
///     seen.push((sim.now().as_ms(), ev));
/// });
/// assert_eq!(seen, vec![(1.0, "a"), (2.0, "b")]);
/// ```
#[derive(Debug)]
pub struct Simulation<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulation<E> {
    /// A simulation at time zero with no pending events.
    pub fn new() -> Self {
        Simulation { queue: EventQueue::new(), now: SimTime::ZERO, processed: 0 }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events delivered so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedules `event` at absolute instant `at`.
    ///
    /// # Panics
    /// Panics when `at` is in the past — delivering events behind the
    /// clock would silently reorder history.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past ({:?} < {:?})", at, self.now);
        self.queue.schedule(at, event);
    }

    /// Schedules `event` `ms` milliseconds from now.
    pub fn schedule_in(&mut self, ms: f64, event: E) {
        self.schedule(self.now.after_ms(ms), event);
    }

    /// Runs until the queue drains, delivering each event to `handler`.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Self, E)) {
        while let Some((at, ev)) = self.queue.pop() {
            self.now = at;
            self.processed += 1;
            handler(self, ev);
        }
    }

    /// Runs until the queue drains or virtual time would exceed
    /// `deadline`; events after the deadline stay queued.
    pub fn run_until(&mut self, deadline: SimTime, mut handler: impl FnMut(&mut Self, E)) {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            let (at, ev) = self.queue.pop().expect("peeked event vanished");
            self.now = at;
            self.processed += 1;
            handler(self, ev);
        }
        self.now = self.now.max(deadline.min(self.queue.peek_time().unwrap_or(deadline)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_conversions() {
        assert_eq!(SimTime::from_ms(1.5).0, 1500);
        assert_eq!(SimTime::from_secs(2).as_ms(), 2000.0);
        assert_eq!(SimTime::from_ms(0.0), SimTime::ZERO);
        assert!((SimTime::from_ms(0.25).as_secs() - 0.00025).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid time")]
    fn negative_time_rejected() {
        SimTime::from_ms(-1.0);
    }

    #[test]
    fn queue_orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ms(5.0), 'c');
        q.schedule(SimTime::from_ms(1.0), 'a');
        q.schedule(SimTime::from_ms(3.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(1.0);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn handler_can_schedule_followups() {
        let mut sim: Simulation<u32> = Simulation::new();
        sim.schedule(SimTime::ZERO, 0);
        let mut count = 0;
        sim.run(|sim, ev| {
            count += 1;
            if ev < 5 {
                sim.schedule_in(10.0, ev + 1);
            }
        });
        assert_eq!(count, 6);
        assert_eq!(sim.now(), SimTime::from_ms(50.0));
        assert_eq!(sim.processed(), 6);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut sim: Simulation<()> = Simulation::new();
        sim.schedule(SimTime::from_ms(10.0), ());
        sim.run(|sim, ()| {
            sim.schedule(SimTime::from_ms(5.0), ());
        });
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim: Simulation<u32> = Simulation::new();
        for i in 0..10 {
            sim.schedule(SimTime::from_secs(i), i as u32);
        }
        let mut seen = Vec::new();
        sim.run_until(SimTime::from_secs(4), |_, e| seen.push(e));
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        // The rest stays queued.
        let mut rest = Vec::new();
        sim.run(|_, e| rest.push(e));
        assert_eq!(rest, vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn empty_queue_runs_no_events() {
        let mut sim: Simulation<()> = Simulation::new();
        let mut n = 0;
        sim.run(|_, ()| n += 1);
        assert_eq!(n, 0);
        assert_eq!(sim.now(), SimTime::ZERO);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn events_always_delivered_in_time_order(
            times in proptest::collection::vec(0u64..1_000_000, 1..200)
        ) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime(t), i);
            }
            let mut last = SimTime::ZERO;
            let mut seen = 0usize;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last, "time went backwards");
                last = t;
                seen += 1;
            }
            prop_assert_eq!(seen, times.len());
        }

        #[test]
        fn ties_preserve_schedule_order(
            times in proptest::collection::vec(0u64..5, 1..100)
        ) {
            // With very few distinct timestamps, ties are guaranteed;
            // FIFO within a timestamp must hold.
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime(t), i);
            }
            let mut last_seq_at: std::collections::HashMap<u64, usize> =
                std::collections::HashMap::new();
            while let Some((t, seq)) = q.pop() {
                if let Some(&prev) = last_seq_at.get(&t.0) {
                    prop_assert!(seq > prev, "FIFO violated at t={}", t.0);
                }
                last_seq_at.insert(t.0, seq);
            }
        }

        #[test]
        fn simulation_clock_is_monotone(
            delays in proptest::collection::vec(0.0f64..1000.0, 1..50)
        ) {
            let mut sim: Simulation<usize> = Simulation::new();
            sim.schedule(SimTime::ZERO, 0);
            let mut clock_trace = Vec::new();
            let delays2 = delays.clone();
            sim.run(|sim, idx| {
                clock_trace.push(sim.now());
                if idx < delays2.len() {
                    sim.schedule_in(delays2[idx], idx + 1);
                }
            });
            for w in clock_trace.windows(2) {
                prop_assert!(w[1] >= w[0]);
            }
            prop_assert_eq!(clock_trace.len(), delays.len() + 1);
        }
    }
}
