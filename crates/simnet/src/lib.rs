//! # `simnet` — deterministic discrete-event network simulation
//!
//! This crate is the execution substrate for the overlay systems in the
//! workspace (Vivaldi, Meridian and their TIV-aware variants). It
//! provides:
//!
//! * a virtual clock and a deterministic event queue ([`sim`]),
//! * a simulated network that answers round-trip probes from a delay
//!   matrix, with optional measurement jitter and full **probe
//!   accounting** ([`net`]) — the paper reports Meridian improvements
//!   together with their probing-overhead cost (+5–6%), so counting
//!   probes is a first-class concern.
//!
//! Determinism is a design goal inherited from the measurement study we
//! reproduce: every simulation is a pure function of (delay matrix,
//! seed), so every figure regenerates bit-identically. The same
//! contract extends to the parallel kernels layer (`tivpar`) the
//! analysis crates run on — parallelism never changes a result, so a
//! simulation followed by an analysis is reproducible end to end at
//! any thread count.
//!
//! | module | provides |
//! |---|---|
//! | [`sim`] | [`SimTime`], [`EventQueue`], [`Simulation`] driver |
//! | [`net`] | [`Network`], [`JitterModel`], [`ProbeStats`] accounting |
//! | [`churn`] | [`ChurnProcess`]: diurnal drift, congestion spikes, node churn — deterministic observation streams for the incremental epoch pipeline |
//!
//! ```
//! use delayspace::DelayMatrix;
//! use simnet::net::{Network, JitterModel};
//!
//! let mut m = DelayMatrix::new(2);
//! m.set(0, 1, 42.0);
//! let mut net = Network::new(&m, JitterModel::None, 7);
//! assert_eq!(net.probe(0, 1), Some(42.0));
//! assert_eq!(net.stats().total(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod churn;
pub mod net;
pub mod sim;

pub use churn::{ChurnConfig, ChurnProcess, EdgeSample, TickReport};
pub use net::{JitterModel, Network, ProbeStats};
pub use sim::{EventQueue, SimTime, Simulation};
