//! Time-varying delay processes: the churn that makes epochs necessary.
//!
//! The reproduced paper studies *static* snapshots of Internet delay
//! spaces, but its deployment sections assume the signals are kept
//! fresh online — severities drift as routing and congestion change.
//! This module models that drift deterministically, so the incremental
//! epoch pipeline (`tivflux`, `tivserve::flux`) can be driven, measured
//! and regression-tested against a reproducible churning world:
//!
//! * **diurnal drift** — each node's delays swell and shrink on a slow
//!   multiplicative sinusoid with a per-node phase (the classic
//!   load-follows-the-sun pattern);
//! * **congestion spikes** — transient episodes that multiply one
//!   edge's delay for a few ticks and then clear;
//! * **node churn** — occasional per-node resets that re-draw the
//!   node's delay scale (a re-homed or re-routed host) and trigger a
//!   burst of re-measurements of its whole row.
//!
//! A [`ChurnProcess`] advances in integer ticks. Each
//! [`advance`](ChurnProcess::advance) emits the tick's *observations*
//! — [`EdgeSample`]s of the current true delays, with measurement
//! jitter — which is exactly the stream an epoch builder folds in. The
//! true (un-jittered, fully fresh) delay of any edge is exposed via
//! [`ChurnProcess::true_delay`] so experiments can measure the served
//! state's staleness against ground truth. The whole process is a pure
//! function of `(base matrix, config)`: two processes with the same
//! inputs emit bit-identical streams.

use delayspace::matrix::{DelayMatrix, NodeId};
use delayspace::rng::{self, DetRng};
use rand::Rng;

/// One observed RTT sample emitted by the process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeSample {
    /// The measuring node.
    pub a: NodeId,
    /// The measured peer.
    pub b: NodeId,
    /// The observed round-trip time, ms (jittered true delay).
    pub rtt_ms: f64,
}

/// Shape of the time-varying delay process.
#[derive(Clone, Copy, Debug)]
pub struct ChurnConfig {
    /// Relative amplitude of the diurnal sinusoid (0 disables; 0.15
    /// swings a node's contribution ±15%).
    pub diurnal_amp: f64,
    /// Period of the diurnal cycle, in ticks.
    pub diurnal_period: f64,
    /// Expected congestion spikes spawned per tick.
    pub spike_rate: f64,
    /// Peak relative magnitude of a spike: an affected edge is
    /// multiplied by up to `1 + spike_mag`.
    pub spike_mag: f64,
    /// Lifetime of a spike, ticks.
    pub spike_ticks: u32,
    /// Per-node probability of a churn reset per tick.
    pub churn_prob: f64,
    /// Random edge observations sampled per tick.
    pub obs_per_tick: usize,
    /// Re-measurement burst after a node reset: how many of the
    /// churned node's edges are observed immediately.
    pub churn_resample: usize,
    /// Measurement jitter applied to every emitted RTT
    /// ([`crate::JitterModel::Multiplicative`] sigma; 0 emits true
    /// delays).
    pub jitter_sigma: f64,
    /// Master seed of the process.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            diurnal_amp: 0.15,
            diurnal_period: 48.0,
            spike_rate: 2.0,
            spike_mag: 3.0,
            spike_ticks: 3,
            churn_prob: 0.001,
            obs_per_tick: 256,
            churn_resample: 64,
            jitter_sigma: 0.02,
            seed: 42,
        }
    }
}

/// A transient congestion episode on one unordered edge.
#[derive(Clone, Copy, Debug)]
struct Spike {
    a: NodeId,
    b: NodeId,
    /// Last tick (inclusive) the spike is active.
    until: u64,
    /// Multiplicative factor applied while active (≥ 1).
    factor: f64,
}

/// The outcome of one tick.
#[derive(Clone, Debug)]
pub struct TickReport {
    /// The tick just completed (first `advance` reports 1).
    pub tick: u64,
    /// Observations emitted this tick, in emission order (churn bursts
    /// first, then the random sweep).
    pub samples: Vec<EdgeSample>,
    /// Nodes that churn-reset this tick.
    pub churned: Vec<NodeId>,
    /// Congestion spikes active during this tick.
    pub active_spikes: usize,
}

/// A deterministic time-varying delay process over a base matrix.
#[derive(Clone, Debug)]
pub struct ChurnProcess {
    base: DelayMatrix,
    cfg: ChurnConfig,
    /// Per-node diurnal phase, radians.
    phase: Vec<f64>,
    /// Per-node churn scale (re-drawn on reset).
    scale: Vec<f64>,
    spikes: Vec<Spike>,
    tick: u64,
    rng: DetRng,
}

impl ChurnProcess {
    /// A process over `base` (cloned) with the given shape.
    ///
    /// # Panics
    /// Panics on a base matrix with fewer than 2 nodes, a non-positive
    /// diurnal period, or an amplitude outside `[0, 1)`.
    pub fn new(base: &DelayMatrix, cfg: ChurnConfig) -> Self {
        assert!(base.len() >= 2, "churn needs at least two nodes");
        assert!(cfg.diurnal_period > 0.0, "diurnal period must be positive");
        assert!(
            (0.0..1.0).contains(&cfg.diurnal_amp),
            "diurnal amplitude {} outside [0, 1)",
            cfg.diurnal_amp
        );
        assert!(cfg.spike_mag >= 0.0 && cfg.spike_rate >= 0.0, "spike shape must be non-negative");
        assert!((0.0..=1.0).contains(&cfg.churn_prob), "churn probability outside [0, 1]");
        let mut r = rng::sub_rng(cfg.seed, "simnet/churn");
        let phase = (0..base.len()).map(|_| r.gen_range(0.0..std::f64::consts::TAU)).collect();
        ChurnProcess {
            base: base.clone(),
            cfg,
            phase,
            scale: vec![1.0; base.len()],
            spikes: Vec::new(),
            tick: 0,
            rng: r,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// True when the process covers no nodes (never; API symmetry).
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// The current tick (0 before the first [`advance`](Self::advance)).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// The configuration.
    pub fn config(&self) -> &ChurnConfig {
        &self.cfg
    }

    /// Node `i`'s diurnal factor at the current tick.
    fn diurnal(&self, i: NodeId) -> f64 {
        1.0 + self.cfg.diurnal_amp
            * (std::f64::consts::TAU * self.tick as f64 / self.cfg.diurnal_period + self.phase[i])
                .sin()
    }

    /// The *true* current delay of `{a, b}`: base delay under the
    /// diurnal factors, churn scales, and any active spike. `None` when
    /// the base pair is unmeasured. This is the ground truth staleness
    /// is measured against; emitted observations are this value plus
    /// measurement jitter.
    pub fn true_delay(&self, a: NodeId, b: NodeId) -> Option<f64> {
        let d = self.base.get(a, b)?;
        if a == b {
            return Some(0.0);
        }
        let drift = 0.5 * (self.diurnal(a) + self.diurnal(b));
        let mut v = d * drift * self.scale[a] * self.scale[b];
        for s in &self.spikes {
            if (s.a == a && s.b == b) || (s.a == b && s.b == a) {
                v *= s.factor;
            }
        }
        Some(v.max(0.05))
    }

    /// Draws one random measured off-diagonal pair of the base matrix.
    /// Synthetic spaces are complete, so the retry bound is generous.
    fn random_edge(&mut self) -> Option<(NodeId, NodeId)> {
        let n = self.base.len();
        for _ in 0..64 {
            let a = self.rng.gen_range(0..n);
            let mut b = self.rng.gen_range(0..n - 1);
            if b >= a {
                b += 1;
            }
            if self.base.get(a, b).is_some() {
                return Some((a, b));
            }
        }
        None
    }

    /// Emits one jittered observation of the current true delay — the
    /// same multiplicative rule as [`crate::JitterModel::Multiplicative`],
    /// inlined here because a [`crate::Network`] borrows its matrix for
    /// its whole lifetime while this process owns a drifting one.
    fn sample_edge(&mut self, a: NodeId, b: NodeId) -> Option<EdgeSample> {
        let truth = self.true_delay(a, b)?;
        let rtt = if self.cfg.jitter_sigma > 0.0 {
            let z = rng::sample_standard_normal(&mut self.rng);
            (truth * (1.0 + self.cfg.jitter_sigma * z)).max(0.05)
        } else {
            truth
        };
        Some(EdgeSample { a, b, rtt_ms: rtt })
    }

    /// Advances one tick: expires and spawns congestion spikes, applies
    /// node churn (with re-measurement bursts), and samples the tick's
    /// random observations. Deterministic given `(base, config)`.
    pub fn advance(&mut self) -> TickReport {
        self.tick += 1;
        let tick = self.tick;
        // Expire finished spikes, then spawn this tick's new ones.
        self.spikes.retain(|s| s.until >= tick);
        let whole = self.cfg.spike_rate.floor() as usize;
        let frac = self.cfg.spike_rate - self.cfg.spike_rate.floor();
        let spawn = whole + usize::from(frac > 0.0 && self.rng.gen_range(0.0..1.0) < frac);
        for _ in 0..spawn {
            if let Some((a, b)) = self.random_edge() {
                let factor = 1.0 + self.cfg.spike_mag * self.rng.gen_range(0.0..1.0);
                self.spikes.push(Spike { a, b, until: tick + self.cfg.spike_ticks as u64, factor });
            }
        }
        // Node churn: re-draw the node's scale, then burst-remeasure a
        // slice of its row (a rebooted host probes its peers).
        let mut churned = Vec::new();
        let mut samples = Vec::new();
        if self.cfg.churn_prob > 0.0 {
            for i in 0..self.base.len() {
                if self.rng.gen_range(0.0..1.0) < self.cfg.churn_prob {
                    self.scale[i] = rng::lognormal(&mut self.rng, 1.0, 0.4).clamp(0.4, 2.5);
                    churned.push(i);
                }
            }
        }
        for i in churned.clone() {
            let n = self.base.len();
            let burst = self.cfg.churn_resample.min(n - 1);
            for idx in rng::sample_indices(&mut self.rng, n - 1, burst) {
                let j = if idx >= i { idx + 1 } else { idx };
                if let Some(s) = self.sample_edge(i, j) {
                    samples.push(s);
                }
            }
        }
        // The tick's random observation sweep.
        for _ in 0..self.cfg.obs_per_tick {
            if let Some((a, b)) = self.random_edge() {
                if let Some(s) = self.sample_edge(a, b) {
                    samples.push(s);
                }
            }
        }
        TickReport { tick, samples, churned, active_spikes: self.spikes.len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(n: usize) -> DelayMatrix {
        DelayMatrix::from_complete_fn(n, |i, j| 10.0 + ((i * 13 + j * 7) % 90) as f64)
    }

    fn quiet() -> ChurnConfig {
        ChurnConfig {
            spike_rate: 0.0,
            churn_prob: 0.0,
            jitter_sigma: 0.0,
            obs_per_tick: 32,
            ..ChurnConfig::default()
        }
    }

    #[test]
    fn stream_is_deterministic() {
        let m = base(30);
        let cfg = ChurnConfig { churn_prob: 0.05, ..ChurnConfig::default() };
        let mut a = ChurnProcess::new(&m, cfg);
        let mut b = ChurnProcess::new(&m, cfg);
        for _ in 0..10 {
            let (ra, rb) = (a.advance(), b.advance());
            assert_eq!(ra.samples, rb.samples);
            assert_eq!(ra.churned, rb.churned);
            assert_eq!(ra.active_spikes, rb.active_spikes);
        }
        assert_eq!(a.tick(), 10);
    }

    #[test]
    fn samples_are_positive_finite_and_in_range() {
        let m = base(25);
        let mut p = ChurnProcess::new(&m, ChurnConfig { churn_prob: 0.02, ..Default::default() });
        for _ in 0..20 {
            for s in p.advance().samples {
                assert!(s.a != s.b && s.a < 25 && s.b < 25);
                assert!(s.rtt_ms > 0.0 && s.rtt_ms.is_finite(), "bad rtt {}", s.rtt_ms);
            }
        }
    }

    #[test]
    fn diurnal_drift_moves_true_delays_and_comes_back() {
        let m = base(10);
        let cfg = ChurnConfig { diurnal_period: 20.0, ..quiet() };
        let mut p = ChurnProcess::new(&m, cfg);
        let at_zero = p.true_delay(0, 1).unwrap();
        let mut seen_change = false;
        for _ in 0..10 {
            p.advance();
            if (p.true_delay(0, 1).unwrap() - at_zero).abs() > 0.1 {
                seen_change = true;
            }
        }
        assert!(seen_change, "diurnal drift never moved the delay");
        // A full period later the sinusoid is back where it started.
        for _ in 0..10 {
            p.advance();
        }
        let after_period = p.true_delay(0, 1).unwrap();
        assert!(
            (after_period - at_zero).abs() < 1e-9 * at_zero.max(1.0),
            "period did not close: {at_zero} vs {after_period}"
        );
    }

    #[test]
    fn spikes_only_increase_and_expire() {
        let m = base(12);
        let cfg = ChurnConfig {
            spike_rate: 5.0,
            spike_ticks: 2,
            diurnal_amp: 0.0,
            churn_prob: 0.0,
            jitter_sigma: 0.0,
            obs_per_tick: 0,
            ..ChurnConfig::default()
        };
        let mut p = ChurnProcess::new(&m, cfg);
        let r = p.advance();
        assert!(r.active_spikes > 0);
        // Every spiked edge is at or above its base delay (amp 0, no
        // churn, so the only factor left is the spike's, which is ≥ 1).
        for i in 0..12 {
            for j in (i + 1)..12 {
                assert!(p.true_delay(i, j).unwrap() >= m.get(i, j).unwrap() - 1e-12);
            }
        }
        // Spikes expire after their lifetime.
        let quiet_cfg = ChurnConfig { spike_rate: 0.0, ..cfg };
        let mut q = ChurnProcess::new(&m, quiet_cfg);
        for _ in 0..5 {
            assert_eq!(q.advance().active_spikes, 0);
        }
    }

    #[test]
    fn churn_resets_emit_bursts_and_move_rows() {
        let m = base(20);
        let cfg = ChurnConfig {
            churn_prob: 1.0, // every node resets every tick
            churn_resample: 8,
            spike_rate: 0.0,
            diurnal_amp: 0.0,
            jitter_sigma: 0.0,
            obs_per_tick: 0,
            ..ChurnConfig::default()
        };
        let mut p = ChurnProcess::new(&m, cfg);
        let r = p.advance();
        assert_eq!(r.churned.len(), 20);
        assert_eq!(r.samples.len(), 20 * 8);
        // Scales moved at least one row away from base.
        let moved = (0..20)
            .flat_map(|i| (0..20).map(move |j| (i, j)))
            .filter(|&(i, j)| i != j)
            .any(|(i, j)| (p.true_delay(i, j).unwrap() - m.get(i, j).unwrap()).abs() > 0.5);
        assert!(moved, "churn resets never moved a delay");
    }

    #[test]
    fn unmeasured_pairs_have_no_truth() {
        let mut m = base(5);
        m.clear(0, 1);
        let p = ChurnProcess::new(&m, quiet());
        assert_eq!(p.true_delay(0, 1), None);
        assert_eq!(p.true_delay(2, 2), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn tiny_base_rejected() {
        ChurnProcess::new(&DelayMatrix::new(1), ChurnConfig::default());
    }
}
