//! The simulated network: delay-matrix-backed probing with jitter and
//! probe accounting.

use delayspace::matrix::{DelayMatrix, NodeId};
use delayspace::rng::{self, DetRng};

/// Measurement-noise model applied to probe results.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum JitterModel {
    /// Probes return the matrix delay exactly. This is what the paper's
    /// simulations use (the matrices already are measurements).
    None,
    /// Multiplicative Gaussian noise: `d · (1 + sigma·Z)`, clamped to
    /// stay positive. Models queueing variation between repeated probes.
    Multiplicative {
        /// Standard deviation of the relative error.
        sigma: f64,
    },
    /// Additive exponential spikes: `d + Exp(mean_ms)` with probability
    /// `p_spike` — a crude model of transient congestion.
    Spikes {
        /// Probability a probe is hit by a spike.
        p_spike: f64,
        /// Mean of the exponential spike magnitude (ms).
        mean_ms: f64,
    },
}

/// Per-node and total probe counters.
///
/// The paper quantifies the cost of its Meridian improvements as extra
/// on-demand probes (+6% in Figure 24, +5% in Figure 25), so probe
/// accounting must be exact and cheap.
#[derive(Clone, Debug, Default)]
pub struct ProbeStats {
    per_node: Vec<u64>,
    total: u64,
}

impl ProbeStats {
    fn new(n: usize) -> Self {
        ProbeStats { per_node: vec![0; n], total: 0 }
    }

    #[inline]
    fn record(&mut self, from: NodeId) {
        self.per_node[from] += 1;
        self.total += 1;
    }

    /// Total probes issued through this network.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Probes issued by node `i`.
    pub fn by_node(&self, i: NodeId) -> u64 {
        self.per_node[i]
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        self.per_node.fill(0);
        self.total = 0;
    }
}

/// A simulated network over a delay matrix.
///
/// `probe(i, j)` plays the role of an RTT measurement between deployed
/// hosts: it returns `None` when the pair is unmeasured in the data set
/// (a real probe would time out or give a value the data set cannot
/// corroborate), applies the configured jitter, and increments the
/// prober's counter.
#[derive(Debug)]
pub struct Network<'m> {
    matrix: &'m DelayMatrix,
    jitter: JitterModel,
    rng: DetRng,
    stats: ProbeStats,
}

impl<'m> Network<'m> {
    /// A network over `matrix` with the given jitter model and seed.
    pub fn new(matrix: &'m DelayMatrix, jitter: JitterModel, seed: u64) -> Self {
        Network {
            matrix,
            jitter,
            rng: rng::sub_rng(seed, "simnet/jitter"),
            stats: ProbeStats::new(matrix.len()),
        }
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.matrix.len()
    }

    /// True when the network has no hosts.
    pub fn is_empty(&self) -> bool {
        self.matrix.is_empty()
    }

    /// The backing delay matrix (ground-truth delays, no jitter).
    pub fn matrix(&self) -> &'m DelayMatrix {
        self.matrix
    }

    /// Issues a round-trip probe from `from` to `to`. Counts one probe
    /// against `from` even when the pair is unmeasured (the packet was
    /// still sent).
    pub fn probe(&mut self, from: NodeId, to: NodeId) -> Option<f64> {
        self.stats.record(from);
        let d = self.matrix.get(from, to)?;
        Some(self.apply_jitter(d))
    }

    /// Issues probes from `from` to every node in `targets`, returning
    /// the measurable ones as `(target, rtt)`.
    pub fn probe_many(&mut self, from: NodeId, targets: &[NodeId]) -> Vec<(NodeId, f64)> {
        targets.iter().filter_map(|&t| self.probe(from, t).map(|d| (t, d))).collect()
    }

    fn apply_jitter(&mut self, d: f64) -> f64 {
        match self.jitter {
            JitterModel::None => d,
            JitterModel::Multiplicative { sigma } => {
                let z = rng::sample_standard_normal(&mut self.rng);
                (d * (1.0 + sigma * z)).max(0.05)
            }
            JitterModel::Spikes { p_spike, mean_ms } => {
                use rand::Rng;
                if self.rng.gen_bool(p_spike) {
                    let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
                    d - mean_ms * u.ln() // inverse-CDF exponential
                } else {
                    d
                }
            }
        }
    }

    /// The probe counters.
    pub fn stats(&self) -> &ProbeStats {
        &self.stats
    }

    /// Mutable access to the counters (e.g. to reset between phases, as
    /// the paper separates ring-construction from query overhead).
    pub fn stats_mut(&mut self) -> &mut ProbeStats {
        &mut self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix3() -> DelayMatrix {
        let mut m = DelayMatrix::new(3);
        m.set(0, 1, 10.0);
        m.set(1, 2, 20.0);
        // (0,2) left unmeasured.
        m
    }

    #[test]
    fn probe_returns_matrix_delay_without_jitter() {
        let m = matrix3();
        let mut net = Network::new(&m, JitterModel::None, 1);
        assert_eq!(net.probe(0, 1), Some(10.0));
        assert_eq!(net.probe(1, 2), Some(20.0));
    }

    #[test]
    fn unmeasured_pair_probes_return_none_but_count() {
        let m = matrix3();
        let mut net = Network::new(&m, JitterModel::None, 1);
        assert_eq!(net.probe(0, 2), None);
        assert_eq!(net.stats().total(), 1);
        assert_eq!(net.stats().by_node(0), 1);
    }

    #[test]
    fn probe_accounting_attributes_to_prober() {
        let m = matrix3();
        let mut net = Network::new(&m, JitterModel::None, 1);
        net.probe(0, 1);
        net.probe(0, 1);
        net.probe(1, 0);
        assert_eq!(net.stats().by_node(0), 2);
        assert_eq!(net.stats().by_node(1), 1);
        assert_eq!(net.stats().total(), 3);
        net.stats_mut().reset();
        assert_eq!(net.stats().total(), 0);
    }

    #[test]
    fn probe_many_skips_unmeasured() {
        let m = matrix3();
        let mut net = Network::new(&m, JitterModel::None, 1);
        let res = net.probe_many(0, &[1, 2]);
        assert_eq!(res, vec![(1, 10.0)]);
        assert_eq!(net.stats().total(), 2);
    }

    #[test]
    fn multiplicative_jitter_stays_positive_and_centered() {
        let m = matrix3();
        let mut net = Network::new(&m, JitterModel::Multiplicative { sigma: 0.3 }, 5);
        let samples: Vec<f64> = (0..2000).map(|_| net.probe(0, 1).unwrap()).collect();
        assert!(samples.iter().all(|&d| d > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((9.0..11.0).contains(&mean), "jitter mean {mean}");
    }

    #[test]
    fn spike_jitter_only_increases_delay() {
        let m = matrix3();
        let mut net = Network::new(&m, JitterModel::Spikes { p_spike: 0.5, mean_ms: 30.0 }, 5);
        let samples: Vec<f64> = (0..500).map(|_| net.probe(0, 1).unwrap()).collect();
        assert!(samples.iter().all(|&d| d >= 10.0));
        assert!(samples.iter().any(|&d| d > 10.0), "no spikes occurred");
    }

    #[test]
    fn jitter_stream_is_deterministic() {
        let m = matrix3();
        let mut a = Network::new(&m, JitterModel::Multiplicative { sigma: 0.1 }, 9);
        let mut b = Network::new(&m, JitterModel::Multiplicative { sigma: 0.1 }, 9);
        for _ in 0..50 {
            assert_eq!(a.probe(0, 1), b.probe(0, 1));
        }
    }
}
