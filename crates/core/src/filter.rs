//! The naive global severity filter (Section 4.3).
//!
//! Given *global* knowledge of the delay space, one can rank all edges
//! by TIV severity and simply forbid the worst fraction from being used
//! — by Vivaldi as probing-neighbor edges, by Meridian for ring
//! membership. The paper shows this strawman barely helps Vivaldi
//! (TIV is too widespread) and actively *hurts* Meridian (rings become
//! under-populated and queries strand). This module provides the edge
//! mask used by both experiments.

use crate::severity::Severity;
use delayspace::matrix::{DelayMatrix, NodeId};

/// A symmetric set of forbidden edges over `n` nodes.
#[derive(Clone, Debug)]
pub struct EdgeMask {
    n: usize,
    /// Bit per ordered pair; symmetric by construction.
    removed: Vec<u64>,
}

impl EdgeMask {
    /// A mask over `n` nodes with nothing removed.
    pub fn new(n: usize) -> Self {
        EdgeMask { n, removed: vec![0; (n * n).div_ceil(64)] }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the mask covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn bit(&self, i: NodeId, j: NodeId) -> (usize, u64) {
        let idx = i * self.n + j;
        (idx / 64, 1u64 << (idx % 64))
    }

    /// Forbids the unordered edge `{i, j}`.
    pub fn remove(&mut self, i: NodeId, j: NodeId) {
        for (a, b) in [(i, j), (j, i)] {
            let (w, m) = self.bit(a, b);
            self.removed[w] |= m;
        }
    }

    /// True when the edge may be used.
    #[inline]
    pub fn allows(&self, i: NodeId, j: NodeId) -> bool {
        let (w, m) = self.bit(i, j);
        self.removed[w] & m == 0
    }

    /// Number of unordered edges removed.
    pub fn removed_count(&self) -> usize {
        self.removed.iter().map(|w| w.count_ones() as usize).sum::<usize>() / 2
    }

    /// Builds the Section 4.3 mask: removes the `frac` of measured
    /// edges with the highest TIV severity.
    pub fn worst_severity(m: &DelayMatrix, sev: &Severity, frac: f64) -> Self {
        let mut mask = EdgeMask::new(m.len());
        for (i, j) in sev.worst_edges(m, frac) {
            mask.remove(i, j);
        }
        mask
    }

    /// Filters a candidate neighbor list for `node`, keeping only
    /// allowed edges.
    pub fn filter_neighbors(&self, node: NodeId, candidates: &[NodeId]) -> Vec<NodeId> {
        candidates.iter().copied().filter(|&c| self.allows(node, c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayspace::synth::{Dataset, InternetDelaySpace};

    #[test]
    fn mask_is_symmetric() {
        let mut mask = EdgeMask::new(5);
        assert!(mask.allows(1, 3));
        mask.remove(1, 3);
        assert!(!mask.allows(1, 3));
        assert!(!mask.allows(3, 1));
        assert!(mask.allows(1, 2));
        assert_eq!(mask.removed_count(), 1);
    }

    #[test]
    fn worst_severity_mask_removes_requested_fraction() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(80).build(5);
        let m = s.matrix();
        let sev = Severity::compute(m, 0);
        let mask = EdgeMask::worst_severity(m, &sev, 0.2);
        let total = m.edges().count();
        let expect = ((total as f64) * 0.2).round() as usize;
        assert_eq!(mask.removed_count(), expect);
    }

    #[test]
    fn removed_edges_have_higher_severity_than_kept() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(80).build(7);
        let m = s.matrix();
        let sev = Severity::compute(m, 0);
        let mask = EdgeMask::worst_severity(m, &sev, 0.1);
        let mut min_removed = f64::MAX;
        let mut max_kept = f64::MIN;
        for (i, j, s) in sev.edges(m) {
            if mask.allows(i, j) {
                max_kept = max_kept.max(s);
            } else {
                min_removed = min_removed.min(s);
            }
        }
        assert!(
            min_removed >= max_kept - 1e-12,
            "severity threshold not respected: removed min {min_removed} < kept max {max_kept}"
        );
    }

    #[test]
    fn filter_neighbors_drops_masked() {
        let mut mask = EdgeMask::new(6);
        mask.remove(0, 2);
        mask.remove(0, 4);
        let kept = mask.filter_neighbors(0, &[1, 2, 3, 4, 5]);
        assert_eq!(kept, vec![1, 3, 5]);
    }

    #[test]
    fn zero_fraction_removes_nothing() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(40).build(9);
        let m = s.matrix();
        let sev = Severity::compute(m, 0);
        let mask = EdgeMask::worst_severity(m, &sev, 0.0);
        assert_eq!(mask.removed_count(), 0);
    }
}
