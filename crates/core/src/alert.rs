//! The TIV alert mechanism (Section 5.1).
//!
//! The paper's key observation: when a delay space with TIVs is embedded
//! into a metric space, the edges that cause severe TIVs tend to be
//! **shrunk** — the optimiser sacrifices them to preserve the many short
//! alternative paths. The *prediction ratio*
//! `euclidean_distance / measured_delay` of an embedding snapshot is
//! therefore a usable alarm signal: ratios well below 1 flag likely
//! severe-TIV edges, with no severity computation (which would need
//! global information) and no extra measurements beyond what the
//! embedding already did.

use crate::severity::Severity;
use delayspace::matrix::{DelayMatrix, NodeId};
use delayspace::stats::BinnedStats;
use std::collections::HashSet;
use vivaldi::Embedding;

/// A configured alert: edges with prediction ratio strictly below
/// `threshold` raise an alarm.
#[derive(Clone, Copy, Debug)]
pub struct TivAlert {
    /// Alert threshold on the prediction ratio (paper explores 0–1 and
    /// deploys 0.6 in Section 5.2/5.3).
    pub threshold: f64,
}

impl TivAlert {
    /// Creates an alert with the given ratio threshold.
    pub fn new(threshold: f64) -> Self {
        assert!(threshold >= 0.0 && threshold.is_finite(), "bad threshold {threshold}");
        TivAlert { threshold }
    }

    /// True when a prediction ratio trips the alarm.
    #[inline]
    pub fn is_alert(&self, prediction_ratio: f64) -> bool {
        prediction_ratio < self.threshold
    }

    /// Evaluates the alert for an edge given an embedding snapshot;
    /// `None` when the edge is unmeasured.
    pub fn check(&self, emb: &Embedding, m: &DelayMatrix, i: NodeId, j: NodeId) -> Option<bool> {
        emb.prediction_ratio(m, i, j).map(|r| self.is_alert(r))
    }
}

/// Figure 19: TIV severity of edges grouped by prediction ratio, in
/// `bin_width`-wide bins over `[0, max_ratio]`.
pub fn ratio_severity_bins(
    emb: &Embedding,
    m: &DelayMatrix,
    sev: &Severity,
    bin_width: f64,
    max_ratio: f64,
) -> BinnedStats {
    BinnedStats::build(
        m.edges().filter_map(|(i, j, d)| {
            let s = sev.severity(i, j)?;
            (d > 0.0).then(|| (emb.predicted(i, j) / d, s))
        }),
        bin_width,
        max_ratio,
    )
}

/// One point of the accuracy/recall sweep (Figures 20–21).
#[derive(Clone, Copy, Debug)]
pub struct AlertQuality {
    /// The ratio threshold evaluated.
    pub threshold: f64,
    /// Ground-truth target: the worst `worst_frac` of edges by severity.
    pub worst_frac: f64,
    /// Fraction of alerted edges that are in the worst set (precision).
    pub accuracy: f64,
    /// Fraction of the worst set that was alerted.
    pub recall: f64,
    /// Fraction of all measured edges alerted at this threshold.
    pub alerted_frac: f64,
}

/// Sweeps alert thresholds against a ground-truth "worst `worst_frac`"
/// severity set, producing the accuracy and recall curves of Figures 20
/// and 21. Runs with automatic parallelism — equivalent to
/// [`accuracy_recall_sweep_threaded`] with `threads == 0`.
pub fn accuracy_recall_sweep(
    emb: &Embedding,
    m: &DelayMatrix,
    sev: &Severity,
    worst_frac: f64,
    thresholds: &[f64],
) -> Vec<AlertQuality> {
    accuracy_recall_sweep_threaded(emb, m, sev, worst_frac, thresholds, 0)
}

/// The sweep behind Figures 20–21 with an explicit worker count
/// ([`tivpar::resolve_threads`] semantics). The worst-set and the
/// per-edge prediction ratios are computed once; each threshold is then
/// scored independently, fanned out over up to `threads` workers. The
/// output is bit-identical at every thread count.
pub fn accuracy_recall_sweep_threaded(
    emb: &Embedding,
    m: &DelayMatrix,
    sev: &Severity,
    worst_frac: f64,
    thresholds: &[f64],
    threads: usize,
) -> Vec<AlertQuality> {
    let worst: HashSet<(NodeId, NodeId)> = sev.worst_edges(m, worst_frac).into_iter().collect();
    // Prediction ratio per measured edge, computed once.
    let ratios: Vec<(NodeId, NodeId, f64)> = m
        .edges()
        .filter(|&(_, _, d)| d > 0.0)
        .map(|(i, j, d)| (i, j, emb.predicted(i, j) / d))
        .collect();
    let total_edges = ratios.len().max(1);

    tivpar::par_map_rows(thresholds.len(), threads, |ti| {
        let t = thresholds[ti];
        let alert = TivAlert::new(t);
        let mut alerted = 0usize;
        let mut hits = 0usize;
        for &(i, j, r) in &ratios {
            if alert.is_alert(r) {
                alerted += 1;
                if worst.contains(&(i, j)) {
                    hits += 1;
                }
            }
        }
        AlertQuality {
            threshold: t,
            worst_frac,
            accuracy: if alerted > 0 { hits as f64 / alerted as f64 } else { 1.0 },
            recall: if worst.is_empty() { 1.0 } else { hits as f64 / worst.len() as f64 },
            alerted_frac: alerted as f64 / total_edges as f64,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayspace::synth::{Dataset, InternetDelaySpace};
    use simnet::net::{JitterModel, Network};
    use vivaldi::{VivaldiConfig, VivaldiSystem};

    fn embed(m: &DelayMatrix, seed: u64) -> Embedding {
        let mut sys = VivaldiSystem::new(
            VivaldiConfig { neighbors: 24, ..VivaldiConfig::default() },
            m.len(),
            seed,
        );
        let mut net = Network::new(m, JitterModel::None, seed);
        sys.run_rounds(&mut net, 150);
        sys.embedding()
    }

    #[test]
    fn alert_threshold_semantics() {
        let a = TivAlert::new(0.6);
        assert!(a.is_alert(0.3));
        assert!(!a.is_alert(0.6)); // strict
        assert!(!a.is_alert(1.5));
    }

    #[test]
    fn severe_edges_are_shrunk_in_embedding() {
        // The core observation behind the mechanism: median prediction
        // ratio of high-severity edges < median ratio of zero-severity
        // edges.
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(150).build(3);
        let m = s.matrix();
        let emb = embed(m, 3);
        let sev = Severity::compute(m, 0);
        let mut severe = Vec::new();
        let mut benign = Vec::new();
        let cdf = sev.cdf(m);
        let hi = cdf.quantile(0.95);
        for (i, j, d) in m.edges() {
            let ratio = emb.predicted(i, j) / d;
            let sv = sev.severity(i, j).unwrap();
            if sv >= hi && sv > 0.0 {
                severe.push(ratio);
            } else if sv == 0.0 {
                benign.push(ratio);
            }
        }
        let med = |mut v: Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let (ms, mb) = (med(severe), med(benign));
        assert!(ms < mb, "severe edges not shrunk: severe median {ms}, benign {mb}");
    }

    #[test]
    fn ratio_severity_bins_show_decreasing_trend() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(150).build(7);
        let m = s.matrix();
        let emb = embed(m, 7);
        let sev = Severity::compute(m, 0);
        let bins = ratio_severity_bins(&emb, m, &sev, 0.5, 3.0);
        // Median severity in the lowest-ratio bin exceeds that in the
        // ratio ≈ 1 bin.
        let low = bins.bins.iter().find(|b| b.stats.is_some()).unwrap();
        let near_one = bins.bins.iter().find(|b| b.lo >= 1.0 && b.stats.is_some()).unwrap();
        assert!(
            low.stats.unwrap().p50 >= near_one.stats.unwrap().p50,
            "no shrink trend: low {:?} vs near-one {:?}",
            low.stats,
            near_one.stats
        );
    }

    #[test]
    fn tight_threshold_high_accuracy_low_recall() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(250).build(11);
        let m = s.matrix();
        let emb = embed(m, 11);
        let sev = Severity::compute(m, 0);
        let sweep = accuracy_recall_sweep(&emb, m, &sev, 0.20, &[0.5, 0.95]);
        let tight = sweep[0];
        let loose = sweep[1];
        // Monotone structure of the trade-off.
        assert!(tight.alerted_frac <= loose.alerted_frac);
        assert!(tight.recall <= loose.recall + 1e-9);
        // A moderately tight threshold is a usable alarm against the
        // worst-20% target (the paper reports 65%+ at threshold 0.6).
        assert!(
            tight.accuracy >= 0.4,
            "tight accuracy {} too low to be a usable alert",
            tight.accuracy
        );
    }

    #[test]
    fn threaded_sweep_is_bit_identical_to_serial() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(120).build(17);
        let m = s.matrix();
        let emb = embed(m, 17);
        let sev = Severity::compute(m, 0);
        let ts: Vec<f64> = (0..=20).map(|i| i as f64 * 0.05).collect();
        let serial = accuracy_recall_sweep_threaded(&emb, m, &sev, 0.1, &ts, 1);
        for threads in [2usize, 4, 7] {
            let par = accuracy_recall_sweep_threaded(&emb, m, &sev, 0.1, &ts, threads);
            assert_eq!(par.len(), serial.len());
            for (p, s) in par.iter().zip(&serial) {
                assert_eq!(p.accuracy.to_bits(), s.accuracy.to_bits());
                assert_eq!(p.recall.to_bits(), s.recall.to_bits());
                assert_eq!(p.alerted_frac.to_bits(), s.alerted_frac.to_bits());
            }
        }
    }

    #[test]
    fn sweep_handles_empty_alert_set() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(50).build(13);
        let m = s.matrix();
        let emb = embed(m, 13);
        let sev = Severity::compute(m, 0);
        let sweep = accuracy_recall_sweep(&emb, m, &sev, 0.1, &[0.0]);
        // Threshold 0 alerts nothing (strict comparison).
        assert_eq!(sweep[0].alerted_frac, 0.0);
        assert_eq!(sweep[0].recall, 0.0);
        assert_eq!(sweep[0].accuracy, 1.0); // vacuous precision
    }

    #[test]
    #[should_panic(expected = "bad threshold")]
    fn invalid_threshold_rejected() {
        TivAlert::new(f64::NAN);
    }
}
