//! Application-oriented accuracy metrics for delay predictors.
//!
//! The paper's related work (Lua, Griffin, Pias, Zheng, Crowcroft —
//! IMC 2005, its reference \[13\]) argues that aggregate error hides what
//! applications feel, and proposes rank-based metrics. We implement the
//! two they introduce plus plain relative error, over any predictor
//! function, so every system in this workspace (Vivaldi, LAT, GNP,
//! IDES, …) can be compared on the axis that actually predicts
//! neighbor-selection quality:
//!
//! * **relative error** — `|predicted − measured| / measured` per edge;
//! * **relative rank loss (RRL)** — for a node `x` and peer pairs
//!   `(y, z)`: the fraction of pairs whose order by predicted delay
//!   contradicts their order by measured delay;
//! * **closest-neighbor loss (CNL)** — the fraction of nodes whose
//!   predicted-closest peer is not their measured-closest peer.
//!
//! Section 4.2's headline ("better aggregate accuracy does not imply
//! better neighbor selection") is visible directly in these numbers:
//! IDES can beat Vivaldi on relative error while losing on CNL.

use delayspace::matrix::{DelayMatrix, NodeId};
use delayspace::rng;
use delayspace::stats::Cdf;
use rand::Rng;

/// CDF of per-edge relative errors `|p − d| / d` over measured edges.
pub fn relative_error_cdf(m: &DelayMatrix, predict: impl Fn(NodeId, NodeId) -> f64) -> Cdf {
    Cdf::from_samples(
        m.edges().filter(|&(_, _, d)| d > 0.0).map(|(i, j, d)| (predict(i, j) - d).abs() / d),
    )
}

/// Relative rank loss of a predictor, estimated over `samples` random
/// `(x, y, z)` triples (deterministic in `seed`).
///
/// 0 = the predictor orders every peer pair as the measurements do;
/// 0.5 = random ordering.
pub fn relative_rank_loss(
    m: &DelayMatrix,
    predict: impl Fn(NodeId, NodeId) -> f64,
    samples: usize,
    seed: u64,
) -> f64 {
    let n = m.len();
    assert!(n >= 3, "need at least 3 nodes");
    let mut r = rng::sub_rng(seed, "metrics/rrl");
    let mut inverted = 0usize;
    let mut counted = 0usize;
    let mut attempts = 0usize;
    while counted < samples && attempts < samples * 20 {
        attempts += 1;
        let x = r.gen_range(0..n);
        let y = r.gen_range(0..n);
        let z = r.gen_range(0..n);
        if x == y || x == z || y == z {
            continue;
        }
        let (Some(dy), Some(dz)) = (m.get(x, y), m.get(x, z)) else { continue };
        if dy == dz {
            continue; // no ground-truth order to violate
        }
        let (py, pz) = (predict(x, y), predict(x, z));
        counted += 1;
        if (dy < dz) != (py < pz) {
            inverted += 1;
        }
    }
    if counted == 0 {
        return 0.0;
    }
    inverted as f64 / counted as f64
}

/// Closest-neighbor loss: the fraction of nodes whose predicted-nearest
/// peer differs from their measured-nearest peer. Ties in prediction
/// are broken towards smaller node id (deterministically).
pub fn closest_neighbor_loss(m: &DelayMatrix, predict: impl Fn(NodeId, NodeId) -> f64) -> f64 {
    let n = m.len();
    let mut wrong = 0usize;
    let mut counted = 0usize;
    for x in 0..n {
        let Some((true_nn, true_d)) = m.nearest_neighbor(x) else { continue };
        let predicted_nn = (0..n)
            .filter(|&y| y != x && m.get(x, y).is_some())
            .min_by(|&a, &b| predict(x, a).total_cmp(&predict(x, b)));
        let Some(pnn) = predicted_nn else { continue };
        counted += 1;
        // Selecting a different peer with the same measured delay is
        // not a loss (co-nearest peers).
        if pnn != true_nn && m.get(x, pnn) != Some(true_d) {
            wrong += 1;
        }
    }
    if counted == 0 {
        return 0.0;
    }
    wrong as f64 / counted as f64
}

/// A compact metric report for one predictor.
#[derive(Clone, Copy, Debug)]
pub struct PredictorMetrics {
    /// Median relative error over measured edges.
    pub median_rel_error: f64,
    /// Relative rank loss (sampled).
    pub rank_loss: f64,
    /// Closest-neighbor loss.
    pub cn_loss: f64,
}

/// Evaluates all three metrics for a predictor.
pub fn evaluate(
    m: &DelayMatrix,
    predict: impl Fn(NodeId, NodeId) -> f64 + Copy,
    samples: usize,
    seed: u64,
) -> PredictorMetrics {
    PredictorMetrics {
        median_rel_error: relative_error_cdf(m, predict).median(),
        rank_loss: relative_rank_loss(m, predict, samples, seed),
        cn_loss: closest_neighbor_loss(m, predict),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayspace::synth::{Dataset, InternetDelaySpace};
    use simnet::net::{JitterModel, Network};
    use vivaldi::{VivaldiConfig, VivaldiSystem};

    #[test]
    fn oracle_predictor_scores_perfectly() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(60).build(3);
        let m = s.matrix();
        let oracle = |i: NodeId, j: NodeId| m.get(i, j).unwrap_or(0.0);
        let met = evaluate(m, oracle, 2000, 1);
        assert_eq!(met.median_rel_error, 0.0);
        assert_eq!(met.rank_loss, 0.0);
        assert_eq!(met.cn_loss, 0.0);
    }

    #[test]
    fn constant_predictor_has_random_rank_loss() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(60).build(5);
        let m = s.matrix();
        // A constant prediction never orders pairs correctly or
        // incorrectly by value — ties go one way; use a *reversed*
        // predictor for the clean adversarial case instead.
        let reversed = |i: NodeId, j: NodeId| 10_000.0 - m.get(i, j).unwrap_or(0.0);
        let rrl = relative_rank_loss(m, reversed, 2000, 2);
        assert!(rrl > 0.95, "reversed predictor should invert ranks: {rrl}");
        let cnl = closest_neighbor_loss(m, reversed);
        assert!(cnl > 0.9, "reversed predictor should miss neighbors: {cnl}");
    }

    #[test]
    fn vivaldi_metrics_in_sane_ranges() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(120).build(7);
        let m = s.matrix();
        let mut sys = VivaldiSystem::new(
            VivaldiConfig { neighbors: 16, ..VivaldiConfig::default() },
            m.len(),
            7,
        );
        let mut net = Network::new(m, JitterModel::None, 7);
        sys.run_rounds(&mut net, 200);
        let emb = sys.embedding();
        let met = evaluate(m, |i, j| emb.predicted(i, j), 3000, 3);
        // Rank loss far better than random; closest-neighbor loss is
        // high — exactly the finding of Lua et al. [13] that motivates
        // the paper: embeddings rank well in aggregate yet almost never
        // identify the true nearest peer.
        assert!(met.rank_loss > 0.0 && met.rank_loss < 0.4, "rank loss {}", met.rank_loss);
        assert!(met.cn_loss > 0.3 && met.cn_loss < 1.0, "cn loss {}", met.cn_loss);
        assert!(met.median_rel_error < 1.0, "rel err {}", met.median_rel_error);
    }

    #[test]
    fn aggregate_accuracy_does_not_imply_selection_quality() {
        // The Section 4.2 phenomenon, in metric form: construct a
        // predictor that is *more accurate on average* than another but
        // *worse at closest-neighbor selection*. Scaling all true
        // delays by 1.05 is very accurate (5% error) and order-perfect;
        // an otherwise-exact predictor that garbles only the short
        // edges has lower mean error contribution but ruins selection.
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(80).build(9);
        let m = s.matrix();
        let scale = |i: NodeId, j: NodeId| 1.05 * m.get(i, j).unwrap_or(0.0);
        let garble_short = |i: NodeId, j: NodeId| {
            let d = m.get(i, j).unwrap_or(0.0);
            if d < 20.0 {
                40.0 - d // inverts the order of short edges
            } else {
                d // exact elsewhere
            }
        };
        let m_scale = evaluate(m, scale, 2000, 4);
        let m_garble = evaluate(m, garble_short, 2000, 4);
        // garble has lower median relative error (most edges exact)…
        assert!(m_garble.median_rel_error < m_scale.median_rel_error);
        // …but much worse closest-neighbor loss.
        assert!(
            m_garble.cn_loss > m_scale.cn_loss,
            "garbled short edges must hurt selection: {} vs {}",
            m_garble.cn_loss,
            m_scale.cn_loss
        );
        assert_eq!(m_scale.cn_loss, 0.0);
    }
}
