//! Dynamic-neighbor Vivaldi (Section 5.2).
//!
//! Vivaldi is itself an embedding, so the TIV alert signal is free: each
//! node already knows the prediction ratio of every edge it probes. The
//! enhanced protocol starts as plain Vivaldi (32 random neighbors), and
//! every `T` rounds each node:
//!
//! 1. samples 32 fresh random candidates and pools them with its current
//!    32 neighbors,
//! 2. ranks the pool by prediction ratio
//!    (`euclidean_distance / measured_delay`, one probe per candidate),
//! 3. drops the half with the *smallest* ratios — the shrunk edges the
//!    alert mechanism flags as likely severe-TIV causers — and keeps the
//!    remaining 32 as next iteration's neighbor set.
//!
//! Unlike the global severity filter of Section 4.3 this does not try
//! to remove TIVs from the *data*; it removes them from each node's
//! *spring set*, which is what actually stabilises the embedding
//! (Figures 22–23).

use delayspace::matrix::{DelayMatrix, NodeId};
use delayspace::rng;
use simnet::net::{JitterModel, Network};
use vivaldi::{Embedding, VivaldiConfig, VivaldiSystem};

/// Configuration of the dynamic-neighbor protocol.
#[derive(Clone, Copy, Debug)]
pub struct DynVivaldiConfig {
    /// The underlying Vivaldi parameters; `vivaldi.neighbors` is the
    /// kept set size (paper: 32).
    pub vivaldi: VivaldiConfig,
    /// Rounds between neighbor updates (paper: T = 100 s, i.e. 100
    /// rounds — long enough for coordinates to settle each iteration).
    pub rounds_per_iter: usize,
    /// Fresh random candidates sampled per update (paper: 32).
    pub sample_extra: usize,
}

impl Default for DynVivaldiConfig {
    fn default() -> Self {
        DynVivaldiConfig {
            vivaldi: VivaldiConfig::default(),
            rounds_per_iter: 100,
            sample_extra: 32,
        }
    }
}

/// State captured after each iteration.
#[derive(Clone, Debug)]
pub struct IterationRecord {
    /// 0 = the plain-Vivaldi baseline (before any neighbor update).
    pub iteration: usize,
    /// Embedding snapshot at the end of the iteration.
    pub embedding: Embedding,
    /// Directed neighbor edges `(owner, neighbor)` in force during the
    /// iteration — Figure 22 plots the severity CDF of these.
    pub neighbor_edges: Vec<(NodeId, NodeId)>,
    /// Probes spent on neighbor-update measurements this iteration
    /// (zero for the baseline).
    pub update_probes: u64,
}

/// Runs dynamic-neighbor Vivaldi for `iterations` neighbor updates.
///
/// Returns `iterations + 1` records; record 0 is the plain-Vivaldi
/// baseline after the first `rounds_per_iter` rounds.
pub fn run(
    m: &DelayMatrix,
    cfg: &DynVivaldiConfig,
    iterations: usize,
    seed: u64,
) -> Vec<IterationRecord> {
    let n = m.len();
    assert!(n > cfg.vivaldi.neighbors, "need more nodes than neighbors");
    let mut sys = VivaldiSystem::new(cfg.vivaldi, n, seed);
    let mut net = Network::new(m, JitterModel::None, seed);
    let mut r = rng::sub_rng(seed, "dynvivaldi/sample");

    let mut records = Vec::with_capacity(iterations + 1);
    sys.run_rounds(&mut net, cfg.rounds_per_iter);
    records.push(IterationRecord {
        iteration: 0,
        embedding: sys.embedding(),
        neighbor_edges: collect_edges(&sys),
        update_probes: 0,
    });

    for iter in 1..=iterations {
        let before = net.stats().total();
        update_neighbors(&mut sys, &mut net, m, cfg, &mut r);
        let update_probes = net.stats().total() - before;
        sys.run_rounds(&mut net, cfg.rounds_per_iter);
        records.push(IterationRecord {
            iteration: iter,
            embedding: sys.embedding(),
            neighbor_edges: collect_edges(&sys),
            update_probes,
        });
    }
    records
}

fn collect_edges(sys: &VivaldiSystem) -> Vec<(NodeId, NodeId)> {
    (0..sys.len()).flat_map(|i| sys.neighbors_of(i).iter().map(move |&j| (i, j))).collect()
}

/// One neighbor-update step for every node.
fn update_neighbors(
    sys: &mut VivaldiSystem,
    net: &mut Network<'_>,
    m: &DelayMatrix,
    cfg: &DynVivaldiConfig,
    r: &mut delayspace::rng::DetRng,
) {
    let n = m.len();
    let keep = cfg.vivaldi.neighbors;
    let emb = sys.embedding();
    for i in 0..n {
        // Pool = current neighbors ∪ fresh sample (dedup, no self).
        let mut pool: Vec<NodeId> = sys.neighbors_of(i).to_vec();
        let extra = rng::sample_indices(r, n - 1, cfg.sample_extra.min(n - 1))
            .into_iter()
            .map(|x| if x >= i { x + 1 } else { x });
        for c in extra {
            if !pool.contains(&c) {
                pool.push(c);
            }
        }
        // Rank by prediction ratio; measuring costs one probe each.
        let mut ranked: Vec<(NodeId, f64)> = pool
            .into_iter()
            .filter_map(|j| {
                let d = net.probe(i, j)?;
                (d > 0.0).then(|| (j, emb.predicted(i, j) / d))
            })
            .collect();
        // Largest ratio first; the shrunk (small-ratio) tail is dropped.
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        ranked.truncate(keep.max(1));
        if !ranked.is_empty() {
            sys.set_neighbors(i, ranked.into_iter().map(|(j, _)| j).collect());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::severity::Severity;
    use delayspace::stats::mean;
    use delayspace::synth::{Dataset, InternetDelaySpace};

    fn small_cfg() -> DynVivaldiConfig {
        DynVivaldiConfig {
            vivaldi: VivaldiConfig { neighbors: 12, ..VivaldiConfig::default() },
            rounds_per_iter: 60,
            sample_extra: 12,
        }
    }

    #[test]
    fn produces_one_record_per_iteration_plus_baseline() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(60).build(3);
        let records = run(s.matrix(), &small_cfg(), 3, 1);
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].iteration, 0);
        assert_eq!(records[0].update_probes, 0);
        assert!(records[1].update_probes > 0);
    }

    #[test]
    fn neighbor_sets_keep_configured_size() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(60).build(5);
        let cfg = small_cfg();
        let records = run(s.matrix(), &cfg, 2, 2);
        for rec in &records {
            // Each node contributes at most `neighbors` directed edges
            // (exactly, unless measurements were missing).
            assert!(rec.neighbor_edges.len() <= 60 * cfg.vivaldi.neighbors);
            assert!(rec.neighbor_edges.len() >= 60 * (cfg.vivaldi.neighbors - 2));
        }
    }

    #[test]
    fn neighbor_edge_severity_decreases_over_iterations() {
        // The heart of Figure 22: iterating the update purges
        // high-severity edges from the spring sets.
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(120).build(7);
        let m = s.matrix();
        let sev = Severity::compute(m, 0);
        let records = run(m, &small_cfg(), 4, 3);
        let mean_sev = |rec: &IterationRecord| {
            mean(rec.neighbor_edges.iter().filter_map(|&(i, j)| sev.severity(i, j)))
        };
        let first = mean_sev(&records[0]);
        let last = mean_sev(&records[4]);
        assert!(last < first, "neighbor severity did not decrease: {first} → {last}");
    }

    #[test]
    fn deterministic_in_seed() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(50).build(9);
        let a = run(s.matrix(), &small_cfg(), 2, 4);
        let b = run(s.matrix(), &small_cfg(), 2, 4);
        assert_eq!(a[2].neighbor_edges, b[2].neighbor_edges);
    }

    #[test]
    #[should_panic(expected = "more nodes than neighbors")]
    fn too_few_nodes_rejected() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(10).build(1);
        run(s.matrix(), &DynVivaldiConfig::default(), 1, 1);
    }
}
