//! # `tivcore` — TIV analysis, the TIV alert mechanism, and TIV-aware
//! neighbor selection
//!
//! This crate is the primary contribution of the reproduced paper
//! ("Towards Network Triangle Inequality Violation Aware Distributed
//! Systems", IMC 2007):
//!
//! * [`severity`] — the per-edge **TIV severity metric** of Section 2.1
//!   and the delay-space analyses of Section 2.2 (severity CDFs,
//!   severity-vs-length, cluster structure, proximity experiment);
//! * [`alert`] — the **TIV alert mechanism** of Section 5.1: flag edges
//!   whose embedding prediction ratio is far below 1 as likely severe
//!   TIV causers, with the accuracy/recall trade-off of Figures 20–21;
//! * [`filter`] — the naive global severity filter strawman of
//!   Section 4.3;
//! * [`dynvivaldi`] — **dynamic-neighbor Vivaldi** (Section 5.2):
//!   iterative alert-driven neighbor-set refinement;
//! * [`tivmeridian`] — **TIV-aware Meridian** (Section 5.3): dual ring
//!   placement and alert-driven query restart.
//!
//! ```
//! use delayspace::synth::{Dataset, InternetDelaySpace};
//! use tivcore::severity::Severity;
//!
//! let space = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(80).build(1);
//! let sev = Severity::compute(space.matrix(), 0);
//! // Most edges violate little, a few violate a lot (Figure 2).
//! let cdf = sev.cdf(space.matrix());
//! assert!(cdf.median() <= cdf.quantile(0.99));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod alert;
pub mod dynvivaldi;
pub mod filter;
pub mod metrics;
pub mod monitor;
pub mod severity;
pub mod tivmeridian;

pub use alert::{
    accuracy_recall_sweep, accuracy_recall_sweep_threaded, ratio_severity_bins, AlertQuality,
    TivAlert,
};
pub use dynvivaldi::{DynVivaldiConfig, IterationRecord};
pub use filter::EdgeMask;
pub use metrics::{closest_neighbor_loss, relative_rank_loss, PredictorMetrics};
pub use monitor::{MonitorConfig, MonitorSummary, TivMonitor};
pub use severity::{
    estimate_severity, estimate_severity_batch, estimate_severity_batch_in, estimate_severity_ci,
    estimate_severity_ci_batch, estimate_severity_in, proximity_experiment, triangulation_ratios,
    ProximityResult, Severity, SeverityEstimate,
};
pub use tivmeridian::{build_tiv_aware, tiv_aware_query, TivMeridianConfig};
