//! The TIV severity metric (Section 2.1) and the severity analyses of
//! Section 2.2.
//!
//! For nodes `A, C` in a delay space `S`, the severity of edge `AC` is
//!
//! ```text
//! severity(AC) = Σ_B d(A,C) / (d(A,B) + d(B,C))   /   |S|
//! ```
//!
//! summed over exactly the witnesses `B` with
//! `d(A,B) + d(B,C) < d(A,C)`. A severity of 0 means the edge causes no
//! violation; the metric grows both with the *number* of violations the
//! edge causes and with their *triangulation ratios*, which is why the
//! paper prefers it over either ingredient alone.
//!
//! The exact computation is O(n³); we parallelise over rows with the
//! shared [`tivpar`] kernels layer (each output row is independent, so
//! results are bit-identical at every thread count) and exploit
//! NaN-propagation to skip missing entries without branches.

use delayspace::matrix::{DelayMatrix, NodeId};
use delayspace::rng;
use delayspace::stats::{BinnedStats, Cdf};
use delayspace::store::{DelayStore, NodePair};

/// Severity and violation-count matrices for every edge of a delay
/// space.
#[derive(Clone, Debug)]
pub struct Severity {
    n: usize,
    /// Row-major severity per ordered pair (symmetric; NaN = missing).
    sev: Vec<f64>,
    /// Number of witnesses B violating through each ordered pair.
    cnt: Vec<u32>,
}

impl Severity {
    /// Computes severity for every measured edge, using up to `threads`
    /// workers (0 = auto: the `TIV_THREADS` environment variable, else
    /// available parallelism — see [`tivpar::resolve_threads`]).
    ///
    /// The result is bit-identical at every thread count: each output
    /// row depends only on the input matrix.
    pub fn compute(m: &DelayMatrix, threads: usize) -> Self {
        let n = m.len();
        let mut sev = vec![f64::NAN; n * n];
        let mut cnt = vec![0u32; n * n];
        // The delay matrix is symmetric by construction and the severity
        // kernel scans witnesses in the same ascending order for (a,c)
        // and (c,a) — with f64 addition commutative, the two entries are
        // bit-identical (the same argument `repair_rows` uses to patch
        // columns). So compute only c >= a and mirror the lower
        // triangle: half the O(n³) work. Row costs now shrink with `a`,
        // which is exactly the skew the pool's work stealing absorbs.
        tivpar::par_fill_rows2(&mut sev, &mut cnt, n, threads, |a, srow, crow| {
            severity_row_from(m, a, a, srow, crow)
        });
        for a in 1..n {
            let (done, rest) = sev.split_at_mut(a * n);
            let row = &mut rest[..n];
            for (c, v) in row[..a].iter_mut().enumerate() {
                *v = done[c * n + a];
            }
            let (done, rest) = cnt.split_at_mut(a * n);
            let row = &mut rest[..n];
            for (c, v) in row[..a].iter_mut().enumerate() {
                *v = done[c * n + a];
            }
        }
        Severity { n, sev, cnt }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Severity of edge `(i, j)`; `None` when the edge is unmeasured.
    pub fn severity(&self, i: NodeId, j: NodeId) -> Option<f64> {
        let v = self.sev[i * self.n + j];
        (!v.is_nan()).then_some(v)
    }

    /// Number of violations edge `(i, j)` causes (witness count).
    pub fn count(&self, i: NodeId, j: NodeId) -> u32 {
        self.cnt[i * self.n + j]
    }

    /// Iterator over `(i, j, severity)` for measured unordered edges.
    ///
    /// The severity of an edge is `NaN` when it was not measured in the
    /// matrix this `Severity` was computed from — which happens whenever
    /// `m` carries measurements the severity pass never saw (an epoch
    /// builder folding in fresh observations, a mask being lifted).
    /// Consumers that aggregate ([`Severity::cdf`],
    /// [`Severity::worst_edges`], [`Severity::by_delay_bins`]) skip
    /// those entries rather than choke on them.
    pub fn edges<'a>(
        &'a self,
        m: &'a DelayMatrix,
    ) -> impl Iterator<Item = (NodeId, NodeId, f64)> + 'a {
        m.edges().map(move |(i, j, _)| (i, j, self.sev[i * self.n + j]))
    }

    /// CDF of edge severities (Figure 2). Edges without a computed
    /// severity (NaN) are skipped.
    pub fn cdf(&self, m: &DelayMatrix) -> Cdf {
        // Cdf::from_samples drops non-finite samples, so NaN severities
        // of newly-measured edges can never poison the distribution.
        Cdf::from_samples(self.edges(m).map(|(_, _, s)| s))
    }

    /// Severity versus edge delay, in `bin_ms`-wide bins (Figures 4–7).
    /// Edges without a computed severity (NaN) are skipped.
    pub fn by_delay_bins(&self, m: &DelayMatrix, bin_ms: f64, max_ms: f64) -> BinnedStats {
        // BinnedStats::build drops non-finite y-values for the same
        // reason cdf() relies on from_samples doing it.
        BinnedStats::build(m.edges().map(|(i, j, d)| (d, self.sev[i * self.n + j])), bin_ms, max_ms)
    }

    /// The fraction of all triangles (unordered node triples with all
    /// three edges measured) that violate the triangle inequality.
    ///
    /// Only the *longest* edge of a triangle can violate, so each
    /// violating triangle is witnessed exactly once across the count
    /// matrix: `frac = Σ_{i<j} cnt(i,j) / C(n,3)`.
    ///
    /// The paper reports ≈ 12% for DS².
    pub fn violating_triangle_fraction(&self) -> f64 {
        if self.n < 3 {
            return 0.0;
        }
        let mut viol: u64 = 0;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                viol += self.cnt[i * self.n + j] as u64;
            }
        }
        let n = self.n as f64;
        let triangles = n * (n - 1.0) * (n - 2.0) / 6.0;
        viol as f64 / triangles
    }

    /// The `frac` (e.g. 0.2 = worst 20%) of measured edges with the
    /// highest severity, as unordered pairs sorted by descending
    /// severity. Edges of `m` without a computed severity (NaN — see
    /// [`Severity::edges`]) are excluded before the fraction is taken.
    pub fn worst_edges(&self, m: &DelayMatrix, frac: f64) -> Vec<(NodeId, NodeId)> {
        assert!((0.0..=1.0).contains(&frac), "fraction {frac} outside [0,1]");
        let mut edges: Vec<(NodeId, NodeId, f64)> =
            self.edges(m).filter(|(_, _, s)| !s.is_nan()).collect();
        // total_cmp, not partial_cmp().unwrap(): even though NaNs are
        // filtered above, a comparator that cannot panic keeps this
        // safe against any future source of non-finite severities.
        edges.sort_by(|a, b| b.2.total_cmp(&a.2));
        let k = ((edges.len() as f64) * frac).round() as usize;
        edges.truncate(k);
        edges.into_iter().map(|(i, j, _)| (i, j)).collect()
    }

    /// Repairs the matrices after `m` changed on edges incident to the
    /// `dirty` nodes: recomputes exactly those rows (in parallel over
    /// the dirty set, [`tivpar::resolve_threads`] semantics) and patches
    /// the symmetric column entries of every clean row.
    ///
    /// Severity is a pure, symmetric function of the matrix in which an
    /// edge change can only affect pairs touching one of its endpoints
    /// (`severity(a,c)` reads delays incident to `a` or `c` only), so
    /// after this repair the result is **bit-identical** to
    /// `Severity::compute(m, _)` from scratch — the incremental epoch
    /// pipeline's core invariant, pinned by `tivoid`'s
    /// `flux_equivalence` test.
    ///
    /// # Panics
    /// Panics when the matrix size differs from this instance's, or
    /// when `dirty` is not strictly increasing or names a node `>= n`.
    pub fn repair_rows(&mut self, m: &DelayMatrix, dirty: &[NodeId], threads: usize) {
        let n = self.n;
        assert_eq!(m.len(), n, "matrix has {} nodes, severity covers {n}", m.len());
        assert!(dirty.windows(2).all(|w| w[0] < w[1]), "dirty rows must be strictly increasing");
        if let Some(&last) = dirty.last() {
            assert!(last < n, "dirty row {last} outside {n} nodes");
        }
        // Recompute each dirty row from the current matrix — the same
        // kernel the full pass runs, on the same scratch initial state
        // (NaN severities, zero counts).
        let rows: Vec<(Vec<f64>, Vec<u32>)> = tivpar::par_map_rows(dirty.len(), threads, |k| {
            let a = dirty[k];
            let mut srow = vec![f64::NAN; n];
            let mut crow = vec![0u32; n];
            severity_row(m, a, &mut srow, &mut crow);
            (srow, crow)
        });
        for (k, (srow, crow)) in rows.into_iter().enumerate() {
            let a = dirty[k];
            self.sev[a * n..(a + 1) * n].copy_from_slice(&srow);
            self.cnt[a * n..(a + 1) * n].copy_from_slice(&crow);
        }
        // Patch the dirty *columns* of every clean row by symmetry:
        // severity_row scans witnesses in the same ascending order for
        // (a,c) and (c,a), and f64 addition is commutative, so the
        // mirrored entry is bit-identical to what a recompute of the
        // clean row would produce.
        let mut is_dirty = vec![false; n];
        for &d in dirty {
            is_dirty[d] = true;
        }
        for a in (0..n).filter(|&a| !is_dirty[a]) {
            for &d in dirty {
                self.sev[a * n + d] = self.sev[d * n + a];
                self.cnt[a * n + d] = self.cnt[d * n + a];
            }
        }
    }

    /// Mean violation count for edges within the same cluster versus
    /// edges crossing clusters (the paper: 80 within vs 206 across for
    /// DS²). Noise-cluster edges count as crossing.
    pub fn cluster_violation_counts(
        &self,
        m: &DelayMatrix,
        clustering: &delayspace::cluster::Clustering,
    ) -> ClusterViolationCounts {
        let mut within = (0u64, 0u64); // (sum, edges)
        let mut across = (0u64, 0u64);
        for (i, j, _) in m.edges() {
            let c = self.cnt[i * self.n + j] as u64;
            if clustering.same_cluster(i, j) {
                within.0 += c;
                within.1 += 1;
            } else {
                across.0 += c;
                across.1 += 1;
            }
        }
        ClusterViolationCounts {
            mean_within: if within.1 > 0 { within.0 as f64 / within.1 as f64 } else { 0.0 },
            mean_across: if across.1 > 0 { across.0 as f64 / across.1 as f64 } else { 0.0 },
            edges_within: within.1 as usize,
            edges_across: across.1 as usize,
        }
    }
}

/// Result of [`Severity::cluster_violation_counts`].
#[derive(Clone, Copy, Debug)]
pub struct ClusterViolationCounts {
    /// Mean violations caused by an intra-cluster edge.
    pub mean_within: f64,
    /// Mean violations caused by a cross-cluster (or noise) edge.
    pub mean_across: f64,
    /// Number of intra-cluster edges.
    pub edges_within: usize,
    /// Number of cross-cluster edges.
    pub edges_across: usize,
}

/// Witness-scan tile width for [`severity_pair`]. 32 f64s = 256 bytes =
/// 4 cache lines per input row: small enough that a tile of both rows
/// stays in L1 across the pre-scan and the detail pass, wide enough to
/// amortise the per-tile bookkeeping and fill SIMD lanes.
const WITNESS_TILE: usize = 32;

/// The severity inner kernel for one pair: scans all witnesses `b` with
/// `alt = d(a,b) + d(b,c)`; a violation needs `alt < dac`. Missing
/// delays are NaN, and NaN fails every comparison, so missing witnesses
/// drop out without branching. Returns the ratio sum (unnormalised) and
/// the violation count.
///
/// The scan is tiled: a branch-free pre-pass ORs `alt < dac` across a
/// [`WITNESS_TILE`]-wide block — two adds and a compare per lane, which
/// autovectorises — and only tiles containing a violation run the
/// divide-and-accumulate detail loop. Most tiles of a realistic delay
/// space are violation-free (the paper's ~12% violating-triangle rate
/// is spread thin), so the common case runs at SIMD compare speed.
/// Violating witnesses are accumulated in ascending `b` order either
/// way, so the result is bit-identical to the naive scan.
#[inline]
fn severity_pair(row_a: &[f64], row_c: &[f64], dac: f64) -> (f64, u32) {
    let n = row_a.len();
    let mut sum = 0.0f64;
    let mut count = 0u32;
    let mut b0 = 0;
    while b0 < n {
        let b1 = (b0 + WITNESS_TILE).min(n);
        let mut any = false;
        for (&ab, &cb) in row_a[b0..b1].iter().zip(&row_c[b0..b1]) {
            any |= ab + cb < dac;
        }
        if any {
            for (&ab, &cb) in row_a[b0..b1].iter().zip(&row_c[b0..b1]) {
                let alt = ab + cb;
                // b == a or b == c gives alt == dac, which is not < dac.
                if alt < dac {
                    sum += dac / alt;
                    count += 1;
                }
            }
        }
        b0 = b1;
    }
    (sum, count)
}

/// Computes one row of the severity/count matrices (all columns) — the
/// kernel [`Severity::repair_rows`] runs per dirty row.
fn severity_row(m: &DelayMatrix, a: usize, srow: &mut [f64], crow: &mut [u32]) {
    severity_row_from(m, 0, a, srow, crow);
}

/// Computes columns `from..n` of severity row `a` (entries below `from`
/// are left untouched). `Severity::compute` passes `from == a` to do
/// only the upper triangle; the lower triangle is mirrored afterwards.
fn severity_row_from(m: &DelayMatrix, from: usize, a: usize, srow: &mut [f64], crow: &mut [u32]) {
    let n = m.len();
    let row_a = m.row(a);
    for c in from..n {
        if c == a {
            srow[c] = 0.0;
            continue;
        }
        let dac = row_a[c];
        if dac.is_nan() {
            continue; // stays NaN / 0
        }
        let (sum, count) = severity_pair(row_a, m.row(c), dac);
        srow[c] = sum / n as f64;
        crow[c] = count;
    }
}

/// The triangulation ratios of one edge (Figure 1): for edge `(a, c)`,
/// the ratio `d(a,c) / (d(a,b) + d(b,c))` over **all** witnesses `b`
/// (violating or not), sorted ascending. The severity is proportional
/// to the area above ratio = 1 under this curve's CDF.
pub fn triangulation_ratios(m: &DelayMatrix, a: NodeId, c: NodeId) -> Vec<f64> {
    let Some(dac) = m.get(a, c) else { return Vec::new() };
    let mut out = Vec::with_capacity(m.len());
    for b in 0..m.len() {
        if b == a || b == c {
            continue;
        }
        let (row_ab, row_cb) = (m.raw(a, b), m.raw(c, b));
        let alt = row_ab + row_cb;
        if !alt.is_nan() && alt > 0.0 {
            out.push(dac / alt);
        }
    }
    out.sort_by(f64::total_cmp);
    out
}

/// Estimates the severity of one edge from a random sample of `k`
/// witnesses instead of all `n` (an unbiased estimator of the exact
/// metric: the witness sum is scaled by `n/k` before the `1/|S|`
/// normalisation, so both cancel to a mean over sampled witnesses).
///
/// The exact metric needs the full delay matrix — global information no
/// deployed node has. A node that can measure `d(A,B)` and ask `B` for
/// `d(B,C)` can compute this estimate with `2k` measurements, which is
/// what a practical TIV-severity monitor would do. Accuracy improves
/// as `O(1/√k)`.
pub fn estimate_severity(
    m: &DelayMatrix,
    a: NodeId,
    c: NodeId,
    k: usize,
    seed: u64,
) -> Option<f64> {
    estimate_severity_in(m, a, c, k, seed)
}

/// [`estimate_severity`] generalised over any [`DelayStore`] — the same
/// RNG stream, the same accumulation order, so on a dense matrix the
/// result is bit-identical to the historical dense-only function (the
/// wire-equivalence suite depends on this), and on a
/// [`SparseDelayStore`](delayspace::SparseDelayStore) it is the
/// million-node estimator: unmeasured witness legs are `NaN`, fail the
/// violation comparison, and drop out exactly as missing dense entries
/// always have.
pub fn estimate_severity_in<S: DelayStore>(
    store: &S,
    a: NodeId,
    c: NodeId,
    k: usize,
    seed: u64,
) -> Option<f64> {
    let dac = store.get(a, c)?;
    let n = store.len();
    if n <= 2 {
        return Some(0.0);
    }
    let k = k.min(n - 2);
    let mut r = rng::sub_rng(seed, "severity/estimate");
    // Sample witnesses uniformly from S \ {a, c}.
    let mut sum = 0.0;
    let mut sampled = 0usize;
    for idx in rng::sample_indices(&mut r, n - 2, k) {
        // Map 0..n-2 onto node ids skipping a and c.
        let (lo, hi) = if a < c { (a, c) } else { (c, a) };
        let mut b = idx;
        if b >= lo {
            b += 1;
        }
        if b >= hi {
            b += 1;
        }
        sampled += 1;
        let alt = store.raw(a, b) + store.raw(c, b);
        if alt < dac {
            sum += dac / alt;
        }
    }
    if sampled == 0 {
        return Some(0.0);
    }
    // Mean over sampled witnesses ≈ mean over all witnesses = exact
    // severity up to the (n-2)/n boundary factor, which we include.
    Some(sum / sampled as f64 * (n - 2) as f64 / n as f64)
}

/// A sampled severity estimate with a 95% confidence interval.
///
/// Produced by [`estimate_severity_ci`]; the `point` field is
/// bit-identical to what [`estimate_severity`] returns for the same
/// `(store, a, c, k, seed)` — the CI machinery rides along without
/// perturbing the estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeverityEstimate {
    /// The point estimate (same value as [`estimate_severity`]).
    pub point: f64,
    /// Lower 95% confidence bound, clamped at 0 (severity is ≥ 0).
    pub ci_lo: f64,
    /// Upper 95% confidence bound.
    pub ci_hi: f64,
    /// Number of witnesses actually sampled (≤ k, ≤ n − 2).
    pub sampled: u32,
}

/// z for a two-sided 95% normal confidence interval.
const Z95: f64 = 1.96;

/// Like [`estimate_severity_in`], but also returns a 95% confidence
/// interval from the sample standard deviation of the per-witness
/// contributions.
///
/// The half-width is `z · s/√m` scaled by the finite-population
/// correction `√((N−m)/(N−1))` for sampling the `N = n−2` witnesses
/// without replacement — so at full sampling (`k ≥ n−2`) the interval
/// collapses to the exact answer, and the width shrinks as `O(1/√k)` in
/// between (the monotonicity the CI proptest pins). With fewer than two
/// samples the width is reported as 0 (no variance information).
///
/// Returns `None` when the edge `(a, c)` itself is unmeasured.
pub fn estimate_severity_ci<S: DelayStore>(
    store: &S,
    a: NodeId,
    c: NodeId,
    k: usize,
    seed: u64,
) -> Option<SeverityEstimate> {
    let dac = store.get(a, c)?;
    let n = store.len();
    if n <= 2 {
        return Some(SeverityEstimate { point: 0.0, ci_lo: 0.0, ci_hi: 0.0, sampled: 0 });
    }
    let k = k.min(n - 2);
    let mut r = rng::sub_rng(seed, "severity/estimate");
    // Identical stream and accumulation order to estimate_severity_in;
    // the extra sum of squares feeds only the interval.
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let mut sampled = 0usize;
    for idx in rng::sample_indices(&mut r, n - 2, k) {
        let (lo, hi) = if a < c { (a, c) } else { (c, a) };
        let mut b = idx;
        if b >= lo {
            b += 1;
        }
        if b >= hi {
            b += 1;
        }
        sampled += 1;
        let alt = store.raw(a, b) + store.raw(c, b);
        if alt < dac {
            let x = dac / alt;
            sum += x;
            sum_sq += x * x;
        }
    }
    if sampled == 0 {
        return Some(SeverityEstimate { point: 0.0, ci_lo: 0.0, ci_hi: 0.0, sampled: 0 });
    }
    let m_f = sampled as f64;
    // Same expression (and evaluation order) as estimate_severity_in —
    // the point must stay bit-identical.
    let point = sum / m_f * (n - 2) as f64 / n as f64;
    let scale = (n - 2) as f64 / n as f64;
    let big_n = (n - 2) as f64;
    let half = if sampled >= 2 && big_n > 1.0 {
        // Sample variance of the per-witness contributions (non-negative
        // despite rounding), with the without-replacement correction.
        let var = ((sum_sq - sum * sum / m_f) / (m_f - 1.0)).max(0.0);
        let fpc = ((big_n - m_f) / (big_n - 1.0)).max(0.0);
        Z95 * (var / m_f * fpc).sqrt() * scale
    } else {
        0.0
    };
    Some(SeverityEstimate {
        point,
        ci_lo: (point - half).max(0.0),
        ci_hi: point + half,
        sampled: sampled as u32,
    })
}

/// Estimates severity for a whole batch of edges in parallel, using up
/// to `threads` workers ([`tivpar::resolve_threads`] semantics).
///
/// Edge `i` of the batch is estimated exactly as
/// `estimate_severity(m, a, c, k, seed + i)` — the per-edge seed offset
/// decorrelates the witness samples across edges while keeping the
/// output a pure function of `(m, edges, k, seed)`, independent of the
/// thread count. This is the kernel a severity monitor sweeping its
/// whole peer set runs.
pub fn estimate_severity_batch(
    m: &DelayMatrix,
    edges: &[(NodeId, NodeId)],
    k: usize,
    seed: u64,
    threads: usize,
) -> Vec<Option<f64>> {
    estimate_severity_batch_in(m, edges, k, seed, threads)
}

/// [`estimate_severity_batch`] generalised over any [`DelayStore`] —
/// the same per-edge seed offsets, so dense results are bit-identical
/// to the historical function at every thread count.
pub fn estimate_severity_batch_in<S: DelayStore + Sync>(
    store: &S,
    edges: &[NodePair],
    k: usize,
    seed: u64,
    threads: usize,
) -> Vec<Option<f64>> {
    tivpar::par_map_rows(edges.len(), threads, |i| {
        let (a, c) = edges[i];
        estimate_severity_in(store, a, c, k, seed.wrapping_add(i as u64))
    })
}

/// Batch form of [`estimate_severity_ci`], parallelised like
/// [`estimate_severity_batch`] with the same per-edge seed offsets —
/// `point` values are bit-identical to the plain batch estimator at
/// every thread count.
pub fn estimate_severity_ci_batch<S: DelayStore + Sync>(
    store: &S,
    edges: &[NodePair],
    k: usize,
    seed: u64,
    threads: usize,
) -> Vec<Option<SeverityEstimate>> {
    tivpar::par_map_rows(edges.len(), threads, |i| {
        let (a, c) = edges[i];
        estimate_severity_ci(store, a, c, k, seed.wrapping_add(i as u64))
    })
}

/// The proximity experiment of Figure 9: severity differences between
/// each sampled edge and (a) its *nearest-pair* edge, (b) a *random-pair*
/// edge.
#[derive(Clone, Debug)]
pub struct ProximityResult {
    /// |severity(AB) − severity(AnBn)| per sampled edge.
    pub nearest_pair_diffs: Cdf,
    /// |severity(AB) − severity(XY)| for a random measured edge XY.
    pub random_pair_diffs: Cdf,
}

/// Runs the proximity experiment over `samples` random measured edges.
///
/// For an edge `AB`, the nearest-pair edge is `AnBn` where `An`/`Bn`
/// are the delay-nearest neighbors of `A`/`B`. Pairs whose nearest-pair
/// edge is unmeasured or degenerate (`An == Bn`) are skipped.
pub fn proximity_experiment(
    m: &DelayMatrix,
    sev: &Severity,
    samples: usize,
    seed: u64,
) -> ProximityResult {
    use rand::Rng;
    let mut r = rng::sub_rng(seed, "proximity");
    let edges: Vec<(NodeId, NodeId)> = m.edges().map(|(i, j, _)| (i, j)).collect();
    assert!(!edges.is_empty(), "no measured edges");
    // Precompute nearest neighbors once.
    let nearest: Vec<Option<NodeId>> =
        (0..m.len()).map(|i| m.nearest_neighbor(i).map(|(j, _)| j)).collect();

    let mut near_diffs = Vec::with_capacity(samples);
    let mut rand_diffs = Vec::with_capacity(samples);
    let mut attempts = 0usize;
    while near_diffs.len() < samples && attempts < samples * 20 {
        attempts += 1;
        let (a, b) = edges[r.gen_range(0..edges.len())];
        let Some(s_ab) = sev.severity(a, b) else { continue };
        let (Some(an), Some(bn)) = (nearest[a], nearest[b]) else { continue };
        if an == bn {
            continue;
        }
        let Some(s_near) = sev.severity(an, bn) else { continue };
        let (x, y) = edges[r.gen_range(0..edges.len())];
        let Some(s_rand) = sev.severity(x, y) else { continue };
        near_diffs.push((s_ab - s_near).abs());
        rand_diffs.push((s_ab - s_rand).abs());
    }
    ProximityResult {
        nearest_pair_diffs: Cdf::from_samples(near_diffs),
        random_pair_diffs: Cdf::from_samples(rand_diffs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayspace::cluster::{ClusterConfig, Clustering};
    use delayspace::synth::{Dataset, InternetDelaySpace};

    fn tiv_triangle() -> DelayMatrix {
        let mut m = DelayMatrix::new(3);
        m.set(0, 1, 5.0);
        m.set(1, 2, 5.0);
        m.set(0, 2, 100.0);
        m
    }

    #[test]
    fn severity_matches_hand_computation() {
        let m = tiv_triangle();
        let sev = Severity::compute(&m, 1);
        // Edge (0,2): witness 1 gives alt = 10 < 100, ratio 10. |S| = 3.
        assert!((sev.severity(0, 2).unwrap() - 10.0 / 3.0).abs() < 1e-12);
        assert_eq!(sev.count(0, 2), 1);
        // The short edges cause no violations.
        assert_eq!(sev.severity(0, 1), Some(0.0));
        assert_eq!(sev.severity(1, 2), Some(0.0));
        assert_eq!(sev.count(0, 1), 0);
    }

    #[test]
    fn metric_space_has_zero_severity() {
        let m = DelayMatrix::from_complete_fn(15, |i, j| 10.0 * i.abs_diff(j) as f64);
        let sev = Severity::compute(&m, 2);
        for (_, _, s) in sev.edges(&m) {
            assert_eq!(s, 0.0);
        }
        assert_eq!(sev.violating_triangle_fraction(), 0.0);
    }

    #[test]
    fn parallel_matches_serial() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(70).build(3);
        let a = Severity::compute(s.matrix(), 1);
        let b = Severity::compute(s.matrix(), 4);
        for (i, j, sa) in a.edges(s.matrix()) {
            let sb = b.sev[i * b.n + j];
            assert_eq!(sa, sb);
            assert_eq!(a.count(i, j), b.count(i, j));
        }
    }

    #[test]
    fn violating_fraction_of_single_tiv() {
        let sev = Severity::compute(&tiv_triangle(), 1);
        // 1 triangle, violated.
        assert_eq!(sev.violating_triangle_fraction(), 1.0);
    }

    #[test]
    fn ds2_preset_violation_fraction_is_plausible() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(150).build(21);
        let sev = Severity::compute(s.matrix(), 0);
        let frac = sev.violating_triangle_fraction();
        // Paper: ~12% for DS². Accept a generous band at small n.
        assert!((0.03..0.40).contains(&frac), "violating fraction {frac}");
    }

    #[test]
    fn worst_edges_sorted_and_sized() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(60).build(5);
        let sev = Severity::compute(s.matrix(), 0);
        let worst = sev.worst_edges(s.matrix(), 0.1);
        let total = s.matrix().edges().count();
        assert_eq!(worst.len(), ((total as f64) * 0.1).round() as usize);
        // First edge must have max severity.
        let max = sev.edges(s.matrix()).map(|(_, _, v)| v).fold(f64::MIN, f64::max);
        let (i, j) = worst[0];
        assert_eq!(sev.severity(i, j), Some(max));
    }

    #[test]
    fn cross_cluster_edges_violate_more_often() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(200).build(33);
        let m = s.matrix();
        let sev = Severity::compute(m, 0);
        let cl = Clustering::compute(m, &ClusterConfig::default());
        let counts = sev.cluster_violation_counts(m, &cl);
        assert!(counts.edges_within > 0 && counts.edges_across > 0);
        assert!(
            counts.mean_across > counts.mean_within,
            "cross {} should exceed within {}",
            counts.mean_across,
            counts.mean_within
        );
    }

    #[test]
    fn triangulation_ratios_sorted_and_correct() {
        let m = tiv_triangle();
        let ratios = triangulation_ratios(&m, 0, 2);
        assert_eq!(ratios, vec![10.0]); // only witness 1: 100/(5+5)
        let ratios_short = triangulation_ratios(&m, 0, 1);
        assert_eq!(ratios_short, vec![5.0 / 105.0]);
    }

    #[test]
    fn proximity_diffs_have_samples() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(100).build(9);
        let sev = Severity::compute(s.matrix(), 0);
        let prox = proximity_experiment(s.matrix(), &sev, 500, 1);
        assert!(prox.nearest_pair_diffs.len() > 400);
        assert_eq!(prox.nearest_pair_diffs.len(), prox.random_pair_diffs.len());
        // Differences are non-negative by construction.
        assert!(prox.nearest_pair_diffs.quantile(0.0) >= 0.0);
    }

    #[test]
    fn nearest_pairs_only_slightly_more_similar() {
        // The paper's finding: nearest-pair edges are only *slightly*
        // more similar than random pairs. Check the medians are within
        // a small factor rather than dramatically apart.
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(150).build(41);
        let sev = Severity::compute(s.matrix(), 0);
        let prox = proximity_experiment(s.matrix(), &sev, 1000, 2);
        let mn = prox.nearest_pair_diffs.median();
        let mr = prox.random_pair_diffs.median();
        assert!(mn <= mr * 1.5 + 0.01, "nearest median {mn} vs random {mr}");
    }

    #[test]
    fn estimate_converges_to_exact() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(200).build(51);
        let m = s.matrix();
        let sev = Severity::compute(m, 0);
        // Pick a genuinely severe edge so relative error is meaningful.
        let (a, c) = sev.worst_edges(m, 0.01)[0];
        let exact = sev.severity(a, c).unwrap();
        // Average several estimates at growing k: error shrinks.
        let avg_err = |k: usize| {
            let mut total = 0.0;
            for seed in 0..16 {
                let est = estimate_severity(m, a, c, k, seed).unwrap();
                total += (est - exact).abs();
            }
            total / 16.0
        };
        let coarse = avg_err(10);
        let fine = avg_err(150);
        assert!(
            fine < coarse,
            "estimator not converging: err(k=10)={coarse:.4}, err(k=150)={fine:.4}"
        );
        assert!(fine < exact * 0.5, "estimate too far off: {fine} vs exact {exact}");
    }

    #[test]
    fn estimate_with_all_witnesses_matches_exact() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(60).build(53);
        let m = s.matrix();
        let sev = Severity::compute(m, 0);
        for (a, c, exact) in sev.edges(m).take(50) {
            // k = n-2 samples every witness exactly once.
            let est = estimate_severity(m, a, c, m.len(), 1).unwrap();
            assert!(
                (est - exact).abs() < 1e-9,
                "full-sample estimate {est} != exact {exact} for ({a},{c})"
            );
        }
    }

    #[test]
    fn batch_estimate_matches_single_calls() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(80).build(17);
        let m = s.matrix();
        let edges: Vec<_> = m.edges().map(|(i, j, _)| (i, j)).take(40).collect();
        let batch = estimate_severity_batch(m, &edges, 12, 9, 4);
        assert_eq!(batch.len(), edges.len());
        for (i, &(a, c)) in edges.iter().enumerate() {
            assert_eq!(batch[i], estimate_severity(m, a, c, 12, 9 + i as u64));
        }
    }

    #[test]
    fn estimate_of_zero_severity_edge_is_zero() {
        let m = DelayMatrix::from_complete_fn(20, |i, j| 10.0 * i.abs_diff(j) as f64);
        for seed in 0..8 {
            assert_eq!(estimate_severity(&m, 0, 10, 8, seed), Some(0.0));
        }
    }

    #[test]
    fn consumers_survive_edges_measured_after_the_severity_pass() {
        // Regression test: the severity matrix is seeded with NaN, and
        // an edge measured *after* the pass (the epoch builder folding
        // in a fresh observation, a sparser sampling matrix) keeps that
        // NaN. worst_edges used to feed it to partial_cmp().unwrap()
        // and panic; cdf/by_delay_bins must also skip it, not fold it
        // into the aggregates.
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(40).build(11);
        let mut sparse = s.matrix().clone();
        // Hold out a band of edges from the severity pass...
        for j in 1..sparse.len() {
            sparse.clear(0, j);
        }
        let sev = Severity::compute(&sparse, 1);
        // ...then hand the consumers the fully-measured matrix, as a
        // service whose matrix keeps growing would.
        let full = s.matrix();
        let measured: Vec<_> = sev.edges(full).filter(|(_, _, v)| !v.is_nan()).collect();
        let held_out = full.edges().count() - measured.len();
        assert!(held_out > 0, "fixture must contain newly-measured edges");

        let worst = sev.worst_edges(full, 1.0); // used to panic here
        assert_eq!(worst.len(), measured.len(), "NaN edges must not count toward the fraction");
        assert!(worst.iter().all(|&(i, _)| i != 0), "held-out edges must be excluded");
        // Descending order over the retained edges.
        let ranked: Vec<f64> = worst.iter().map(|&(i, j)| sev.severity(i, j).unwrap()).collect();
        assert!(ranked.windows(2).all(|w| w[0] >= w[1]));

        assert_eq!(sev.cdf(full).len(), measured.len());
        let binned = sev.by_delay_bins(full, 50.0, 2_000.0);
        let samples: usize = binned.bins.iter().filter_map(|b| b.stats.map(|st| st.count)).sum();
        assert!(samples <= measured.len(), "binned stats must skip NaN severities");
    }

    #[test]
    fn repair_rows_matches_full_recompute() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(90).build(13);
        let mut m = s.matrix().clone();
        let mut sev = Severity::compute(&m, 2);
        // Mutate a handful of edges: grown, shrunk, cleared, and one
        // newly measured — the dirty set is the incident nodes.
        m.set(3, 40, m.get(3, 40).unwrap() * 6.0);
        m.set(17, 60, 0.25);
        m.clear(40, 61);
        let dirty = vec![3usize, 17, 40, 60, 61];
        for threads in [1usize, 2, 4] {
            let mut repaired = sev.clone();
            repaired.repair_rows(&m, &dirty, threads);
            let full = Severity::compute(&m, 1);
            for i in 0..90 {
                for j in 0..90 {
                    assert_eq!(
                        repaired.sev[i * 90 + j].to_bits(),
                        full.sev[i * 90 + j].to_bits(),
                        "severity diverged at ({i},{j}), {threads} threads"
                    );
                    assert_eq!(repaired.cnt[i * 90 + j], full.cnt[i * 90 + j]);
                }
            }
        }
        // An empty dirty set is a no-op.
        let before = sev.sev.clone();
        sev.repair_rows(s.matrix(), &[], 4);
        assert_eq!(sev.sev.iter().map(|v| v.to_bits()).collect::<Vec<_>>(), {
            before.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        });
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn repair_rejects_unsorted_dirty_set() {
        let m = tiv_triangle();
        let mut sev = Severity::compute(&m, 1);
        sev.repair_rows(&m, &[2, 1], 1);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn repair_rejects_out_of_range_row() {
        let m = tiv_triangle();
        let mut sev = Severity::compute(&m, 1);
        sev.repair_rows(&m, &[7], 1);
    }

    #[test]
    fn missing_edges_have_no_severity() {
        let mut m = tiv_triangle();
        m.clear(0, 2);
        let sev = Severity::compute(&m, 1);
        assert_eq!(sev.severity(0, 2), None);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = DelayMatrix::new(0);
        let sev = Severity::compute(&m, 1);
        assert!(sev.is_empty());
        assert_eq!(sev.violating_triangle_fraction(), 0.0);
    }

    #[test]
    fn sparse_store_estimate_is_bit_identical_to_dense() {
        use delayspace::store::SparseDelayStore;
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(60).build(29);
        let m = s.matrix();
        let sparse = SparseDelayStore::from_matrix(m);
        let edges: Vec<_> = m.edges().map(|(i, j, _)| (i, j)).take(40).collect();
        for (i, &(a, c)) in edges.iter().enumerate() {
            let dense = estimate_severity(m, a, c, 12, 7 + i as u64);
            let via_sparse = estimate_severity_in(&sparse, a, c, 12, 7 + i as u64);
            assert_eq!(
                dense.map(f64::to_bits),
                via_sparse.map(f64::to_bits),
                "sparse estimate diverged on ({a},{c})"
            );
        }
        let dense_batch = estimate_severity_batch(m, &edges, 12, 7, 2);
        let sparse_batch = estimate_severity_batch_in(&sparse, &edges, 12, 7, 2);
        assert_eq!(dense_batch, sparse_batch);
    }

    #[test]
    fn ci_point_is_bit_identical_to_plain_estimate() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(80).build(31);
        let m = s.matrix();
        let edges: Vec<_> = m.edges().map(|(i, j, _)| (i, j)).take(60).collect();
        let plain = estimate_severity_batch(m, &edges, 16, 3, 2);
        let with_ci = estimate_severity_ci_batch(m, &edges, 16, 3, 2);
        for (i, (p, e)) in plain.iter().zip(&with_ci).enumerate() {
            let (p, e) = (p.unwrap(), e.unwrap());
            assert_eq!(p.to_bits(), e.point.to_bits(), "point diverged on edge {i}");
            assert!(e.ci_lo <= e.point && e.point <= e.ci_hi, "point outside CI on edge {i}");
            assert!(e.ci_lo >= 0.0 && e.ci_hi.is_finite());
        }
    }

    #[test]
    fn ci_collapses_at_full_sampling() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(50).build(37);
        let m = s.matrix();
        let sev = Severity::compute(m, 0);
        for (a, c, exact) in sev.edges(m).take(30) {
            let e = estimate_severity_ci(m, a, c, m.len(), 5).unwrap();
            assert_eq!(e.sampled as usize, m.len() - 2);
            assert_eq!(e.ci_hi - e.ci_lo, 0.0, "full sample must have zero-width CI");
            assert!((e.point - exact).abs() < 1e-9, "{} vs exact {exact}", e.point);
        }
    }

    #[test]
    fn ci_is_degenerate_on_tiny_spaces() {
        let m = DelayMatrix::from_complete_fn(2, |_, _| 7.0);
        let e = estimate_severity_ci(&m, 0, 1, 8, 1).unwrap();
        assert_eq!((e.point, e.ci_lo, e.ci_hi, e.sampled), (0.0, 0.0, 0.0, 0));
        let mut holed = DelayMatrix::new(4);
        holed.set(0, 1, 5.0);
        assert!(estimate_severity_ci(&holed, 2, 3, 8, 1).is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use delayspace::synth::{Dataset, InternetDelaySpace};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// CI width shrinks as the sampling rate grows: averaged over
        /// every edge of a TIV-rich space and several seeds, the mean
        /// 95% interval width at each doubling of k is no wider than at
        /// the previous k (`O(1/√k)` plus the finite-population
        /// correction), and full sampling collapses it to zero exactly.
        #[test]
        fn ci_width_shrinks_with_sampling_rate((n, space_seed) in (24usize..48, 0u64..1000)) {
            let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(n).build(space_seed);
            let m = s.matrix();
            let edges: Vec<_> = m.edges().map(|(i, j, _)| (i, j)).collect();
            let mean_width = |k: usize| {
                let mut total = 0.0;
                let mut count = 0usize;
                for seed in 0..4u64 {
                    for e in estimate_severity_ci_batch(m, &edges, k, seed * 977, 1) {
                        let e = e.unwrap();
                        total += e.ci_hi - e.ci_lo;
                        count += 1;
                    }
                }
                total / count as f64
            };
            let widths: Vec<f64> = [2usize, 4, 8, 16].iter().map(|&k| mean_width(k)).collect();
            for w in widths.windows(2) {
                prop_assert!(
                    w[1] <= w[0] * 1.10 + 1e-12,
                    "CI width grew with k: {:?}", widths
                );
            }
            prop_assert_eq!(mean_width(n), 0.0, "full sampling must collapse the CI");
        }
    }
}
