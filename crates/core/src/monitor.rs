//! An online, per-node TIV monitor.
//!
//! The figure experiments evaluate the alert mechanism offline, over a
//! frozen embedding snapshot. A *deployed* TIV-aware system needs the
//! same signal online: a node continuously measures peers, its
//! coordinate keeps moving, and alerts should be stable rather than
//! flapping with every coordinate update.
//!
//! [`TivMonitor`] maintains, per peer:
//!
//! * an exponentially-weighted moving average of the measured RTT
//!   (absorbing jitter),
//! * an EWMA of the prediction ratio under the node's current view of
//!   the coordinates,
//! * a **hysteresis** alert state: the alarm raises when the smoothed
//!   ratio drops below `raise_below` and clears only above
//!   `clear_above` (> `raise_below`), so a peer near the threshold does
//!   not flap in and out of the neighbor set — the flapping would
//!   reintroduce exactly the churn dynamic-neighbor Vivaldi is trying
//!   to remove.

use delayspace::matrix::NodeId;
use std::collections::HashMap;

/// Configuration of the online monitor.
#[derive(Clone, Copy, Debug)]
pub struct MonitorConfig {
    /// EWMA weight of a new sample (0 < alpha ≤ 1).
    pub alpha: f64,
    /// Raise the alarm when the smoothed ratio drops below this
    /// (paper's deployed threshold: 0.6).
    pub raise_below: f64,
    /// Clear the alarm only when the smoothed ratio recovers above
    /// this; must exceed `raise_below`.
    pub clear_above: f64,
    /// Samples required before the monitor will alert at all (a single
    /// early sample against an unconverged coordinate is noise).
    pub min_samples: u32,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig { alpha: 0.3, raise_below: 0.6, clear_above: 0.75, min_samples: 3 }
    }
}

/// Per-peer smoothed state.
#[derive(Clone, Copy, Debug)]
struct PeerState {
    rtt_ewma: f64,
    ratio_ewma: f64,
    samples: u32,
    alerted: bool,
}

/// An immutable export of one peer's smoothed monitor state.
///
/// A serving layer freezes these into its epoch snapshots: the summary
/// carries everything a reader needs (smoothed RTT, smoothed prediction
/// ratio, the hysteresis alert state) without holding the live, mutable
/// [`TivMonitor`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MonitorSummary {
    /// The observed peer.
    pub peer: NodeId,
    /// Smoothed measured RTT (ms).
    pub rtt_ewma: f64,
    /// Smoothed prediction ratio.
    pub ratio_ewma: f64,
    /// Samples folded into the EWMAs so far.
    pub samples: u32,
    /// Hysteresis alert state after the last sample.
    pub alerted: bool,
}

/// The monitor a node runs over its own measurements.
#[derive(Clone, Debug)]
pub struct TivMonitor {
    cfg: MonitorConfig,
    peers: HashMap<NodeId, PeerState>,
}

impl TivMonitor {
    /// A monitor with the given configuration.
    ///
    /// # Panics
    /// Panics unless `0 < alpha ≤ 1` and
    /// `0 ≤ raise_below < clear_above`.
    pub fn new(cfg: MonitorConfig) -> Self {
        assert!(cfg.alpha > 0.0 && cfg.alpha <= 1.0, "alpha outside (0,1]");
        assert!(
            cfg.raise_below >= 0.0 && cfg.raise_below < cfg.clear_above,
            "hysteresis band must satisfy raise_below < clear_above"
        );
        TivMonitor { cfg, peers: HashMap::new() }
    }

    /// Feeds one measurement: the RTT just measured to `peer` and the
    /// delay the node's current coordinates predict for that peer.
    /// Returns the peer's alert state after the update.
    pub fn observe(&mut self, peer: NodeId, measured_rtt: f64, predicted: f64) -> bool {
        assert!(measured_rtt > 0.0 && measured_rtt.is_finite(), "bad rtt {measured_rtt}");
        assert!(predicted >= 0.0 && predicted.is_finite(), "bad prediction {predicted}");
        let alpha = self.cfg.alpha;
        let ratio = predicted / measured_rtt;
        let st = self.peers.entry(peer).or_insert(PeerState {
            rtt_ewma: measured_rtt,
            ratio_ewma: ratio,
            samples: 0,
            alerted: false,
        });
        st.rtt_ewma = alpha * measured_rtt + (1.0 - alpha) * st.rtt_ewma;
        st.ratio_ewma = alpha * ratio + (1.0 - alpha) * st.ratio_ewma;
        st.samples += 1;
        if st.samples >= self.cfg.min_samples {
            if st.alerted {
                if st.ratio_ewma > self.cfg.clear_above {
                    st.alerted = false;
                }
            } else if st.ratio_ewma < self.cfg.raise_below {
                st.alerted = true;
            }
        }
        st.alerted
    }

    /// Current alert state of a peer (`false` for unknown peers).
    pub fn is_alerted(&self, peer: NodeId) -> bool {
        self.peers.get(&peer).is_some_and(|s| s.alerted)
    }

    /// Smoothed RTT of a peer, if observed.
    pub fn rtt(&self, peer: NodeId) -> Option<f64> {
        self.peers.get(&peer).map(|s| s.rtt_ewma)
    }

    /// Smoothed prediction ratio of a peer, if observed.
    pub fn ratio(&self, peer: NodeId) -> Option<f64> {
        self.peers.get(&peer).map(|s| s.ratio_ewma)
    }

    /// All currently alerted peers, unsorted.
    pub fn alerted_peers(&self) -> Vec<NodeId> {
        self.peers.iter().filter(|(_, s)| s.alerted).map(|(&p, _)| p).collect()
    }

    /// Immutable summary of one peer's smoothed state, if observed.
    pub fn summary(&self, peer: NodeId) -> Option<MonitorSummary> {
        self.peers.get(&peer).map(|s| MonitorSummary {
            peer,
            rtt_ewma: s.rtt_ewma,
            ratio_ewma: s.ratio_ewma,
            samples: s.samples,
            alerted: s.alerted,
        })
    }

    /// Summaries of every tracked peer, sorted by peer id so the export
    /// is deterministic regardless of hash-map iteration order.
    pub fn summaries(&self) -> Vec<MonitorSummary> {
        let mut out: Vec<MonitorSummary> =
            self.peers.keys().filter_map(|&p| self.summary(p)).collect();
        out.sort_by_key(|s| s.peer);
        out
    }

    /// Drops a peer's state (it left the neighbor set).
    pub fn forget(&mut self, peer: NodeId) {
        self.peers.remove(&peer);
    }

    /// Number of tracked peers.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True when no peers are tracked.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> TivMonitor {
        TivMonitor::new(MonitorConfig::default())
    }

    #[test]
    fn no_alert_before_min_samples() {
        let mut mon = monitor();
        // Ratio 0.1 — clearly alertable — but only two samples.
        assert!(!mon.observe(1, 100.0, 10.0));
        assert!(!mon.observe(1, 100.0, 10.0));
        assert!(mon.observe(1, 100.0, 10.0)); // third sample arms it
    }

    #[test]
    fn healthy_peer_never_alerts() {
        let mut mon = monitor();
        for _ in 0..50 {
            assert!(!mon.observe(2, 50.0, 48.0)); // ratio ≈ 0.96
        }
        assert!(mon.alerted_peers().is_empty());
    }

    #[test]
    fn hysteresis_prevents_flapping() {
        let mut mon = monitor();
        // Drive the smoothed ratio below 0.6.
        for _ in 0..10 {
            mon.observe(3, 100.0, 40.0);
        }
        assert!(mon.is_alerted(3));
        // A ratio just above raise_below but below clear_above must NOT
        // clear the alarm.
        for _ in 0..10 {
            mon.observe(3, 100.0, 65.0);
        }
        assert!(mon.is_alerted(3), "alarm cleared inside the hysteresis band");
        // Recovering above clear_above does clear it.
        for _ in 0..20 {
            mon.observe(3, 100.0, 95.0);
        }
        assert!(!mon.is_alerted(3));
    }

    #[test]
    fn ewma_smooths_jitter() {
        let mut mon = monitor();
        // Alternate clean (1.0) and one wild outlier sample; the
        // smoothed ratio should stay above the alarm threshold.
        for i in 0..30 {
            let predicted = if i == 10 { 5.0 } else { 98.0 };
            mon.observe(4, 100.0, predicted);
        }
        assert!(!mon.is_alerted(4), "one outlier should not trip the alarm");
        let r = mon.ratio(4).unwrap();
        assert!(r > 0.8, "smoothed ratio {r} dragged too far by one outlier");
    }

    #[test]
    fn forget_clears_state() {
        let mut mon = monitor();
        for _ in 0..5 {
            mon.observe(7, 100.0, 10.0);
        }
        assert!(mon.is_alerted(7));
        mon.forget(7);
        assert!(!mon.is_alerted(7));
        assert!(mon.is_empty());
    }

    #[test]
    fn tracks_multiple_peers_independently() {
        let mut mon = monitor();
        for _ in 0..10 {
            mon.observe(1, 100.0, 20.0); // shrunk → alert
            mon.observe(2, 100.0, 95.0); // healthy
        }
        assert_eq!(mon.alerted_peers(), vec![1]);
        assert_eq!(mon.len(), 2);
    }

    #[test]
    #[should_panic(expected = "hysteresis band")]
    fn inverted_band_rejected() {
        TivMonitor::new(MonitorConfig {
            raise_below: 0.8,
            clear_above: 0.6,
            ..MonitorConfig::default()
        });
    }

    #[test]
    fn summaries_export_sorted_state() {
        let mut mon = monitor();
        for _ in 0..5 {
            mon.observe(9, 100.0, 10.0); // alerted
            mon.observe(2, 50.0, 49.0); // healthy
        }
        let all = mon.summaries();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].peer, 2);
        assert_eq!(all[1].peer, 9);
        assert!(all[1].alerted && !all[0].alerted);
        assert_eq!(mon.summary(9), Some(all[1]));
        assert_eq!(mon.summary(2).unwrap().rtt_ewma, mon.rtt(2).unwrap());
        assert_eq!(mon.summary(77), None);
    }

    #[test]
    fn integrates_with_live_vivaldi() {
        use delayspace::synth::{Dataset, InternetDelaySpace};
        use simnet::net::{JitterModel, Network};
        use vivaldi::{VivaldiConfig, VivaldiSystem};
        let space = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(120).build(31);
        let m = space.matrix();
        let mut sys = VivaldiSystem::new(
            VivaldiConfig { neighbors: 16, ..VivaldiConfig::default() },
            m.len(),
            31,
        );
        let mut net = Network::new(m, JitterModel::Multiplicative { sigma: 0.05 }, 31);
        sys.run_rounds(&mut net, 150);
        // Node 0 monitors its neighbors over further rounds.
        let mut mon = monitor();
        for _ in 0..12 {
            sys.run_rounds(&mut net, 5);
            for &peer in sys.neighbors_of(0).to_vec().iter() {
                if let Some(rtt) = m.get(0, peer) {
                    mon.observe(peer, rtt, sys.predicted(0, peer));
                }
            }
        }
        // Alerted peers must genuinely be shrunk edges.
        let sev = crate::severity::Severity::compute(m, 0);
        for peer in mon.alerted_peers() {
            let ratio = mon.ratio(peer).unwrap();
            assert!(ratio < 0.75, "alerted peer with healthy ratio {ratio}");
            // And most should cause at least *some* violations.
            let _ = sev.severity(0, peer);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The hysteresis contract, as a property: once the observed
        /// ratios oscillate *strictly inside* the band
        /// `(raise_below, clear_above)`, the alert state changes at most
        /// once more, ever. (The single allowed transition is a raise
        /// that was already pending: a pre-band history can leave the
        /// smoothed ratio below `raise_below` while `min_samples` has
        /// not been reached; the alarm then arms on an in-band sample.
        /// After that, in-band samples can drag the EWMA neither below
        /// `raise_below` nor above `clear_above`, so it never flaps.)
        #[test]
        fn never_flaps_inside_the_hysteresis_band(
            alpha in 0.05f64..1.0,
            raise_below in 0.2f64..0.7,
            band_width in 0.05f64..0.3,
            min_samples in 1u32..6,
            prefix in proptest::collection::vec(0.01f64..3.0, 0..12),
            band_positions in proptest::collection::vec(0.001f64..0.999, 1..80),
        ) {
            let cfg = MonitorConfig {
                alpha,
                raise_below,
                clear_above: raise_below + band_width,
                min_samples,
            };
            let mut mon = TivMonitor::new(cfg);
            let rtt = 100.0;
            // Arbitrary pre-band history: the smoothed ratio and alert
            // state may end up anywhere.
            for r in &prefix {
                mon.observe(1, rtt, r * rtt);
            }
            // In-band phase: every sample's ratio is strictly inside
            // (raise_below, clear_above).
            let mut prev = mon.is_alerted(1);
            let mut transitions = 0u32;
            for p in &band_positions {
                let ratio = raise_below + band_width * p;
                let now = mon.observe(1, rtt, ratio * rtt);
                if now != prev {
                    transitions += 1;
                    prev = now;
                }
            }
            prop_assert!(
                transitions <= 1,
                "alert flapped: {} transitions during the in-band phase", transitions
            );
        }
    }
}
