//! TIV-aware Meridian (Section 5.3).
//!
//! Two straight-forward applications of the TIV alert mechanism, both
//! fed by an independent embedding (we use Vivaldi, as the paper does):
//!
//! * **Ring construction** — when the prediction ratio of the edge from
//!   a Meridian node to a prospective ring member falls outside the safe
//!   band `[ts, tl]`, the member is placed into rings by *both* its
//!   measured and its predicted delay (worst case: two rings). A
//!   severely shrunk edge suggests the measured delay is
//!   routing-inflated, so the member also belongs "closer in"; an edge
//!   stretched beyond `tl` suggests the opposite.
//! * **Query restart** — when the recursive query would terminate, the
//!   current node checks the prediction ratio of its edge to the target;
//!   if it is below `ts` (a likely severe TIV), it restarts the member
//!   selection around the *predicted* delay instead and continues.
//!
//! The paper uses `ts = 0.6`, `tl = 2` and reports modest penalty
//! improvements at +5–6% probing overhead (Figures 24–25).

use delayspace::matrix::NodeId;
use meridian::{
    closest_neighbor, BuildOptions, MeridianConfig, MeridianOverlay, Placement, QueryResult,
    Termination,
};
use simnet::net::Network;
use vivaldi::Embedding;

/// Thresholds of the TIV-aware extensions.
#[derive(Clone, Copy, Debug)]
pub struct TivMeridianConfig {
    /// The base Meridian parameters.
    pub base: MeridianConfig,
    /// Lower prediction-ratio threshold `ts` (paper: 0.6).
    pub ts: f64,
    /// Upper prediction-ratio threshold `tl` (paper: 2.0).
    pub tl: f64,
}

impl Default for TivMeridianConfig {
    fn default() -> Self {
        TivMeridianConfig { base: MeridianConfig::default(), ts: 0.6, tl: 2.0 }
    }
}

/// Builds a Meridian overlay with TIV-aware dual ring placement.
///
/// `emb` is the independent embedding providing prediction ratios;
/// `gossip_sample` as in [`BuildOptions`].
pub fn build_tiv_aware(
    cfg: &TivMeridianConfig,
    members: Vec<NodeId>,
    emb: &Embedding,
    net: &mut Network<'_>,
    seed: u64,
    gossip_sample: Option<usize>,
) -> MeridianOverlay {
    let base = cfg.base;
    let (ts, tl) = (cfg.ts, cfg.tl);
    let place = move |owner: NodeId, member: NodeId, measured: f64| -> Vec<(usize, f64)> {
        let by_measured = base.ring_index(measured);
        if measured <= 0.0 {
            return vec![(by_measured, measured)];
        }
        let predicted = emb.predicted(owner, member);
        let ratio = predicted / measured;
        if ratio < ts || ratio > tl {
            // The extra entry is *recorded under the predicted delay*:
            // that is what lets a query whose annulus misses the
            // (TIV-distorted) measured delay still consider the member.
            let predicted = predicted.max(0.1);
            let by_predicted = base.ring_index(predicted);
            if by_predicted != by_measured {
                return vec![(by_measured, measured), (by_predicted, predicted)];
            }
        }
        vec![(by_measured, measured)]
    };
    MeridianOverlay::build(
        base,
        members,
        net,
        seed,
        &BuildOptions { gossip_sample, edge_filter: None, placement: Placement::Custom(&place) },
    )
}

/// Runs the TIV-aware recursive query: standard β-terminated recursion,
/// plus the restart rule described in the module docs. Each visited
/// node may trigger at most one restart (bounding the extra probes).
pub fn tiv_aware_query(
    overlay: &MeridianOverlay,
    emb: &Embedding,
    net: &mut Network<'_>,
    start: NodeId,
    target: NodeId,
    cfg: &TivMeridianConfig,
) -> Option<QueryResult> {
    let beta = overlay.config().beta;
    let mut current = start;
    let mut d = net.probe(start, target)?;
    let mut target_probes = 1u64;
    let mut best = (current, d);
    let mut hops = 0usize;
    let mut visited = vec![current];
    // The paper's mechanism restarts the member selection once when the
    // query is about to stop at a suspected TIV edge; a single restart
    // per query keeps the probing overhead in the paper's +5% regime.
    let mut restarts_left = 1u32;

    loop {
        let node = overlay.node(current).expect("query at a non-member node");
        let mut next: Option<(NodeId, f64)> = None;
        let mut probed: Vec<NodeId> = Vec::new();
        let consider = |candidates: Vec<meridian::RingMember>,
                        probed: &mut Vec<NodeId>,
                        net: &mut Network<'_>,
                        next: &mut Option<(NodeId, f64)>,
                        best: &mut (NodeId, f64),
                        target_probes: &mut u64| {
            for m in candidates {
                if probed.contains(&m.node) {
                    continue;
                }
                probed.push(m.node);
                *target_probes += 1;
                let Some(dm) = net.probe(m.node, target) else { continue };
                if dm < best.1 {
                    *best = (m.node, dm);
                }
                if next.map_or(true, |(_, nd)| dm < nd) {
                    *next = Some((m.node, dm));
                }
            }
        };

        consider(
            node.members_in_annulus(d, beta),
            &mut probed,
            net,
            &mut next,
            &mut best,
            &mut target_probes,
        );

        let mut stop = match next {
            Some((_, nd)) => nd > beta * d,
            None => true,
        };

        if stop && restarts_left > 0 {
            // TIV-alert restart: is the edge current→target suspiciously
            // shrunk in the embedding?
            let predicted = emb.predicted(current, target);
            if d > 0.0 && predicted / d < cfg.ts {
                restarts_left -= 1;
                consider(
                    node.members_in_annulus(predicted.max(0.1), beta),
                    &mut probed,
                    net,
                    &mut next,
                    &mut best,
                    &mut target_probes,
                );
                // After the restart, resume the normal rule.
                stop = match next {
                    Some((_, nd)) => nd > beta * d,
                    None => true,
                };
            }
        }

        let Some((next_node, next_d)) = next else { break };
        if stop || visited.contains(&next_node) {
            break;
        }
        visited.push(next_node);
        current = next_node;
        d = next_d;
        hops += 1;
    }

    Some(QueryResult { selected: best.0, selected_delay: best.1, hops, target_probes })
}

/// Convenience: runs the *plain* query on the same overlay for
/// overhead/penalty comparisons.
pub fn plain_query(
    overlay: &MeridianOverlay,
    net: &mut Network<'_>,
    start: NodeId,
    target: NodeId,
    termination: Termination,
) -> Option<QueryResult> {
    closest_neighbor(overlay, net, start, target, termination)
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayspace::matrix::DelayMatrix;
    use delayspace::synth::{Dataset, InternetDelaySpace};
    use simnet::net::JitterModel;
    use vivaldi::{VivaldiConfig, VivaldiSystem};

    fn embed(m: &DelayMatrix, seed: u64) -> Embedding {
        let mut sys = VivaldiSystem::new(
            VivaldiConfig { neighbors: 16, ..VivaldiConfig::default() },
            m.len(),
            seed,
        );
        let mut net = Network::new(m, JitterModel::None, seed);
        sys.run_rounds(&mut net, 120);
        sys.embedding()
    }

    #[test]
    fn dual_placement_creates_extra_ring_entries() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(80).build(3);
        let m = s.matrix();
        let emb = embed(m, 3);
        let members: Vec<NodeId> = (0..40).collect();
        let cfg = TivMeridianConfig::default();
        let mut net_a = Network::new(m, JitterModel::None, 1);
        let plain = MeridianOverlay::build(
            cfg.base,
            members.clone(),
            &mut net_a,
            1,
            &BuildOptions::default(),
        );
        let mut net_b = Network::new(m, JitterModel::None, 1);
        let aware = build_tiv_aware(&cfg, members, &emb, &mut net_b, 1, None);
        // TIV-aware construction never has fewer entries, and on a TIV
        // data set should have strictly more somewhere.
        assert!(aware.mean_member_count() >= plain.mean_member_count());
        assert!(
            aware.mean_member_count() > plain.mean_member_count(),
            "no dual placements happened on a TIV-rich data set"
        );
    }

    #[test]
    fn tiv_query_returns_probed_member_with_true_delay() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(60).build(5);
        let m = s.matrix();
        let emb = embed(m, 5);
        let cfg = TivMeridianConfig::default();
        let mut net = Network::new(m, JitterModel::None, 2);
        let overlay = build_tiv_aware(&cfg, (0..30).collect(), &emb, &mut net, 2, None);
        for target in 31..40 {
            let res = tiv_aware_query(&overlay, &emb, &mut net, 0, target, &cfg).unwrap();
            assert!(overlay.contains(res.selected));
            assert_eq!(res.selected_delay, m.get(res.selected, target).unwrap());
        }
    }

    #[test]
    fn probe_accounting_is_exact() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(50).build(7);
        let m = s.matrix();
        let emb = embed(m, 7);
        let cfg = TivMeridianConfig::default();
        let mut net = Network::new(m, JitterModel::None, 3);
        let overlay = build_tiv_aware(&cfg, (0..25).collect(), &emb, &mut net, 3, None);
        let before = net.stats().total();
        let res = tiv_aware_query(&overlay, &emb, &mut net, 0, 40, &cfg).unwrap();
        assert_eq!(net.stats().total() - before, res.target_probes);
    }

    #[test]
    fn restart_can_rescue_a_tiv_stranded_query() {
        // Construct a scenario where plain Meridian stops at a bad node
        // but the alert-driven restart finds a closer one. Topology:
        // start S, target T with d(S,T)=100 but an embedding that says
        // ~30 (shrunk, ratio 0.3 < ts). A member M sits 30 from S
        // (inside the predicted annulus [15,45] but outside the measured
        // annulus [50,150]) and only 8 from T.
        let mut m = DelayMatrix::new(4);
        // ids: S=0, M=1, far member F=2, T=3
        m.set(0, 3, 100.0);
        m.set(0, 1, 30.0);
        m.set(0, 2, 400.0);
        m.set(1, 3, 8.0);
        m.set(2, 3, 390.0);
        m.set(1, 2, 380.0);
        // Hand-build an embedding that shrinks (S,T) to 30.
        use vivaldi::Coord;
        let emb = Embedding::new(vec![
            Coord::from_vec(vec![0.0, 0.0]),
            Coord::from_vec(vec![30.0, 0.0]),
            Coord::from_vec(vec![400.0, 0.0]),
            Coord::from_vec(vec![30.0, 5.0]), // predicted d(S,T) ≈ 30.4
        ]);
        let cfg = TivMeridianConfig::default();
        let mut net = Network::new(&m, JitterModel::None, 4);
        let overlay =
            MeridianOverlay::build(cfg.base, vec![0, 1, 2], &mut net, 4, &BuildOptions::default());
        // Plain query from S: annulus [50,150] of S contains nobody
        // (M at 30, F at 400) → returns S itself at 100.
        let plain = plain_query(&overlay, &mut net, 0, 3, Termination::Beta).unwrap();
        assert_eq!(plain.selected, 0);
        // TIV-aware query: ratio 30.4/100 < 0.6 → restart around 30.4:
        // annulus [15.2, 45.6] contains M → M probes T (8 ms) → found.
        let aware = tiv_aware_query(&overlay, &emb, &mut net, 0, 3, &cfg).unwrap();
        assert_eq!(aware.selected, 1);
        assert_eq!(aware.selected_delay, 8.0);
        assert!(aware.target_probes > plain.target_probes);
    }

    #[test]
    fn safe_band_edges_get_single_placement() {
        // With thresholds wide open (ts=0, tl=∞) placement is identical
        // to plain Meridian.
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(40).build(11);
        let m = s.matrix();
        let emb = embed(m, 11);
        let cfg = TivMeridianConfig { ts: 0.0, tl: f64::INFINITY, ..Default::default() };
        let mut net_a = Network::new(m, JitterModel::None, 6);
        let aware = build_tiv_aware(&cfg, (0..20).collect(), &emb, &mut net_a, 6, None);
        let mut net_b = Network::new(m, JitterModel::None, 6);
        let plain = MeridianOverlay::build(
            cfg.base,
            (0..20).collect(),
            &mut net_b,
            6,
            &BuildOptions::default(),
        );
        assert_eq!(aware.mean_member_count(), plain.mean_member_count());
    }
}
