//! The delta epoch builder: incremental snapshots for churning delay
//! spaces.
//!
//! [`FluxBuilder`] is the incremental sibling of
//! [`EpochBuilder`](crate::epoch::EpochBuilder). Both fold streamed RTT
//! observations through per-node hysteresis monitors into a working
//! matrix; where the classic builder re-embeds everything and leaves
//! the O(n³) analyses to be computed per query, the flux builder keeps
//! the *exact* severity matrix and the k-best detour table materialised
//! across epochs and brings them up to date with the change, not the
//! matrix size:
//!
//! 1. every [`ingest`](FluxBuilder::ingest) that actually changes a
//!    matrix entry marks both endpoint rows in a
//!    [`DirtySet`];
//! 2. [`build`](FluxBuilder::build) refines the embedding for exactly
//!    the dirty nodes ([`tivflux::refine_embedding`] — deterministic,
//!    parallel over the dirty set), then either *repairs* the derived
//!    analyses row by row (`O(|D|·n²)`) or — past the
//!    [`RebuildPolicy`] threshold — recomputes
//!    them from scratch (`O(n³)`).
//!
//! The two paths are **bit-identical** (the analyses are pure,
//! symmetric, row-decomposable functions of the matrix; the embedding
//! update is the same dirty-local function on both), so the policy is
//! purely a cost knob. `tivoid`'s `flux_equivalence` test pins this
//! across dirtiness fractions {0%, 1%, 10%, 100%}, thread counts
//! {1, 2, 4} and service shard counts.
//!
//! `FluxBuilder` implements [`EpochSource`],
//! so [`crate::epoch::spawn`] runs it on a background thread with the
//! same no-observation-loss guarantees as the classic builder.

use crate::epoch::{embed, EpochConfig, EpochSource, Observation};
use crate::snapshot::EpochSnapshot;
use delayspace::matrix::DelayMatrix;
use std::sync::Arc;
use tivcore::TivMonitor;
use tivflux::{refine_embedding, BuildKind, DerivedState, DirtySet, RebuildPolicy, RefineConfig};
use vivaldi::Embedding;

/// Construction parameters of the incremental builder.
#[derive(Clone, Copy, Debug)]
pub struct FluxConfig {
    /// The classic epoch parameters (monitors, bootstrap embedding,
    /// seed). `epoch_rounds` is unused — per-epoch re-embedding is
    /// replaced by the dirty-local refinement below.
    pub epoch: EpochConfig,
    /// Relays kept per ordered pair in the materialised detour table
    /// (rank 0 answers `route_batch`).
    pub detour_k: usize,
    /// Dirty-node coordinate refinement parameters.
    pub refine: RefineConfig,
    /// When to fall back from row repair to a full rebuild. Only ever
    /// changes build cost, never results.
    pub policy: RebuildPolicy,
    /// Worker threads for the bootstrap, repairs and rebuilds
    /// (0 = auto, [`tivpar::resolve_threads`] semantics).
    pub threads: usize,
}

impl Default for FluxConfig {
    fn default() -> Self {
        FluxConfig {
            epoch: EpochConfig::default(),
            detour_k: 1,
            refine: RefineConfig::default(),
            policy: RebuildPolicy::default(),
            threads: 0,
        }
    }
}

/// How the last [`FluxBuilder::build`] brought the derived state up to
/// date — the observability the `repro churn` experiment and the
/// `churn` bench report on.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BuildOutcome {
    /// Epoch the build produced.
    pub epoch: u64,
    /// Repair or full rebuild.
    pub kind: BuildKind,
    /// Dirty rows going into the build.
    pub dirty_rows: usize,
    /// Dirty rows as a fraction of all rows.
    pub dirty_fraction: f64,
    /// `mark_edge` calls since the previous build (observation-level
    /// churn, repeats included).
    pub edge_marks: usize,
}

/// Builds successive epoch snapshots incrementally from streamed
/// observations.
#[derive(Clone, Debug)]
pub struct FluxBuilder {
    cfg: FluxConfig,
    matrix: DelayMatrix,
    embedding: Embedding,
    monitors: Vec<TivMonitor>,
    derived: DerivedState,
    dirty: DirtySet,
    epoch: u64,
    pending: usize,
    ingested_total: u64,
    last_outcome: Option<BuildOutcome>,
}

impl FluxBuilder {
    /// Bootstraps a builder from a measured delay matrix: full Vivaldi
    /// bootstrap embedding plus a from-scratch compute of the derived
    /// analyses, returned together with the epoch-0 snapshot (which
    /// already carries the derived state, so `route_batch` is
    /// table-served from the first epoch).
    pub fn bootstrap(matrix: DelayMatrix, cfg: FluxConfig) -> (Self, EpochSnapshot) {
        assert!(cfg.detour_k >= 1, "the detour table needs k >= 1");
        let embedding = embed(&matrix, &cfg.epoch, cfg.epoch.bootstrap_rounds, 0);
        let derived = DerivedState::compute(&matrix, cfg.detour_k, cfg.threads);
        let monitors = vec![TivMonitor::new(cfg.epoch.monitor); matrix.len()];
        let n = matrix.len();
        let builder = FluxBuilder {
            cfg,
            matrix: matrix.clone(),
            embedding: embedding.clone(),
            monitors,
            derived: derived.clone(),
            dirty: DirtySet::new(n),
            epoch: 0,
            pending: 0,
            ingested_total: 0,
            last_outcome: None,
        };
        let snapshot =
            EpochSnapshot::without_monitors(0, matrix, embedding).with_derived(Arc::new(derived));
        (builder, snapshot)
    }

    /// Observations folded in since the last [`build`](Self::build).
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Total observations ever folded in.
    pub fn ingested_total(&self) -> u64 {
        self.ingested_total
    }

    /// Epoch of the last built snapshot (0 = bootstrap).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Dirty rows accumulated since the last build.
    pub fn dirty_rows(&self) -> usize {
        self.dirty.node_count()
    }

    /// How the last build was executed (`None` before the first).
    pub fn last_outcome(&self) -> Option<BuildOutcome> {
        self.last_outcome
    }

    /// The configuration.
    pub fn config(&self) -> &FluxConfig {
        &self.cfg
    }

    /// Folds one observation in, exactly like
    /// [`EpochBuilder::ingest`](crate::epoch::EpochBuilder::ingest) —
    /// and additionally marks both endpoint rows dirty whenever the
    /// smoothed value actually changes the working matrix (an
    /// observation confirming the stored value to the bit dirties
    /// nothing, so a steady stream over a quiet space stays cheap).
    ///
    /// # Panics
    /// Panics on self-loops, out-of-range nodes, or a non-positive RTT
    /// (the monitor's contract).
    pub fn ingest(&mut self, obs: Observation) {
        let n = self.matrix.len();
        assert!(
            obs.src < n && obs.dst < n,
            "observation ({},{}) outside {n} nodes",
            obs.src,
            obs.dst
        );
        assert_ne!(obs.src, obs.dst, "self-observation at node {}", obs.src);
        let predicted = self.embedding.predicted(obs.src, obs.dst);
        self.monitors[obs.src].observe(obs.dst, obs.rtt_ms, predicted);
        let smoothed = self.monitors[obs.src].rtt(obs.dst).expect("observe tracked the peer");
        let before = self.matrix.raw(obs.src, obs.dst);
        self.matrix.set(obs.src, obs.dst, smoothed);
        if before.to_bits() != smoothed.to_bits() {
            self.dirty.mark_edge(obs.src, obs.dst);
        }
        self.pending += 1;
        self.ingested_total += 1;
    }

    /// Builds the next snapshot: refines the dirty nodes' coordinates
    /// against the previous embedding, brings the derived analyses up
    /// to date (repair or full rebuild per the policy — identical
    /// results either way), freezes the monitor summaries, and resets
    /// the dirty set and pending counter.
    pub fn build(&mut self) -> EpochSnapshot {
        self.epoch += 1;
        let n = self.matrix.len();
        let dirty_nodes = self.dirty.sorted_nodes();
        let kind = self.cfg.policy.decide(dirty_nodes.len(), n);
        self.embedding = refine_embedding(
            &self.embedding,
            &self.matrix,
            &dirty_nodes,
            &self.cfg.refine,
            self.cfg.threads,
        );
        match kind {
            BuildKind::Full => self.derived.rebuild(&self.matrix, self.cfg.threads),
            BuildKind::Incremental => {
                self.derived.repair(&self.matrix, &dirty_nodes, self.cfg.threads)
            }
        }
        self.last_outcome = Some(BuildOutcome {
            epoch: self.epoch,
            kind,
            dirty_rows: dirty_nodes.len(),
            dirty_fraction: if n == 0 { 0.0 } else { dirty_nodes.len() as f64 / n as f64 },
            edge_marks: self.dirty.edge_marks(),
        });
        self.dirty.clear();
        self.pending = 0;
        let summaries = self.monitors.iter().map(TivMonitor::summaries).collect();
        EpochSnapshot::new(self.epoch, self.matrix.clone(), self.embedding.clone(), summaries)
            .with_derived(Arc::new(self.derived.clone()))
    }
}

impl EpochSource for FluxBuilder {
    type Snapshot = EpochSnapshot;
    fn ingest(&mut self, obs: Observation) {
        FluxBuilder::ingest(self, obs);
    }
    fn pending(&self) -> usize {
        FluxBuilder::pending(self)
    }
    fn ingested_total(&self) -> u64 {
        FluxBuilder::ingested_total(self)
    }
    fn build(&mut self) -> EpochSnapshot {
        FluxBuilder::build(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::spawn;
    use crate::service::{ServeConfig, TivServe};
    use delayspace::synth::{Dataset, InternetDelaySpace};

    fn ds2(n: usize, seed: u64) -> DelayMatrix {
        InternetDelaySpace::preset(Dataset::Ds2).with_nodes(n).build(seed).into_matrix()
    }

    fn cfg() -> FluxConfig {
        FluxConfig {
            epoch: EpochConfig { bootstrap_rounds: 20, seed: 3, ..EpochConfig::default() },
            threads: 1,
            ..FluxConfig::default()
        }
    }

    #[test]
    fn bootstrap_carries_derived_state() {
        let (builder, snap) = FluxBuilder::bootstrap(ds2(40, 1), cfg());
        assert_eq!(snap.epoch(), 0);
        assert!(snap.derived().is_some());
        assert_eq!(builder.epoch(), 0);
        assert_eq!(builder.dirty_rows(), 0);
        assert!(builder.last_outcome().is_none());
        // Route answers are table-served and match the scan.
        let scan =
            EpochSnapshot::without_monitors(0, snap.matrix().clone(), snap.embedding().clone());
        for (a, c) in [(0usize, 1usize), (5, 30), (39, 2)] {
            assert_eq!(snap.route(a, c), scan.route(a, c));
        }
    }

    #[test]
    fn ingest_tracks_dirty_rows_only_on_change() {
        let (mut builder, _) = FluxBuilder::bootstrap(ds2(30, 2), cfg());
        builder.ingest(Observation { src: 3, dst: 9, rtt_ms: 500.0 });
        assert_eq!(builder.dirty_rows(), 2);
        builder.ingest(Observation { src: 3, dst: 9, rtt_ms: 510.0 });
        assert_eq!(builder.dirty_rows(), 2, "same edge stays two dirty rows");
        builder.ingest(Observation { src: 11, dst: 20, rtt_ms: 77.0 });
        assert_eq!(builder.dirty_rows(), 4);
        assert_eq!(builder.pending(), 3);
        assert_eq!(builder.ingested_total(), 3);
        let snap = builder.build();
        assert_eq!(builder.dirty_rows(), 0, "build clears the dirty set");
        let outcome = builder.last_outcome().unwrap();
        assert_eq!(outcome.kind, BuildKind::Incremental);
        assert_eq!(outcome.dirty_rows, 4);
        assert_eq!(outcome.edge_marks, 3);
        assert_eq!(snap.epoch(), 1);
        // The folded observation is visible in the snapshot's matrix
        // and its derived severity covers the new value.
        assert!(snap.matrix().get(3, 9).unwrap() > 100.0);
        assert!(snap.exact_severity(3, 9).is_some());
    }

    #[test]
    fn incremental_equals_full_rebuild_bitwise() {
        let m = ds2(50, 4);
        let incr_cfg = FluxConfig { policy: RebuildPolicy::always_incremental(), ..cfg() };
        let full_cfg = FluxConfig { policy: RebuildPolicy::always_full(), ..cfg() };
        let (mut incr, _) = FluxBuilder::bootstrap(m.clone(), incr_cfg);
        let (mut full, _) = FluxBuilder::bootstrap(m, full_cfg);
        let obs = [
            Observation { src: 0, dst: 5, rtt_ms: 200.0 },
            Observation { src: 7, dst: 2, rtt_ms: 15.0 },
            Observation { src: 0, dst: 5, rtt_ms: 220.0 },
            Observation { src: 30, dst: 44, rtt_ms: 90.0 },
        ];
        for &o in &obs {
            incr.ingest(o);
            full.ingest(o);
        }
        let si = incr.build();
        let sf = full.build();
        assert_eq!(incr.last_outcome().unwrap().kind, BuildKind::Incremental);
        assert_eq!(full.last_outcome().unwrap().kind, BuildKind::Full);
        assert_eq!(si.matrix(), sf.matrix());
        for a in 0..50 {
            for c in 0..50 {
                assert_eq!(
                    si.embedding().predicted(a, c).to_bits(),
                    sf.embedding().predicted(a, c).to_bits(),
                    "embedding diverged at ({a},{c})"
                );
                assert_eq!(
                    si.exact_severity(a, c).map(f64::to_bits),
                    sf.exact_severity(a, c).map(f64::to_bits),
                    "severity diverged at ({a},{c})"
                );
                assert_eq!(si.route(a, c), sf.route(a, c), "route diverged at ({a},{c})");
            }
        }
    }

    #[test]
    fn spawned_flux_builder_publishes_and_loses_nothing() {
        let (builder, snap) = FluxBuilder::bootstrap(ds2(30, 5), cfg());
        let service = Arc::new(TivServe::new(ServeConfig::default(), snap));
        let stream = spawn(Arc::clone(&service), builder, 4);
        let tx = stream.sender();
        let sent = 50u64;
        for k in 0..sent {
            let src = (k % 7) as usize;
            tx.observe(Observation { src, dst: src + 10, rtt_ms: 40.0 + k as f64 }).unwrap();
        }
        drop(tx);
        let builder = stream.join();
        assert_eq!(builder.ingested_total(), sent, "observations were dropped");
        assert_eq!(builder.pending(), 0);
        assert!(builder.epoch() >= 1);
        assert_eq!(service.epoch(), builder.epoch());
        // The published snapshot is flux-built: derived state attached.
        assert!(service.snapshot().derived().is_some());
    }

    #[test]
    #[should_panic(expected = "self-observation")]
    fn self_observation_rejected() {
        let (mut builder, _) = FluxBuilder::bootstrap(ds2(10, 6), cfg());
        builder.ingest(Observation { src: 2, dst: 2, rtt_ms: 10.0 });
    }
}
