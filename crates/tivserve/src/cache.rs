//! A bounded LRU cache of edge-level results, one per shard.
//!
//! The cache is an optimisation only: every value it stores is a pure
//! function of the snapshot that produced it (the entry carries the
//! epoch and is ignored when it no longer matches), so hits and misses
//! can never change a query's answer — only its latency. That is what
//! lets the sharded service promise bit-identical results at every
//! shard count while still caching aggressively.
//!
//! The cache is generic over the cached value so every query kind the
//! service answers (edge estimates, route answers) shares one eviction
//! and epoch-validation implementation; the epoch lives in the slot,
//! not the value, so value types owe the cache nothing.
//!
//! Implementation: a `HashMap` keyed by the ordered query pair plus a
//! `BTreeMap` recency index over a monotonic tick. Both operations are
//! O(log n); a doubly-linked-list LRU would be O(1) but needs `unsafe`
//! (or index juggling), which this workspace forbids, and shard caches
//! are consulted once per query — the map lookup dominates either way.

use delayspace::matrix::NodeId;
use std::collections::{BTreeMap, HashMap};

/// Aggregated cache counters (additive across shards).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to evaluate.
    pub misses: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
}

impl CacheStats {
    /// Hit fraction of all lookups (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Merges another shard's counters into this one.
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.len += other.len;
    }
}

struct Slot<V> {
    value: V,
    /// Epoch of the snapshot that produced the value; a lookup under a
    /// different epoch treats the entry as stale.
    epoch: u64,
    tick: u64,
}

/// A bounded least-recently-used map from ordered query pairs to cached
/// per-edge answers of type `V`.
pub struct EdgeCache<V> {
    cap: usize,
    map: HashMap<(NodeId, NodeId), Slot<V>>,
    /// tick → key, the recency order (smallest tick = least recent).
    recency: BTreeMap<u64, (NodeId, NodeId)>,
    next_tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<V: Copy> EdgeCache<V> {
    /// A cache holding at most `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        EdgeCache {
            cap: capacity,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            next_tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up the pair, counting a hit or a miss. An entry whose
    /// epoch differs from `epoch` is stale (published over) and is
    /// treated as a miss.
    pub fn get(&mut self, key: (NodeId, NodeId), epoch: u64) -> Option<V> {
        match self.map.get_mut(&key) {
            Some(slot) if slot.epoch == epoch => {
                self.hits += 1;
                // Refresh recency.
                self.recency.remove(&slot.tick);
                slot.tick = self.next_tick;
                self.recency.insert(self.next_tick, key);
                self.next_tick += 1;
                Some(slot.value)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or overwrites) the pair's value as produced by the
    /// snapshot of `epoch`, evicting the least recently used entry when
    /// over capacity.
    pub fn insert(&mut self, key: (NodeId, NodeId), epoch: u64, value: V) {
        if self.cap == 0 {
            return;
        }
        if let Some(old) = self.map.remove(&key) {
            self.recency.remove(&old.tick);
        }
        while self.map.len() >= self.cap {
            let (&tick, &victim) = self.recency.iter().next().expect("recency tracks map");
            self.recency.remove(&tick);
            self.map.remove(&victim);
            self.evictions += 1;
        }
        self.map.insert(key, Slot { value, epoch, tick: self.next_tick });
        self.recency.insert(self.next_tick, key);
        self.next_tick += 1;
    }

    /// Drops every entry (epoch change), keeping the counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.map.len(),
        }
    }

    /// Checks the structural invariants the LRU bookkeeping must keep:
    /// the recency index and the map describe the same entries (no
    /// leaked ticks, no untracked keys), residency never exceeds the
    /// capacity, and every recency entry round-trips to its slot.
    /// Intended for tests; O(n log n).
    #[doc(hidden)]
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.recency.len() != self.map.len() {
            return Err(format!(
                "recency tracks {} entries but the map holds {}",
                self.recency.len(),
                self.map.len()
            ));
        }
        if self.cap == 0 && !self.map.is_empty() {
            return Err("zero-capacity cache holds entries".to_string());
        }
        if self.cap > 0 && self.map.len() > self.cap {
            return Err(format!(
                "{} resident entries exceed capacity {}",
                self.map.len(),
                self.cap
            ));
        }
        for (&tick, key) in &self.recency {
            let slot = self
                .map
                .get(key)
                .ok_or_else(|| format!("recency tick {tick} names evicted key {key:?}"))?;
            if slot.tick != tick {
                return Err(format!(
                    "key {key:?} holds tick {} but recency lists it at {tick}",
                    slot.tick
                ));
            }
            if tick >= self.next_tick {
                return Err(format!("tick {tick} at or beyond next_tick {}", self.next_tick));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::EdgeEstimate;

    fn est(epoch: u64, predicted: f64) -> EdgeEstimate {
        EdgeEstimate { epoch, predicted, measured: None, ratio: None, severity: None, alert: false }
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c = EdgeCache::new(4);
        assert_eq!(c.get((0, 1), 0), None);
        c.insert((0, 1), 0, est(0, 5.0));
        assert_eq!(c.get((0, 1), 0), Some(est(0, 5.0)));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut c = EdgeCache::new(2);
        c.insert((0, 1), 0, est(0, 1.0));
        c.insert((0, 2), 0, est(0, 2.0));
        // Touch (0,1) so (0,2) is now the LRU entry.
        assert!(c.get((0, 1), 0).is_some());
        c.insert((0, 3), 0, est(0, 3.0));
        assert_eq!(c.get((0, 2), 0), None, "LRU entry should have been evicted");
        assert!(c.get((0, 1), 0).is_some());
        assert!(c.get((0, 3), 0).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().len, 2);
    }

    #[test]
    fn stale_epoch_is_a_miss() {
        let mut c = EdgeCache::new(4);
        c.insert((1, 2), 0, est(0, 9.0));
        assert_eq!(c.get((1, 2), 1), None, "entry from epoch 0 must not serve epoch 1");
        c.insert((1, 2), 1, est(1, 10.0));
        assert_eq!(c.get((1, 2), 1), Some(est(1, 10.0)));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = EdgeCache::new(0);
        c.insert((0, 1), 0, est(0, 1.0));
        assert_eq!(c.get((0, 1), 0), None);
        assert_eq!(c.stats().len, 0);
        c.check_invariants().unwrap();
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let mut c = EdgeCache::new(4);
        c.insert((0, 1), 0, est(0, 1.0));
        let _ = c.get((0, 1), 0);
        c.clear();
        assert_eq!(c.stats().len, 0);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.get((0, 1), 0), None);
    }

    #[test]
    fn overwrite_does_not_grow() {
        let mut c = EdgeCache::new(2);
        for i in 0..10u64 {
            c.insert((0, 1), 0, est(0, i as f64));
        }
        assert_eq!(c.stats().len, 1);
        assert_eq!(c.get((0, 1), 0), Some(est(0, 9.0)));
        assert_eq!(c.stats().evictions, 0);
        c.check_invariants().unwrap();
    }

    #[test]
    fn caches_any_copy_value() {
        // The generic cache serves route answers (or anything Copy)
        // with the same epoch validation.
        let mut c: EdgeCache<(u32, f64)> = EdgeCache::new(2);
        c.insert((3, 4), 7, (9, 1.5));
        assert_eq!(c.get((3, 4), 7), Some((9, 1.5)));
        assert_eq!(c.get((3, 4), 8), None);
    }

    /// The ISSUE-4 randomized-ops invariant test: a few thousand
    /// random get/insert/clear operations (with a key space larger
    /// than the capacity, repeated overwrites, and epoch churn) must
    /// keep `recency.len() == map.len()`, residency within capacity,
    /// and every recency tick pointing at a live, matching slot — i.e.
    /// insert-overwrite leaks no recency ticks.
    #[test]
    fn randomized_ops_keep_invariants() {
        use rand::Rng;
        for cap in [0usize, 1, 3, 8] {
            let mut c: EdgeCache<u64> = EdgeCache::new(cap);
            let mut r = delayspace::rng::rng(0xCAC4E + cap as u64);
            let mut inserts = 0u64;
            for step in 0..4_000 {
                let key = (r.gen_range(0..6), r.gen_range(0..6));
                let epoch = r.gen_range(0..3u64);
                match r.gen_range(0..100u32) {
                    0..=54 => {
                        c.insert(key, epoch, step as u64);
                        inserts += 1;
                    }
                    55..=97 => {
                        if let Some(v) = c.get(key, epoch) {
                            assert!(v <= step as u64, "cache invented a value");
                        }
                    }
                    _ => c.clear(),
                }
                if let Err(e) = c.check_invariants() {
                    panic!("invariant broken at step {step} (cap {cap}): {e}");
                }
            }
            let s = c.stats();
            assert!(inserts > 0 && s.hits + s.misses > 0, "workload exercised the cache");
            assert!(s.evictions <= inserts, "more evictions than inserts");
        }
    }
}
