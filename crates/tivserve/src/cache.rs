//! A bounded LRU cache of edge-level results, one per shard.
//!
//! The cache is an optimisation only: every value it stores is a pure
//! function of the snapshot that produced it (the entry carries the
//! epoch and is ignored when it no longer matches), so hits and misses
//! can never change a query's answer — only its latency. That is what
//! lets the sharded service promise bit-identical results at every
//! shard count while still caching aggressively.
//!
//! Implementation: a `HashMap` keyed by the ordered query pair plus a
//! `BTreeMap` recency index over a monotonic tick. Both operations are
//! O(log n); a doubly-linked-list LRU would be O(1) but needs `unsafe`
//! (or index juggling), which this workspace forbids, and shard caches
//! are consulted once per query — the map lookup dominates either way.

use crate::snapshot::EdgeEstimate;
use delayspace::matrix::NodeId;
use std::collections::{BTreeMap, HashMap};

/// Aggregated cache counters (additive across shards).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to evaluate.
    pub misses: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
}

impl CacheStats {
    /// Hit fraction of all lookups (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Merges another shard's counters into this one.
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.len += other.len;
    }
}

struct Slot {
    value: EdgeEstimate,
    tick: u64,
}

/// A bounded least-recently-used map from ordered query pairs to
/// [`EdgeEstimate`]s.
pub struct EdgeCache {
    cap: usize,
    map: HashMap<(NodeId, NodeId), Slot>,
    /// tick → key, the recency order (smallest tick = least recent).
    recency: BTreeMap<u64, (NodeId, NodeId)>,
    next_tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl EdgeCache {
    /// A cache holding at most `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        EdgeCache {
            cap: capacity,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            next_tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up the pair, counting a hit or a miss. An entry whose
    /// epoch differs from `epoch` is stale (published over) and is
    /// treated as a miss.
    pub fn get(&mut self, key: (NodeId, NodeId), epoch: u64) -> Option<EdgeEstimate> {
        match self.map.get_mut(&key) {
            Some(slot) if slot.value.epoch == epoch => {
                self.hits += 1;
                // Refresh recency.
                self.recency.remove(&slot.tick);
                slot.tick = self.next_tick;
                self.recency.insert(self.next_tick, key);
                self.next_tick += 1;
                Some(slot.value)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or overwrites) the pair's value, evicting the least
    /// recently used entry when over capacity.
    pub fn insert(&mut self, key: (NodeId, NodeId), value: EdgeEstimate) {
        if self.cap == 0 {
            return;
        }
        if let Some(old) = self.map.remove(&key) {
            self.recency.remove(&old.tick);
        }
        while self.map.len() >= self.cap {
            let (&tick, &victim) = self.recency.iter().next().expect("recency tracks map");
            self.recency.remove(&tick);
            self.map.remove(&victim);
            self.evictions += 1;
        }
        self.map.insert(key, Slot { value, tick: self.next_tick });
        self.recency.insert(self.next_tick, key);
        self.next_tick += 1;
    }

    /// Drops every entry (epoch change), keeping the counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(epoch: u64, predicted: f64) -> EdgeEstimate {
        EdgeEstimate { epoch, predicted, measured: None, ratio: None, severity: None, alert: false }
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c = EdgeCache::new(4);
        assert_eq!(c.get((0, 1), 0), None);
        c.insert((0, 1), est(0, 5.0));
        assert_eq!(c.get((0, 1), 0), Some(est(0, 5.0)));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut c = EdgeCache::new(2);
        c.insert((0, 1), est(0, 1.0));
        c.insert((0, 2), est(0, 2.0));
        // Touch (0,1) so (0,2) is now the LRU entry.
        assert!(c.get((0, 1), 0).is_some());
        c.insert((0, 3), est(0, 3.0));
        assert_eq!(c.get((0, 2), 0), None, "LRU entry should have been evicted");
        assert!(c.get((0, 1), 0).is_some());
        assert!(c.get((0, 3), 0).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().len, 2);
    }

    #[test]
    fn stale_epoch_is_a_miss() {
        let mut c = EdgeCache::new(4);
        c.insert((1, 2), est(0, 9.0));
        assert_eq!(c.get((1, 2), 1), None, "entry from epoch 0 must not serve epoch 1");
        c.insert((1, 2), est(1, 10.0));
        assert_eq!(c.get((1, 2), 1), Some(est(1, 10.0)));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = EdgeCache::new(0);
        c.insert((0, 1), est(0, 1.0));
        assert_eq!(c.get((0, 1), 0), None);
        assert_eq!(c.stats().len, 0);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let mut c = EdgeCache::new(4);
        c.insert((0, 1), est(0, 1.0));
        let _ = c.get((0, 1), 0);
        c.clear();
        assert_eq!(c.stats().len, 0);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.get((0, 1), 0), None);
    }

    #[test]
    fn overwrite_does_not_grow() {
        let mut c = EdgeCache::new(2);
        for i in 0..10u64 {
            c.insert((0, 1), est(0, i as f64));
        }
        assert_eq!(c.stats().len, 1);
        assert_eq!(c.get((0, 1), 0), Some(est(0, 9.0)));
        assert_eq!(c.stats().evictions, 0);
    }
}
