//! # `tivserve` — the sharded TIV-aware estimation service
//!
//! The analysis layers of this workspace *compute* the paper's signals
//! (predicted RTTs, prediction ratios, TIV severity, alert states);
//! this crate *serves* them, the way the paper's §5 deployments assume
//! an online component applications can query. The design is built
//! around three ideas:
//!
//! 1. **Immutable epoch snapshots** ([`snapshot::EpochSnapshot`]):
//!    a frozen `(delay matrix, Vivaldi embedding, per-node
//!    [`TivMonitor`](tivcore::TivMonitor) summaries)` triple behind an
//!    `Arc`, swapped wholesale when a new epoch is published — readers
//!    never lock while computing and never observe a half-updated
//!    state.
//! 2. **Hash-sharded, batch-first reads** ([`service::TivServe`]):
//!    queries are hash-sharded by the ordered pair (never by the
//!    source alone, which concentrates Zipf-hot sources on one shard);
//!    each shard owns bounded LRU caches of edge and route results.
//!    All kinds go through **one unified query surface** —
//!    [`TivServe::query`] over [`query::QueryBatch`] /
//!    [`query::ReplyBatch`] — which fans a batch across shards with
//!    one [`tivpar`] worker per shard (the legacy `estimate_batch`
//!    etc. are thin wrappers). Every answer is a pure function of the
//!    snapshot, so results are **bit-identical at every shard
//!    count**.
//! 3. **A background epoch builder** ([`epoch::EpochBuilder`]):
//!    streamed RTT observations update per-node hysteresis monitors
//!    (reusing `tivcore::monitor`) and the working matrix; a rebuilt
//!    snapshot is published without stalling readers — and
//!    observations arriving *during* a publish are buffered into the
//!    next epoch, never dropped.
//! 4. **Incremental epochs** ([`flux::FluxBuilder`]): the delta
//!    builder keeps the O(n³) derived analyses (exact severity, detour
//!    table) materialised across epochs and repairs only the rows
//!    dirtied since the last publish (falling back to a full rebuild
//!    past a dirtiness threshold), so a lightly-churning space pays
//!    O(dirty·n²) per epoch instead of O(n³). Both paths are
//!    bit-identical — see `tivflux` and `ARCHITECTURE.md`.
//! 5. **A sparse million-node path** ([`sparse`]): snapshots over a
//!    [`delayspace::SparseDelayStore`] of *observed edges*, answering
//!    sampled severity (with confidence intervals) and sampled detour
//!    queries in O(witnesses) per pair — the same [`epoch::spawn`]
//!    loop streams sparse epochs via the [`epoch::PublishSink`]
//!    abstraction, never materialising n².
//!
//! [`loadgen`] generates Zipf-skewed closed-loop workloads and
//! measures throughput and batch-latency percentiles; the `repro
//! serve` subcommand and the `serve` bench target drive it.
//!
//! ```
//! use delayspace::synth::{Dataset, InternetDelaySpace};
//! use tivserve::epoch::{EpochBuilder, EpochConfig};
//! use tivserve::service::{ServeConfig, TivServe};
//!
//! let m = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(40).build(7).into_matrix();
//! let cfg = EpochConfig { bootstrap_rounds: 15, ..EpochConfig::default() };
//! let (_builder, snapshot) = EpochBuilder::bootstrap(m, cfg);
//! let service = TivServe::new(ServeConfig::default(), snapshot);
//! let answers = service.estimate_batch(&[(0, 1), (2, 3)]);
//! assert_eq!(answers.len(), 2);
//! assert!(answers[0].predicted >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod epoch;
pub mod flux;
pub mod loadgen;
pub mod query;
pub mod service;
pub mod snapshot;
pub mod sparse;

pub use cache::CacheStats;
pub use epoch::{
    spawn as spawn_epoch_builder, spawn_with, EpochBuilder, EpochConfig, EpochSource, EpochStream,
    Feed, FeedSender, Observation, PublishSink,
};
pub use flux::{BuildOutcome, FluxBuilder, FluxConfig};
pub use loadgen::{
    percentile, ClosedLoopReport, LoadReport, LoadSpec, ObservePath, WorkloadConfig,
};
pub use query::{QueryBatch, ReplyBatch, SeverityEstimate};
pub use service::{ServeConfig, TivServe};
pub use snapshot::{
    DenseParts, EdgeEstimate, EpochSnapshot, EstimateConfig, RouteEstimate, ServedSnapshot,
};
pub use sparse::{SparseEpochBuilder, SparseServe, SparseSnapshot};
