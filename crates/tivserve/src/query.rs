//! The unified query surface: one request enum, one reply enum.
//!
//! Historically the service grew four parallel batch methods
//! (`estimate_batch`, `route_batch`, `severity_batch`, `alerts_batch`),
//! and every layer above — the wire protocol's kinds, the gate server's
//! dispatch, the front's scatter/gather, the client — mirrored the same
//! four-way split. Adding a query kind meant touching four call sites
//! per layer. [`QueryBatch`]/[`ReplyBatch`] collapse that: the service
//! answers [`TivServe::query`](crate::TivServe::query), the wire layer
//! converts frames to and from these enums, and a new estimator (like
//! the sampled-severity kind the million-node path needed) is **one new
//! variant**, not four new methods.
//!
//! Every variant carries its pairs as [`NodePair`]s — the shared pair
//! alias — and every reply vector is in input pair order. Replies are
//! pure functions of `(snapshot, query, config)`, so the equivalence
//! suites can pin `query` bit-identical to the legacy methods at every
//! shard count and byte-identical over the wire.

use crate::snapshot::{EdgeEstimate, RouteEstimate};
use delayspace::NodePair;
pub use tivcore::SeverityEstimate;

/// One batch request against the service — the single query surface.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryBatch {
    /// Full edge estimates (prediction, ratio, severity, alert).
    Estimate(Vec<NodePair>),
    /// Best one-hop detours with predicted savings.
    Route(Vec<NodePair>),
    /// Sampled severities only (the estimate's severity projection).
    Severity(Vec<NodePair>),
    /// TIV alert states only (the estimate's alert projection).
    Alerts(Vec<NodePair>),
    /// Sampled severities with 95% confidence intervals, at an explicit
    /// witness budget (`witnesses == 0` uses the service's configured
    /// default). The million-node query kind: answerable from a sparse
    /// store in `O(witnesses)` per pair.
    SampledSeverity {
        /// The queried pairs.
        pairs: Vec<NodePair>,
        /// Witnesses sampled per pair (0 = service default).
        witnesses: u32,
    },
}

impl QueryBatch {
    /// The queried pairs, whatever the kind.
    pub fn pairs(&self) -> &[NodePair] {
        match self {
            QueryBatch::Estimate(pairs)
            | QueryBatch::Route(pairs)
            | QueryBatch::Severity(pairs)
            | QueryBatch::Alerts(pairs)
            | QueryBatch::SampledSeverity { pairs, .. } => pairs,
        }
    }

    /// Number of queried pairs.
    pub fn len(&self) -> usize {
        self.pairs().len()
    }

    /// True when the batch queries nothing.
    pub fn is_empty(&self) -> bool {
        self.pairs().is_empty()
    }
}

/// The answers to one [`QueryBatch`], kind for kind, in pair order.
#[derive(Clone, Debug, PartialEq)]
pub enum ReplyBatch {
    /// Answers to [`QueryBatch::Estimate`].
    Estimate(Vec<EdgeEstimate>),
    /// Answers to [`QueryBatch::Route`].
    Route(Vec<RouteEstimate>),
    /// Answers to [`QueryBatch::Severity`] (`None` = unmeasured edge).
    Severity(Vec<Option<f64>>),
    /// Answers to [`QueryBatch::Alerts`].
    Alerts(Vec<bool>),
    /// Answers to [`QueryBatch::SampledSeverity`] (`None` = unmeasured
    /// edge).
    SampledSeverity(Vec<Option<SeverityEstimate>>),
}

impl ReplyBatch {
    /// Number of answers.
    pub fn len(&self) -> usize {
        match self {
            ReplyBatch::Estimate(v) => v.len(),
            ReplyBatch::Route(v) => v.len(),
            ReplyBatch::Severity(v) => v.len(),
            ReplyBatch::Alerts(v) => v.len(),
            ReplyBatch::SampledSeverity(v) => v.len(),
        }
    }

    /// True when the reply holds no answers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when `self` answers the kind `query` asks.
    pub fn answers(&self, query: &QueryBatch) -> bool {
        matches!(
            (query, self),
            (QueryBatch::Estimate(_), ReplyBatch::Estimate(_))
                | (QueryBatch::Route(_), ReplyBatch::Route(_))
                | (QueryBatch::Severity(_), ReplyBatch::Severity(_))
                | (QueryBatch::Alerts(_), ReplyBatch::Alerts(_))
                | (QueryBatch::SampledSeverity { .. }, ReplyBatch::SampledSeverity(_))
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_and_lengths_cover_every_variant() {
        let pairs = vec![(0usize, 1usize), (2, 3)];
        let queries = [
            QueryBatch::Estimate(pairs.clone()),
            QueryBatch::Route(pairs.clone()),
            QueryBatch::Severity(pairs.clone()),
            QueryBatch::Alerts(pairs.clone()),
            QueryBatch::SampledSeverity { pairs: pairs.clone(), witnesses: 8 },
        ];
        for q in &queries {
            assert_eq!(q.pairs(), &pairs[..]);
            assert_eq!(q.len(), 2);
            assert!(!q.is_empty());
        }
        assert!(QueryBatch::Estimate(Vec::new()).is_empty());
    }

    #[test]
    fn answers_matches_kinds_diagonally() {
        let q = QueryBatch::Severity(vec![(0, 1)]);
        assert!(ReplyBatch::Severity(vec![None]).answers(&q));
        assert!(!ReplyBatch::Alerts(vec![true]).answers(&q));
        let sq = QueryBatch::SampledSeverity { pairs: vec![(0, 1)], witnesses: 0 };
        assert!(ReplyBatch::SampledSeverity(vec![None]).answers(&sq));
        assert!(!ReplyBatch::Severity(vec![None]).answers(&sq));
    }
}
