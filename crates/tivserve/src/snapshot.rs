//! Immutable epoch snapshots: the state a query is answered from.
//!
//! The service never answers from mutable state. All reads go through an
//! [`EpochSnapshot`] — a frozen `(delay matrix, embedding, per-node
//! monitor summaries)` triple tagged with an epoch number — shared
//! behind an `Arc` and swapped wholesale when the epoch builder
//! publishes. Everything a snapshot computes is a pure function of the
//! snapshot and the query, which is what makes the sharded service
//! bit-identical to a serial loop (see `service`).

use delayspace::matrix::{DelayMatrix, NodeId};
use std::sync::Arc;
use tivcore::severity::estimate_severity;
use tivcore::MonitorSummary;
use tivflux::DerivedState;
use vivaldi::Embedding;

/// Tuning of the per-edge evaluation.
#[derive(Clone, Copy, Debug)]
pub struct EstimateConfig {
    /// Witnesses sampled by the severity estimator (`k` of
    /// [`tivcore::severity::estimate_severity`]).
    pub severity_witnesses: usize,
    /// Prediction-ratio alarm threshold used when the querying node has
    /// no monitor state for the peer (the paper deploys 0.6).
    pub alert_threshold: f64,
    /// Base seed of the witness sampling. The effective per-edge seed
    /// also folds in the epoch and the (unordered) edge, so estimates
    /// are decorrelated across edges yet a pure function of
    /// `(snapshot, edge, config)`.
    pub seed: u64,
}

impl Default for EstimateConfig {
    fn default() -> Self {
        EstimateConfig { severity_witnesses: 16, alert_threshold: 0.6, seed: 0 }
    }
}

/// The answer of a `route_batch` query: the best one-hop relay for an
/// ordered pair, resolved against the frozen snapshot.
///
/// `relay`/`via_ms` are present whenever *any* fully-measured two-hop
/// path exists (so a detour can be offered even for an unmeasured
/// direct edge); the saving fields additionally need a measured direct
/// delay to compare against. `saving_ms` is signed — a negative value
/// means the best detour loses to the direct path and the querier
/// should route directly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RouteEstimate {
    /// Epoch of the snapshot that answered.
    pub epoch: u64,
    /// Measured direct delay (ms), when the snapshot has one.
    pub direct_ms: Option<f64>,
    /// The best relay by `(via delay, relay id)` order, when any
    /// two-hop path is measured.
    pub relay: Option<NodeId>,
    /// Detour delay `d(a,relay) + d(relay,c)` in ms.
    pub via_ms: Option<f64>,
    /// `direct - via` in ms (needs both measured).
    pub saving_ms: Option<f64>,
    /// `saving_ms / direct_ms` (`None` when undefined, 0 for a zero
    /// direct delay).
    pub saving_frac: Option<f64>,
}

impl RouteEstimate {
    /// True when the detour strictly beats the measured direct path.
    pub fn beneficial(&self) -> bool {
        self.saving_ms.is_some_and(|s| s > 0.0)
    }
}

/// The edge-level answer the service returns.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeEstimate {
    /// Epoch of the snapshot that answered.
    pub epoch: u64,
    /// Delay predicted by the embedding (ms).
    pub predicted: f64,
    /// Measured delay, when the snapshot has one.
    pub measured: Option<f64>,
    /// Prediction ratio `predicted / measured` (`None` when unmeasured
    /// or the measurement is zero).
    pub ratio: Option<f64>,
    /// Sampled TIV-severity estimate of the edge (`None` when
    /// unmeasured).
    pub severity: Option<f64>,
    /// TIV alert state: the querying node's hysteresis monitor when it
    /// tracks the peer, else the snapshot-ratio alarm.
    pub alert: bool,
}

/// Anything the serving stack can publish and serve an epoch from:
/// the dense [`EpochSnapshot`] and the million-node
/// [`SparseSnapshot`](crate::sparse::SparseSnapshot).
///
/// The trait is the **one constructor surface** for snapshots: every
/// build path — the classic epoch builder, the incremental flux
/// builder, the sparse builder, and a chaos restart rebuilding a
/// replica from the deployment's retained state — goes through
/// [`assemble`](ServedSnapshot::assemble), so dense and sparse
/// snapshots are constructed (and reconstructed) uniformly.
/// [`into_parts`](ServedSnapshot::into_parts) is the inverse; a
/// round-trip re-tagged with a new epoch is exactly how a restarted
/// replica's state is rebuilt.
pub trait ServedSnapshot: Clone + Send + Sync + 'static {
    /// Everything the snapshot freezes besides the epoch tag.
    type Parts: Send;

    /// Freezes `parts` as the snapshot of `epoch` — the single
    /// validated constructor every build path funnels through.
    fn assemble(epoch: u64, parts: Self::Parts) -> Self;

    /// Splits the snapshot back into its epoch tag and parts.
    fn into_parts(self) -> (u64, Self::Parts);

    /// The epoch this snapshot froze.
    fn epoch(&self) -> u64;

    /// Number of nodes served.
    fn node_count(&self) -> usize;
}

/// The constituent parts of a dense [`EpochSnapshot`] — what
/// [`ServedSnapshot::assemble`] freezes besides the epoch tag.
#[derive(Clone, Debug)]
pub struct DenseParts {
    /// The measured delay matrix.
    pub matrix: DelayMatrix,
    /// The Vivaldi embedding of the matrix.
    pub embedding: Embedding,
    /// `monitors[i]` is node `i`'s exported monitor state, sorted by
    /// peer id (possibly empty).
    pub monitors: Vec<Vec<MonitorSummary>>,
    /// Precomputed O(n³) analyses, when the incremental pipeline
    /// maintains them.
    pub derived: Option<Arc<DerivedState>>,
}

/// A frozen service state: delay matrix + embedding + monitor
/// summaries, tagged with the epoch that produced it.
#[derive(Clone, Debug)]
pub struct EpochSnapshot {
    epoch: u64,
    matrix: DelayMatrix,
    embedding: Embedding,
    /// `monitors[i]` is node `i`'s exported [`TivMonitor`] state,
    /// sorted by peer id (possibly empty).
    monitors: Vec<Vec<MonitorSummary>>,
    /// Precomputed O(n³) analyses (exact severity + detour table) kept
    /// fresh by the incremental epoch pipeline. When present, `route`
    /// answers from the table's rank 0 — bit-identical to the O(n)
    /// scan, O(1) per query — and [`EpochSnapshot::exact_severity`]
    /// serves the exact metric. Snapshots from the classic builder
    /// carry `None` and keep the scan path.
    derived: Option<Arc<DerivedState>>,
}

impl ServedSnapshot for EpochSnapshot {
    type Parts = DenseParts;

    /// Freezes a dense snapshot — the single validated construction
    /// path behind [`EpochSnapshot::new`],
    /// [`EpochSnapshot::without_monitors`] and
    /// [`EpochSnapshot::with_derived`], and the one both the flux
    /// builder and a chaos restart rebuild through.
    ///
    /// # Panics
    /// Panics when the matrix, embedding, monitor table or derived
    /// state disagree on the node count, or when a monitor export is
    /// not sorted by peer.
    fn assemble(epoch: u64, parts: Self::Parts) -> Self {
        let DenseParts { matrix, embedding, monitors, derived } = parts;
        let n = matrix.len();
        assert_eq!(embedding.len(), n, "embedding covers {} of {n} nodes", embedding.len());
        assert_eq!(monitors.len(), n, "monitor table covers {} of {n} nodes", monitors.len());
        for (i, peers) in monitors.iter().enumerate() {
            assert!(
                peers.windows(2).all(|w| w[0].peer < w[1].peer),
                "node {i}: monitor summaries not sorted by peer"
            );
            assert!(peers.iter().all(|s| s.peer < n), "node {i}: summary of unknown peer");
        }
        if let Some(d) = &derived {
            assert_eq!(d.len(), n, "derived state covers {} of {n} nodes", d.len());
        }
        EpochSnapshot { epoch, matrix, embedding, monitors, derived }
    }

    fn into_parts(self) -> (u64, DenseParts) {
        let EpochSnapshot { epoch, matrix, embedding, monitors, derived } = self;
        (epoch, DenseParts { matrix, embedding, monitors, derived })
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn node_count(&self) -> usize {
        self.matrix.len()
    }
}

impl EpochSnapshot {
    /// Freezes a snapshot (no derived state); routes through
    /// [`ServedSnapshot::assemble`].
    ///
    /// # Panics
    /// Panics when the matrix, embedding and monitor table disagree on
    /// the node count, or when a monitor export is not sorted by peer.
    pub fn new(
        epoch: u64,
        matrix: DelayMatrix,
        embedding: Embedding,
        monitors: Vec<Vec<MonitorSummary>>,
    ) -> Self {
        Self::assemble(epoch, DenseParts { matrix, embedding, monitors, derived: None })
    }

    /// Attaches precomputed derived state (the incremental pipeline's
    /// exact severity matrix and detour table). The caller contracts
    /// that the state was computed from **this snapshot's matrix** —
    /// the `FluxBuilder` construction path guarantees it, and the
    /// `flux_equivalence` test pins that table-served answers equal the
    /// scan-served ones. Routes through [`ServedSnapshot::assemble`].
    ///
    /// # Panics
    /// Panics when the derived state covers a different node count.
    pub fn with_derived(self, derived: Arc<DerivedState>) -> Self {
        let (epoch, mut parts) = self.into_parts();
        parts.derived = Some(derived);
        Self::assemble(epoch, parts)
    }

    /// The attached derived state, when the snapshot was built by the
    /// incremental pipeline.
    pub fn derived(&self) -> Option<&DerivedState> {
        self.derived.as_deref()
    }

    /// The exact TIV severity of `(a, c)` from the precomputed severity
    /// matrix; `None` when the snapshot carries no derived state or the
    /// edge is unmeasured. (The sampled estimator behind
    /// [`EpochSnapshot::evaluate`] stays available either way — it
    /// models what a deployed node could measure with `2k` probes.)
    pub fn exact_severity(&self, a: NodeId, c: NodeId) -> Option<f64> {
        self.derived.as_ref()?.severity.severity(a, c)
    }

    /// A snapshot with no monitor state (alerts fall back to the ratio
    /// rule for every edge).
    pub fn without_monitors(epoch: u64, matrix: DelayMatrix, embedding: Embedding) -> Self {
        let n = matrix.len();
        Self::new(epoch, matrix, embedding, vec![Vec::new(); n])
    }

    /// The epoch tag.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of nodes served.
    pub fn len(&self) -> usize {
        self.matrix.len()
    }

    /// True when the snapshot serves no nodes.
    pub fn is_empty(&self) -> bool {
        self.matrix.is_empty()
    }

    /// The frozen delay matrix.
    pub fn matrix(&self) -> &DelayMatrix {
        &self.matrix
    }

    /// The frozen embedding.
    pub fn embedding(&self) -> &Embedding {
        &self.embedding
    }

    /// Node `a`'s monitor summary of `peer`, if `a` tracks it.
    pub fn monitor_summary(&self, a: NodeId, peer: NodeId) -> Option<&MonitorSummary> {
        let peers = &self.monitors[a];
        peers.binary_search_by_key(&peer, |s| s.peer).ok().map(|idx| &peers[idx])
    }

    /// Total alerted `(observer, peer)` monitor entries in the snapshot.
    pub fn alerted_monitor_entries(&self) -> usize {
        self.monitors.iter().flatten().filter(|s| s.alerted).count()
    }

    /// The witness-sampling seed of one unordered edge: a pure function
    /// of `(config seed, epoch, {a, c})`, so estimates are symmetric in
    /// the endpoints and stable for the snapshot's lifetime.
    fn edge_seed(&self, cfg: &EstimateConfig, a: NodeId, c: NodeId) -> u64 {
        let (lo, hi) = if a < c { (a, c) } else { (c, a) };
        cfg.seed
            ^ self.epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (((lo as u64) << 32) | hi as u64).wrapping_mul(0xd605_0bb5_1656_57a1)
    }

    /// Evaluates one edge query against the frozen state.
    ///
    /// Pure: the result depends only on `(self, a, c, cfg)` — never on
    /// caches, shard layout or thread count — which is the invariant the
    /// sharded service's equivalence tests pin.
    pub fn evaluate(&self, a: NodeId, c: NodeId, cfg: &EstimateConfig) -> EdgeEstimate {
        let predicted = self.embedding.predicted(a, c);
        let measured = self.matrix.get(a, c);
        let ratio = measured.filter(|&d| d > 0.0).map(|d| predicted / d);
        let severity = if measured.is_some() && a != c {
            estimate_severity(&self.matrix, a, c, cfg.severity_witnesses, self.edge_seed(cfg, a, c))
        } else {
            None
        };
        let alert = match self.monitor_summary(a, c) {
            Some(s) => s.alerted,
            None => ratio.is_some_and(|r| r < cfg.alert_threshold),
        };
        EdgeEstimate { epoch: self.epoch, predicted, measured, ratio, severity, alert }
    }

    /// The sampled severity of `(a, c)` with a 95% confidence interval,
    /// at an explicit witness budget `k`.
    ///
    /// Pure in `(self, a, c, k, cfg)` like [`EpochSnapshot::evaluate`],
    /// and seeded by the same per-edge seed — so at
    /// `k == cfg.severity_witnesses` the returned `point` is
    /// bit-identical to the `severity` field of
    /// [`EpochSnapshot::evaluate`]'s answer. `None` for unmeasured
    /// edges and self-pairs, mirroring `evaluate`'s severity gating.
    pub fn sampled_severity(
        &self,
        a: NodeId,
        c: NodeId,
        k: usize,
        cfg: &EstimateConfig,
    ) -> Option<tivcore::SeverityEstimate> {
        if a == c || self.matrix.get(a, c).is_none() {
            return None;
        }
        tivcore::estimate_severity_ci(&self.matrix, a, c, k, self.edge_seed(cfg, a, c))
    }

    /// Evaluates one detour-routing query against the frozen state: the
    /// best one-hop relay of `(a, c)` and its predicted saving.
    ///
    /// Pure in `(self, a, c)` like [`EpochSnapshot::evaluate`] — the
    /// relay search is [`tivroute::best_detour`], whose `(via, relay
    /// id)` ranking is a total order, so the sharded `route_batch` stays
    /// bit-identical at every shard count. Snapshots carrying derived
    /// state answer from the detour table's rank 0 instead — exactly
    /// `best_detour`'s answer (pinned by `tivroute`'s
    /// `best_detour_matches_table_rank_zero` and the `flux_equivalence`
    /// integration test), at O(1) per query instead of O(n).
    pub fn route(&self, a: NodeId, c: NodeId) -> RouteEstimate {
        let direct_ms = self.matrix.get(a, c);
        let best = match &self.derived {
            Some(d) => d.detour.best(a, c),
            None => tivroute::best_detour(&self.matrix, a, c),
        };
        match best {
            Some(best) => {
                let saving_ms = direct_ms.map(|d| d - best.via_ms);
                let saving_frac =
                    direct_ms.map(|d| if d > 0.0 { (d - best.via_ms) / d } else { 0.0 });
                RouteEstimate {
                    epoch: self.epoch,
                    direct_ms,
                    relay: Some(best.relay),
                    via_ms: Some(best.via_ms),
                    saving_ms,
                    saving_frac,
                }
            }
            None => RouteEstimate {
                epoch: self.epoch,
                direct_ms,
                relay: None,
                via_ms: None,
                saving_ms: None,
                saving_frac: None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayspace::synth::{Dataset, InternetDelaySpace};
    use simnet::net::{JitterModel, Network};
    use tivcore::{MonitorConfig, TivMonitor};
    use vivaldi::{VivaldiConfig, VivaldiSystem};

    fn fixture(n: usize, seed: u64) -> (DelayMatrix, Embedding) {
        let m = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(n).build(seed).into_matrix();
        let mut sys = VivaldiSystem::new(VivaldiConfig::default(), n, seed);
        let mut net = Network::new(&m, JitterModel::None, seed);
        sys.run_rounds(&mut net, 40);
        let emb = sys.embedding();
        (m, emb)
    }

    #[test]
    fn evaluate_is_pure_and_symmetric_in_severity() {
        let (m, emb) = fixture(60, 3);
        let snap = EpochSnapshot::without_monitors(5, m, emb);
        let cfg = EstimateConfig::default();
        let ab = snap.evaluate(7, 21, &cfg);
        assert_eq!(ab, snap.evaluate(7, 21, &cfg), "evaluate must be deterministic");
        let ba = snap.evaluate(21, 7, &cfg);
        // Predicted, measured, ratio and the sampled severity are all
        // symmetric; only the alert may differ (it is observer-local).
        assert_eq!(ab.predicted.to_bits(), ba.predicted.to_bits());
        assert_eq!(ab.measured, ba.measured);
        assert_eq!(ab.severity.map(f64::to_bits), ba.severity.map(f64::to_bits));
        assert_eq!(ab.epoch, 5);
    }

    #[test]
    fn monitor_state_overrides_ratio_alarm() {
        let (m, emb) = fixture(40, 7);
        // Node 0's monitor has peer 1 alerted regardless of the ratio.
        let mut mon = TivMonitor::new(MonitorConfig::default());
        for _ in 0..5 {
            mon.observe(1, 100.0, 10.0);
        }
        let mut monitors = vec![Vec::new(); m.len()];
        monitors[0] = mon.summaries();
        let snap = EpochSnapshot::new(1, m, emb, monitors);
        let cfg = EstimateConfig { alert_threshold: 0.0, ..EstimateConfig::default() };
        // Threshold 0 never alerts by ratio, yet (0, 1) alerts via the
        // monitor; (1, 0) has no monitor state and stays quiet.
        assert!(snap.evaluate(0, 1, &cfg).alert);
        assert!(!snap.evaluate(1, 0, &cfg).alert);
        assert_eq!(snap.alerted_monitor_entries(), 1);
    }

    #[test]
    fn ratio_alarm_fires_without_monitors() {
        let (m, emb) = fixture(50, 11);
        let snap = EpochSnapshot::without_monitors(0, m, emb);
        // An absurdly high threshold alerts every measured edge.
        let cfg = EstimateConfig { alert_threshold: f64::MAX, ..EstimateConfig::default() };
        let est = snap.evaluate(2, 3, &cfg);
        assert_eq!(est.alert, est.ratio.is_some());
    }

    #[test]
    fn edge_seed_changes_with_epoch_and_edge() {
        let (m, emb) = fixture(30, 1);
        let cfg = EstimateConfig::default();
        let a = EpochSnapshot::without_monitors(1, m.clone(), emb.clone());
        let b = EpochSnapshot::without_monitors(2, m, emb);
        assert_ne!(a.edge_seed(&cfg, 1, 2), b.edge_seed(&cfg, 1, 2));
        assert_ne!(a.edge_seed(&cfg, 1, 2), a.edge_seed(&cfg, 1, 3));
        assert_eq!(a.edge_seed(&cfg, 2, 1), a.edge_seed(&cfg, 1, 2));
    }

    #[test]
    fn route_is_pure_symmetric_and_matches_tivroute() {
        let (m, emb) = fixture(50, 9);
        let snap = EpochSnapshot::without_monitors(3, m.clone(), emb);
        for (a, c) in [(0usize, 1usize), (7, 21), (30, 4)] {
            let r = snap.route(a, c);
            assert_eq!(r, snap.route(a, c), "route must be deterministic");
            assert_eq!(r.epoch, 3);
            // Symmetric matrix: the reverse route uses the same relay.
            let rev = snap.route(c, a);
            assert_eq!(r.relay, rev.relay);
            assert_eq!(r.via_ms.map(f64::to_bits), rev.via_ms.map(f64::to_bits));
            // And it is exactly the offline kernel's answer.
            let best = tivroute::best_detour(&m, a, c).unwrap();
            assert_eq!(r.relay, Some(best.relay));
            assert_eq!(r.via_ms, Some(best.via_ms));
            let (d, via) = (r.direct_ms.unwrap(), best.via_ms);
            assert_eq!(r.saving_ms, Some(d - via));
            assert_eq!(r.beneficial(), via < d);
        }
    }

    #[test]
    fn route_handles_missing_and_degenerate_edges() {
        let mut m = DelayMatrix::new(3);
        m.set(0, 1, 5.0);
        m.set(1, 2, 5.0);
        let mut sys = VivaldiSystem::new(VivaldiConfig::default(), 3, 1);
        let mut net = Network::new(&m, JitterModel::None, 1);
        sys.run_rounds(&mut net, 3);
        let snap = EpochSnapshot::without_monitors(0, m, sys.embedding());
        // (0,2) is unmeasured but has a two-hop path: a relay with no
        // saving numbers.
        let r = snap.route(0, 2);
        assert_eq!(r.direct_ms, None);
        assert_eq!(r.relay, Some(1));
        assert_eq!(r.via_ms, Some(10.0));
        assert_eq!(r.saving_ms, None);
        assert!(!r.beneficial());
        // (0,1) is measured but its only relay path crosses the
        // unmeasured (0,2) hop: direct only.
        let r01 = snap.route(0, 1);
        assert_eq!(r01.direct_ms, Some(5.0));
        assert_eq!(r01.relay, None);
        // Self-routes offer nothing.
        let r00 = snap.route(0, 0);
        assert_eq!((r00.relay, r00.direct_ms), (None, Some(0.0)));
    }

    #[test]
    fn derived_route_matches_scan_route_bitwise() {
        let (m, emb) = fixture(60, 13);
        let scan = EpochSnapshot::without_monitors(2, m.clone(), emb.clone());
        let derived = Arc::new(DerivedState::compute(&m, 1, 2));
        let table = EpochSnapshot::without_monitors(2, m.clone(), emb).with_derived(derived);
        for a in 0..60 {
            for c in 0..60 {
                assert_eq!(table.route(a, c), scan.route(a, c), "pair ({a},{c})");
            }
        }
        // Exact severity is served from the derived matrix and agrees
        // with a direct computation.
        let sev = tivcore::severity::Severity::compute(&m, 1);
        for (a, c) in [(0usize, 1usize), (5, 40), (59, 3)] {
            assert_eq!(
                table.exact_severity(a, c).map(f64::to_bits),
                sev.severity(a, c).map(f64::to_bits)
            );
        }
        assert_eq!(scan.exact_severity(0, 1), None, "no derived state, no exact severity");
        assert!(table.derived().is_some());
    }

    #[test]
    #[should_panic(expected = "derived state covers")]
    fn mismatched_derived_state_rejected() {
        let (m, emb) = fixture(30, 2);
        let small = DelayMatrix::from_complete_fn(5, |i, j| (i + j) as f64 + 1.0);
        let derived = Arc::new(DerivedState::compute(&small, 1, 1));
        let _ = EpochSnapshot::without_monitors(0, m, emb).with_derived(derived);
    }

    #[test]
    #[should_panic(expected = "monitor table covers")]
    fn mismatched_monitor_table_rejected() {
        let (m, emb) = fixture(30, 2);
        EpochSnapshot::new(0, m, emb, vec![Vec::new(); 7]);
    }
}
