//! Closed-loop workload generation and measurement.
//!
//! The generator models application query traffic against the service:
//! node popularity is Zipf-skewed (a few hot sources dominate, the
//! classic web/overlay access pattern — this is also what makes the
//! per-shard LRU caches earn their keep), and a configurable fraction
//! of operations are RTT *observations* streamed to the epoch builder
//! instead of queries. The whole workload is generated up front as a
//! pure function of `(config, matrix)`, so the exact same query stream
//! can be replayed against services with different shard counts — the
//! equivalence tests depend on this.
//!
//! [`run_closed_loop`] then plays the batches back-to-back (closed
//! loop: the next batch is issued only when the previous one
//! completed) and reports throughput and p50/p99 batch latency.
//!
//! The measurement vocabulary is shared across every load path:
//! [`LoadSpec`] describes a workload (shape + pacing) for both this
//! closed loop and `tivgate`'s open-loop socket client, and
//! [`LoadReport`] is the one report core — the `observations ==
//! delivered + undelivered` accounting identity and the percentile
//! arithmetic ([`percentile`]) live here and nowhere else. Mode
//! specific wrappers ([`ClosedLoopReport`], `tivgate::GateLoadReport`,
//! `tivchaos`' chaos report) embed it rather than re-deriving it.

use crate::cache::CacheStats;
use crate::epoch::{FeedSender, Observation};
use crate::service::TivServe;
use delayspace::matrix::{DelayMatrix, NodeId};
use delayspace::rng::{self, DetRng};
use rand::Rng;

/// Workload shape.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Total number of edge queries to issue.
    pub queries: usize,
    /// Operations per batch (the service API is batch-first).
    pub batch: usize,
    /// Zipf exponent of source-node popularity (0 = uniform; ~1 is the
    /// classic web skew).
    pub zipf_s: f64,
    /// Fraction of operations that are RTT observations rather than
    /// queries, in `[0, 1)` (0 = read-only; must stay below 1 so every
    /// batch still contains queries to close the loop on).
    pub observe_frac: f64,
    /// Multiplicative log-normal jitter applied to observed RTTs
    /// (sigma in log space; 0 = report the matrix value exactly).
    pub jitter_sigma: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            queries: 10_000,
            batch: 64,
            zipf_s: 0.9,
            observe_frac: 0.1,
            jitter_sigma: 0.05,
            seed: 42,
        }
    }
}

/// A complete load description, shared by every load path: the
/// workload shape plus the pacing discipline. `target_qps == 0` means
/// unpaced — the closed loop always runs unpaced; the open-loop gate
/// client schedules arrivals at `target_qps` when it is positive.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadSpec {
    /// Shape of the generated query/observation stream.
    pub workload: WorkloadConfig,
    /// Scheduled arrival rate in queries/s (0 = unpaced / closed).
    pub target_qps: f64,
}

impl LoadSpec {
    /// A spec with the given workload and no pacing.
    pub fn unpaced(workload: WorkloadConfig) -> Self {
        LoadSpec { workload, target_qps: 0.0 }
    }

    /// Generates the spec's batches against `matrix` — a pure function
    /// of `(spec.workload, matrix)`, see [`generate`].
    pub fn batches(&self, matrix: &DelayMatrix) -> Vec<QueryBatch> {
        generate(&self.workload, matrix)
    }
}

/// One closed-loop step: a query batch plus the observations drawn in
/// the same window.
#[derive(Clone, Debug)]
pub struct QueryBatch {
    /// Edge queries, in issue order.
    pub pairs: Vec<(NodeId, NodeId)>,
    /// RTT observations to stream to the epoch builder.
    pub observations: Vec<Observation>,
}

/// A Zipf sampler over `0..n` (node id = popularity rank).
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative weights, normalised to end at 1.
    cum: Vec<f64>,
}

impl Zipf {
    /// A sampler where rank `i` has weight `1 / (i + 1)^s`.
    ///
    /// # Panics
    /// Panics when `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero nodes");
        assert!(s >= 0.0 && s.is_finite(), "bad Zipf exponent {s}");
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        Zipf { cum }
    }

    /// Draws one rank.
    pub fn sample(&self, r: &mut DetRng) -> usize {
        let u: f64 = r.gen_range(0.0..1.0);
        // First rank whose cumulative weight covers u.
        self.cum.partition_point(|&c| c <= u).min(self.cum.len() - 1)
    }
}

/// Generates the full closed-loop workload: a pure function of
/// `(cfg, matrix)`. Observation RTTs are the matrix's measured delay
/// with multiplicative jitter; unmeasured pairs fall back to queries,
/// so the observation count can undershoot `observe_frac` slightly on
/// sparse matrices.
pub fn generate(cfg: &WorkloadConfig, matrix: &DelayMatrix) -> Vec<QueryBatch> {
    let n = matrix.len();
    assert!(n >= 2, "workload needs at least two nodes");
    assert!(cfg.batch >= 1, "batch size must be at least 1");
    assert!((0.0..1.0).contains(&cfg.observe_frac), "observe_frac outside [0,1)");
    let zipf = Zipf::new(n, cfg.zipf_s);
    let mut r = rng::sub_rng(cfg.seed, "tivserve/loadgen");
    let mut batches = Vec::new();
    let mut queries_left = cfg.queries;
    while queries_left > 0 {
        let mut pairs = Vec::with_capacity(cfg.batch);
        let mut observations = Vec::new();
        while pairs.len() < cfg.batch.min(queries_left) {
            let src = zipf.sample(&mut r);
            let mut dst = r.gen_range(0..n - 1);
            if dst >= src {
                dst += 1;
            }
            let observe = r.gen_range(0.0..1.0) < cfg.observe_frac;
            match matrix.get(src, dst) {
                Some(d) if observe && d > 0.0 => {
                    let rtt = if cfg.jitter_sigma > 0.0 {
                        rng::lognormal(&mut r, d, cfg.jitter_sigma)
                    } else {
                        d
                    };
                    observations.push(Observation { src, dst, rtt_ms: rtt });
                }
                _ => pairs.push((src, dst)),
            }
        }
        queries_left -= pairs.len();
        batches.push(QueryBatch { pairs, observations });
    }
    batches
}

/// Where a batch's observations go.
pub enum ObservePath<'a> {
    /// Discard them (read-only benchmark runs).
    Drop,
    /// Stream them into a publish engine's feed.
    Channel(&'a FeedSender),
}

/// The latency at quantile `p` (`0.0..=1.0`) of an ascending-sorted
/// sample, by nearest-rank on the closed interval — **the** percentile
/// rule every load path reports with (closed loop, open-loop gate
/// client, chaos harness). Returns 0 for an empty sample.
pub fn percentile(sorted_ascending: &[f64], p: f64) -> f64 {
    if sorted_ascending.is_empty() {
        return 0.0;
    }
    let idx = (p * (sorted_ascending.len() - 1) as f64).round() as usize;
    sorted_ascending[idx]
}

/// The shared measurement core of every load run: counts, the
/// observation-delivery accounting, throughput, and latency
/// percentiles. Mode-specific reports ([`ClosedLoopReport`],
/// `tivgate::GateLoadReport`) embed this rather than re-deriving any
/// of it.
#[derive(Clone, Copy, Debug)]
pub struct LoadReport {
    /// Queries answered.
    pub queries: usize,
    /// Batches issued.
    pub batches: usize,
    /// Observations the workload attempted to stream (or deliberately
    /// dropped via [`ObservePath::Drop`]).
    pub observations: usize,
    /// Observations that could not be delivered to the epoch builder
    /// (its feed was closed — e.g. the builder thread died). Always
    /// 0 in a healthy run; surfaced instead of silently discarded so a
    /// wedged builder cannot masquerade as a fresh one.
    pub observations_undelivered: usize,
    /// Wall-clock seconds of the whole loop.
    pub elapsed_s: f64,
    /// Query throughput, queries per second.
    pub qps: f64,
    /// Median batch latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile batch latency, microseconds.
    pub p99_us: f64,
    /// 99.9th-percentile batch latency, microseconds.
    pub p999_us: f64,
}

impl LoadReport {
    /// Assembles the report core from raw measurements — the one place
    /// throughput and percentiles are computed. `latencies_us` need
    /// not be sorted.
    pub fn from_latencies(
        queries: usize,
        batches: usize,
        observations: usize,
        observations_undelivered: usize,
        elapsed_s: f64,
        mut latencies_us: Vec<f64>,
    ) -> Self {
        latencies_us.sort_by(f64::total_cmp);
        LoadReport {
            queries,
            batches,
            observations,
            observations_undelivered,
            elapsed_s,
            qps: if elapsed_s > 0.0 { queries as f64 / elapsed_s } else { 0.0 },
            p50_us: percentile(&latencies_us, 0.50),
            p99_us: percentile(&latencies_us, 0.99),
            p999_us: percentile(&latencies_us, 0.999),
        }
    }

    /// Observations that actually reached the epoch builder. Together
    /// with [`observations_undelivered`](LoadReport::observations_undelivered)
    /// this partitions the attempt count exactly:
    /// `observations == delivered + undelivered` — the accounting
    /// identity the loadgen tests pin (a wedged builder shows up as a
    /// non-zero undelivered count, never as silent loss).
    pub fn observations_delivered(&self) -> usize {
        self.observations - self.observations_undelivered
    }
}

/// The measured outcome of a closed-loop run: the shared
/// [`LoadReport`] core plus what only an in-process closed loop can
/// see (the served epoch and the service's cache counters).
#[derive(Clone, Copy, Debug)]
pub struct ClosedLoopReport {
    /// The shared measurement core.
    pub load: LoadReport,
    /// Epoch of the last batch's answers.
    pub final_epoch: u64,
    /// Service cache counters at the end of the run.
    pub cache: CacheStats,
}

/// Plays the workload against the service, one batch at a time
/// (closed loop), and measures it.
///
/// Returns the report together with every batch's answers, in order —
/// the answers are what the cross-shard equivalence tests compare.
pub fn run_closed_loop(
    service: &TivServe,
    batches: &[QueryBatch],
    observe: ObservePath<'_>,
) -> (ClosedLoopReport, Vec<Vec<crate::snapshot::EdgeEstimate>>) {
    let mut latencies_us = Vec::with_capacity(batches.len());
    let mut answers = Vec::with_capacity(batches.len());
    let mut queries = 0usize;
    let mut observations = 0usize;
    let mut undelivered = 0usize;
    let mut final_epoch = service.epoch();
    let started = std::time::Instant::now();
    for batch in batches {
        if let ObservePath::Channel(tx) = &observe {
            for &obs in &batch.observations {
                // A closed feed means the builder is gone; count the
                // loss instead of silently discarding it.
                if tx.observe(obs).is_err() {
                    undelivered += 1;
                }
            }
        }
        observations += batch.observations.len();
        let t0 = std::time::Instant::now();
        let got = service.estimate_batch(&batch.pairs);
        latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
        queries += got.len();
        if let Some(last) = got.last() {
            final_epoch = last.epoch;
        }
        answers.push(got);
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    let report = ClosedLoopReport {
        load: LoadReport::from_latencies(
            queries,
            batches.len(),
            observations,
            undelivered,
            elapsed_s,
            latencies_us,
        ),
        final_epoch,
        cache: service.cache_stats(),
    };
    (report, answers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::{EpochBuilder, EpochConfig};
    use crate::service::{ServeConfig, TivServe};
    use delayspace::synth::{Dataset, InternetDelaySpace};

    fn ds2(n: usize, seed: u64) -> DelayMatrix {
        InternetDelaySpace::preset(Dataset::Ds2).with_nodes(n).build(seed).into_matrix()
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(100, 1.0);
        let mut r = rng::rng(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts.iter().sum::<usize>() == 20_000);
        // Rank 0 should dominate rank 50 heavily under s = 1.
        assert!(
            counts[0] > counts[50] * 5,
            "no skew: rank0 {} vs rank50 {}",
            counts[0],
            counts[50]
        );
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut r = rng::rng(2);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((700..1300).contains(&c), "rank {i} count {c} far from uniform");
        }
    }

    #[test]
    fn generate_is_deterministic_and_sized() {
        let m = ds2(50, 3);
        let cfg = WorkloadConfig { queries: 500, batch: 32, ..WorkloadConfig::default() };
        let a = generate(&cfg, &m);
        let b = generate(&cfg, &m);
        let total: usize = a.iter().map(|qb| qb.pairs.len()).sum();
        assert_eq!(total, 500);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pairs, y.pairs);
            assert_eq!(x.observations, y.observations);
        }
        for qb in &a {
            assert!(qb.pairs.len() <= 32);
            for &(s, d) in &qb.pairs {
                assert!(s != d && s < 50 && d < 50);
            }
            for o in &qb.observations {
                assert!(o.rtt_ms > 0.0 && o.rtt_ms.is_finite());
            }
        }
    }

    #[test]
    fn read_only_workload_has_no_observations() {
        let m = ds2(40, 4);
        let cfg = WorkloadConfig { queries: 200, observe_frac: 0.0, ..WorkloadConfig::default() };
        assert!(generate(&cfg, &m).iter().all(|qb| qb.observations.is_empty()));
    }

    #[test]
    fn observation_accounting_balances_with_a_live_channel() {
        let m = ds2(40, 6);
        let (_, snap) = EpochBuilder::bootstrap(
            m.clone(),
            EpochConfig { bootstrap_rounds: 15, ..EpochConfig::default() },
        );
        let service = TivServe::new(ServeConfig::default(), snap);
        let cfg = WorkloadConfig {
            queries: 300,
            batch: 50,
            observe_frac: 0.3,
            ..WorkloadConfig::default()
        };
        let batches = generate(&cfg, &m);
        let sent: usize = batches.iter().map(|qb| qb.observations.len()).sum();
        assert!(sent > 0, "fixture must actually stream observations");
        let (tx, rx) = FeedSender::channel();
        let (report, _) = run_closed_loop(&service, &batches, ObservePath::Channel(&tx));
        drop(tx);
        let load = report.load;
        assert_eq!(load.observations, sent);
        assert_eq!(load.observations_undelivered, 0, "live channel loses nothing");
        assert_eq!(load.observations_delivered(), sent);
        assert_eq!(
            load.observations,
            load.observations_delivered() + load.observations_undelivered,
            "accounting identity: sent == delivered + undelivered"
        );
        // Every delivered observation is really in the feed.
        assert_eq!(rx.iter().count(), load.observations_delivered());
    }

    #[test]
    fn dead_builder_shows_up_as_undelivered_not_silence() {
        let m = ds2(40, 6);
        let (_, snap) = EpochBuilder::bootstrap(
            m.clone(),
            EpochConfig { bootstrap_rounds: 15, ..EpochConfig::default() },
        );
        let service = TivServe::new(ServeConfig::default(), snap);
        let cfg = WorkloadConfig {
            queries: 300,
            batch: 50,
            observe_frac: 0.3,
            ..WorkloadConfig::default()
        };
        let batches = generate(&cfg, &m);
        // The builder "died": there is no engine behind the feed.
        let tx = FeedSender::disconnected();
        let (report, _) = run_closed_loop(&service, &batches, ObservePath::Channel(&tx));
        let load = report.load;
        assert!(load.observations > 0);
        assert_eq!(
            load.observations_undelivered, load.observations,
            "every attempt against a dead builder is counted as undelivered"
        );
        assert_eq!(load.observations_delivered(), 0);
        // Queries are unaffected by the dead observation path.
        assert_eq!(load.queries, 300);
    }

    #[test]
    fn closed_loop_reports_and_answers() {
        let m = ds2(40, 5);
        let (_, snap) = EpochBuilder::bootstrap(
            m.clone(),
            EpochConfig { bootstrap_rounds: 15, ..EpochConfig::default() },
        );
        let service = TivServe::new(ServeConfig::default(), snap);
        let cfg = WorkloadConfig { queries: 300, batch: 50, ..WorkloadConfig::default() };
        let batches = generate(&cfg, &m);
        let (report, answers) = run_closed_loop(&service, &batches, ObservePath::Drop);
        assert_eq!(report.load.queries, 300);
        assert_eq!(report.load.batches, batches.len());
        assert_eq!(answers.len(), batches.len());
        assert!(report.load.qps > 0.0);
        assert!(report.load.p50_us <= report.load.p99_us);
        assert!(report.load.p99_us <= report.load.p999_us);
        assert_eq!(report.final_epoch, 0);
        assert_eq!(report.cache.hits + report.cache.misses, 300);
    }

    #[test]
    fn percentile_is_nearest_rank_on_the_closed_interval() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        let one = [7.0];
        assert_eq!(percentile(&one, 0.0), 7.0);
        assert_eq!(percentile(&one, 1.0), 7.0);
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&v, 0.5), 51.0);
        // The shared constructor and a by-hand computation agree.
        let report = LoadReport::from_latencies(100, 100, 0, 0, 1.0, v.clone());
        assert_eq!(report.p50_us, percentile(&v, 0.50));
        assert_eq!(report.p99_us, percentile(&v, 0.99));
        assert_eq!(report.p999_us, percentile(&v, 0.999));
        assert_eq!(report.qps, 100.0);
    }
}
