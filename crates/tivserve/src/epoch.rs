//! The epoch builder: folds streamed RTT observations into the next
//! snapshot.
//!
//! Readers only ever see immutable [`EpochSnapshot`]s; all mutation
//! lives here. An [`EpochBuilder`] owns the working delay matrix, the
//! last embedding, and one [`TivMonitor`] per node (the paper's §5.1
//! hysteresis alarm, reused verbatim): each observation updates the
//! source node's monitor against the *current* embedding's prediction
//! and folds the smoothed RTT back into the matrix. [`EpochBuilder::build`]
//! then re-embeds and freezes everything into the next snapshot, which
//! the caller publishes into a [`TivServe`] — readers never stall,
//! they just keep answering from the previous epoch until the swap.
//!
//! [`spawn_with`] runs the fold on a background thread fed by a
//! [`Feed`] channel, publishing every `observations_per_epoch`
//! observations into an arbitrary publish closure — there is exactly
//! one copy of the drain/publish loop, and every deployment shape
//! (single service via [`spawn`], replica fan-out via
//! `tivgate::spawn_publisher`, a full chaos-capable
//! `tivgate::Deployment`) is a thin closure over it. A [`FeedSender`]
//! streams observations in and can force a synchronous build+publish
//! with [`FeedSender::flush`].

use crate::service::TivServe;
use crate::snapshot::{EpochSnapshot, ServedSnapshot};
use delayspace::matrix::{DelayMatrix, NodeId};
use simnet::net::{JitterModel, Network};
use std::sync::mpsc;
use std::sync::Arc;
use tivcore::{MonitorConfig, TivMonitor};
use vivaldi::{Embedding, VivaldiConfig, VivaldiSystem};

/// One streamed RTT measurement: `src` measured `rtt_ms` to `dst`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Observation {
    /// The measuring node.
    pub src: NodeId,
    /// The measured peer.
    pub dst: NodeId,
    /// The measured round-trip time, ms (must be finite and positive).
    pub rtt_ms: f64,
}

/// Epoch-building parameters.
#[derive(Clone, Copy, Debug)]
pub struct EpochConfig {
    /// Hysteresis monitor configuration (per node).
    pub monitor: MonitorConfig,
    /// Vivaldi parameters of the re-embedding.
    pub vivaldi: VivaldiConfig,
    /// Rounds of the initial bootstrap embedding.
    pub bootstrap_rounds: usize,
    /// Rounds of each per-epoch re-embedding.
    pub epoch_rounds: usize,
    /// Seed of the embedding runs (folded with the epoch number, so
    /// every epoch is still a pure function of the builder's inputs).
    pub seed: u64,
}

impl Default for EpochConfig {
    fn default() -> Self {
        EpochConfig {
            monitor: MonitorConfig::default(),
            vivaldi: VivaldiConfig::default(),
            bootstrap_rounds: 60,
            epoch_rounds: 30,
            seed: 0,
        }
    }
}

/// Anything that can fold streamed observations into successive epoch
/// snapshots: the classic full-rebuild [`EpochBuilder`], the
/// incremental [`FluxBuilder`](crate::flux::FluxBuilder) (both dense,
/// `Snapshot = EpochSnapshot`), and the million-node
/// [`SparseEpochBuilder`](crate::sparse::SparseEpochBuilder)
/// (`Snapshot = SparseSnapshot` — never materializes n²). The
/// background publish loop ([`spawn_with`]) is generic over this, so
/// every builder shares one hardened ingest/publish path.
pub trait EpochSource: Send + 'static {
    /// The snapshot type one build produces. Bounded by
    /// [`ServedSnapshot`] so the publish engine can report the epoch
    /// it just published (the [`FeedSender::flush`] ack) and so
    /// deployments can retain/rebuild any snapshot kind uniformly.
    type Snapshot: ServedSnapshot;
    /// Folds one observation into the working state.
    fn ingest(&mut self, obs: Observation);
    /// Observations folded in since the last [`build`](Self::build).
    fn pending(&self) -> usize;
    /// Total observations ever folded in — the no-loss accounting the
    /// observe/publish interleaving regression tests assert on.
    fn ingested_total(&self) -> u64;
    /// Builds and returns the next snapshot, resetting `pending`.
    fn build(&mut self) -> Self::Snapshot;
}

/// Anything a background epoch loop can publish snapshots into:
/// [`TivServe`] for dense snapshots,
/// [`SparseServe`](crate::sparse::SparseServe) for sparse ones.
/// Returns the published epoch.
pub trait PublishSink<S>: Send + Sync + 'static {
    /// Swaps `snapshot` in as the served state.
    fn publish_snapshot(&self, snapshot: S) -> u64;
}

impl PublishSink<EpochSnapshot> for TivServe {
    fn publish_snapshot(&self, snapshot: EpochSnapshot) -> u64 {
        self.publish(snapshot)
    }
}

/// Builds successive epoch snapshots from streamed observations.
#[derive(Clone, Debug)]
pub struct EpochBuilder {
    cfg: EpochConfig,
    matrix: DelayMatrix,
    embedding: Embedding,
    monitors: Vec<TivMonitor>,
    epoch: u64,
    pending: usize,
    ingested_total: u64,
}

impl EpochBuilder {
    /// Bootstraps a builder from a measured delay matrix: embeds it
    /// once (`bootstrap_rounds`) and returns the builder together with
    /// the epoch-0 snapshot to start a service on.
    pub fn bootstrap(matrix: DelayMatrix, cfg: EpochConfig) -> (Self, EpochSnapshot) {
        let embedding = embed(&matrix, &cfg, cfg.bootstrap_rounds, 0);
        let monitors = vec![TivMonitor::new(cfg.monitor); matrix.len()];
        let builder = EpochBuilder {
            cfg,
            matrix: matrix.clone(),
            embedding: embedding.clone(),
            monitors,
            epoch: 0,
            pending: 0,
            ingested_total: 0,
        };
        let snapshot = EpochSnapshot::without_monitors(0, matrix, embedding);
        (builder, snapshot)
    }

    /// Observations folded in since the last [`build`](Self::build).
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Total observations ever folded in.
    pub fn ingested_total(&self) -> u64 {
        self.ingested_total
    }

    /// Epoch of the last built snapshot (0 = bootstrap).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Folds one observation in: the source node's monitor absorbs the
    /// sample (hysteresis alert state updates against the current
    /// embedding's prediction), and the smoothed RTT is written back to
    /// the working matrix.
    ///
    /// # Panics
    /// Panics on self-loops, out-of-range nodes, or a non-positive RTT
    /// (the monitor's own contract).
    pub fn ingest(&mut self, obs: Observation) {
        let n = self.matrix.len();
        assert!(
            obs.src < n && obs.dst < n,
            "observation ({},{}) outside {n} nodes",
            obs.src,
            obs.dst
        );
        assert_ne!(obs.src, obs.dst, "self-observation at node {}", obs.src);
        let predicted = self.embedding.predicted(obs.src, obs.dst);
        self.monitors[obs.src].observe(obs.dst, obs.rtt_ms, predicted);
        let smoothed = self.monitors[obs.src].rtt(obs.dst).expect("observe tracked the peer");
        self.matrix.set(obs.src, obs.dst, smoothed);
        self.pending += 1;
        self.ingested_total += 1;
    }

    /// Builds the next snapshot: re-embeds the working matrix
    /// (`epoch_rounds`, seeded by `seed ⊕ epoch`) and freezes the
    /// monitor summaries. Resets the pending counter.
    pub fn build(&mut self) -> EpochSnapshot {
        self.epoch += 1;
        self.embedding = embed(&self.matrix, &self.cfg, self.cfg.epoch_rounds, self.epoch);
        self.pending = 0;
        let summaries = self.monitors.iter().map(TivMonitor::summaries).collect();
        EpochSnapshot::new(self.epoch, self.matrix.clone(), self.embedding.clone(), summaries)
    }
}

impl EpochSource for EpochBuilder {
    type Snapshot = EpochSnapshot;
    fn ingest(&mut self, obs: Observation) {
        EpochBuilder::ingest(self, obs);
    }
    fn pending(&self) -> usize {
        EpochBuilder::pending(self)
    }
    fn ingested_total(&self) -> u64 {
        EpochBuilder::ingested_total(self)
    }
    fn build(&mut self) -> EpochSnapshot {
        EpochBuilder::build(self)
    }
}

/// Runs one deterministic Vivaldi embedding of `matrix`.
pub(crate) fn embed(
    matrix: &DelayMatrix,
    cfg: &EpochConfig,
    rounds: usize,
    epoch: u64,
) -> Embedding {
    let seed = cfg.seed ^ epoch.wrapping_mul(0x2545_f491_4f6c_dd1d);
    let mut sys = VivaldiSystem::new(cfg.vivaldi, matrix.len(), seed);
    let mut net = Network::new(matrix, JitterModel::None, seed);
    sys.run_rounds(&mut net, rounds);
    sys.embedding()
}

/// One message into the publish engine's feed channel.
///
/// The unified publish path is message-driven: observations and
/// control both travel the same FIFO channel, so a
/// [`flush`](FeedSender::flush) publishes exactly the observations
/// sent before it — no racing control side-channel.
pub enum Feed {
    /// One streamed RTT measurement to fold into the working state.
    Observe(Observation),
    /// Force a build+publish now (even with zero pending
    /// observations); the engine acks with the published epoch.
    Flush(mpsc::Sender<u64>),
    /// Shut the engine down even while other senders are still alive
    /// (pending observations get their tail publish first).
    Close,
}

/// Sending half of a publish engine's feed channel; clone freely.
///
/// Dropping every `FeedSender` (and the owning
/// [`EpochStream`] via [`join`](EpochStream::join)) shuts the engine
/// down after a tail publish of any pending observations.
#[derive(Clone)]
pub struct FeedSender {
    tx: mpsc::Sender<Feed>,
}

impl FeedSender {
    /// Streams one observation to the engine. `Err(obs)` hands the
    /// observation back when the engine is gone — callers count these
    /// as *undelivered* in the `observations == delivered +
    /// undelivered` accounting identity.
    pub fn observe(&self, obs: Observation) -> Result<(), Observation> {
        self.tx.send(Feed::Observe(obs)).map_err(|e| match e.0 {
            Feed::Observe(obs) => obs,
            Feed::Flush(_) | Feed::Close => unreachable!("sent an observation"),
        })
    }

    /// Forces a build+publish of everything observed so far and blocks
    /// until it lands, returning the published epoch (`None` when the
    /// engine is gone). Publishes even with zero pending observations,
    /// so deployments can advance epochs deterministically.
    pub fn flush(&self) -> Option<u64> {
        let (ack_tx, ack_rx) = mpsc::channel();
        self.tx.send(Feed::Flush(ack_tx)).ok()?;
        ack_rx.recv().ok()
    }

    /// Tells the engine to shut down **now**, without waiting for
    /// every sender clone to be dropped. FIFO like everything else on
    /// the feed: observations sent before the close are still folded
    /// in (and tail-published); anything sent after it fails as
    /// undelivered once the engine exits. This is what lets a
    /// [`Deployment`](../../tivgate/deploy/struct.Deployment.html)
    /// shut down deterministically while harness code still holds
    /// live `FeedSender` clones.
    pub fn close(&self) {
        let _ = self.tx.send(Feed::Close);
    }

    /// A sender with no engine behind it: every delivery fails. Lets
    /// harness code model a crashed/shut-down builder without spawning
    /// one.
    pub fn disconnected() -> FeedSender {
        let (tx, _) = mpsc::channel();
        FeedSender { tx }
    }

    /// A raw feed pair for harnesses that drain the channel
    /// themselves instead of spawning an engine.
    pub fn channel() -> (FeedSender, mpsc::Receiver<Feed>) {
        let (tx, rx) = mpsc::channel();
        (FeedSender { tx }, rx)
    }
}

/// Handle to a background epoch-builder (publish engine) thread.
pub struct EpochStream<B: EpochSource = EpochBuilder> {
    tx: FeedSender,
    handle: std::thread::JoinHandle<B>,
}

impl<B: EpochSource> EpochStream<B> {
    /// The feed sender; clone freely. Dropping every sender (and this
    /// handle via [`join`](Self::join)) shuts the engine down.
    pub fn sender(&self) -> FeedSender {
        self.tx.clone()
    }

    /// Closes the stream, waits for the engine thread to publish any
    /// tail observations, and returns the builder.
    pub fn join(self) -> B {
        drop(self.tx);
        self.handle.join().expect("epoch builder thread panicked")
    }
}

/// Spawns **the** publish engine on a background thread: it drains the
/// feed, and each time `observations_per_epoch` observations have been
/// folded in (or a [`Feed::Flush`] arrives) it builds the next
/// snapshot and hands it to `publish`. Remaining observations are
/// published as a final epoch on shutdown (all senders dropped).
///
/// This is the single copy of the drain/publish loop every deployment
/// shape goes through: [`spawn`] publishes into one service,
/// `tivgate::spawn_publisher` fans out over replicas, and
/// `tivgate::Deployment` routes through its fault gates — each is just
/// a different `publish` closure.
///
/// A build-and-publish can take a while (a full O(n³) rebuild on the
/// classic builder); observations that arrive during it are **never
/// dropped** — they queue in the channel and are folded into the *next*
/// epoch on the following loop pass. The loop drains the channel
/// non-blockingly between publishes so a burst arriving mid-build is
/// absorbed in one sweep, and the no-loss accounting
/// (`ingested_total == observations sent`) is pinned by the
/// observe/publish interleaving regression tests.
pub fn spawn_with<B: EpochSource>(
    mut builder: B,
    observations_per_epoch: usize,
    mut publish: impl FnMut(B::Snapshot) + Send + 'static,
) -> EpochStream<B> {
    assert!(observations_per_epoch >= 1, "need at least one observation per epoch");
    let (tx, rx) = mpsc::channel::<Feed>();
    // tivlint: allow(pool-discipline, "one long-lived background epoch-builder thread, not a parallel kernel; build determinism is pinned by the observe/publish interleaving tests")
    let handle = std::thread::spawn(move || {
        let flush =
            |builder: &mut B, publish: &mut dyn FnMut(B::Snapshot), ack: mpsc::Sender<u64>| {
                let snapshot = builder.build();
                let epoch = snapshot.epoch();
                publish(snapshot);
                // The flusher may have given up waiting; that is its
                // business, the publish already happened.
                let _ = ack.send(epoch);
            };
        'run: loop {
            // Block for the next message; a closed channel (every
            // sender dropped) or an explicit close ends the stream.
            match rx.recv() {
                Err(_) | Ok(Feed::Close) => break 'run,
                Ok(Feed::Flush(ack)) => {
                    flush(&mut builder, &mut publish, ack);
                    continue 'run;
                }
                Ok(Feed::Observe(obs)) => builder.ingest(obs),
            }
            // Absorb whatever else is already buffered — including
            // anything that arrived while the previous build/publish
            // was running — up to the epoch boundary, without blocking.
            while builder.pending() < observations_per_epoch {
                match rx.try_recv() {
                    Ok(Feed::Observe(obs)) => builder.ingest(obs),
                    // A flush queued mid-batch publishes exactly what
                    // preceded it (FIFO), then draining resumes.
                    Ok(Feed::Flush(ack)) => flush(&mut builder, &mut publish, ack),
                    // A close queued mid-batch still honours FIFO: what
                    // preceded it tail-publishes below, then we exit.
                    Ok(Feed::Close) => break 'run,
                    Err(_) => break,
                }
            }
            if builder.pending() >= observations_per_epoch {
                publish(builder.build());
            }
        }
        if builder.pending() > 0 {
            publish(builder.build());
        }
        builder
    });
    EpochStream { tx: FeedSender { tx }, handle }
}

/// Legacy wrapper — prefer `tivgate::Deployment` (or [`spawn_with`]
/// directly) for new code; kept as the single-service entry point and
/// pinned unchanged by the observe/publish interleaving tests.
///
/// Spawns the publish engine with a closure that publishes every built
/// snapshot into `service` (any [`PublishSink`] matching the builder's
/// snapshot type — a [`TivServe`] for dense builders, a
/// [`SparseServe`](crate::sparse::SparseServe) for sparse ones).
pub fn spawn<B: EpochSource>(
    service: Arc<impl PublishSink<B::Snapshot>>,
    builder: B,
    observations_per_epoch: usize,
) -> EpochStream<B> {
    spawn_with(builder, observations_per_epoch, move |snapshot| {
        service.publish_snapshot(snapshot);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;
    use delayspace::synth::{Dataset, InternetDelaySpace};

    fn ds2(n: usize, seed: u64) -> DelayMatrix {
        InternetDelaySpace::preset(Dataset::Ds2).with_nodes(n).build(seed).into_matrix()
    }

    fn cfg() -> EpochConfig {
        EpochConfig { bootstrap_rounds: 20, epoch_rounds: 10, seed: 3, ..EpochConfig::default() }
    }

    #[test]
    fn bootstrap_yields_epoch_zero() {
        let (builder, snap) = EpochBuilder::bootstrap(ds2(30, 1), cfg());
        assert_eq!(snap.epoch(), 0);
        assert_eq!(builder.epoch(), 0);
        assert_eq!(builder.pending(), 0);
        assert_eq!(snap.len(), 30);
    }

    #[test]
    fn ingest_then_build_advances_epoch_deterministically() {
        let m = ds2(30, 2);
        let (mut a, _) = EpochBuilder::bootstrap(m.clone(), cfg());
        let (mut b, _) = EpochBuilder::bootstrap(m, cfg());
        let obs = [
            Observation { src: 0, dst: 5, rtt_ms: 80.0 },
            Observation { src: 0, dst: 5, rtt_ms: 90.0 },
            Observation { src: 7, dst: 2, rtt_ms: 33.0 },
        ];
        for &o in &obs {
            a.ingest(o);
            b.ingest(o);
        }
        assert_eq!(a.pending(), 3);
        let sa = a.build();
        let sb = b.build();
        assert_eq!(sa.epoch(), 1);
        assert_eq!(a.pending(), 0);
        // Same inputs, same snapshot — matrices and coordinates match.
        assert_eq!(sa.matrix(), sb.matrix());
        for i in 0..30 {
            for j in 0..30 {
                assert_eq!(
                    sa.embedding().predicted(i, j).to_bits(),
                    sb.embedding().predicted(i, j).to_bits()
                );
            }
        }
    }

    #[test]
    fn observations_move_the_matrix_and_raise_alerts() {
        let (mut builder, snap) = EpochBuilder::bootstrap(ds2(30, 4), cfg());
        // Repeatedly report a much larger RTT than the snapshot has for
        // (3, 9): the smoothed matrix entry climbs and, because the
        // prediction ratio collapses, the monitor alerts.
        let original = snap.matrix().get(3, 9).unwrap();
        let reported = (original + 50.0) * 20.0;
        for _ in 0..8 {
            builder.ingest(Observation { src: 3, dst: 9, rtt_ms: reported });
        }
        let next = builder.build();
        let updated = next.matrix().get(3, 9).unwrap();
        assert!(updated > original, "smoothed RTT {updated} should exceed original {original}");
        let summary = next.monitor_summary(3, 9).expect("peer tracked");
        assert!(summary.alerted, "collapsed ratio must alert: {summary:?}");
        assert!(next.evaluate(3, 9, &crate::snapshot::EstimateConfig::default()).alert);
    }

    #[test]
    fn background_stream_publishes_epochs() {
        let (builder, snap) = EpochBuilder::bootstrap(ds2(30, 5), cfg());
        let service = Arc::new(TivServe::new(ServeConfig::default(), snap));
        let stream = spawn(Arc::clone(&service), builder, 4);
        let tx = stream.sender();
        for k in 0..10 {
            let src = k % 7;
            tx.observe(Observation { src, dst: src + 10, rtt_ms: 40.0 + k as f64 }).unwrap();
        }
        drop(tx);
        let builder = stream.join();
        // 10 observations at 4 per epoch: two full epochs plus a tail
        // publish of the remaining two.
        assert_eq!(builder.epoch(), 3);
        assert_eq!(service.epoch(), 3);
        assert_eq!(builder.pending(), 0);
    }

    #[test]
    fn interleaved_observe_publish_loses_nothing() {
        // Regression test for the publish-swap path: observations keep
        // streaming while epochs publish, and every single one must be
        // folded into *some* epoch — none dropped on the floor during a
        // swap. The builder thread is deliberately forced through many
        // small epochs so sends race publishes constantly.
        let (builder, snap) = EpochBuilder::bootstrap(ds2(30, 8), cfg());
        let service = Arc::new(TivServe::new(ServeConfig::default(), snap));
        let stream = spawn(Arc::clone(&service), builder, 3);
        let tx = stream.sender();
        let sent = 200u64;
        for k in 0..sent {
            let src = (k % 9) as usize;
            tx.observe(Observation { src, dst: src + 11, rtt_ms: 30.0 + (k % 40) as f64 }).unwrap();
            if k % 7 == 0 {
                // Interleave some reads so publishes overlap queries too.
                let _ = service.estimate_batch(&[(0, 1)]);
            }
        }
        drop(tx);
        let builder = stream.join();
        assert_eq!(builder.ingested_total(), sent, "observations were dropped");
        assert_eq!(builder.pending(), 0, "tail observations not published");
        // Epoch arithmetic: every observation landed in some epoch.
        assert!(builder.epoch() >= sent / 3, "too few epochs published");
        assert_eq!(service.epoch(), builder.epoch());
    }

    #[test]
    fn synchronous_interleave_accounts_every_observation() {
        let (mut builder, _) = EpochBuilder::bootstrap(ds2(20, 9), cfg());
        let mut sent = 0u64;
        for round in 0..10u64 {
            for k in 0..(round % 4 + 1) {
                let src = ((round + k) % 5) as usize;
                builder.ingest(Observation { src, dst: src + 7, rtt_ms: 25.0 + k as f64 });
                sent += 1;
            }
            let snap = builder.build(); // publish boundary
            assert_eq!(snap.epoch(), round + 1);
            assert_eq!(builder.pending(), 0);
        }
        assert_eq!(builder.ingested_total(), sent);
    }

    #[test]
    fn flush_forces_synchronous_publishes() {
        let (builder, snap) = EpochBuilder::bootstrap(ds2(30, 10), cfg());
        let service = Arc::new(TivServe::new(ServeConfig::default(), snap));
        // Threshold far above anything sent: only flushes publish.
        let stream = spawn(Arc::clone(&service), builder, 1_000_000);
        let tx = stream.sender();
        // Flush with nothing pending still advances the epoch.
        assert_eq!(tx.flush(), Some(1));
        assert_eq!(service.epoch(), 1);
        for k in 0..5 {
            tx.observe(Observation { src: k, dst: k + 8, rtt_ms: 25.0 + k as f64 }).unwrap();
        }
        // FIFO: the flush publishes exactly the five observations
        // queued before it, synchronously.
        assert_eq!(tx.flush(), Some(2));
        assert_eq!(service.epoch(), 2);
        // join() drops only the stream's own sender; our live clone
        // must signal close (or be dropped) before the engine exits.
        tx.close();
        let builder = stream.join();
        assert_eq!(builder.ingested_total(), 5);
        assert_eq!(builder.pending(), 0, "flush left nothing unpublished");
        assert_eq!(builder.epoch(), 2, "no tail publish after a clean flush");
    }

    #[test]
    fn disconnected_sender_reports_undelivered() {
        let tx = FeedSender::disconnected();
        let obs = Observation { src: 0, dst: 1, rtt_ms: 10.0 };
        assert_eq!(tx.observe(obs), Err(obs));
        assert_eq!(tx.flush(), None);
    }

    #[test]
    #[should_panic(expected = "self-observation")]
    fn self_observation_rejected() {
        let (mut builder, _) = EpochBuilder::bootstrap(ds2(10, 6), cfg());
        builder.ingest(Observation { src: 2, dst: 2, rtt_ms: 10.0 });
    }
}
