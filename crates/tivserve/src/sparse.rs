//! The million-node epoch path: sparse snapshots that never touch n².
//!
//! A full [`EpochSnapshot`](crate::EpochSnapshot) carries an n×n
//! [`DelayMatrix`](delayspace::DelayMatrix) plus a Vivaldi embedding —
//! fine up to tens of thousands of nodes, hopeless at a million (8 TB
//! for the matrix alone). This module is the regime switch: a
//! [`SparseSnapshot`] wraps a [`SparseDelayStore`] (memory proportional
//! to *observed edges*, not n²), a [`SparseEpochBuilder`] folds the
//! same [`Observation`] stream into successive sparse snapshots, and a
//! [`SparseServe`] answers the sampled query kinds — severity with 95%
//! confidence intervals ([`tivcore::estimate_severity_ci`]) and sampled
//! detour search ([`tivroute::sampled_detour`]) — each `O(witnesses)`
//! per pair.
//!
//! The builder implements [`EpochSource`] with
//! `Snapshot = SparseSnapshot` and the serve implements
//! [`PublishSink<SparseSnapshot>`], so the *same* background loop
//! ([`crate::spawn_epoch_builder`]) that drives the dense builders
//! streams sparse epochs too, with the identical no-loss draining
//! discipline. Dirty tracking reuses [`tivflux::DirtySet`], so an
//! incremental consumer can see which nodes each epoch touched.
//!
//! Determinism carries over unchanged: every answer is a pure function
//! of `(snapshot, query, config)`, seeded by the same per-edge seed
//! fold as the dense path — so on a snapshot whose store holds the same
//! delays as a dense matrix, the sampled severity point is
//! bit-identical to the dense estimate (pinned by this module's tests).

use crate::epoch::{EpochSource, Observation, PublishSink};
use crate::snapshot::{EstimateConfig, ServedSnapshot};
use delayspace::matrix::NodeId;
use delayspace::{DelayStore, NodePair, SparseDelayStore};
use std::sync::{Arc, RwLock};
use tivcore::SeverityEstimate;
use tivflux::DirtySet;
use tivroute::Relay;

/// An immutable sparse epoch: observed edges only, no embedding, no
/// monitors — the things that cost O(n²) or O(n·peers) at scale.
#[derive(Clone, Debug)]
pub struct SparseSnapshot {
    epoch: u64,
    store: SparseDelayStore,
}

impl ServedSnapshot for SparseSnapshot {
    /// Everything a sparse epoch freezes is the store itself — the
    /// sparse side of the one constructor surface
    /// ([`ServedSnapshot::assemble`]) that dense snapshots share, so a
    /// chaos restart rebuilds either kind uniformly.
    type Parts = SparseDelayStore;

    fn assemble(epoch: u64, store: SparseDelayStore) -> Self {
        SparseSnapshot { epoch, store }
    }

    fn into_parts(self) -> (u64, SparseDelayStore) {
        (self.epoch, self.store)
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn node_count(&self) -> usize {
        self.store.len()
    }
}

impl SparseSnapshot {
    /// Wraps a store as the snapshot of `epoch`; routes through
    /// [`ServedSnapshot::assemble`].
    pub fn new(epoch: u64, store: SparseDelayStore) -> Self {
        Self::assemble(epoch, store)
    }

    /// The epoch this snapshot froze.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when the snapshot holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Number of observed (unordered) edges.
    pub fn edge_count(&self) -> usize {
        self.store.edge_count()
    }

    /// Approximate heap footprint — proportional to edges, not n².
    pub fn memory_bytes(&self) -> usize {
        self.store.memory_bytes()
    }

    /// The underlying sparse store.
    pub fn store(&self) -> &SparseDelayStore {
        &self.store
    }

    /// The witness-sampling seed of one unordered edge — the same
    /// `(config seed, epoch, {a, c})` fold as the dense
    /// [`EpochSnapshot`](crate::EpochSnapshot), so a sparse snapshot
    /// over the same delays answers bit-identically.
    fn edge_seed(&self, cfg: &EstimateConfig, a: NodeId, c: NodeId) -> u64 {
        let (lo, hi) = if a < c { (a, c) } else { (c, a) };
        cfg.seed
            ^ self.epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (((lo as u64) << 32) | hi as u64).wrapping_mul(0xd605_0bb5_1656_57a1)
    }

    /// The sampled severity of `(a, c)` with a 95% confidence interval
    /// at witness budget `k` — `None` for self-pairs and unobserved
    /// edges, mirroring the dense snapshot's gating.
    pub fn sampled_severity(
        &self,
        a: NodeId,
        c: NodeId,
        k: usize,
        cfg: &EstimateConfig,
    ) -> Option<SeverityEstimate> {
        if a == c || self.store.get(a, c).is_none() {
            return None;
        }
        tivcore::estimate_severity_ci(&self.store, a, c, k, self.edge_seed(cfg, a, c))
    }

    /// The best relay among `k` sampled candidates for `(a, c)` —
    /// `None` for self-pairs or when no sampled two-hop path is fully
    /// observed. Seeded per edge like
    /// [`sampled_severity`](Self::sampled_severity).
    pub fn sampled_route(
        &self,
        a: NodeId,
        c: NodeId,
        k: usize,
        cfg: &EstimateConfig,
    ) -> Option<Relay> {
        tivroute::sampled_detour(&self.store, a, c, k, self.edge_seed(cfg, a, c))
    }
}

/// Folds streamed observations into successive [`SparseSnapshot`]s.
///
/// Unlike [`EpochBuilder`](crate::EpochBuilder) there is no embedding
/// step and no per-node monitor state — both are O(n²)-ish luxuries the
/// million-node regime cannot afford. An observation is written
/// straight into the sparse store (last write wins, symmetric), and
/// [`build`](Self::build) freezes the store as the next epoch in
/// O(observed edges).
#[derive(Debug)]
pub struct SparseEpochBuilder {
    store: SparseDelayStore,
    dirty: DirtySet,
    epoch: u64,
    pending: usize,
    ingested_total: u64,
}

impl SparseEpochBuilder {
    /// Bootstraps from an initial store, returning the builder and the
    /// epoch-0 snapshot.
    pub fn bootstrap(store: SparseDelayStore) -> (Self, SparseSnapshot) {
        let snap = SparseSnapshot::new(0, store.clone());
        let n = store.len();
        let builder = SparseEpochBuilder {
            store,
            dirty: DirtySet::new(n),
            epoch: 0,
            pending: 0,
            ingested_total: 0,
        };
        (builder, snap)
    }

    /// The last built (or bootstrap) epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Observations folded in since the last [`build`](Self::build).
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Total observations ever folded in.
    pub fn ingested_total(&self) -> u64 {
        self.ingested_total
    }

    /// Nodes touched since the last build — for incremental consumers.
    pub fn dirty(&self) -> &DirtySet {
        &self.dirty
    }

    /// Folds one observation into the working store. Panics on
    /// out-of-range nodes, self-observations, and non-finite or
    /// non-positive RTTs — the same contract as
    /// [`EpochBuilder::ingest`](crate::EpochBuilder::ingest), minus the
    /// monitor smoothing (the raw last observation wins).
    pub fn ingest(&mut self, obs: Observation) {
        let n = self.store.len();
        assert!(
            obs.src < n && obs.dst < n,
            "observation ({},{}) outside {n} nodes",
            obs.src,
            obs.dst
        );
        assert_ne!(obs.src, obs.dst, "self-observation at node {}", obs.src);
        assert!(
            obs.rtt_ms.is_finite() && obs.rtt_ms > 0.0,
            "observation rtt must be finite and positive, got {}",
            obs.rtt_ms
        );
        self.store.insert(obs.src, obs.dst, obs.rtt_ms);
        self.dirty.mark_edge(obs.src, obs.dst);
        self.pending += 1;
        self.ingested_total += 1;
    }

    /// Freezes the working store as the next epoch's snapshot — an
    /// O(observed edges) clone, never O(n²) — and resets the pending
    /// counter and dirty set.
    pub fn build(&mut self) -> SparseSnapshot {
        self.epoch += 1;
        self.pending = 0;
        self.dirty.clear();
        SparseSnapshot::new(self.epoch, self.store.clone())
    }
}

impl EpochSource for SparseEpochBuilder {
    type Snapshot = SparseSnapshot;
    fn ingest(&mut self, obs: Observation) {
        SparseEpochBuilder::ingest(self, obs);
    }
    fn pending(&self) -> usize {
        SparseEpochBuilder::pending(self)
    }
    fn ingested_total(&self) -> u64 {
        SparseEpochBuilder::ingested_total(self)
    }
    fn build(&mut self) -> SparseSnapshot {
        SparseEpochBuilder::build(self)
    }
}

/// Serves sampled queries against the latest [`SparseSnapshot`].
///
/// The sparse sibling of [`TivServe`](crate::TivServe): readers grab an
/// `Arc` to the current snapshot and never block a publish. There is no
/// shard fan-out or cache — sampled answers are `O(witnesses)` each, so
/// the batch methods run [`tivpar::par_map_rows`] directly (which is
/// bit-identical at any thread count).
pub struct SparseServe {
    current: RwLock<Arc<SparseSnapshot>>,
    cfg: EstimateConfig,
    threads: usize,
}

impl SparseServe {
    /// Creates a service on an initial snapshot. `threads` ≥ 1 workers
    /// answer each batch (1 = serial reference path; answers are
    /// identical either way).
    pub fn new(initial: SparseSnapshot, cfg: EstimateConfig, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one worker thread");
        SparseServe { current: RwLock::new(Arc::new(initial)), cfg, threads }
    }

    /// The currently served snapshot.
    pub fn snapshot(&self) -> Arc<SparseSnapshot> {
        Arc::clone(&self.current.read().expect("snapshot lock poisoned"))
    }

    /// The currently served epoch.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// Swaps in a new snapshot; readers holding the old `Arc` finish
    /// undisturbed. Returns the published epoch.
    pub fn publish(&self, snapshot: SparseSnapshot) -> u64 {
        let epoch = snapshot.epoch();
        *self.current.write().expect("snapshot lock poisoned") = Arc::new(snapshot);
        epoch
    }

    /// Sampled severities with confidence intervals for a batch, in
    /// pair order. `witnesses == 0` uses the configured default.
    pub fn sampled_severity_batch(
        &self,
        pairs: &[NodePair],
        witnesses: u32,
    ) -> Vec<Option<SeverityEstimate>> {
        let snap = self.snapshot();
        let k = if witnesses == 0 { self.cfg.severity_witnesses } else { witnesses as usize };
        let cfg = self.cfg;
        self.check_range(&snap, pairs);
        tivpar::par_map_rows(pairs.len(), self.threads, |i| {
            snap.sampled_severity(pairs[i].0, pairs[i].1, k, &cfg)
        })
    }

    /// Best sampled relays for a batch, in pair order.
    pub fn sampled_route_batch(&self, pairs: &[NodePair], witnesses: u32) -> Vec<Option<Relay>> {
        let snap = self.snapshot();
        let k = if witnesses == 0 { self.cfg.severity_witnesses } else { witnesses as usize };
        let cfg = self.cfg;
        self.check_range(&snap, pairs);
        tivpar::par_map_rows(pairs.len(), self.threads, |i| {
            snap.sampled_route(pairs[i].0, pairs[i].1, k, &cfg)
        })
    }

    fn check_range(&self, snap: &SparseSnapshot, pairs: &[NodePair]) {
        let n = snap.len();
        for &(a, c) in pairs {
            assert!(a < n && c < n, "query ({a},{c}) outside the {n}-node snapshot");
        }
    }
}

impl PublishSink<SparseSnapshot> for SparseServe {
    fn publish_snapshot(&self, snapshot: SparseSnapshot) -> u64 {
        self.publish(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::spawn;
    use crate::snapshot::EpochSnapshot;
    use delayspace::synth::{Dataset, InternetDelaySpace};
    use delayspace::DelayMatrix;

    fn ds2(n: usize, seed: u64) -> DelayMatrix {
        InternetDelaySpace::preset(Dataset::Ds2).with_nodes(n).build(seed).into_matrix()
    }

    #[test]
    fn sparse_snapshot_matches_dense_bitwise() {
        let m = ds2(40, 3);
        let sparse = SparseSnapshot::new(5, SparseDelayStore::from_matrix(&m));
        let emb = crate::epoch::embed(&m, &crate::EpochConfig::default(), 4, 5);
        let dense = EpochSnapshot::without_monitors(5, m, emb);
        let cfg = EstimateConfig::default();
        for (a, c) in [(0usize, 1usize), (3, 17), (39, 2), (12, 12)] {
            let s = sparse.sampled_severity(a, c, 16, &cfg);
            let d = dense.sampled_severity(a, c, 16, &cfg);
            assert_eq!(s.is_some(), d.is_some());
            if let (Some(s), Some(d)) = (s, d) {
                assert_eq!(s.point.to_bits(), d.point.to_bits());
                assert_eq!(s.ci_lo.to_bits(), d.ci_lo.to_bits());
                assert_eq!(s.ci_hi.to_bits(), d.ci_hi.to_bits());
                assert_eq!(s.sampled, d.sampled);
            }
        }
    }

    #[test]
    fn builder_streams_epochs_without_densifying() {
        let (mut b, snap0) = SparseEpochBuilder::bootstrap(SparseDelayStore::new(1000));
        assert_eq!(snap0.epoch(), 0);
        assert_eq!(snap0.edge_count(), 0);
        b.ingest(Observation { src: 1, dst: 2, rtt_ms: 40.0 });
        b.ingest(Observation { src: 2, dst: 1, rtt_ms: 44.0 });
        b.ingest(Observation { src: 7, dst: 900, rtt_ms: 120.0 });
        assert_eq!(b.pending(), 3);
        assert_eq!(b.dirty().node_count(), 4);
        let snap = b.build();
        assert_eq!(snap.epoch(), 1);
        assert_eq!(b.pending(), 0);
        assert!(b.dirty().is_empty());
        // Last write wins, symmetric.
        assert_eq!(snap.store().get(1, 2), Some(44.0));
        assert_eq!(snap.store().get(900, 7), Some(120.0));
        assert_eq!(snap.edge_count(), 2);
        // Memory is edge-proportional: far below even 1% of n² slots.
        assert!(snap.memory_bytes() < 1000 * 1000 * 8 / 100);
    }

    #[test]
    #[should_panic(expected = "self-observation")]
    fn builder_rejects_self_observations() {
        let (mut b, _) = SparseEpochBuilder::bootstrap(SparseDelayStore::new(10));
        b.ingest(Observation { src: 3, dst: 3, rtt_ms: 1.0 });
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn builder_rejects_bad_rtts() {
        let (mut b, _) = SparseEpochBuilder::bootstrap(SparseDelayStore::new(10));
        b.ingest(Observation { src: 1, dst: 2, rtt_ms: f64::NAN });
    }

    #[test]
    fn serve_publishes_and_answers_deterministically() {
        let m = ds2(30, 9);
        let store = SparseDelayStore::from_matrix(&m);
        let (mut b, snap0) = SparseEpochBuilder::bootstrap(store);
        let serve = SparseServe::new(snap0, EstimateConfig::default(), 2);
        assert_eq!(serve.epoch(), 0);
        b.ingest(Observation { src: 0, dst: 5, rtt_ms: 77.0 });
        serve.publish(b.build());
        assert_eq!(serve.epoch(), 1);
        let pairs: Vec<NodePair> = vec![(0, 5), (1, 2), (3, 3), (4, 29)];
        let a = serve.sampled_severity_batch(&pairs, 8);
        let b2 = serve.sampled_severity_batch(&pairs, 8);
        assert_eq!(a, b2, "answers are pure functions of (snapshot, query, config)");
        assert!(a[2].is_none(), "self-pairs have no severity");
        // The serial path answers identically.
        let serial = SparseServe::new(serve.snapshot().as_ref().clone(), Default::default(), 1);
        assert_eq!(serial.sampled_severity_batch(&pairs, 8), a);
        let r = serve.sampled_route_batch(&pairs, 8);
        assert_eq!(r, serial.sampled_route_batch(&pairs, 8));
    }

    #[test]
    fn background_spawn_drives_the_sparse_sink() {
        let (builder, snap0) = SparseEpochBuilder::bootstrap(SparseDelayStore::new(50));
        let serve = Arc::new(SparseServe::new(snap0, EstimateConfig::default(), 1));
        let stream = spawn(Arc::clone(&serve), builder, 4);
        let tx = stream.sender();
        for i in 0..10usize {
            tx.observe(Observation { src: i % 7, dst: 10 + i, rtt_ms: 20.0 + i as f64 }).unwrap();
        }
        drop(tx);
        let builder = stream.join();
        assert_eq!(builder.ingested_total(), 10, "no observation may be lost");
        assert!(serve.epoch() >= 2, "two full epochs plus the tail flush");
        assert_eq!(serve.snapshot().store().get(0, 10), Some(20.0));
    }
}
