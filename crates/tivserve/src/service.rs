//! The sharded, batch-first estimation service.
//!
//! [`TivServe`] answers edge queries (predicted RTT, prediction ratio,
//! sampled severity, TIV alert state) from the current
//! [`EpochSnapshot`]. The snapshot lives behind an `Arc` that readers
//! clone and then compute against lock-free; publishing a new epoch
//! swaps the `Arc` without stalling in-flight batches (they finish on
//! the snapshot they started with).
//!
//! Nodes are hash-sharded: each shard owns a bounded LRU cache of
//! edge results, and a batch is fanned across shards with one
//! [`tivpar`] worker per shard. Because every cached value is a pure
//! function of the snapshot (stale epochs are rejected on lookup),
//! the batch APIs return **bit-identical results at every shard
//! count** — pinned by `tivoid`'s `serve_equivalence` integration
//! test.

use crate::cache::{CacheStats, EdgeCache};
use crate::snapshot::{EdgeEstimate, EpochSnapshot, EstimateConfig};
use delayspace::matrix::NodeId;
use std::sync::{Arc, Mutex, RwLock};

/// Service construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Number of shards (≥ 1). A batch fans out over one worker per
    /// shard; `1` is the unsharded single-thread reference path.
    pub shards: usize,
    /// Per-shard LRU capacity, in edges (0 disables caching).
    pub cache_capacity: usize,
    /// Batches smaller than this run inline on the calling thread
    /// (visiting each shard's cache in order) instead of spawning one
    /// scoped thread per shard — the same serial gate the `ides`
    /// kernels use, so a warm 64-query batch never pays spawn/join
    /// latency. `0` forces the fan-out path (used by the equivalence
    /// tests). Answers are identical either way.
    pub parallel_threshold: usize,
    /// Per-edge evaluation tuning (witness count, alert threshold,
    /// sampling seed).
    pub estimate: EstimateConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            cache_capacity: 65_536,
            parallel_threshold: 256,
            estimate: EstimateConfig::default(),
        }
    }
}

/// The concurrent TIV estimation service.
pub struct TivServe {
    cfg: ServeConfig,
    /// The published snapshot. Readers take the lock only long enough
    /// to clone the `Arc` (no allocation, no computation under it);
    /// writers only to swap it. All query work happens lock-free on the
    /// cloned snapshot.
    current: RwLock<Arc<EpochSnapshot>>,
    /// One cache per shard. During a batch each shard is visited by
    /// exactly one worker, so these mutexes are uncontended within a
    /// batch; they serialise shard access across concurrent batches.
    shards: Vec<Mutex<EdgeCache>>,
}

impl TivServe {
    /// Starts a service on an initial snapshot.
    ///
    /// # Panics
    /// Panics when `cfg.shards` is zero.
    pub fn new(cfg: ServeConfig, initial: EpochSnapshot) -> Self {
        assert!(cfg.shards >= 1, "a service needs at least one shard");
        let shards =
            (0..cfg.shards).map(|_| Mutex::new(EdgeCache::new(cfg.cache_capacity))).collect();
        TivServe { cfg, current: RwLock::new(Arc::new(initial)), shards }
    }

    /// The construction parameters.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        self.current.read().expect("snapshot lock poisoned").clone()
    }

    /// Epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// Publishes a new snapshot, swapping it in atomically and dropping
    /// the shard caches' now-stale entries. In-flight batches keep the
    /// snapshot they started with; their late cache inserts carry the
    /// old epoch and are rejected on lookup, so a publish can never
    /// make a reader mix epochs.
    pub fn publish(&self, snapshot: EpochSnapshot) -> u64 {
        let epoch = snapshot.epoch();
        *self.current.write().expect("snapshot lock poisoned") = Arc::new(snapshot);
        for shard in &self.shards {
            shard.lock().expect("shard cache poisoned").clear();
        }
        epoch
    }

    /// The shard owning queries sourced at node `a` (multiplicative
    /// hash, stable for the service's lifetime).
    pub fn shard_of(&self, a: NodeId) -> usize {
        let h = (a as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        ((h >> 32) as usize) % self.shards.len()
    }

    /// Answers one shard's query group against its cache, in group
    /// order. The answers depend only on the snapshot, never on which
    /// thread runs this.
    fn answer_group(
        &self,
        snap: &EpochSnapshot,
        pairs: &[(NodeId, NodeId)],
        si: usize,
        group: &[u32],
    ) -> Vec<(u32, EdgeEstimate)> {
        let mut cache = self.shards[si].lock().expect("shard cache poisoned");
        group
            .iter()
            .map(|&idx| {
                let key = pairs[idx as usize];
                let est = match cache.get(key, snap.epoch()) {
                    Some(hit) => hit,
                    None => {
                        let fresh = snap.evaluate(key.0, key.1, &self.cfg.estimate);
                        cache.insert(key, fresh);
                        fresh
                    }
                };
                (idx, est)
            })
            .collect()
    }

    /// Answers a batch of `(source, peer)` edge queries, in input
    /// order.
    ///
    /// Queries are grouped by the source node's shard and each group is
    /// answered against the shard's cache — on one scoped worker per
    /// shard for large batches, inline on the calling thread below
    /// [`ServeConfig::parallel_threshold`] (spawn/join would dominate a
    /// small batch) — and the answers are scattered back to input
    /// positions. Either way the output equals a serial
    /// `snapshot.evaluate` loop, bit for bit, at every shard count.
    ///
    /// # Panics
    /// Panics when a query names a node outside the snapshot.
    pub fn estimate_batch(&self, pairs: &[(NodeId, NodeId)]) -> Vec<EdgeEstimate> {
        let snap = self.snapshot();
        let n = snap.len();
        let shard_count = self.shards.len();
        let mut groups: Vec<Vec<u32>> = vec![Vec::new(); shard_count];
        for (idx, &(a, c)) in pairs.iter().enumerate() {
            assert!(a < n && c < n, "query ({a},{c}) outside the {n}-node snapshot");
            groups[self.shard_of(a)].push(idx as u32);
        }
        let inline = shard_count == 1
            || (self.cfg.parallel_threshold > 0 && pairs.len() < self.cfg.parallel_threshold);
        let answered: Vec<Vec<(u32, EdgeEstimate)>> = if inline {
            (0..shard_count).map(|si| self.answer_group(&snap, pairs, si, &groups[si])).collect()
        } else {
            tivpar::par_map_rows(shard_count, shard_count, |si| {
                self.answer_group(&snap, pairs, si, &groups[si])
            })
        };
        let mut out: Vec<Option<EdgeEstimate>> = vec![None; pairs.len()];
        for (idx, est) in answered.into_iter().flatten() {
            out[idx as usize] = Some(est);
        }
        out.into_iter().map(|e| e.expect("every query answered by its shard")).collect()
    }

    /// Batch severity estimates: `None` for unmeasured edges.
    pub fn severity_batch(&self, pairs: &[(NodeId, NodeId)]) -> Vec<Option<f64>> {
        self.estimate_batch(pairs).into_iter().map(|e| e.severity).collect()
    }

    /// Batch TIV alert states.
    pub fn alerts_batch(&self, pairs: &[(NodeId, NodeId)]) -> Vec<bool> {
        self.estimate_batch(pairs).into_iter().map(|e| e.alert).collect()
    }

    /// Cache counters summed over all shards.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            total.absorb(&shard.lock().expect("shard cache poisoned").stats());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayspace::matrix::DelayMatrix;
    use delayspace::synth::{Dataset, InternetDelaySpace};
    use simnet::net::{JitterModel, Network};
    use vivaldi::{VivaldiConfig, VivaldiSystem};

    fn snapshot(n: usize, seed: u64, epoch: u64) -> EpochSnapshot {
        let m = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(n).build(seed).into_matrix();
        let mut sys = VivaldiSystem::new(VivaldiConfig::default(), n, seed);
        let mut net = Network::new(&m, JitterModel::None, seed);
        sys.run_rounds(&mut net, 40);
        let emb = sys.embedding();
        EpochSnapshot::without_monitors(epoch, m, emb)
    }

    fn queries(n: usize, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
        use rand::Rng;
        let mut r = delayspace::rng::rng(seed);
        (0..count)
            .map(|_| {
                let a = r.gen_range(0..n);
                let mut c = r.gen_range(0..n);
                while c == a {
                    c = r.gen_range(0..n);
                }
                (a, c)
            })
            .collect()
    }

    #[test]
    fn batch_matches_serial_evaluate() {
        let snap = snapshot(60, 3, 0);
        let cfg = ServeConfig { shards: 3, ..ServeConfig::default() };
        let estimate = cfg.estimate;
        let service = TivServe::new(cfg, snap.clone());
        let q = queries(60, 300, 9);
        let got = service.estimate_batch(&q);
        for (i, &(a, c)) in q.iter().enumerate() {
            assert_eq!(got[i], snap.evaluate(a, c, &estimate), "query {i} ({a},{c})");
        }
    }

    #[test]
    fn inline_gate_matches_fanout_path() {
        let snap = snapshot(50, 11, 0);
        // Same service config except the gate: one always inline, one
        // always fanned out.
        let inline = TivServe::new(
            ServeConfig { shards: 4, parallel_threshold: usize::MAX, ..ServeConfig::default() },
            snap.clone(),
        );
        let fanout = TivServe::new(
            ServeConfig { shards: 4, parallel_threshold: 0, ..ServeConfig::default() },
            snap,
        );
        let q = queries(50, 120, 5);
        assert_eq!(inline.estimate_batch(&q), fanout.estimate_batch(&q));
    }

    #[test]
    fn repeated_batches_hit_the_cache_without_changing_answers() {
        let service = TivServe::new(ServeConfig::default(), snapshot(50, 5, 0));
        let q = queries(50, 200, 1);
        let cold = service.estimate_batch(&q);
        let warm = service.estimate_batch(&q);
        assert_eq!(cold, warm);
        let stats = service.cache_stats();
        assert!(stats.hits >= q.len() as u64, "second pass should be all hits: {stats:?}");
        assert!(stats.len > 0);
    }

    #[test]
    fn projections_agree_with_estimates() {
        let service = TivServe::new(ServeConfig::default(), snapshot(40, 7, 0));
        let q = queries(40, 80, 2);
        let full = service.estimate_batch(&q);
        assert_eq!(service.severity_batch(&q), full.iter().map(|e| e.severity).collect::<Vec<_>>());
        assert_eq!(service.alerts_batch(&q), full.iter().map(|e| e.alert).collect::<Vec<_>>());
    }

    #[test]
    fn publish_swaps_epoch_and_invalidates_cache() {
        let service = TivServe::new(ServeConfig::default(), snapshot(40, 7, 0));
        let q = queries(40, 50, 3);
        let before = service.estimate_batch(&q);
        assert!(before.iter().all(|e| e.epoch == 0));
        // Publish a different snapshot (new seed → new matrix).
        service.publish(snapshot(40, 8, 1));
        assert_eq!(service.epoch(), 1);
        let after = service.estimate_batch(&q);
        assert!(after.iter().all(|e| e.epoch == 1));
        assert_ne!(before, after, "a new epoch should change answers");
    }

    #[test]
    fn readers_survive_concurrent_publishes() {
        let service = Arc::new(TivServe::new(ServeConfig::default(), snapshot(40, 9, 0)));
        let q = queries(40, 40, 4);
        std::thread::scope(|scope| {
            let svc = Arc::clone(&service);
            let qs = q.clone();
            let reader = scope.spawn(move || {
                for _ in 0..30 {
                    let got = svc.estimate_batch(&qs);
                    // Every answer in one batch comes from one snapshot.
                    let epoch = got[0].epoch;
                    assert!(got.iter().all(|e| e.epoch == epoch), "mixed epochs in a batch");
                }
            });
            for e in 1..6 {
                service.publish(snapshot(40, 9 + e, e));
            }
            reader.join().expect("reader panicked");
        });
    }

    #[test]
    fn shard_routing_is_total() {
        let service =
            TivServe::new(ServeConfig { shards: 5, ..ServeConfig::default() }, snapshot(30, 1, 0));
        for a in 0..30 {
            assert!(service.shard_of(a) < 5);
        }
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn out_of_range_query_rejected() {
        let service = TivServe::new(ServeConfig::default(), snapshot(10, 1, 0));
        let _ = service.estimate_batch(&[(0, 10)]);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let m = DelayMatrix::from_complete_fn(4, |i, j| (i + j) as f64 + 1.0);
        let mut sys = VivaldiSystem::new(VivaldiConfig::default(), 4, 1);
        let mut net = Network::new(&m, JitterModel::None, 1);
        sys.run_rounds(&mut net, 5);
        let snap = EpochSnapshot::without_monitors(0, m, sys.embedding());
        TivServe::new(ServeConfig { shards: 0, ..ServeConfig::default() }, snap);
    }
}
