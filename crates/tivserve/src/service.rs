//! The sharded, batch-first estimation and routing service.
//!
//! [`TivServe`] answers edge queries (predicted RTT, prediction ratio,
//! sampled severity, TIV alert state) and detour-routing queries (best
//! one-hop relay + predicted saving) from the current
//! [`EpochSnapshot`]. The snapshot lives behind an `Arc` that readers
//! clone and then compute against lock-free; publishing a new epoch
//! swaps the `Arc` without stalling in-flight batches (they finish on
//! the snapshot they started with).
//!
//! Queries are hash-sharded **by the ordered query pair** (hashing the
//! source alone concentrates a Zipf-skewed workload's hot sources on
//! one shard — the load imbalance the `serve` bench's occupancy report
//! tracks): each shard owns bounded LRU caches of edge and route
//! results, and a batch is fanned across shards with one [`tivpar`]
//! worker per shard. Because every cached value is a pure function of
//! the snapshot (stale epochs are rejected on lookup), the batch APIs
//! return **bit-identical results at every shard count** — pinned by
//! `tivoid`'s `serve_equivalence` and `route_equivalence` integration
//! tests.

use crate::cache::{CacheStats, EdgeCache};
use crate::query::{QueryBatch, ReplyBatch};
use crate::snapshot::{EdgeEstimate, EpochSnapshot, EstimateConfig, RouteEstimate};
use delayspace::matrix::NodeId;
use delayspace::NodePair;
use std::sync::{Arc, Mutex, RwLock};
use tivcore::SeverityEstimate;

/// Service construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Number of shards (≥ 1). A batch fans out over one worker per
    /// shard; `1` is the unsharded single-thread reference path.
    pub shards: usize,
    /// Per-shard LRU capacity, in edges, for each query kind (0
    /// disables caching).
    pub cache_capacity: usize,
    /// Batches smaller than this run inline on the calling thread
    /// (visiting each shard's cache in order) instead of spawning one
    /// scoped thread per shard — the same serial gate the `ides`
    /// kernels use, so a warm 64-query batch never pays spawn/join
    /// latency. `0` forces the fan-out path (used by the equivalence
    /// tests). Answers are identical either way.
    pub parallel_threshold: usize,
    /// Per-edge evaluation tuning (witness count, alert threshold,
    /// sampling seed).
    pub estimate: EstimateConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            cache_capacity: 65_536,
            parallel_threshold: 256,
            estimate: EstimateConfig::default(),
        }
    }
}

/// One shard's caches: every query kind the service answers keeps its
/// own LRU so a route sweep cannot evict the estimate working set.
struct Shard {
    edges: Mutex<EdgeCache<EdgeEstimate>>,
    routes: Mutex<EdgeCache<RouteEstimate>>,
}

/// The concurrent TIV estimation and detour-routing service.
pub struct TivServe {
    cfg: ServeConfig,
    /// The published snapshot. Readers take the lock only long enough
    /// to clone the `Arc` (no allocation, no computation under it);
    /// writers only to swap it. All query work happens lock-free on the
    /// cloned snapshot.
    current: RwLock<Arc<EpochSnapshot>>,
    /// One cache pair per shard. During a batch each shard is visited
    /// by exactly one worker, so these mutexes are uncontended within a
    /// batch; they serialise shard access across concurrent batches.
    shards: Vec<Shard>,
}

impl TivServe {
    /// Starts a service on an initial snapshot.
    ///
    /// # Panics
    /// Panics when `cfg.shards` is zero.
    pub fn new(cfg: ServeConfig, initial: EpochSnapshot) -> Self {
        assert!(cfg.shards >= 1, "a service needs at least one shard");
        let shards = (0..cfg.shards)
            .map(|_| Shard {
                edges: Mutex::new(EdgeCache::new(cfg.cache_capacity)),
                routes: Mutex::new(EdgeCache::new(cfg.cache_capacity)),
            })
            .collect();
        TivServe { cfg, current: RwLock::new(Arc::new(initial)), shards }
    }

    /// The construction parameters.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        self.current.read().expect("snapshot lock poisoned").clone()
    }

    /// Epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// Publishes a new snapshot, swapping it in atomically and dropping
    /// the shard caches' now-stale entries. In-flight batches keep the
    /// snapshot they started with; their late cache inserts carry the
    /// old epoch and are rejected on lookup, so a publish can never
    /// make a reader mix epochs.
    pub fn publish(&self, snapshot: EpochSnapshot) -> u64 {
        let epoch = snapshot.epoch();
        *self.current.write().expect("snapshot lock poisoned") = Arc::new(snapshot);
        for shard in &self.shards {
            shard.edges.lock().expect("shard cache poisoned").clear();
            shard.routes.lock().expect("shard cache poisoned").clear();
        }
        epoch
    }

    /// The shard owning the ordered query pair `(a, c)`.
    ///
    /// Both endpoints feed the hash: sharding by the source alone sent
    /// every query from a Zipf-hot source to the same shard, collapsing
    /// the fan-out to one effective worker under realistic skew. The
    /// pair hash spreads a hot source's queries across all shards while
    /// keeping repeat queries for the same pair on the same cache
    /// (stable for the service's lifetime — and irrelevant to results,
    /// which depend only on the snapshot).
    pub fn shard_of(&self, a: NodeId, c: NodeId) -> usize {
        let h = (a as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (c as u64).wrapping_mul(0xd605_0bb5_1656_57a1);
        ((h.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 32) as usize) % self.shards.len()
    }

    /// How many of `pairs` each shard would own — the occupancy the
    /// `serve` bench reports to show hot-source workloads stay
    /// balanced.
    pub fn shard_histogram(&self, pairs: &[NodePair]) -> Vec<usize> {
        let mut counts = vec![0usize; self.shards.len()];
        for &(a, c) in pairs {
            counts[self.shard_of(a, c)] += 1;
        }
        counts
    }

    /// Answers one shard's query group against one of its caches, in
    /// group order. The answers depend only on the snapshot, never on
    /// which thread runs this.
    fn answer_group<V: Copy>(
        snap: &EpochSnapshot,
        cache: &Mutex<EdgeCache<V>>,
        pairs: &[NodePair],
        group: &[u32],
        eval: &(impl Fn(&EpochSnapshot, NodeId, NodeId) -> V + Sync),
    ) -> Vec<(u32, V)> {
        let mut cache = cache.lock().expect("shard cache poisoned");
        group
            .iter()
            .map(|&idx| {
                let key = pairs[idx as usize];
                let v = match cache.get(key, snap.epoch()) {
                    Some(hit) => hit,
                    None => {
                        let fresh = eval(snap, key.0, key.1);
                        cache.insert(key, snap.epoch(), fresh);
                        fresh
                    }
                };
                (idx, v)
            })
            .collect()
    }

    /// The shared batch path of every query kind: group by shard, fan
    /// out (or run inline below the threshold), scatter back to input
    /// order. `select` picks the query kind's cache off a shard; `eval`
    /// computes a miss from the snapshot.
    ///
    /// # Panics
    /// Panics when a query names a node outside the snapshot.
    fn answer_batch<V: Copy + Send>(
        &self,
        pairs: &[NodePair],
        select: impl Fn(&Shard) -> &Mutex<EdgeCache<V>> + Sync,
        eval: impl Fn(&EpochSnapshot, NodeId, NodeId) -> V + Sync,
    ) -> Vec<V> {
        let snap = self.snapshot();
        let n = snap.len();
        let shard_count = self.shards.len();
        let mut groups: Vec<Vec<u32>> = vec![Vec::new(); shard_count];
        for (idx, &(a, c)) in pairs.iter().enumerate() {
            assert!(a < n && c < n, "query ({a},{c}) outside the {n}-node snapshot");
            groups[self.shard_of(a, c)].push(idx as u32);
        }
        let inline = shard_count == 1
            || (self.cfg.parallel_threshold > 0 && pairs.len() < self.cfg.parallel_threshold);
        let answer = |si: usize| {
            Self::answer_group(&snap, select(&self.shards[si]), pairs, &groups[si], &eval)
        };
        let answered: Vec<Vec<(u32, V)>> = if inline {
            (0..shard_count).map(answer).collect()
        } else {
            tivpar::par_map_rows(shard_count, shard_count, answer)
        };
        let mut out: Vec<Option<V>> = vec![None; pairs.len()];
        for (idx, v) in answered.into_iter().flatten() {
            out[idx as usize] = Some(v);
        }
        out.into_iter().map(|v| v.expect("every query answered by its shard")).collect()
    }

    /// Answers one query batch — the unified surface every query kind
    /// (and every layer above: wire dispatch, front, client) routes
    /// through.
    ///
    /// Queries are grouped by the pair's shard and each group is
    /// answered against the shard's cache for that kind — on one scoped
    /// worker per shard for large batches, inline on the calling thread
    /// below [`ServeConfig::parallel_threshold`] (spawn/join would
    /// dominate a small batch) — and the answers are scattered back to
    /// input positions. Either way the reply equals a serial snapshot
    /// loop, bit for bit, at every shard count (pinned by the
    /// `query_equivalence` and `wire_equivalence` suites).
    ///
    /// # Panics
    /// Panics when a query names a node outside the snapshot.
    pub fn query(&self, batch: &QueryBatch) -> ReplyBatch {
        match batch {
            QueryBatch::Estimate(pairs) => ReplyBatch::Estimate(self.answer_estimates(pairs)),
            QueryBatch::Route(pairs) => ReplyBatch::Route(self.answer_batch(
                pairs,
                |s| &s.routes,
                |snap, a, c| snap.route(a, c),
            )),
            QueryBatch::Severity(pairs) => ReplyBatch::Severity(
                self.answer_estimates(pairs).into_iter().map(|e| e.severity).collect(),
            ),
            QueryBatch::Alerts(pairs) => ReplyBatch::Alerts(
                self.answer_estimates(pairs).into_iter().map(|e| e.alert).collect(),
            ),
            QueryBatch::SampledSeverity { pairs, witnesses } => {
                ReplyBatch::SampledSeverity(self.answer_sampled_severities(pairs, *witnesses))
            }
        }
    }

    /// The estimate kind's batch path (shared by the severity and alert
    /// projections).
    fn answer_estimates(&self, pairs: &[NodePair]) -> Vec<EdgeEstimate> {
        let estimate = self.cfg.estimate;
        self.answer_batch(pairs, |s| &s.edges, move |snap, a, c| snap.evaluate(a, c, &estimate))
    }

    /// The sampled-severity kind: CI estimates at an explicit witness
    /// budget (`0` = the configured default). Uncached — the budget
    /// parameterises the answer, and the per-pair cost is already
    /// `O(witnesses)` — but parallelised and validated like every other
    /// kind, and a pure function of `(snapshot, pairs, witnesses,
    /// config)` regardless of shard or thread count.
    fn answer_sampled_severities(
        &self,
        pairs: &[NodePair],
        witnesses: u32,
    ) -> Vec<Option<SeverityEstimate>> {
        let snap = self.snapshot();
        let n = snap.len();
        for &(a, c) in pairs {
            assert!(a < n && c < n, "query ({a},{c}) outside the {n}-node snapshot");
        }
        let k =
            if witnesses == 0 { self.cfg.estimate.severity_witnesses } else { witnesses as usize };
        let inline = self.shards.len() == 1
            || (self.cfg.parallel_threshold > 0 && pairs.len() < self.cfg.parallel_threshold);
        let threads = if inline { 1 } else { self.shards.len() };
        let estimate = self.cfg.estimate;
        tivpar::par_map_rows(pairs.len(), threads, |i| {
            let (a, c) = pairs[i];
            snap.sampled_severity(a, c, k, &estimate)
        })
    }

    /// Answers a batch of `(source, peer)` edge queries, in input
    /// order.
    ///
    /// Legacy wrapper — prefer [`TivServe::query`] with
    /// [`QueryBatch::Estimate`]; this forwards there and unwraps the
    /// reply.
    ///
    /// # Panics
    /// Panics when a query names a node outside the snapshot.
    pub fn estimate_batch(&self, pairs: &[NodePair]) -> Vec<EdgeEstimate> {
        match self.query(&QueryBatch::Estimate(pairs.to_vec())) {
            ReplyBatch::Estimate(items) => items,
            _ => unreachable!("query preserves the kind"),
        }
    }

    /// Answers a batch of detour-routing queries, in input order: for
    /// each ordered pair, the best one-hop relay and its predicted
    /// saving ([`EpochSnapshot::route`]).
    ///
    /// Legacy wrapper — prefer [`TivServe::query`] with
    /// [`QueryBatch::Route`]; this forwards there and unwraps the
    /// reply.
    ///
    /// # Panics
    /// Panics when a query names a node outside the snapshot.
    pub fn route_batch(&self, pairs: &[NodePair]) -> Vec<RouteEstimate> {
        match self.query(&QueryBatch::Route(pairs.to_vec())) {
            ReplyBatch::Route(items) => items,
            _ => unreachable!("query preserves the kind"),
        }
    }

    /// Batch severity estimates: `None` for unmeasured edges.
    ///
    /// Legacy wrapper — prefer [`TivServe::query`] with
    /// [`QueryBatch::Severity`].
    pub fn severity_batch(&self, pairs: &[NodePair]) -> Vec<Option<f64>> {
        match self.query(&QueryBatch::Severity(pairs.to_vec())) {
            ReplyBatch::Severity(items) => items,
            _ => unreachable!("query preserves the kind"),
        }
    }

    /// Batch TIV alert states.
    ///
    /// Legacy wrapper — prefer [`TivServe::query`] with
    /// [`QueryBatch::Alerts`].
    pub fn alerts_batch(&self, pairs: &[NodePair]) -> Vec<bool> {
        match self.query(&QueryBatch::Alerts(pairs.to_vec())) {
            ReplyBatch::Alerts(items) => items,
            _ => unreachable!("query preserves the kind"),
        }
    }

    /// Batch sampled-severity estimates with confidence intervals at an
    /// explicit witness budget (`0` = the configured default).
    ///
    /// Convenience wrapper over [`TivServe::query`] with
    /// [`QueryBatch::SampledSeverity`].
    pub fn sampled_severity_batch(
        &self,
        pairs: &[NodePair],
        witnesses: u32,
    ) -> Vec<Option<SeverityEstimate>> {
        match self.query(&QueryBatch::SampledSeverity { pairs: pairs.to_vec(), witnesses }) {
            ReplyBatch::SampledSeverity(items) => items,
            _ => unreachable!("query preserves the kind"),
        }
    }

    /// Estimate-cache counters summed over all shards.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            total.absorb(&shard.edges.lock().expect("shard cache poisoned").stats());
        }
        total
    }

    /// Route-cache counters summed over all shards.
    pub fn route_cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            total.absorb(&shard.routes.lock().expect("shard cache poisoned").stats());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayspace::matrix::DelayMatrix;
    use delayspace::synth::{Dataset, InternetDelaySpace};
    use simnet::net::{JitterModel, Network};
    use vivaldi::{VivaldiConfig, VivaldiSystem};

    fn snapshot(n: usize, seed: u64, epoch: u64) -> EpochSnapshot {
        let m = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(n).build(seed).into_matrix();
        let mut sys = VivaldiSystem::new(VivaldiConfig::default(), n, seed);
        let mut net = Network::new(&m, JitterModel::None, seed);
        sys.run_rounds(&mut net, 40);
        let emb = sys.embedding();
        EpochSnapshot::without_monitors(epoch, m, emb)
    }

    fn queries(n: usize, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
        use rand::Rng;
        let mut r = delayspace::rng::rng(seed);
        (0..count)
            .map(|_| {
                let a = r.gen_range(0..n);
                let mut c = r.gen_range(0..n);
                while c == a {
                    c = r.gen_range(0..n);
                }
                (a, c)
            })
            .collect()
    }

    #[test]
    fn batch_matches_serial_evaluate() {
        let snap = snapshot(60, 3, 0);
        let cfg = ServeConfig { shards: 3, ..ServeConfig::default() };
        let estimate = cfg.estimate;
        let service = TivServe::new(cfg, snap.clone());
        let q = queries(60, 300, 9);
        let got = service.estimate_batch(&q);
        for (i, &(a, c)) in q.iter().enumerate() {
            assert_eq!(got[i], snap.evaluate(a, c, &estimate), "query {i} ({a},{c})");
        }
    }

    #[test]
    fn route_batch_matches_serial_route() {
        let snap = snapshot(60, 3, 0);
        let service =
            TivServe::new(ServeConfig { shards: 3, ..ServeConfig::default() }, snap.clone());
        let q = queries(60, 300, 9);
        let got = service.route_batch(&q);
        for (i, &(a, c)) in q.iter().enumerate() {
            assert_eq!(got[i], snap.route(a, c), "route query {i} ({a},{c})");
        }
        // And a warm second pass is answered from the route caches.
        let warm = service.route_batch(&q);
        assert_eq!(got, warm);
        let stats = service.route_cache_stats();
        assert!(stats.hits >= q.len() as u64, "second pass should be all hits: {stats:?}");
        // Route queries never touch the estimate caches.
        assert_eq!(service.cache_stats().misses, 0);
    }

    #[test]
    fn inline_gate_matches_fanout_path() {
        let snap = snapshot(50, 11, 0);
        // Same service config except the gate: one always inline, one
        // always fanned out.
        let inline = TivServe::new(
            ServeConfig { shards: 4, parallel_threshold: usize::MAX, ..ServeConfig::default() },
            snap.clone(),
        );
        let fanout = TivServe::new(
            ServeConfig { shards: 4, parallel_threshold: 0, ..ServeConfig::default() },
            snap,
        );
        let q = queries(50, 120, 5);
        assert_eq!(inline.estimate_batch(&q), fanout.estimate_batch(&q));
        assert_eq!(inline.route_batch(&q), fanout.route_batch(&q));
    }

    #[test]
    fn repeated_batches_hit_the_cache_without_changing_answers() {
        let service = TivServe::new(ServeConfig::default(), snapshot(50, 5, 0));
        let q = queries(50, 200, 1);
        let cold = service.estimate_batch(&q);
        let warm = service.estimate_batch(&q);
        assert_eq!(cold, warm);
        let stats = service.cache_stats();
        assert!(stats.hits >= q.len() as u64, "second pass should be all hits: {stats:?}");
        assert!(stats.len > 0);
    }

    #[test]
    fn projections_agree_with_estimates() {
        let service = TivServe::new(ServeConfig::default(), snapshot(40, 7, 0));
        let q = queries(40, 80, 2);
        let full = service.estimate_batch(&q);
        assert_eq!(service.severity_batch(&q), full.iter().map(|e| e.severity).collect::<Vec<_>>());
        assert_eq!(service.alerts_batch(&q), full.iter().map(|e| e.alert).collect::<Vec<_>>());
    }

    #[test]
    fn publish_swaps_epoch_and_invalidates_cache() {
        let service = TivServe::new(ServeConfig::default(), snapshot(40, 7, 0));
        let q = queries(40, 50, 3);
        let before = service.estimate_batch(&q);
        let routes_before = service.route_batch(&q);
        assert!(before.iter().all(|e| e.epoch == 0));
        assert!(routes_before.iter().all(|r| r.epoch == 0));
        // Publish a different snapshot (new seed → new matrix).
        service.publish(snapshot(40, 8, 1));
        assert_eq!(service.epoch(), 1);
        let after = service.estimate_batch(&q);
        assert!(after.iter().all(|e| e.epoch == 1));
        assert_ne!(before, after, "a new epoch should change answers");
        let routes_after = service.route_batch(&q);
        assert!(routes_after.iter().all(|r| r.epoch == 1));
    }

    #[test]
    fn readers_survive_concurrent_publishes() {
        let service = Arc::new(TivServe::new(ServeConfig::default(), snapshot(40, 9, 0)));
        let q = queries(40, 40, 4);
        std::thread::scope(|scope| {
            let svc = Arc::clone(&service);
            let qs = q.clone();
            let reader = scope.spawn(move || {
                for _ in 0..30 {
                    let got = svc.estimate_batch(&qs);
                    // Every answer in one batch comes from one snapshot.
                    let epoch = got[0].epoch;
                    assert!(got.iter().all(|e| e.epoch == epoch), "mixed epochs in a batch");
                }
            });
            for e in 1..6 {
                service.publish(snapshot(40, 9 + e, e));
            }
            reader.join().expect("reader panicked");
        });
    }

    #[test]
    fn shard_routing_is_total_and_pair_sensitive() {
        let service =
            TivServe::new(ServeConfig { shards: 5, ..ServeConfig::default() }, snapshot(30, 1, 0));
        for a in 0..30 {
            for c in 0..30 {
                assert!(service.shard_of(a, c) < 5);
            }
        }
        // A single hot source must spread across shards (the Zipf
        // hot-shard fix): with 29 destinations and 5 shards, every
        // shard should see some of source 0's queries.
        let hot: Vec<_> = (1..30).map(|c| (0usize, c)).collect();
        let hist = service.shard_histogram(&hot);
        assert_eq!(hist.iter().sum::<usize>(), hot.len());
        assert!(
            hist.iter().all(|&count| count > 0),
            "hot source pinned to a shard subset: {hist:?}"
        );
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn out_of_range_query_rejected() {
        let service = TivServe::new(ServeConfig::default(), snapshot(10, 1, 0));
        let _ = service.estimate_batch(&[(0, 10)]);
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn out_of_range_route_rejected() {
        let service = TivServe::new(ServeConfig::default(), snapshot(10, 1, 0));
        let _ = service.route_batch(&[(0, 10)]);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let m = DelayMatrix::from_complete_fn(4, |i, j| (i + j) as f64 + 1.0);
        let mut sys = VivaldiSystem::new(VivaldiConfig::default(), 4, 1);
        let mut net = Network::new(&m, JitterModel::None, 1);
        sys.run_rounds(&mut net, 5);
        let snap = EpochSnapshot::without_monitors(0, m, sys.embedding());
        TivServe::new(ServeConfig { shards: 0, ..ServeConfig::default() }, snap);
    }
}
