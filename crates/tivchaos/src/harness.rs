//! The chaos harness: a scripted fault plan driven against a real
//! multi-replica deployment under open-loop load.
//!
//! One paced single-threaded loop plays a seeded Zipf workload against
//! a [`Deployment`] over real sockets, applying the plan's faults at
//! batch boundaries and forcing epoch publishes on a fixed batch
//! cadence ([`DeploymentHandle::publish_now`] is synchronous, so the
//! epoch timeline is deterministic too). Each batch targets the
//! replica `batch_index % replicas`; a batch whose replica is down is
//! counted unavailable without any I/O — which makes
//! `unavailable_batches` and `max_staleness_epochs` exact,
//! plan-determined counts, while wall-clock latency percentiles stay
//! honest measurements of the live sockets.
//!
//! After the measured run the harness heals the deployment and
//! performs the **bit-exact recovery check**: every replica —
//! restarted or not — must answer probe frames byte-identically to a
//! replica the plan never crashed. This extends the repo's
//! wire-equivalence discipline across failure and recovery: a restart
//! rebuilds state from the retained snapshot through the one
//! validated constructor surface, so there is nothing a crash is
//! allowed to change.

use crate::fault::{FaultKind, FaultPlan};
use delayspace::synth::{Dataset, InternetDelaySpace};
use std::fmt;
use std::io;
use std::time::{Duration, Instant};
use tivgate::client::GateClient;
use tivgate::deploy::{Deployment, DeploymentHandle};
use tivgate::proto::{to_wire_pairs, Request, Response};
use tivserve::loadgen::{LoadReport, LoadSpec, QueryBatch, WorkloadConfig};
use tivserve::service::ServeConfig;
use tivserve::EpochBuilder;

/// Service-level objectives a chaos run is held to.
#[derive(Clone, Copy, Debug)]
pub struct SloSpec {
    /// Minimum fraction of workload batches that must be answered.
    pub min_availability: f64,
    /// Maximum epochs any answered batch may lag the latest built
    /// snapshot.
    pub max_staleness_epochs: u64,
}

impl Default for SloSpec {
    fn default() -> Self {
        // The standard plan keeps one of >= 2 replicas down for a
        // quarter of the run: availability bottoms out at
        // 1 - (1/4)/replicas. 0.85 holds from 2 replicas up with
        // margin; two gated publishes bound staleness at 2.
        SloSpec { min_availability: 0.85, max_staleness_epochs: 3 }
    }
}

/// Everything a chaos run can tune.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Nodes in the synthetic DS²-style delay space.
    pub nodes: usize,
    /// Deployment replicas.
    pub replicas: usize,
    /// Total edge queries of the workload.
    pub queries: usize,
    /// Queries per batch.
    pub batch: usize,
    /// Fraction of operations that are RTT observations, in `[0, 1)`.
    pub observe_frac: f64,
    /// Force an epoch publish every this many batches (0 disables the
    /// publisher entirely). Batch-cadence publishing keeps the epoch
    /// timeline — and with it the staleness measurements — a pure
    /// function of the plan.
    pub publish_every_batches: usize,
    /// Target query arrival rate, queries/second (0 = unpaced).
    pub target_qps: f64,
    /// Master seed (space, embedding, workload).
    pub seed: u64,
    /// Objectives the report is checked against.
    pub slo: SloSpec,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            nodes: 192,
            replicas: 3,
            queries: 6_000,
            batch: 64,
            observe_frac: 0.1,
            publish_every_batches: 8,
            target_qps: 0.0,
            seed: 42,
            slo: SloSpec::default(),
        }
    }
}

/// The outcome of one chaos run.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Shared measurement core over the **answered** batches (queries,
    /// observation accounting, wall-clock latency percentiles).
    pub load: LoadReport,
    /// Deployment replicas.
    pub replicas: usize,
    /// Workload batches scheduled, answered or not.
    pub batches_total: usize,
    /// Batches that found their replica down (no I/O attempted) or
    /// failed on the wire. Deterministic given the plan.
    pub unavailable_batches: usize,
    /// Batches that failed on the wire despite the replica being
    /// nominally up (included in `unavailable_batches`).
    pub wire_failures: usize,
    /// Epochs force-published during the run.
    pub epochs_published: u64,
    /// Worst staleness (epochs behind the latest build) any answered
    /// batch observed. Deterministic given the plan.
    pub max_staleness_epochs: u64,
    /// Publishes withheld by skip-publish fault gates.
    pub publishes_skipped: u64,
    /// Crashes injected.
    pub crashes: usize,
    /// Restarts injected (heals included).
    pub restarts: usize,
    /// Whether every replica answered the post-heal probe frames
    /// byte-identically to a never-crashed control replica.
    pub recovered_bitexact: bool,
    /// The objectives the run was held to.
    pub slo: SloSpec,
}

impl ChaosReport {
    /// Fraction of scheduled batches answered.
    pub fn availability(&self) -> f64 {
        if self.batches_total == 0 {
            1.0
        } else {
            1.0 - self.unavailable_batches as f64 / self.batches_total as f64
        }
    }

    /// Whether the availability objective held.
    pub fn availability_ok(&self) -> bool {
        self.availability() >= self.slo.min_availability
    }

    /// Whether the staleness objective held.
    pub fn staleness_ok(&self) -> bool {
        self.max_staleness_epochs <= self.slo.max_staleness_epochs
    }

    /// Whether every objective held, recovery included.
    pub fn slo_ok(&self) -> bool {
        self.availability_ok() && self.staleness_ok() && self.recovered_bitexact
    }
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos: {} replicas, {} batches — availability {:.1}% ({} unavailable, \
             {} wire failures) [SLO >= {:.1}%: {}]",
            self.replicas,
            self.batches_total,
            self.availability() * 100.0,
            self.unavailable_batches,
            self.wire_failures,
            self.slo.min_availability * 100.0,
            if self.availability_ok() { "ok" } else { "VIOLATED" },
        )?;
        writeln!(
            f,
            "  staleness: max {} epochs behind ({} published, {} withheld) [SLO <= {}: {}]",
            self.max_staleness_epochs,
            self.epochs_published,
            self.publishes_skipped,
            self.slo.max_staleness_epochs,
            if self.staleness_ok() { "ok" } else { "VIOLATED" },
        )?;
        writeln!(
            f,
            "  faults: {} crash(es), {} restart(s) — recovery bit-exact: {}",
            self.crashes,
            self.restarts,
            if self.recovered_bitexact { "yes" } else { "NO" },
        )?;
        write!(
            f,
            "  served: {} queries at {:.0} q/s, batch latency p50 {:.0} us p99 {:.0} us, \
             {} observations ({} undelivered)",
            self.load.queries,
            self.load.qps,
            self.load.p50_us,
            self.load.p99_us,
            self.load.observations,
            self.load.observations_undelivered,
        )
    }
}

/// Applies one fault to the live deployment.
fn apply_fault(
    handle: &DeploymentHandle,
    kind: FaultKind,
    crashes: &mut usize,
    restarts: &mut usize,
) -> io::Result<()> {
    match kind {
        FaultKind::Crash { replica } => {
            handle.crash(replica)?;
            *crashes += 1;
        }
        FaultKind::Restart { replica } => {
            handle.restart(replica)?;
            *restarts += 1;
        }
        FaultKind::SkipPublishes { replica, publishes } => {
            handle.skip_publishes(replica, publishes);
        }
        FaultKind::Heal => {
            for r in 0..handle.replicas() {
                if handle.addr(r).is_none() {
                    handle.restart(r)?;
                    *restarts += 1;
                }
                handle.skip_publishes(r, 0);
            }
        }
    }
    Ok(())
}

/// Heals the deployment (every replica up, no publish gates), levels
/// all replicas onto one epoch, and checks every replica's probe
/// answers byte-equal a never-crashed control's.
fn check_bitexact_recovery(
    handle: &DeploymentHandle,
    plan: &FaultPlan,
    batches: &[QueryBatch],
    restarts: &mut usize,
) -> io::Result<bool> {
    for r in 0..handle.replicas() {
        if handle.addr(r).is_none() {
            handle.restart(r)?;
            *restarts += 1;
        }
        handle.skip_publishes(r, 0);
    }
    let control = plan.never_crashed(handle.replicas())[0];
    let mut clients = Vec::with_capacity(handle.replicas());
    for r in 0..handle.replicas() {
        clients.push(GateClient::connect(handle.addr(r).expect("healed replica is up"))?);
    }
    let probe = |clients: &mut Vec<GateClient>,
                 include: &dyn Fn(usize) -> bool|
     -> io::Result<bool> {
        for (bi, batch) in batches.iter().take(4).enumerate() {
            let req =
                Request::Estimate { id: 0x7000 + bi as u32, pairs: to_wire_pairs(&batch.pairs) };
            let want = clients[control].call_frame(&req)?;
            for (r, client) in clients.iter_mut().enumerate() {
                if r == control || !include(r) {
                    continue;
                }
                if client.call_frame(&req)? != want {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    };
    // Pass 1: every replica already at the latest epoch — which every
    // restarted replica is, since restart rebuilds from the retained
    // snapshot — must answer like the control *before* a fresh publish
    // could mask a bad rebuild. Only possible when the control itself
    // is current.
    let latest = handle.latest_epoch();
    if handle.replica_epoch(control) == Some(latest) {
        let current: Vec<bool> =
            (0..handle.replicas()).map(|r| handle.replica_epoch(r) == Some(latest)).collect();
        if !probe(&mut clients, &|r| current[r])? {
            return Ok(false);
        }
    }
    // Pass 2: level publish-gated (stale) replicas onto one epoch and
    // compare everyone.
    handle.publish_now();
    probe(&mut clients, &|_| true)
}

/// Runs the full chaos experiment: spawn the deployment, play the
/// workload through the plan's faults, heal, and verify bit-exact
/// recovery. Errors surface I/O failures of the harness itself (a
/// fault that fails to inject, a probe that fails post-heal) — faults
/// *experienced by the workload* are measurements, not errors.
pub fn run_chaos(cfg: &ChaosConfig, plan: &FaultPlan) -> io::Result<ChaosReport> {
    plan.validate(cfg.replicas).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    let matrix = InternetDelaySpace::preset(Dataset::Ds2)
        .with_nodes(cfg.nodes)
        .build(cfg.seed)
        .into_matrix();
    let epoch_cfg = tivserve::EpochConfig { seed: cfg.seed, ..tivserve::EpochConfig::default() };
    let (builder, snapshot) = EpochBuilder::bootstrap(matrix.clone(), epoch_cfg);
    let spec = LoadSpec {
        workload: WorkloadConfig {
            queries: cfg.queries,
            batch: cfg.batch,
            observe_frac: cfg.observe_frac,
            seed: cfg.seed,
            ..WorkloadConfig::default()
        },
        target_qps: cfg.target_qps,
    };
    let batches = spec.batches(&matrix);
    let with_publisher = cfg.publish_every_batches > 0;
    let deployment = Deployment::new(snapshot, ServeConfig::default()).replicas(cfg.replicas);
    let handle = if with_publisher {
        // The observation threshold never fires on its own: epochs
        // advance only on the harness's forced batch-cadence publishes,
        // keeping the epoch timeline plan-deterministic.
        deployment.publisher(builder, usize::MAX / 2).spawn()?
    } else {
        deployment.spawn()?
    };
    let feed = handle.feed();

    let mut clients: Vec<Option<GateClient>> = (0..cfg.replicas).map(|_| None).collect();
    let mut crashes = 0usize;
    let mut restarts = 0usize;
    let mut unavailable = 0usize;
    let mut wire_failures = 0usize;
    let mut epochs_published = 0u64;
    let mut max_staleness = 0u64;
    let mut queries_answered = 0usize;
    let mut batches_answered = 0usize;
    let mut observations = 0usize;
    let mut undelivered = 0usize;
    let mut latencies_us: Vec<f64> = Vec::with_capacity(batches.len());

    let interval = if cfg.target_qps > 0.0 {
        Duration::from_secs_f64(cfg.batch as f64 / cfg.target_qps)
    } else {
        Duration::ZERO
    };
    let start = Instant::now();
    for (bi, batch) in batches.iter().enumerate() {
        for event in plan.events_at(bi) {
            apply_fault(&handle, event.kind, &mut crashes, &mut restarts)?;
            if let FaultKind::Crash { replica } | FaultKind::Restart { replica } = event.kind {
                clients[replica] = None; // the old connection is dead either way
            }
        }
        if with_publisher
            && bi > 0
            && bi % cfg.publish_every_batches == 0
            && handle.publish_now().is_some()
        {
            epochs_published += 1;
        }
        if let Some(feed) = &feed {
            for &obs in &batch.observations {
                observations += 1;
                if feed.observe(obs).is_err() {
                    undelivered += 1;
                }
            }
        } else {
            observations += batch.observations.len();
        }
        // Open-loop pacing: latency is measured from the scheduled
        // send time, so queueing behind a slow replica shows up in the
        // tail instead of slowing the generator down.
        let scheduled = interval * bi as u32;
        let now = start.elapsed();
        if interval > Duration::ZERO && now < scheduled {
            std::thread::sleep(scheduled - now);
        }
        let replica = bi % cfg.replicas;
        let Some(addr) = handle.addr(replica) else {
            unavailable += 1;
            continue;
        };
        if clients[replica].is_none() {
            match GateClient::connect(addr) {
                Ok(c) => {
                    let _ = c.set_read_timeout(Some(Duration::from_millis(2_000)));
                    clients[replica] = Some(c);
                }
                Err(_) => {
                    unavailable += 1;
                    wire_failures += 1;
                    continue;
                }
            }
        }
        let req = Request::Estimate { id: bi as u32, pairs: to_wire_pairs(&batch.pairs) };
        let sent_at = start.elapsed().max(scheduled);
        match clients[replica].as_mut().expect("connected above").call(&req) {
            Ok(Response::Estimate { items, .. }) => {
                let done = start.elapsed();
                latencies_us.push((done - sent_at).as_secs_f64() * 1e6);
                queries_answered += items.len();
                batches_answered += 1;
                let latest = handle.latest_epoch();
                for item in &items {
                    max_staleness = max_staleness.max(latest.saturating_sub(item.epoch));
                }
            }
            Ok(_) | Err(_) => {
                // Error frame or transport failure: the batch goes
                // unanswered and the connection is rebuilt lazily.
                unavailable += 1;
                wire_failures += 1;
                clients[replica] = None;
            }
        }
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    let recovered_bitexact = check_bitexact_recovery(&handle, plan, &batches, &mut restarts)?;
    let publishes_skipped = handle.publishes_skipped();
    handle.shutdown()?;
    Ok(ChaosReport {
        load: LoadReport::from_latencies(
            queries_answered,
            batches_answered,
            observations,
            undelivered,
            elapsed_s,
            latencies_us,
        ),
        replicas: cfg.replicas,
        batches_total: batches.len(),
        unavailable_batches: unavailable,
        wire_failures,
        epochs_published,
        max_staleness_epochs: max_staleness,
        publishes_skipped,
        crashes,
        restarts,
        recovered_bitexact,
        slo: cfg.slo,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ChaosConfig {
        ChaosConfig {
            nodes: 48,
            replicas: 2,
            queries: 1_200,
            batch: 50,
            publish_every_batches: 4,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn faultless_run_is_fully_available_and_current() {
        let report = run_chaos(&tiny(), &FaultPlan::none()).expect("chaos run");
        assert_eq!(report.unavailable_batches, 0);
        assert_eq!(report.wire_failures, 0);
        assert!((report.availability() - 1.0).abs() < 1e-12);
        // Staleness can reach 1 transiently (the batch right after a
        // forced publish may answer from the previous epoch on a
        // replica the publish reached after the query) — but here
        // publishes are synchronous, so even that cannot happen.
        assert_eq!(report.max_staleness_epochs, 0);
        assert!(report.recovered_bitexact);
        assert!(report.slo_ok(), "faultless run violates its own SLOs: {report}");
        assert!(report.epochs_published > 0);
        assert_eq!(report.load.observations_undelivered, 0);
    }

    #[test]
    fn standard_plan_degrades_and_recovers_deterministically() {
        let cfg = tiny();
        let batches_total = cfg.queries / cfg.batch;
        let plan = FaultPlan::standard(cfg.replicas, batches_total);
        let a = run_chaos(&cfg, &plan).expect("chaos run");
        let b = run_chaos(&cfg, &plan).expect("chaos run");
        // Availability and staleness are pure functions of the plan.
        assert_eq!(a.unavailable_batches, b.unavailable_batches);
        assert_eq!(a.max_staleness_epochs, b.max_staleness_epochs);
        assert_eq!(a.publishes_skipped, b.publishes_skipped);
        assert!(a.unavailable_batches > 0, "the crash window must cost batches");
        assert!(a.max_staleness_epochs > 0, "the publish gate must show up as staleness");
        assert_eq!(a.wire_failures, 0, "down replicas are skipped without I/O");
        assert!(a.recovered_bitexact, "restart must recover bit-exactly");
        assert!(a.slo_ok(), "standard plan must stay within default SLOs: {a}");
        assert!(a.crashes == 1 && a.restarts >= 1);
    }

    #[test]
    fn invalid_plans_are_rejected_up_front() {
        let cfg = tiny();
        let bad = FaultPlan {
            events: vec![crate::fault::FaultEvent {
                at_batch: 0,
                kind: FaultKind::Crash { replica: 7 },
            }],
        };
        let err = run_chaos(&cfg, &bad).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
