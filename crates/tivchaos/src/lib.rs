//! tivchaos: deterministic fault injection for the serving stack, plus
//! the paper's motivating applications run live against it.
//!
//! Two halves, one discipline:
//!
//! * [`fault`] + [`harness`] — a chaos harness driving a real
//!   multi-replica [`tivgate::Deployment`] through scripted faults
//!   (replica crash and restart mid-epoch, delayed/dropped epoch
//!   publishes, shard loss) while an open-loop client measures
//!   availability, staleness in epochs, and latency SLOs. Faults fire
//!   at batch boundaries of a seeded workload, so availability and
//!   staleness are **pure functions of the fault plan** — the chaos
//!   run is reproducible, and recovery is checked **bit-exactly**: a
//!   restarted replica must answer byte-identically to one that never
//!   crashed (the `wire_equivalence` discipline, extended to failure).
//! * [`apps`] — the applications from the paper's introduction
//!   (server selection, overlay-multicast parent choice) promoted from
//!   illustrative examples to measured end-to-end workloads: every
//!   routing decision is made from estimates served live over the wire
//!   by a deployment, TIV-aware vs TIV-oblivious vs oracle, with the
//!   savings attributed to severity bins via
//!   [`tivroute::SavingsBySeverity`].
//!
//! The harness deliberately spawns **no threads of its own**: the
//! deployment already owns the serving and publishing threads, and a
//! single paced loop with per-replica clients is both sufficient to
//! saturate the SLO questions and trivially deterministic.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod apps;
pub mod fault;
pub mod harness;

pub use apps::{run_overlay_multicast, run_server_selection, AppConfig, AppReport};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use harness::{run_chaos, ChaosConfig, ChaosReport, SloSpec};
