//! The paper's motivating applications, served live from snapshots.
//!
//! The repo's `server_selection` and `overlay_multicast` examples
//! began as pure simulations; here they are promoted to measured
//! end-to-end workloads: a [`Deployment`] serves TIV estimates over
//! real sockets, a [`Front`] dispatches the query batches, and every
//! routing decision — which server a client picks, which parent a
//! multicast joiner attaches to — is made from the wire answers alone:
//!
//! * **TIV-oblivious** — minimize the embedding's predicted delay
//!   (what a coordinate-only system does);
//! * **TIV-aware** — same, but candidates whose edge carries a TIV
//!   alert are avoided (the paper's Section 5 discipline: an alerted
//!   edge's prediction is known to be misleading);
//! * **oracle** — the true measured delay (the unreachable lower
//!   bound).
//!
//! The payoff is attributed, per decision, to the TIV severity of the
//! edge the oblivious strategy would have used, binned via
//! [`SavingsBySeverity`] — reproducing the paper's
//! savings-grow-with-severity claim on live traffic.

use delayspace::matrix::DelayMatrix;
use delayspace::synth::{Dataset, InternetDelaySpace};
use std::fmt;
use std::io;
use tivgate::deploy::Deployment;
use tivgate::front::Front;
use tivgate::proto::to_wire_pairs;
use tivroute::SavingsBySeverity;
use tivserve::loadgen::percentile;
use tivserve::service::ServeConfig;
use tivserve::snapshot::EdgeEstimate;
use tivserve::{EpochBuilder, EpochConfig};

/// Everything the application workloads can tune.
#[derive(Clone, Copy, Debug)]
pub struct AppConfig {
    /// Nodes in the synthetic DS²-style delay space.
    pub nodes: usize,
    /// Deployment replicas serving the estimates.
    pub replicas: usize,
    /// Server-selection: the first `servers` node ids are the
    /// candidate fleet, the rest are clients.
    pub servers: usize,
    /// Overlay-multicast: children cap per tree member.
    pub fanout: usize,
    /// Severity bin width of the savings attribution.
    pub sev_bin: f64,
    /// Severity cap of the savings attribution.
    pub sev_max: f64,
    /// Master seed (space, embedding).
    pub seed: u64,
}

impl Default for AppConfig {
    fn default() -> Self {
        AppConfig {
            nodes: 240,
            replicas: 2,
            servers: 60,
            fanout: 6,
            sev_bin: 0.25,
            sev_max: 2.0,
            seed: 23,
        }
    }
}

/// The measured outcome of one application workload.
#[derive(Clone, Debug)]
pub struct AppReport {
    /// Which workload ran.
    pub label: &'static str,
    /// Routing decisions made (clients served / members joined).
    pub decisions: usize,
    /// Wire batches issued to the deployment.
    pub wire_batches: usize,
    /// Mean outcome delay of the TIV-oblivious strategy (ms).
    pub oblivious_ms: f64,
    /// Mean outcome delay of the TIV-aware strategy (ms).
    pub aware_ms: f64,
    /// Mean outcome delay of the oracle (ms).
    pub oracle_ms: f64,
    /// Median outcome delay of the TIV-aware strategy (ms).
    pub aware_p50_ms: f64,
    /// Decisions where the aware strategy strictly beat the oblivious
    /// one.
    pub improved: usize,
    /// Mean relative saving of aware over oblivious, clamped at 0 per
    /// decision.
    pub mean_rel_saving: f64,
    /// Relative savings attributed to the severity of the edge the
    /// oblivious strategy would have used.
    pub savings: SavingsBySeverity,
}

impl AppReport {
    /// Fraction of the oblivious-to-oracle gap the aware strategy
    /// closes (1 = reaches the oracle, 0 = no better than oblivious).
    pub fn gap_closed(&self) -> f64 {
        let gap = self.oblivious_ms - self.oracle_ms;
        if gap <= 0.0 {
            1.0
        } else {
            ((self.oblivious_ms - self.aware_ms) / gap).clamp(0.0, 1.0)
        }
    }
}

impl fmt::Display for AppReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} decisions over {} wire batches",
            self.label, self.decisions, self.wire_batches
        )?;
        writeln!(
            f,
            "  mean delay: oblivious {:.1} ms, TIV-aware {:.1} ms (p50 {:.1}), oracle {:.1} ms \
             — {:.0}% of the gap closed",
            self.oblivious_ms,
            self.aware_ms,
            self.aware_p50_ms,
            self.oracle_ms,
            self.gap_closed() * 100.0
        )?;
        writeln!(
            f,
            "  {} of {} decisions improved; mean relative saving {:.1}%",
            self.improved,
            self.decisions,
            self.mean_rel_saving * 100.0
        )?;
        write!(f, "  savings by severity bin (midpoint: median rel. saving):")?;
        for (mid, med) in self.savings.median_series() {
            write!(f, "  {mid:.2}: {:.1}%", med * 100.0)?;
        }
        Ok(())
    }
}

/// Index of the estimate with the smallest predicted delay.
fn argmin_predicted(estimates: &[EdgeEstimate], include_alerted: bool) -> Option<usize> {
    estimates
        .iter()
        .enumerate()
        .filter(|(_, e)| include_alerted || !e.alert)
        .min_by(|(_, a), (_, b)| a.predicted.total_cmp(&b.predicted))
        .map(|(i, _)| i)
}

/// One TIV-aware-vs-oblivious decision from a batch of wire answers:
/// `(oblivious index, aware index)`. The aware strategy avoids alerted
/// edges; when every candidate is alerted it falls back to the
/// oblivious choice rather than failing.
fn decide(estimates: &[EdgeEstimate]) -> (usize, usize) {
    let oblivious = argmin_predicted(estimates, true).expect("non-empty candidate set");
    let aware = argmin_predicted(estimates, false).unwrap_or(oblivious);
    (oblivious, aware)
}

/// Accumulates per-decision outcomes into an [`AppReport`].
struct Outcomes {
    oblivious: Vec<f64>,
    aware: Vec<f64>,
    oracle: Vec<f64>,
    savings: Vec<(f64, f64)>,
    improved: usize,
    wire_batches: usize,
}

impl Outcomes {
    fn new() -> Self {
        Outcomes {
            oblivious: Vec::new(),
            aware: Vec::new(),
            oracle: Vec::new(),
            savings: Vec::new(),
            improved: 0,
            wire_batches: 0,
        }
    }

    /// Records one decision: outcome delays of the three strategies
    /// plus the severity of the edge the oblivious strategy used.
    fn record(&mut self, d_obl: f64, d_aware: f64, d_oracle: f64, obl_severity: Option<f64>) {
        self.oblivious.push(d_obl);
        self.aware.push(d_aware);
        self.oracle.push(d_oracle);
        if d_aware < d_obl {
            self.improved += 1;
        }
        let rel = if d_obl > 0.0 { ((d_obl - d_aware) / d_obl).max(0.0) } else { 0.0 };
        if let Some(s) = obl_severity {
            self.savings.push((s, rel));
        }
    }

    fn into_report(self, label: &'static str, cfg: &AppConfig) -> AppReport {
        let mean = |xs: &[f64]| {
            if xs.is_empty() {
                0.0
            } else {
                xs.iter().sum::<f64>() / xs.len() as f64
            }
        };
        let mean_rel_saving = mean(
            &self
                .oblivious
                .iter()
                .zip(&self.aware)
                .map(|(&o, &a)| if o > 0.0 { ((o - a) / o).max(0.0) } else { 0.0 })
                .collect::<Vec<f64>>(),
        );
        let mut aware_sorted = self.aware.clone();
        aware_sorted.sort_by(f64::total_cmp);
        AppReport {
            label,
            decisions: self.oblivious.len(),
            wire_batches: self.wire_batches,
            oblivious_ms: mean(&self.oblivious),
            aware_ms: mean(&self.aware),
            oracle_ms: mean(&self.oracle),
            aware_p50_ms: percentile(&aware_sorted, 0.50),
            improved: self.improved,
            mean_rel_saving,
            savings: SavingsBySeverity::from_samples(self.savings, cfg.sev_bin, cfg.sev_max),
        }
    }
}

/// Spawns the serving deployment for a workload and connects a front
/// over every replica.
fn serve_space(cfg: &AppConfig) -> io::Result<(DelayMatrix, tivgate::DeploymentHandle, Front)> {
    let matrix = InternetDelaySpace::preset(Dataset::Ds2)
        .with_nodes(cfg.nodes)
        .build(cfg.seed)
        .into_matrix();
    let epoch_cfg = EpochConfig { seed: cfg.seed, ..EpochConfig::default() };
    let (_, snapshot) = EpochBuilder::bootstrap(matrix.clone(), epoch_cfg);
    let handle =
        Deployment::new(snapshot, ServeConfig::default()).replicas(cfg.replicas).spawn()?;
    let front = Front::connect(&handle.addrs())?;
    Ok((matrix, handle, front))
}

/// True measured delay of an edge, with the example's conservative
/// fallback for unmeasured pairs.
fn measured(m: &DelayMatrix, a: usize, b: usize) -> f64 {
    m.get(a, b).unwrap_or(1_000.0)
}

/// Server selection served live: every client asks the deployment for
/// estimates to the whole candidate fleet and picks a server three
/// ways. Outcome delay is the true measured client-to-server delay.
pub fn run_server_selection(cfg: &AppConfig) -> io::Result<AppReport> {
    assert!(cfg.servers >= 1 && cfg.servers < cfg.nodes, "need servers and clients");
    let (matrix, handle, mut front) = serve_space(cfg)?;
    let servers: Vec<usize> = (0..cfg.servers).collect();
    let mut out = Outcomes::new();
    for client in cfg.servers..cfg.nodes {
        let pairs: Vec<(usize, usize)> = servers.iter().map(|&s| (client, s)).collect();
        let estimates = front.estimate_batch(&to_wire_pairs(&pairs))?;
        out.wire_batches += 1;
        let (obl, aware) = decide(&estimates);
        let (_, d_oracle) = matrix.nearest_among(client, servers.iter()).expect("non-empty fleet");
        out.record(
            measured(&matrix, client, servers[obl]),
            measured(&matrix, client, servers[aware]),
            d_oracle,
            estimates[obl].severity,
        );
    }
    handle.shutdown()?;
    Ok(out.into_report("server selection (live)", cfg))
}

/// A multicast tree under construction: parent pointers plus per-node
/// children counts enforcing the fanout cap.
struct Tree {
    parent: Vec<Option<usize>>,
    children: Vec<usize>,
}

impl Tree {
    fn new(n: usize) -> Self {
        Tree { parent: vec![None; n], children: vec![0; n] }
    }

    /// Members that can still accept a child among `0..joined`.
    fn eligible(&self, joined: usize, fanout: usize) -> Vec<usize> {
        (0..joined).filter(|&j| self.children[j] < fanout).collect()
    }

    fn attach(&mut self, node: usize, parent: usize) {
        self.parent[node] = Some(parent);
        self.children[parent] += 1;
    }

    /// Overlay delay from the root: the sum of measured edge delays
    /// along the parent chain.
    fn delay_from_root(&self, m: &DelayMatrix, mut node: usize) -> f64 {
        let mut total = 0.0;
        while let Some(p) = self.parent[node] {
            total += measured(m, node, p);
            node = p;
        }
        total
    }
}

/// Overlay-multicast parent choice served live: nodes join in id
/// order, each asking the deployment for estimates to every eligible
/// member and attaching three ways. Outcome delay is the true overlay
/// delay from the root through the finished tree.
pub fn run_overlay_multicast(cfg: &AppConfig) -> io::Result<AppReport> {
    assert!(cfg.nodes >= 2 && cfg.fanout >= 1, "need a joinable tree");
    let (matrix, handle, mut front) = serve_space(cfg)?;
    let n = cfg.nodes;
    let mut obl_tree = Tree::new(n);
    let mut aware_tree = Tree::new(n);
    let mut oracle_tree = Tree::new(n);
    // Severity of the oblivious parent edge, recorded at join time and
    // attributed once the finished trees are measured.
    let mut obl_severity: Vec<Option<f64>> = vec![None; n];
    let mut wire_batches = 0usize;
    for (node, obl_sev) in obl_severity.iter_mut().enumerate().skip(1) {
        // Each tree's fanout constraint evolves with its own choices,
        // so the eligible sets (and wire batches) differ per strategy.
        for (tree, aware) in [(&mut obl_tree, false), (&mut aware_tree, true)] {
            let eligible = tree.eligible(node, cfg.fanout);
            let pairs: Vec<(usize, usize)> = eligible.iter().map(|&p| (node, p)).collect();
            let estimates = front.estimate_batch(&to_wire_pairs(&pairs))?;
            wire_batches += 1;
            let (obl, aw) = decide(&estimates);
            let pick = if aware { aw } else { obl };
            if !aware {
                *obl_sev = estimates[obl].severity;
            }
            tree.attach(node, eligible[pick]);
        }
        let eligible = oracle_tree.eligible(node, cfg.fanout);
        let (parent, _) =
            matrix.nearest_among(node, eligible.iter()).expect("root always eligible");
        oracle_tree.attach(node, parent);
    }
    let mut out = Outcomes::new();
    out.wire_batches = wire_batches;
    for (node, &obl_sev) in obl_severity.iter().enumerate().skip(1) {
        out.record(
            obl_tree.delay_from_root(&matrix, node),
            aware_tree.delay_from_root(&matrix, node),
            oracle_tree.delay_from_root(&matrix, node),
            obl_sev,
        );
    }
    handle.shutdown()?;
    Ok(out.into_report("overlay multicast (live)", cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AppConfig {
        AppConfig { nodes: 72, replicas: 2, servers: 24, ..AppConfig::default() }
    }

    #[test]
    fn server_selection_serves_live_and_attributes_savings() {
        let cfg = tiny();
        let report = run_server_selection(&cfg).expect("workload");
        assert_eq!(report.decisions, cfg.nodes - cfg.servers);
        assert_eq!(report.wire_batches, report.decisions);
        // The oracle lower-bounds both wire strategies.
        assert!(report.oracle_ms <= report.aware_ms + 1e-9);
        assert!(report.oracle_ms <= report.oblivious_ms + 1e-9);
        // TIV awareness must not hurt on average, and on a DS² space
        // (which has TIVs by construction) it should help somewhere.
        assert!(report.aware_ms <= report.oblivious_ms + 1e-9);
        assert!(report.savings.samples > 0, "savings must be attributed");
        let text = report.to_string();
        assert!(text.contains("severity bin"), "report missing attribution: {text}");
    }

    #[test]
    fn multicast_parents_improve_with_awareness() {
        let cfg = tiny();
        let report = run_overlay_multicast(&cfg).expect("workload");
        assert_eq!(report.decisions, cfg.nodes - 1);
        assert_eq!(report.wire_batches, 2 * (cfg.nodes - 1));
        assert!(report.oracle_ms <= report.aware_ms + 1e-9);
        assert!(report.aware_ms <= report.oblivious_ms * 1.05, "awareness should not hurt");
        assert!(report.savings.samples > 0);
    }

    #[test]
    fn workloads_are_deterministic() {
        let cfg = tiny();
        let a = run_server_selection(&cfg).expect("workload");
        let b = run_server_selection(&cfg).expect("workload");
        assert_eq!(a.oblivious_ms.to_bits(), b.oblivious_ms.to_bits());
        assert_eq!(a.aware_ms.to_bits(), b.aware_ms.to_bits());
        assert_eq!(a.improved, b.improved);
    }
}
