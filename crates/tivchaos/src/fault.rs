//! Deterministic fault plans: what breaks, and exactly when.
//!
//! Faults are scheduled **at batch boundaries** of the harness's
//! seeded workload, not at wall-clock times — so which batches find
//! their replica down, and how many epochs a gated replica lags, are
//! pure functions of the plan. That determinism is what lets the
//! chaos bench gate `unavailable_batches` and `max_staleness_epochs`
//! as exact counts instead of noisy rates.

use std::fmt;

/// What happens to the deployment at a scheduled batch boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Take a replica down: its gate stops accepting and serving
    /// (open connections see EOF), and it drops out of the publish
    /// fan-out. A crash never healed is shard loss — the remaining
    /// full-copy replicas keep answering every pair.
    Crash {
        /// Replica slot to take down.
        replica: usize,
    },
    /// Bring a crashed replica back, rebuilt from the latest built
    /// snapshot through the validated constructor surface.
    Restart {
        /// Replica slot to bring back.
        replica: usize,
    },
    /// Withhold the next `publishes` epoch publishes from a replica —
    /// the delayed/dropped-publish fault. Snapshots are full states,
    /// so a publish delayed past its successor is equivalent to a
    /// dropped one; the replica serves a stale epoch until a publish
    /// gets through.
    SkipPublishes {
        /// Replica slot whose publishes are withheld.
        replica: usize,
        /// How many consecutive publishes to withhold.
        publishes: usize,
    },
    /// Restart every crashed replica and clear every publish gate.
    Heal,
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Workload batch index at whose boundary the fault fires (before
    /// the batch is sent).
    pub at_batch: usize,
    /// What fires.
    pub kind: FaultKind,
}

/// A deterministic fault schedule for one chaos run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Events, sorted by [`FaultEvent::at_batch`].
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: a plain measured run with no faults.
    pub fn none() -> FaultPlan {
        FaultPlan { events: Vec::new() }
    }

    /// The standard scenario over `batches` workload batches: crash
    /// the last replica a quarter in, gate two publishes away from it
    /// after its mid-run restart, and heal before the run ends — so a
    /// single run exercises crash, restart, staleness and recovery.
    /// With one replica there is no crash to survive (and no
    /// never-crashed control to compare against), so the plan
    /// degrades to the publish-fault portion alone.
    pub fn standard(replicas: usize, batches: usize) -> FaultPlan {
        assert!(replicas >= 1, "a plan needs at least one replica");
        let victim = replicas - 1;
        let mut events = Vec::new();
        if replicas >= 2 {
            events.push(FaultEvent {
                at_batch: batches / 4,
                kind: FaultKind::Crash { replica: victim },
            });
            events.push(FaultEvent {
                at_batch: batches / 2,
                kind: FaultKind::Restart { replica: victim },
            });
        }
        events.push(FaultEvent {
            at_batch: batches * 5 / 8,
            kind: FaultKind::SkipPublishes { replica: victim, publishes: 2 },
        });
        events.push(FaultEvent { at_batch: batches * 7 / 8, kind: FaultKind::Heal });
        FaultPlan { events }
    }

    /// Every event scheduled at `batch`, in plan order.
    pub fn events_at(&self, batch: usize) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.at_batch == batch)
    }

    /// Replicas never targeted by a [`FaultKind::Crash`] — the
    /// bit-exact recovery check needs at least one as its control.
    pub fn never_crashed(&self, replicas: usize) -> Vec<usize> {
        (0..replicas)
            .filter(|&r| {
                !self
                    .events
                    .iter()
                    .any(|e| matches!(e.kind, FaultKind::Crash { replica } if replica == r))
            })
            .collect()
    }

    /// Checks the plan is well-formed for a `replicas`-wide
    /// deployment: events sorted by batch, replica indices in range,
    /// crash/restart alternating per replica (no double crash, no
    /// restart of an up replica), and at least one replica never
    /// crashed (the recovery check's control).
    pub fn validate(&self, replicas: usize) -> Result<(), String> {
        if self.events.windows(2).any(|w| w[0].at_batch > w[1].at_batch) {
            return Err("fault events must be sorted by at_batch".into());
        }
        let mut down = vec![false; replicas];
        for e in &self.events {
            match e.kind {
                FaultKind::Crash { replica } => {
                    let slot = down
                        .get_mut(replica)
                        .ok_or_else(|| format!("crash targets replica {replica} of {replicas}"))?;
                    if *slot {
                        return Err(format!(
                            "replica {replica} crashed twice without a restart (batch {})",
                            e.at_batch
                        ));
                    }
                    *slot = true;
                }
                FaultKind::Restart { replica } => {
                    let slot = down.get_mut(replica).ok_or_else(|| {
                        format!("restart targets replica {replica} of {replicas}")
                    })?;
                    if !*slot {
                        return Err(format!(
                            "replica {replica} restarted while up (batch {})",
                            e.at_batch
                        ));
                    }
                    *slot = false;
                }
                FaultKind::SkipPublishes { replica, publishes } => {
                    if replica >= replicas {
                        return Err(format!(
                            "skip-publishes targets replica {replica} of {replicas}"
                        ));
                    }
                    if publishes == 0 {
                        return Err("skip-publishes of zero publishes is a no-op".into());
                    }
                }
                FaultKind::Heal => down.iter_mut().for_each(|d| *d = false),
            }
        }
        if self.never_crashed(replicas).is_empty() {
            return Err("every replica crashes at some point — the bit-exact recovery \
                        check needs one never-crashed control replica"
                .into());
        }
        Ok(())
    }

    /// Count of events of each lifecycle kind `(crashes, restarts)`,
    /// heals expanded into the restarts they imply at validation time.
    pub fn crash_restart_counts(&self) -> (usize, usize) {
        let crashes =
            self.events.iter().filter(|e| matches!(e.kind, FaultKind::Crash { .. })).count();
        let restarts = self
            .events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Restart { .. } | FaultKind::Heal))
            .count();
        (crashes, restarts)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            return write!(f, "no faults");
        }
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match e.kind {
                FaultKind::Crash { replica } => write!(f, "crash r{replica}@{}", e.at_batch)?,
                FaultKind::Restart { replica } => write!(f, "restart r{replica}@{}", e.at_batch)?,
                FaultKind::SkipPublishes { replica, publishes } => {
                    write!(f, "skip {publishes} publishes r{replica}@{}", e.at_batch)?
                }
                FaultKind::Heal => write!(f, "heal@{}", e.at_batch)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_plan_validates_and_keeps_a_control_replica() {
        for replicas in [1usize, 2, 3, 4] {
            let plan = FaultPlan::standard(replicas, 80);
            plan.validate(replicas).expect("standard plan is well-formed");
            assert!(plan.never_crashed(replicas).contains(&0), "replica 0 is always the control");
        }
        // With >= 2 replicas the standard plan exercises a crash.
        let (crashes, restarts) = FaultPlan::standard(3, 80).crash_restart_counts();
        assert_eq!(crashes, 1);
        assert!(restarts >= 1);
    }

    #[test]
    fn validate_rejects_malformed_plans() {
        let double_crash = FaultPlan {
            events: vec![
                FaultEvent { at_batch: 1, kind: FaultKind::Crash { replica: 1 } },
                FaultEvent { at_batch: 2, kind: FaultKind::Crash { replica: 1 } },
            ],
        };
        assert!(double_crash.validate(2).unwrap_err().contains("twice"));

        let restart_up = FaultPlan {
            events: vec![FaultEvent { at_batch: 1, kind: FaultKind::Restart { replica: 0 } }],
        };
        assert!(restart_up.validate(2).unwrap_err().contains("while up"));

        let out_of_range = FaultPlan {
            events: vec![FaultEvent { at_batch: 1, kind: FaultKind::Crash { replica: 5 } }],
        };
        assert!(out_of_range.validate(2).is_err());

        let unsorted = FaultPlan {
            events: vec![
                FaultEvent { at_batch: 9, kind: FaultKind::Heal },
                FaultEvent { at_batch: 1, kind: FaultKind::Heal },
            ],
        };
        assert!(unsorted.validate(2).unwrap_err().contains("sorted"));

        let no_control = FaultPlan {
            events: vec![
                FaultEvent { at_batch: 1, kind: FaultKind::Crash { replica: 0 } },
                FaultEvent { at_batch: 2, kind: FaultKind::Crash { replica: 1 } },
            ],
        };
        assert!(no_control.validate(2).unwrap_err().contains("control"));
    }

    #[test]
    fn heal_counts_as_a_restart_opportunity() {
        let plan = FaultPlan {
            events: vec![
                FaultEvent { at_batch: 1, kind: FaultKind::Crash { replica: 1 } },
                FaultEvent { at_batch: 3, kind: FaultKind::Heal },
                FaultEvent { at_batch: 5, kind: FaultKind::Crash { replica: 1 } },
            ],
        };
        plan.validate(3).expect("heal brings the replica back up");
    }
}
