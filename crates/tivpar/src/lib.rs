//! # `tivpar` — the shared parallel-execution layer
//!
//! Every headline analysis of the reproduced paper sits on an O(n³)
//! kernel — TIV severity, all-pairs shortest paths, the accuracy/recall
//! sweeps, matrix-factorization updates. They all parallelise the same
//! way: the output decomposes into rows (or items) that can be computed
//! independently. This crate owns that pattern so every kernel in the
//! workspace shares one implementation instead of hand-rolling thread
//! plumbing.
//!
//! Since the pool rewrite, the primitives execute on a **persistent
//! work-stealing thread pool** (see [`pool`]): workers are spawned
//! lazily on the first parallel region and reused for every region
//! after it, and each region's work is dealt as fine-grained chunks
//! into per-worker deques with stealing, so a skewed chunk cannot idle
//! the other workers. The first generation spawned fresh
//! `std::thread::scope` threads per call; the per-call spawn/join cost
//! and the static one-chunk-per-worker split were the two causes of
//! the scaling plateau documented in `docs/PERFORMANCE.md`.
//!
//! ## Design rules
//!
//! * **Deterministic result order.** Work is partitioned into
//!   *contiguous index ranges* and results are placed (or concatenated)
//!   by range, so the output is the same `Vec` a serial loop would
//!   produce. Stealing moves *execution* between workers, never the
//!   *placement* of a result — kernels built on these primitives are
//!   **bit-identical across thread counts** (enforced by property
//!   tests in `tivoid`).
//! * **Graceful 1-thread fallback.** When one worker suffices (or the
//!   machine has one core), the primitives run inline on the calling
//!   thread — no pool interaction, identical results.
//! * **Worker-count resolution.** Every primitive takes a `threads`
//!   argument: any positive value is used as-is (the per-call config
//!   override); `0` means *auto* — the [`THREADS_ENV`] environment
//!   variable (`TIV_THREADS`) if set, else
//!   [`std::thread::available_parallelism`].
//!
//! ```
//! // Square each row index, in parallel, in order.
//! let squares = tivpar::par_map_rows(6, 0, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25]);
//!
//! // Fill a 3x4 row-major matrix, one row per work item.
//! let mut m = vec![0usize; 12];
//! tivpar::par_fill_rows(&mut m, 3, 2, |row, out| out.fill(row));
//! assert_eq!(m, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
//! ```
//!
//! The per-call override takes precedence over `TIV_THREADS`, and the
//! result does not depend on which is used:
//!
//! ```
//! let auto = tivpar::par_map_rows(100, 0, |i| (i as f64).sqrt());
//! for explicit in [1, 2, 4, 7] {
//!     // Explicit worker counts: same bits, different parallelism.
//!     let forced = tivpar::par_map_rows(100, explicit, |i| (i as f64).sqrt());
//!     assert_eq!(forced, auto);
//! }
//! ```

// tivlint: allow-file(unsafe-containment, "deny + one audited site-level allow instead of forbid: the pool's lifetime-erasing transmute (pool.rs SAFETY comment) is the crate's one exception, and forbid(unsafe_code) cannot be overridden at the site")
#![deny(unsafe_code)] // one audited exception in `pool`, see its SAFETY comment
#![deny(missing_docs)]

pub mod pool;

use std::ops::Range;
use std::sync::{Mutex, OnceLock};

/// The environment variable consulted when a kernel is called with
/// `threads == 0`: set `TIV_THREADS=4` to cap the whole process at four
/// workers without touching any call site.
///
/// Read once per process (the first auto-resolving call) and cached;
/// changing the variable afterwards has no effect. The pool sizes
/// itself from resolved counts (a region asking for `w` workers
/// ensures `w - 1` pool threads exist), so `TIV_THREADS` also bounds
/// pool growth unless a per-call override asks for more.
pub const THREADS_ENV: &str = "TIV_THREADS";

/// `TIV_THREADS` parsed once; `None` when unset or unparsable.
fn env_threads() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var(THREADS_ENV).ok().and_then(|v| v.trim().parse().ok()).filter(|&t| t >= 1)
    })
}

/// Resolves a requested worker count to an effective one.
///
/// Precedence: an explicit `requested > 0` wins; then the
/// [`THREADS_ENV`] environment variable; then the machine's available
/// parallelism. Always returns at least 1.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Some(t) = env_threads() {
        return t;
    }
    std::thread::available_parallelism().map_or(1, |v| v.get())
}

/// Splits `0..items` into contiguous ranges of `size` (last may be
/// short), in ascending order. Empty ranges are not produced.
fn ranges_of(items: usize, size: usize) -> Vec<Range<usize>> {
    let size = size.max(1);
    (0..items.div_ceil(size)).map(|c| (c * size)..((c + 1) * size).min(items)).collect()
}

/// Splits `0..items` into at most `workers` contiguous ranges of nearly
/// equal length, in ascending order — the *coarse* layout used by
/// [`par_map_chunks`], where the chunk boundaries are part of the API
/// (per-chunk setup is amortised across a worker's whole share).
fn chunk_ranges(items: usize, workers: usize) -> Vec<Range<usize>> {
    ranges_of(items, items.div_ceil(workers.max(1)))
}

/// Splits `0..items` into roughly `workers *`
/// [`pool::CHUNKS_PER_WORKER`] contiguous ranges — the *fine* layout
/// used by the row-oriented primitives. More chunks than workers is
/// what lets the pool steal around skewed row costs; the layout (and
/// therefore every merged result) still depends only on
/// `(items, workers)`, never on execution order.
fn fine_ranges(items: usize, workers: usize) -> Vec<Range<usize>> {
    ranges_of(items, items.div_ceil((workers * pool::CHUNKS_PER_WORKER).max(1)))
}

/// Runs `body(chunk_index)` for every chunk on the pool and then
/// collects each chunk's boxed result in index order. The collection
/// slot is the only shared mutable state; each chunk stores exactly
/// once, so the post-region unwraps cannot fail.
fn run_collect<R: Send>(workers: usize, chunks: usize, body: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let slots: Vec<Mutex<Option<R>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
    pool::run(workers, chunks, &|ci| {
        let value = body(ci);
        *slots[ci].lock().expect("slot lock") = Some(value);
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot lock").expect("chunk completed"))
        .collect()
}

/// Maps `f` over `0..rows` with up to `threads` workers, returning the
/// results in index order (exactly `(0..rows).map(f).collect()`).
///
/// `threads` follows [`resolve_threads`]; with one effective worker the
/// map runs inline on the calling thread. Rows are dealt to the pool in
/// fine-grained chunks (see [`pool::CHUNKS_PER_WORKER`]) so uneven row
/// costs are balanced by stealing.
pub fn par_map_rows<R, F>(rows: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = resolve_threads(threads).min(rows.max(1));
    if workers <= 1 {
        return (0..rows).map(f).collect();
    }
    let ranges = fine_ranges(rows, workers);
    run_collect(workers, ranges.len(), |ci| ranges[ci].clone().map(&f).collect::<Vec<R>>())
        .into_iter()
        .flatten()
        .collect()
}

/// Maps `f` over contiguous chunks of `0..items` (one chunk per worker)
/// and concatenates the per-chunk results in index order.
///
/// Unlike [`par_map_rows`] the closure sees the whole chunk at once, so
/// it can amortise per-worker setup (a scratch buffer, a cache, an
/// experiment `Lab`) across the chunk's items. The chunking varies with
/// the worker count, so this is only deterministic when `f`'s output
/// for an item does not depend on which chunk contained it. Because the
/// coarse one-chunk-per-worker layout is part of this contract, these
/// chunks are *not* subdivided for stealing — idle workers can still
/// steal whole chunks when a caller requests fewer workers than the
/// pool holds.
pub fn par_map_chunks<R, F>(items: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> Vec<R> + Sync,
{
    if items == 0 {
        return Vec::new(); // no chunks, no calls
    }
    let workers = resolve_threads(threads).min(items);
    if workers <= 1 {
        return f(0..items);
    }
    let ranges = chunk_ranges(items, workers);
    run_collect(workers, ranges.len(), |ci| f(ranges[ci].clone())).into_iter().flatten().collect()
}

/// Fills a row-major buffer in parallel: `out` is treated as `rows`
/// equal rows and `f(row_index, row_slice)` is called once per row,
/// rows dealt to the pool in fine-grained contiguous chunks.
///
/// # Panics
/// Panics when `out.len()` is not a multiple of `rows`.
pub fn par_fill_rows<T, F>(out: &mut [T], rows: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if rows == 0 {
        assert!(out.is_empty(), "non-empty buffer with zero rows");
        return;
    }
    assert_eq!(out.len() % rows, 0, "buffer length {} not divisible into {rows} rows", out.len());
    let cols = out.len() / rows;
    let workers = resolve_threads(threads).min(rows);
    if workers <= 1 || cols == 0 {
        // Inline path; split_at_mut (unlike chunks_mut) also handles a
        // zero-width buffer, calling f once per row with an empty slice.
        let mut rest = out;
        for i in 0..rows {
            let (row, tail) = rest.split_at_mut(cols);
            rest = tail;
            f(i, row);
        }
        return;
    }
    let ranges = fine_ranges(rows, workers);
    // Pre-split the buffer into one disjoint slice per chunk; each
    // chunk takes (and thereby uniquely owns) its slice when it runs.
    let mut slices: Vec<Mutex<Option<&mut [T]>>> = Vec::with_capacity(ranges.len());
    let mut rest = out;
    for range in &ranges {
        let (chunk, tail) = rest.split_at_mut((range.end - range.start) * cols);
        rest = tail;
        slices.push(Mutex::new(Some(chunk)));
    }
    pool::run(workers, ranges.len(), &|ci| {
        let chunk = slices[ci].lock().expect("slice lock").take().expect("chunk runs once");
        let base = ranges[ci].start;
        for (k, row) in chunk.chunks_mut(cols).enumerate() {
            f(base + k, row);
        }
    });
}

/// Like [`par_fill_rows`] but fills two row-major buffers in lockstep:
/// `f(row_index, a_row, b_row)` gets the matching row of each. The
/// buffers may have different column widths but must describe the same
/// number of rows.
///
/// # Panics
/// Panics when either buffer's length is not a multiple of `rows`.
pub fn par_fill_rows2<T, U, F>(a: &mut [T], b: &mut [U], rows: usize, threads: usize, f: F)
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut [T], &mut [U]) + Sync,
{
    if rows == 0 || (a.is_empty() && b.is_empty()) {
        assert!(a.is_empty() && b.is_empty(), "non-empty buffers with zero rows");
        return;
    }
    assert_eq!(a.len() % rows, 0, "first buffer not divisible into {rows} rows");
    assert_eq!(b.len() % rows, 0, "second buffer not divisible into {rows} rows");
    let (ca, cb) = (a.len() / rows, b.len() / rows);
    let workers = resolve_threads(threads).min(rows);
    if workers <= 1 || ca == 0 || cb == 0 {
        // Inline path; split_at_mut (unlike chunks_mut) also handles a
        // zero-width buffer, handing f an empty slice for that side.
        let (mut rest_a, mut rest_b) = (a, b);
        for i in 0..rows {
            let (ra, tail_a) = rest_a.split_at_mut(ca);
            let (rb, tail_b) = rest_b.split_at_mut(cb);
            (rest_a, rest_b) = (tail_a, tail_b);
            f(i, ra, rb);
        }
        return;
    }
    let ranges = fine_ranges(rows, workers);
    type Pair<'s, T, U> = Mutex<Option<(&'s mut [T], &'s mut [U])>>;
    let mut slices: Vec<Pair<'_, T, U>> = Vec::with_capacity(ranges.len());
    let (mut rest_a, mut rest_b) = (a, b);
    for range in &ranges {
        let len = range.end - range.start;
        let (chunk_a, tail_a) = rest_a.split_at_mut(len * ca);
        let (chunk_b, tail_b) = rest_b.split_at_mut(len * cb);
        (rest_a, rest_b) = (tail_a, tail_b);
        slices.push(Mutex::new(Some((chunk_a, chunk_b))));
    }
    pool::run(workers, ranges.len(), &|ci| {
        let (chunk_a, chunk_b) =
            slices[ci].lock().expect("slice lock").take().expect("chunk runs once");
        let base = ranges[ci].start;
        for (k, (ra, rb)) in chunk_a.chunks_mut(ca).zip(chunk_b.chunks_mut(cb)).enumerate() {
            f(base + k, ra, rb);
        }
    });
}

/// Sums `f(i)` over `0..rows` in parallel, folding the per-row values
/// **in index order** so the floating-point association — and therefore
/// the result, to the bit — is independent of the worker count.
///
/// Note this fixed association differs from a hand-written serial loop
/// that accumulates element-by-element inside each row; kernels that
/// migrate onto this primitive define their serial reference as the
/// same call with `threads == 1`.
pub fn par_sum_rows<F>(rows: usize, threads: usize, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    par_map_rows(rows, threads, f).into_iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_explicit_wins() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(1), 1);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for items in [0usize, 1, 5, 16, 17, 100] {
            for workers in [1usize, 2, 4, 7, 32] {
                let ranges = chunk_ranges(items, workers);
                assert!(ranges.len() <= workers.max(1));
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "gap before {r:?}");
                    assert!(r.end > r.start, "empty range {r:?}");
                    next = r.end;
                }
                assert_eq!(next, items, "ranges must cover 0..{items}");
            }
        }
    }

    #[test]
    fn fine_ranges_cover_exactly_and_outnumber_workers() {
        for items in [0usize, 1, 5, 16, 17, 100, 1000] {
            for workers in [1usize, 2, 4, 7, 32] {
                let ranges = fine_ranges(items, workers);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "gap before {r:?}");
                    assert!(r.end > r.start, "empty range {r:?}");
                    next = r.end;
                }
                assert_eq!(next, items, "ranges must cover 0..{items}");
                // With plenty of items there must be more chunks than
                // workers, else stealing has nothing to balance.
                if items >= workers * pool::CHUNKS_PER_WORKER {
                    assert!(ranges.len() >= workers * pool::CHUNKS_PER_WORKER / 2);
                }
            }
        }
    }

    #[test]
    fn fine_ranges_depend_only_on_items_and_workers() {
        // The determinism argument requires the chunk layout to be a
        // pure function of (items, workers).
        assert_eq!(fine_ranges(1234, 4), fine_ranges(1234, 4));
        assert_ne!(fine_ranges(1234, 4).len(), 0);
    }

    #[test]
    fn map_rows_preserves_order_across_thread_counts() {
        let serial: Vec<usize> = (0..103).map(|i| i * 31 % 17).collect();
        for t in [1usize, 2, 4, 7, 16] {
            assert_eq!(par_map_rows(103, t, |i| i * 31 % 17), serial);
        }
        assert_eq!(par_map_rows(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn map_chunks_concatenates_in_order() {
        for t in [1usize, 2, 5] {
            let got = par_map_chunks(20, t, |r| r.map(|i| i * 2).collect());
            assert_eq!(got, (0..20).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_chunks_layout_is_one_chunk_per_worker() {
        // suite.rs amortises a Lab per chunk; the coarse layout is API.
        for (items, workers) in [(20usize, 4usize), (7, 2), (100, 7)] {
            let chunks = std::sync::Mutex::new(Vec::new());
            let _ = par_map_chunks(items, workers, |r| {
                chunks.lock().unwrap().push(r.clone());
                r.collect()
            });
            let mut seen = chunks.into_inner().unwrap();
            seen.sort_by_key(|r| r.start);
            assert_eq!(seen, chunk_ranges(items, workers));
        }
    }

    #[test]
    fn fill_rows_matches_serial() {
        let fill = |t: usize| {
            let mut buf = vec![0usize; 9 * 5];
            par_fill_rows(&mut buf, 9, t, |row, out| {
                for (c, v) in out.iter_mut().enumerate() {
                    *v = row * 100 + c;
                }
            });
            buf
        };
        let serial = fill(1);
        for t in [2usize, 3, 4, 8] {
            assert_eq!(fill(t), serial);
        }
    }

    #[test]
    fn fill_rows2_zips_matching_rows() {
        let fill = |t: usize| {
            let mut a = vec![0u64; 7 * 3];
            let mut b = vec![0u8; 7 * 2];
            par_fill_rows2(&mut a, &mut b, 7, t, |row, ra, rb| {
                ra.fill(row as u64);
                rb.fill(row as u8 + 1);
            });
            (a, b)
        };
        let serial = fill(1);
        for t in [2usize, 4, 7] {
            assert_eq!(fill(t), serial);
        }
    }

    #[test]
    fn sum_rows_bit_identical_across_thread_counts() {
        // Values chosen so association would matter if it drifted.
        let f = |i: usize| 1.0 / (i as f64 + 1.0).powi(2);
        let serial = par_sum_rows(1000, 1, f);
        for t in [2usize, 3, 4, 7, 13] {
            assert_eq!(par_sum_rows(1000, t, f).to_bits(), serial.to_bits());
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let mut empty: Vec<f64> = Vec::new();
        par_fill_rows(&mut empty, 0, 4, |_, _| unreachable!());
        // 5 rows x 0 cols: f still runs once per row, on empty slices.
        let zero_width_calls = std::sync::atomic::AtomicUsize::new(0);
        par_fill_rows(&mut empty, 5, 4, |_, row| {
            assert!(row.is_empty());
            zero_width_calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(zero_width_calls.load(std::sync::atomic::Ordering::Relaxed), 5);
        let mut b: Vec<u8> = Vec::new();
        par_fill_rows2(&mut empty, &mut b, 0, 4, |_, _, _| unreachable!());
        // One zero-width buffer: f still runs per row with an empty
        // slice on that side.
        let mut wide = vec![0u64; 3 * 2];
        let mut none: Vec<u8> = Vec::new();
        par_fill_rows2(&mut wide, &mut none, 3, 4, |row, ra, rb| {
            assert!(rb.is_empty());
            ra.fill(row as u64 + 1);
        });
        assert_eq!(wide, vec![1, 1, 2, 2, 3, 3]);
        assert_eq!(par_map_chunks(0, 4, |_| vec![0u8]), Vec::<u8>::new()); // no chunks
        assert_eq!(par_sum_rows(0, 4, |_| 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn fill_rows_rejects_ragged_buffer() {
        let mut buf = vec![0u8; 10];
        par_fill_rows(&mut buf, 3, 2, |_, _| {});
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            par_map_rows(16, 4, |i| {
                assert!(i != 9, "poison row");
                i
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn primitives_reuse_pool_workers() {
        // Warm the pool, then assert repeated kernel-style calls do not
        // spawn more threads (the pool-reuse regression at unit level;
        // the integration version in tivoid drives real kernels).
        let _ = par_map_rows(64, 4, |i| i);
        let spawned = pool::stats().spawned_total;
        for _ in 0..8 {
            let _ = par_map_rows(64, 4, |i| i);
            let mut buf = vec![0.0f64; 64 * 8];
            par_fill_rows(&mut buf, 64, 4, |r, row| row.fill(r as f64));
        }
        assert_eq!(pool::stats().spawned_total, spawned);
    }
}
