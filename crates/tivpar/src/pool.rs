//! The persistent work-stealing thread pool behind every `tivpar`
//! primitive.
//!
//! ## Why a pool
//!
//! The first-generation primitives spawned fresh scoped threads on
//! every call. That is correct and borrow-checker-friendly, but it puts
//! a thread spawn + join barrier on every parallel region — the blocked
//! Floyd–Warshall pays it `n / BLOCK` times per matrix, an epoch
//! rebuild pays it once per kernel per epoch, and a serving batch pays
//! it per batch. The pool spawns workers **once per process** (lazily,
//! on the first parallel region) and reuses them for every subsequent
//! region; a region submission is a mutex push + condvar wake instead
//! of `clone(2)` calls.
//!
//! ## Work stealing
//!
//! A region's work is split into *chunks* — more chunks than workers
//! (see [`CHUNKS_PER_WORKER`]) — and the chunks are dealt into one
//! deque per participant, contiguous runs per deque for cache
//! locality. Each participant pops from the **front** of its own deque
//! and, when that runs dry, steals from the **back** of a victim's.
//! Skewed chunk costs (a pathologically severe row, the triangular row
//! costs of a symmetry-halved kernel) therefore cannot idle workers:
//! whoever finishes early steals the stragglers' remaining chunks.
//!
//! ## Determinism
//!
//! Stealing changes *which worker* runs a chunk and *when* — it never
//! changes *what* the chunk computes or *where* the result lands.
//! Every `tivpar` primitive writes chunk `i`'s result into slot `i` of
//! a pre-allocated output (a row range of the output matrix, element
//! `i` of a result table), and per-chunk results are merged in index
//! order after the region completes. The merged output is therefore a
//! pure function of `(input, chunk layout)`, and the chunk layout is a
//! pure function of `(items, requested workers)` — execution order
//! drops out entirely. This is the argument that lets the
//! `parallel_equivalence` / `route_equivalence` / `flux_equivalence`
//! suites pin bit-identity across thread counts over a pool whose
//! scheduling is nondeterministic.
//!
//! ## Sizing
//!
//! Workers are spawned on demand: a region requesting `w` effective
//! workers ensures `w - 1` pool threads exist (the submitting thread
//! is always the `w`-th participant, so a region can never deadlock
//! waiting for a busy pool — it just runs more of its own chunks).
//! `TIV_THREADS` bounds the *default* via
//! [`resolve_threads`](crate::resolve_threads); an explicit per-call
//! override above it grows the pool. Workers park on a condvar between
//! regions and are never torn down; [`stats`] exposes the counts so
//! tests can assert reuse (two consecutive kernel calls must not grow
//! the pool).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Target number of chunks dealt per worker of a parallel region.
///
/// More chunks than workers is what makes stealing effective: with one
/// chunk per worker (static chunking) a skewed chunk pins its worker
/// while the others idle; with `CHUNKS_PER_WORKER` chunks each, the
/// fast workers steal the slow worker's remaining chunks and the
/// imbalance is bounded by one chunk's cost. The value trades
/// scheduling overhead (one mutex pop per chunk) against balance; 8 is
/// far below the per-chunk work of every kernel in the workspace (a
/// chunk of a 400-node severity pass is hundreds of microseconds) while
/// keeping worst-case imbalance under ~12%.
pub const CHUNKS_PER_WORKER: usize = 8;

/// Safety valve on pool growth: a single region can request at most
/// this many pool threads (callers asking for more still complete —
/// extra requested workers simply never materialise, and the chunk
/// layout, hence the result, is unaffected).
const MAX_POOL_THREADS: usize = 256;

/// A snapshot of the global pool's lifetime counters, from [`stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads currently alive (workers never exit, so this is
    /// also the high-water mark of `workers - 1` over all regions).
    pub live_workers: usize,
    /// Total worker threads ever spawned. Equal to `live_workers` —
    /// the pool would have to be torn down and rebuilt for these to
    /// diverge — and asserted equal by the pool-reuse regression test.
    pub spawned_total: usize,
    /// Parallel regions executed on the pool since process start
    /// (inline single-worker calls are not counted).
    pub regions_run: usize,
}

/// The region closure, lifetime-erased. See the `SAFETY` discussion in
/// [`run`] — the pointee is only ever called between a region's
/// submission and its completion barrier, during which the caller of
/// `run` keeps the real closure alive on its stack.
type ErasedFn = &'static (dyn Fn(usize) + Sync);

/// One parallel region: a set of chunk ids dealt into per-participant
/// deques, the erased closure to run on each, and the completion state.
struct Region {
    func: ErasedFn,
    /// Per-participant chunk deques; contiguous chunk-id runs.
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// Chunks not yet claimed by any participant (fast emptiness probe
    /// so idle workers can skip exhausted regions without touching the
    /// deque locks).
    unclaimed: AtomicUsize,
    /// Hands each joining participant a distinct starting deque.
    next_participant: AtomicUsize,
    /// Chunks claimed or unclaimed that have not finished executing,
    /// plus the first panic payload, behind one mutex so the caller
    /// can wait on completion.
    done: Mutex<RegionDone>,
    done_cv: Condvar,
}

struct RegionDone {
    pending: usize,
    panic: Option<Box<dyn std::any::Any + Send + 'static>>,
}

impl Region {
    fn new(func: ErasedFn, chunks: usize, workers: usize) -> Self {
        let lanes = workers.min(chunks).max(1);
        let mut queues: Vec<Mutex<VecDeque<usize>>> = Vec::with_capacity(lanes);
        // Deal contiguous chunk-id runs: participant p starts on the
        // chunks it would have owned under static chunking, so the
        // no-steal fast path touches memory in the same order the old
        // scoped-thread implementation did.
        let per = chunks.div_ceil(lanes);
        for p in 0..lanes {
            let lo = p * per;
            let hi = ((p + 1) * per).min(chunks);
            queues.push(Mutex::new((lo..hi).collect()));
        }
        Region {
            func,
            queues,
            unclaimed: AtomicUsize::new(chunks),
            next_participant: AtomicUsize::new(0),
            done: Mutex::new(RegionDone { pending: chunks, panic: None }),
            done_cv: Condvar::new(),
        }
    }

    /// Claims one chunk: own deque front first, then steal from the
    /// back of the other deques. `None` means every chunk is claimed
    /// (some may still be executing on other participants).
    fn claim(&self, me: usize) -> Option<usize> {
        if self.unclaimed.load(Ordering::Acquire) == 0 {
            return None;
        }
        let lanes = self.queues.len();
        for k in 0..lanes {
            let victim = (me + k) % lanes;
            let popped = {
                let mut q = self.queues[victim].lock().expect("queue lock");
                if k == 0 {
                    q.pop_front()
                } else {
                    q.pop_back()
                }
            };
            if let Some(chunk) = popped {
                self.unclaimed.fetch_sub(1, Ordering::AcqRel);
                return Some(chunk);
            }
        }
        None
    }

    /// Joins the region as one more participant and runs chunks until
    /// none are left to claim. Panics from the closure are caught,
    /// recorded (first wins) and re-raised by the submitting caller —
    /// never on a pool worker, which must survive for the next region.
    fn participate(&self) {
        let me = self.next_participant.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        while let Some(chunk) = self.claim(me) {
            let func = self.func;
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || func(chunk)));
            let mut d = self.done.lock().expect("done lock");
            if let Err(payload) = outcome {
                d.panic.get_or_insert(payload);
            }
            d.pending -= 1;
            if d.pending == 0 {
                self.done_cv.notify_all();
            }
        }
    }

    /// True while the region still has unclaimed chunks — the predicate
    /// idle workers scan for.
    fn has_work(&self) -> bool {
        self.unclaimed.load(Ordering::Acquire) > 0
    }

    /// Blocks until every chunk has finished executing, then re-raises
    /// the first recorded panic, if any. Only the submitting caller
    /// waits here; the wait is the completion barrier that makes the
    /// lifetime erasure of `func` sound.
    fn wait_done(&self) {
        let mut d = self.done.lock().expect("done lock");
        while d.pending > 0 {
            d = self.done_cv.wait(d).expect("done wait");
        }
        if let Some(payload) = d.panic.take() {
            drop(d);
            std::panic::resume_unwind(payload);
        }
    }
}

/// Global pool state: the active-region list workers scan, and the
/// lifetime counters behind [`stats`].
struct PoolShared {
    state: Mutex<PoolState>,
    work: Condvar,
}

struct PoolState {
    /// Regions with unclaimed chunks (exhausted regions are pruned by
    /// the next scan; their in-flight chunks finish on whoever claimed
    /// them).
    regions: Vec<Arc<Region>>,
    live_workers: usize,
    spawned_total: usize,
    regions_run: usize,
}

fn shared() -> &'static PoolShared {
    static POOL: OnceLock<PoolShared> = OnceLock::new();
    POOL.get_or_init(|| PoolShared {
        state: Mutex::new(PoolState {
            regions: Vec::new(),
            live_workers: 0,
            spawned_total: 0,
            regions_run: 0,
        }),
        work: Condvar::new(),
    })
}

/// The loop every pool worker runs forever: find a region with
/// unclaimed chunks, participate until it is drained, repeat; park on
/// the condvar when no region has work.
fn worker_loop() {
    let pool = shared();
    loop {
        let region = {
            let mut st = pool.state.lock().expect("pool lock");
            loop {
                st.regions.retain(|r| r.has_work());
                if let Some(r) = st.regions.first() {
                    break r.clone();
                }
                st = pool.work.wait(st).expect("pool wait");
            }
        };
        region.participate();
    }
}

/// Spawns missing workers so at least `target` pool threads exist.
/// Called with the state lock held.
fn ensure_workers(st: &mut PoolState, target: usize) {
    let target = target.min(MAX_POOL_THREADS);
    while st.live_workers < target {
        let name = format!("tivpar-pool-{}", st.spawned_total);
        std::thread::Builder::new()
            .name(name)
            .spawn(worker_loop)
            .expect("spawning a tivpar pool worker");
        st.live_workers += 1;
        st.spawned_total += 1;
    }
}

/// A snapshot of the pool's counters. The pool-reuse regression test
/// asserts `spawned_total` does not grow between two consecutive
/// kernel calls at the same worker count; `regions_run` confirms the
/// calls actually took the pool path rather than the inline fallback.
pub fn stats() -> PoolStats {
    let st = shared().state.lock().expect("pool lock");
    PoolStats {
        live_workers: st.live_workers,
        spawned_total: st.spawned_total,
        regions_run: st.regions_run,
    }
}

/// Executes `f(chunk)` exactly once for every chunk in `0..chunks`,
/// with up to `workers` participants (the calling thread plus up to
/// `workers - 1` persistent pool workers), returning when every chunk
/// has completed. With one effective worker (or at most one chunk) the
/// chunks run inline on the caller — no pool interaction at all.
///
/// Panics from `f` are re-raised on the caller after all other chunks
/// finish (the first payload wins), never on a pool worker.
pub(crate) fn run(workers: usize, chunks: usize, f: &(dyn Fn(usize) + Sync)) {
    if workers <= 1 || chunks <= 1 {
        for chunk in 0..chunks {
            f(chunk);
        }
        return;
    }
    // SAFETY of the lifetime erasure below: `func` borrows `f`, which
    // the caller keeps alive for the whole body of this function. The
    // erased reference is stored only inside `region`, and it is
    // dereferenced only inside `Region::participate`, only between a
    // successful `claim` and the matching `pending` decrement. This
    // function does not return before `wait_done` observes
    // `pending == 0`, i.e. before every participant is past its last
    // dereference; workers that keep the `Arc<Region>` alive afterwards
    // only touch the region's own fields (counters, queues), never
    // `func`. Hence every dereference of the erased reference happens
    // while the real `f` is demonstrably alive — the same argument
    // `std::thread::scope` encodes in its API, enforced here by the
    // completion barrier.
    #[allow(unsafe_code)]
    // tivlint: allow(unsafe-containment, "lifetime erasure for the persistent pool: the SAFETY argument above proves every dereference happens while `f` is alive, enforced by the completion barrier — the std::thread::scope argument, hand-carried")
    let func: ErasedFn = unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), ErasedFn>(f) };
    let pool = shared();
    let region = Arc::new(Region::new(func, chunks, workers));
    {
        let mut st = pool.state.lock().expect("pool lock");
        st.regions_run += 1;
        ensure_workers(&mut st, workers - 1);
        st.regions.push(region.clone());
    }
    pool.work.notify_all();
    // The caller is always a participant: if every pool worker is busy
    // on other regions, this thread drains its own region alone — a
    // region never waits on pool capacity, so nested regions (a kernel
    // called from inside another region's chunk) cannot deadlock.
    region.participate();
    region.wait_done();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_chunk_exactly_once() {
        for &(workers, chunks) in &[(2usize, 9usize), (4, 64), (3, 3), (8, 2), (2, 1), (1, 5)] {
            let hits: Vec<AtomicUsize> = (0..chunks).map(|_| AtomicUsize::new(0)).collect();
            run(workers, chunks, &|c| {
                hits[c].fetch_add(1, Ordering::Relaxed);
            });
            for (c, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "chunk {c} at {workers} workers");
            }
        }
    }

    #[test]
    fn pool_threads_are_reused_across_regions() {
        run(3, 16, &|_| {});
        let before = stats();
        assert!(before.spawned_total >= 2, "first region must have populated the pool");
        for _ in 0..10 {
            run(3, 16, &|_| {});
        }
        let after = stats();
        assert_eq!(after.spawned_total, before.spawned_total, "regions must reuse workers");
        assert_eq!(after.live_workers, before.live_workers);
        assert_eq!(after.regions_run, before.regions_run + 10);
    }

    #[test]
    fn inline_fallback_never_touches_the_pool() {
        let before = stats();
        run(1, 1024, &|_| {});
        run(8, 1, &|_| {});
        let after = stats();
        assert_eq!(after.regions_run, before.regions_run);
        assert_eq!(after.spawned_total, before.spawned_total);
    }

    #[test]
    fn skewed_chunks_are_stolen_not_serialised() {
        // One chunk spins ~30x longer than the rest; with stealing the
        // light chunks migrate to other participants, so total work
        // completes. (Wall-clock assertions live in the tivoid
        // integration tests; here we only pin completion + coverage
        // under skew.)
        let total = AtomicU64::new(0);
        run(4, 32, &|c| {
            let spins = if c == 0 { 300_000 } else { 10_000 };
            let mut acc = 0u64;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            total.fetch_add(acc | 1, Ordering::Relaxed);
        });
        assert!(total.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn nested_regions_complete() {
        // A region whose chunks submit their own regions: the inner
        // submitter self-executes, so this terminates even when every
        // pool worker is parked on the outer region.
        let hits = AtomicUsize::new(0);
        run(4, 8, &|_| {
            run(2, 4, &|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn panic_in_chunk_reaches_caller_and_pool_survives() {
        let caught = std::panic::catch_unwind(|| {
            run(4, 16, &|c| {
                assert!(c != 11, "poison chunk");
            });
        });
        assert!(caught.is_err());
        // The pool must still execute the next region normally.
        let ok = AtomicUsize::new(0);
        run(4, 16, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 16);
    }
}
