//! # `tivoid` — the facade over the TIV workspace
//!
//! One crate to depend on: re-exports every layer of the
//! conf_imc_WangZN07 reproduction under stable module paths
//! (`tivoid::delayspace`, `tivoid::vivaldi`, …) and bundles the
//! commonly-used types into a [`prelude`]. The workspace's runnable
//! `examples/` live here.
//!
//! | layer | crate | what it provides |
//! |---|---|---|
//! | parallelism | [`tivpar`] | scoped-thread chunked map/fill kernels, `TIV_THREADS` resolution |
//! | substrate | [`delayspace`] | delay matrices, synthetic TIV-rich generator, clustering, APSP, stats |
//! | execution | [`simnet`] | deterministic simulated network with probe accounting |
//! | embeddings | [`vivaldi`], [`ides`] | network coordinates; matrix-factorization prediction |
//! | overlay | [`meridian`] | concentric-ring closest-neighbor location service |
//! | core | [`tivcore`] | TIV severity, the TIV alert mechanism, TIV-aware selection |
//! | routing | [`tivroute`] | k-best one-hop detour search, detour-gain statistics |
//! | incremental | [`tivflux`] | dirty-row tracking, delta repair of the O(n³) analyses, rebuild policy |
//! | serving | [`tivserve`] | sharded, epoch-snapshot estimation + routing service, incremental epoch builder, load generator |
//! | wire | [`tivgate`] | length-prefixed binary protocol, non-blocking gate server, consistent-hash multi-replica front, open-loop socket loadgen, `Deployment` builder |
//! | chaos | [`tivchaos`] | deterministic fault injection against a live deployment, bit-exact recovery checks, live application workloads |
//! | harness | [`experiments`] | one function per figure of the paper, `repro` binary |
//!
//! Every O(n³) kernel (severity, APSP, the alert sweeps, the
//! factorization updates) runs on [`tivpar`] and is **bit-identical at
//! every thread count**; set `TIV_THREADS` to pin the worker count
//! process-wide. See `ARCHITECTURE.md` for the paper-to-code map.
//!
//! ```
//! use tivoid::prelude::*;
//!
//! let space = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(60).build(7);
//! let m = space.matrix();
//! let sev = Severity::compute(m, 0);
//! assert!(sev.violating_triangle_fraction() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use delayspace;
pub use experiments;
pub use ides;
pub use meridian;
pub use simnet;
pub use tivchaos;
pub use tivcore;
pub use tivflux;
pub use tivgate;
pub use tivpar;
pub use tivroute;
pub use tivserve;
pub use vivaldi;

pub mod prelude {
    //! The types and functions nearly every user of the workspace
    //! touches, importable in one line.

    pub use delayspace::apsp::ShortestPaths;
    pub use delayspace::cluster::{ClusterConfig, ClusterId, Clustering};
    pub use delayspace::matrix::{DelayMatrix, NodeId};
    pub use delayspace::rng::DetRng;
    pub use delayspace::stats::{BinnedStats, Cdf, Percentiles};
    pub use delayspace::synth::{Dataset, InternetDelaySpace, SynthConfig};

    pub use simnet::net::{JitterModel, Network, ProbeStats};

    pub use tivpar::resolve_threads;

    pub use vivaldi::{Embedding, VivaldiConfig, VivaldiSystem};

    pub use ides::{Factorization, IdesModel};

    pub use meridian::{
        closest_neighbor, BuildOptions, MeridianConfig, MeridianOverlay, QueryResult, Termination,
    };

    pub use tivcore::dynvivaldi::{self, DynVivaldiConfig};
    pub use tivcore::severity::{estimate_severity, proximity_experiment, Severity};
    pub use tivcore::tivmeridian::{build_tiv_aware, tiv_aware_query, TivMeridianConfig};
    pub use tivcore::{EdgeMask, MonitorConfig, MonitorSummary, TivAlert, TivMonitor};

    pub use tivroute::{best_detour, DetourGain, DetourStats, DetourTable};

    pub use tivflux::{BuildKind, DerivedState, DirtySet, RebuildPolicy, RefineConfig};

    pub use tivserve::loadgen::{LoadReport, LoadSpec};
    pub use tivserve::{
        EdgeEstimate, EpochBuilder, EpochConfig, EpochSnapshot, EstimateConfig, FluxBuilder,
        FluxConfig, Observation, RouteEstimate, ServeConfig, TivServe, WorkloadConfig,
    };

    pub use tivgate::{
        Deployment, DeploymentHandle, Front, GateClient, GateConfig, GateServer, ReplicaSet,
        Request, Response,
    };

    pub use tivchaos::{
        run_chaos, run_overlay_multicast, run_server_selection, AppConfig, AppReport, ChaosConfig,
        ChaosReport, FaultKind, FaultPlan, SloSpec,
    };
}
