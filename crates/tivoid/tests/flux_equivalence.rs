//! Incremental-vs-full equivalence of the `tivflux` epoch pipeline
//! (ISSUE-5 acceptance): the same observation state, built through the
//! incremental repair path and through the full-rebuild path, must
//! produce **bit-identical** snapshots — matrix, embedding, exact
//! severity, detour-served routes — across dirtiness fractions
//! {0%, 1%, 10%, 100%}, thread counts {1, 2, 4} and service shard
//! counts {1, 2, 4}. The rebuild-policy threshold (and the thread and
//! shard layout) are pure cost knobs; this test is what makes that a
//! contract rather than an intention — the same discipline as
//! `parallel_equivalence`, `serve_equivalence` and `route_equivalence`.

use tivoid::delayspace::matrix::DelayMatrix;
use tivoid::delayspace::synth::{Dataset, InternetDelaySpace};
use tivoid::tivflux::{BuildKind, RebuildPolicy};
use tivoid::tivserve::epoch::{EpochConfig, Observation};
use tivoid::tivserve::flux::{FluxBuilder, FluxConfig};
use tivoid::tivserve::service::{ServeConfig, TivServe};
use tivoid::tivserve::snapshot::EpochSnapshot;

/// Nodes in the test space (severity and detour passes are O(n³)).
const N: usize = 120;
/// Thread counts every path is swept over.
const THREADS: [usize; 3] = [1, 2, 4];
/// Shard counts the served answers are compared across.
const SHARDS: [usize; 3] = [1, 2, 4];
/// Dirtiness fractions of the acceptance matrix.
const FRACTIONS: [f64; 4] = [0.0, 0.01, 0.10, 1.0];

fn matrix() -> DelayMatrix {
    InternetDelaySpace::preset(Dataset::Ds2).with_nodes(N).build(11).into_matrix()
}

fn cfg(policy: RebuildPolicy, threads: usize) -> FluxConfig {
    FluxConfig {
        epoch: EpochConfig { bootstrap_rounds: 25, seed: 7, ..EpochConfig::default() },
        policy,
        threads,
        ..FluxConfig::default()
    }
}

/// Two epochs of observations whose dirty set is exactly the first
/// `ceil(frac * N)` rows: chained pairs inside that node prefix. An
/// empty fraction produces empty epochs (the 0% case — builds with
/// nothing to do must also agree).
fn observation_epochs(frac: f64) -> Vec<Vec<Observation>> {
    let rows = ((frac * N as f64).ceil() as usize).min(N);
    (0..2u64)
        .map(|epoch| {
            (0..rows.saturating_sub(1))
                .map(|i| Observation {
                    src: i,
                    dst: i + 1,
                    rtt_ms: 30.0 + ((i as u64 * 11 + epoch * 17) % 70) as f64,
                })
                .collect()
        })
        .collect()
}

fn assert_snapshots_bit_identical(a: &EpochSnapshot, b: &EpochSnapshot, what: &str) {
    assert_eq!(a.epoch(), b.epoch(), "{what}: epoch");
    assert_eq!(a.matrix(), b.matrix(), "{what}: matrix");
    for i in 0..N {
        for j in 0..N {
            assert_eq!(
                a.embedding().predicted(i, j).to_bits(),
                b.embedding().predicted(i, j).to_bits(),
                "{what}: embedding diverged at ({i},{j})"
            );
            assert_eq!(
                a.exact_severity(i, j).map(f64::to_bits),
                b.exact_severity(i, j).map(f64::to_bits),
                "{what}: exact severity diverged at ({i},{j})"
            );
            assert_eq!(a.route(i, j), b.route(i, j), "{what}: route diverged at ({i},{j})");
        }
    }
}

/// Runs the two observation epochs through a builder and returns both
/// snapshots plus the build kinds the policy picked.
fn run(policy: RebuildPolicy, threads: usize, frac: f64) -> (Vec<EpochSnapshot>, Vec<BuildKind>) {
    let (mut builder, _) = FluxBuilder::bootstrap(matrix(), cfg(policy, threads));
    let mut snaps = Vec::new();
    let mut kinds = Vec::new();
    for epoch in observation_epochs(frac) {
        for obs in epoch {
            builder.ingest(obs);
        }
        snaps.push(builder.build());
        kinds.push(builder.last_outcome().expect("build ran").kind);
    }
    (snaps, kinds)
}

#[test]
fn incremental_equals_full_rebuild_across_dirtiness_and_threads() {
    for &frac in &FRACTIONS {
        // The reference: full rebuild on one thread.
        let (reference, ref_kinds) = run(RebuildPolicy::always_full(), 1, frac);
        assert!(ref_kinds.iter().all(|&k| k == BuildKind::Full));
        for &threads in &THREADS {
            let (incr, kinds) = run(RebuildPolicy::always_incremental(), threads, frac);
            assert!(
                kinds.iter().all(|&k| k == BuildKind::Incremental),
                "policy must keep the incremental path at {frac} dirtiness"
            );
            for (e, (si, sr)) in incr.iter().zip(&reference).enumerate() {
                assert_snapshots_bit_identical(
                    si,
                    sr,
                    &format!("{:.0}% dirty, {threads} threads, epoch {}", frac * 100.0, e + 1),
                );
            }
            // The full path must also be thread-count invariant.
            let (full, _) = run(RebuildPolicy::always_full(), threads, frac);
            for (e, (sf, sr)) in full.iter().zip(&reference).enumerate() {
                assert_snapshots_bit_identical(
                    sf,
                    sr,
                    &format!(
                        "{:.0}% dirty, full path, {threads} threads, epoch {}",
                        frac * 100.0,
                        e + 1
                    ),
                );
            }
        }
    }
}

#[test]
fn default_policy_switches_paths_without_changing_results() {
    // The default 25% threshold: 1% dirt repairs, 100% dirt rebuilds —
    // and both land bit-identical to the forced-path runs above, so the
    // *served* state never betrays which path built it.
    let (_, kinds_low) = run(RebuildPolicy::default(), 2, 0.01);
    assert!(kinds_low.iter().all(|&k| k == BuildKind::Incremental), "{kinds_low:?}");
    let (_, kinds_high) = run(RebuildPolicy::default(), 2, 1.0);
    assert!(kinds_high.iter().all(|&k| k == BuildKind::Full), "{kinds_high:?}");

    let (defaults, _) = run(RebuildPolicy::default(), 2, 0.10);
    let (reference, _) = run(RebuildPolicy::always_full(), 1, 0.10);
    for (e, (sd, sr)) in defaults.iter().zip(&reference).enumerate() {
        assert_snapshots_bit_identical(sd, sr, &format!("default policy, epoch {}", e + 1));
    }
}

#[test]
fn served_answers_are_shard_and_path_invariant() {
    // Wrap the final snapshots of both paths in services at every shard
    // count and replay one query batch: estimate and route answers must
    // be bit-identical everywhere.
    let frac = 0.10;
    let (incr, _) = run(RebuildPolicy::always_incremental(), 2, frac);
    let (full, _) = run(RebuildPolicy::always_full(), 4, frac);
    let pairs: Vec<(usize, usize)> = (0..N)
        .flat_map(|a| [(a, (a + 1) % N), (a, (a * 7 + 3) % N)])
        .filter(|&(a, c)| a != c)
        .collect();
    let reference_service = TivServe::new(
        ServeConfig { shards: 1, ..ServeConfig::default() },
        incr.last().unwrap().clone(),
    );
    let ref_estimates = reference_service.estimate_batch(&pairs);
    let ref_routes = reference_service.route_batch(&pairs);
    for snapshot in [incr.last().unwrap(), full.last().unwrap()] {
        for &shards in &SHARDS {
            let service = TivServe::new(
                ServeConfig { shards, parallel_threshold: 0, ..ServeConfig::default() },
                snapshot.clone(),
            );
            assert_eq!(
                service.estimate_batch(&pairs),
                ref_estimates,
                "estimates diverged at {shards} shards"
            );
            assert_eq!(
                service.route_batch(&pairs),
                ref_routes,
                "routes diverged at {shards} shards"
            );
        }
    }
}
