//! Cross-shard equivalence of the `tivserve` service (ISSUE-3
//! acceptance): the exact same closed-loop workload, replayed against
//! services that differ only in shard count, must produce
//! **bit-identical batched answers** — the sharding and the per-shard
//! caches are allowed to change latency, never a result. The services
//! are built through `experiments::serve::build_service`, the same
//! construction path `repro serve` uses, so this pins the CLI surface
//! too.

use tivoid::experiments::serve::{build_service, ServeOptions};
use tivoid::tivserve::loadgen::{self, ObservePath};
use tivoid::tivserve::snapshot::EdgeEstimate;
use tivoid::tivserve::TivServe;

/// Shard counts compared against the unsharded single-thread path.
const SHARDS: [usize; 3] = [1, 2, 4];

fn opts() -> ServeOptions {
    ServeOptions {
        nodes: 200,
        queries: 2_000,
        batch: 64,
        observe_frac: 0.15,
        // Force the fan-out path even for these small batches — the
        // whole point here is to pin the *sharded* code against the
        // serial reference.
        parallel_threshold: 0,
        ..ServeOptions::default()
    }
}

/// Field-by-field bit comparison (`==` on f64 would already be exact,
/// but comparing the raw bits makes the promise explicit and catches
/// `-0.0` vs `0.0` drift).
fn assert_bit_identical(a: &EdgeEstimate, b: &EdgeEstimate, what: &str) {
    assert_eq!(a.epoch, b.epoch, "{what}: epoch");
    assert_eq!(a.predicted.to_bits(), b.predicted.to_bits(), "{what}: predicted");
    assert_eq!(a.measured.map(f64::to_bits), b.measured.map(f64::to_bits), "{what}: measured");
    assert_eq!(a.ratio.map(f64::to_bits), b.ratio.map(f64::to_bits), "{what}: ratio");
    assert_eq!(a.severity.map(f64::to_bits), b.severity.map(f64::to_bits), "{what}: severity");
    assert_eq!(a.alert, b.alert, "{what}: alert");
}

fn run_queries(service: &TivServe, batches: &[loadgen::QueryBatch]) -> Vec<Vec<EdgeEstimate>> {
    let (report, answers) = loadgen::run_closed_loop(service, batches, ObservePath::Drop);
    assert_eq!(report.load.queries, batches.iter().map(|b| b.pairs.len()).sum::<usize>());
    answers
}

#[test]
fn sharded_batches_match_the_unsharded_single_thread_path() {
    let o = opts();
    let (reference_service, _, matrix) = build_service(&o, 1);
    let batches = loadgen::generate(&o.workload(), &matrix);
    let reference = run_queries(&reference_service, &batches);
    for shards in SHARDS {
        let (service, _, m) = build_service(&o, shards);
        assert_eq!(m, matrix, "matrix must not depend on shard count");
        let got = run_queries(&service, &batches);
        assert_eq!(got.len(), reference.len());
        for (bi, (gb, rb)) in got.iter().zip(&reference).enumerate() {
            assert_eq!(gb.len(), rb.len(), "batch {bi} length at {shards} shards");
            for (qi, (g, r)) in gb.iter().zip(rb).enumerate() {
                assert_bit_identical(g, r, &format!("{shards} shards, batch {bi}, query {qi}"));
            }
        }
    }
}

#[test]
fn equivalence_survives_epoch_publishes() {
    // Fold the same observation stream into every service's builder at
    // the same points (synchronously, so the publish happens between
    // the same two batches everywhere) and re-check equivalence across
    // epochs — including monitor-driven alert state.
    let o = ServeOptions { epoch_every: 0, ..opts() };
    let services: Vec<_> = SHARDS.iter().map(|&s| build_service(&o, s)).collect();
    let matrix = services[0].2.clone();
    let batches = loadgen::generate(&o.workload(), &matrix);
    let mid = batches.len() / 2;
    let mut all_answers: Vec<Vec<Vec<EdgeEstimate>>> = SHARDS.iter().map(|_| Vec::new()).collect();
    for (si, (service, builder, _)) in services.into_iter().enumerate() {
        let mut builder = builder;
        for (bi, batch) in batches.iter().enumerate() {
            if bi == mid {
                // Same fold point for every service: ingest everything
                // seen so far, publish the next epoch.
                for earlier in &batches[..mid] {
                    for &obs in &earlier.observations {
                        builder.ingest(obs);
                    }
                }
                service.publish(builder.build());
            }
            all_answers[si].push(service.estimate_batch(&batch.pairs));
        }
        assert_eq!(service.epoch(), 1, "one epoch published");
    }
    let (reference, rest) = all_answers.split_first().expect("at least one shard count");
    for (k, got) in rest.iter().enumerate() {
        for (bi, (gb, rb)) in got.iter().zip(reference).enumerate() {
            for (qi, (g, r)) in gb.iter().zip(rb).enumerate() {
                assert_bit_identical(
                    g,
                    r,
                    &format!("{} shards, batch {bi}, query {qi}", SHARDS[k + 1]),
                );
            }
        }
    }
    // The epoch boundary is visible in the answers.
    assert_eq!(reference[0][0].epoch, 0);
    assert_eq!(reference[mid][0].epoch, 1);
}

#[test]
fn severity_and_alert_projections_are_consistent_across_shards() {
    let o = opts();
    let (matrix_service, _, matrix) = build_service(&o, 1);
    let pairs: Vec<_> = matrix.edges().map(|(i, j, _)| (i, j)).take(500).collect();
    let sev1 = matrix_service.severity_batch(&pairs);
    let alerts1 = matrix_service.alerts_batch(&pairs);
    for shards in [2usize, 4] {
        let (service, _, _) = build_service(&o, shards);
        let sev = service.severity_batch(&pairs);
        let alerts = service.alerts_batch(&pairs);
        assert_eq!(
            sev.iter().map(|s| s.map(f64::to_bits)).collect::<Vec<_>>(),
            sev1.iter().map(|s| s.map(f64::to_bits)).collect::<Vec<_>>(),
            "severity diverged at {shards} shards"
        );
        assert_eq!(alerts, alerts1, "alerts diverged at {shards} shards");
    }
}
