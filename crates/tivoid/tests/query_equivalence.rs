//! Unified-query equivalence (ISSUE-8 satellite): the single
//! [`TivServe::query`] enum entry point answers **bit-identically** to
//! every legacy batch method it replaced — across shard counts, across
//! repeated calls, and for the new sampled-severity kind.
//!
//! The comparison is canonical: both sides are lifted into a wire
//! [`Response`] via [`Response::from_reply`] and encoded, so every
//! `f64` is compared by IEEE bit pattern and the check covers exactly
//! the value space the protocol can carry.

use tivoid::experiments::serve::{build_service, ServeOptions};
use tivoid::tivgate::proto::{encode_response, Response};
use tivoid::tivserve::loadgen;
use tivoid::tivserve::query::{QueryBatch, ReplyBatch};
use tivoid::tivserve::TivServe;

/// Shard counts the enum surface is pinned across.
const SHARDS: [usize; 3] = [1, 2, 4];

/// Witness budget for the sampled kind (small enough to actually
/// sample at 200 nodes).
const WITNESSES: u32 = 12;

fn opts() -> ServeOptions {
    ServeOptions {
        nodes: 200,
        queries: 1_200,
        batch: 48,
        observe_frac: 0.0,
        // Force the fan-out path even for small batches — the sharded
        // code must be pinned, not the serial shortcut.
        parallel_threshold: 0,
        ..ServeOptions::default()
    }
}

/// Canonical bit-exact form of a reply: its encoded wire frame.
fn frame(reply: ReplyBatch) -> Vec<u8> {
    encode_response(&Response::from_reply(1, reply))
}

/// The five query kinds over one pair set.
fn kinds(pairs: &[(usize, usize)]) -> Vec<QueryBatch> {
    vec![
        QueryBatch::Estimate(pairs.to_vec()),
        QueryBatch::Route(pairs.to_vec()),
        QueryBatch::Severity(pairs.to_vec()),
        QueryBatch::Alerts(pairs.to_vec()),
        QueryBatch::SampledSeverity { pairs: pairs.to_vec(), witnesses: WITNESSES },
    ]
}

fn batches(service_opts: &ServeOptions) -> Vec<Vec<(usize, usize)>> {
    let (_, _, matrix) = build_service(service_opts, 1);
    loadgen::generate(&service_opts.workload(), &matrix).into_iter().map(|b| b.pairs).collect()
}

/// `query(QueryBatch::X)` must return exactly what the legacy method
/// returns — the wrappers and the enum are one code path.
#[test]
fn query_enum_matches_every_legacy_method() {
    let o = opts();
    let (service, _, _) = build_service(&o, 2);
    for pairs in batches(&o) {
        let legacy: Vec<ReplyBatch> = vec![
            ReplyBatch::Estimate(service.estimate_batch(&pairs)),
            ReplyBatch::Route(service.route_batch(&pairs)),
            ReplyBatch::Severity(service.severity_batch(&pairs)),
            ReplyBatch::Alerts(service.alerts_batch(&pairs)),
            ReplyBatch::SampledSeverity(service.sampled_severity_batch(&pairs, WITNESSES)),
        ];
        for (query, want) in kinds(&pairs).into_iter().zip(legacy) {
            assert_eq!(
                frame(service.query(&query)),
                frame(want),
                "query({query:?}) diverged from its legacy method"
            );
        }
    }
}

/// The enum surface is a pure function of `(snapshot, query, config)`:
/// shard count must never leak into an answer, for any kind.
#[test]
fn query_enum_is_bit_identical_across_shard_counts() {
    let o = opts();
    let services: Vec<TivServe> = SHARDS.iter().map(|&s| build_service(&o, s).0).collect();
    for pairs in batches(&o) {
        for query in kinds(&pairs) {
            let mut frames = services.iter().map(|s| frame(s.query(&query)));
            let reference = frames.next().expect("at least one shard count");
            for (k, got) in frames.enumerate() {
                assert_eq!(
                    got,
                    reference,
                    "{} shards diverged from 1 shard on {query:?}",
                    SHARDS[k + 1]
                );
            }
        }
    }
}

/// Sampled answers are deterministic (same snapshot, same query, same
/// bits) and their witness default resolves to the configured budget.
#[test]
fn sampled_severity_is_deterministic_and_defaults_to_config() {
    let o = opts();
    let (service, _, _) = build_service(&o, 4);
    let pairs = batches(&o).into_iter().next().expect("at least one batch");
    let query = QueryBatch::SampledSeverity { pairs: pairs.clone(), witnesses: WITNESSES };
    assert_eq!(frame(service.query(&query)), frame(service.query(&query)));
    // witnesses: 0 means "use the service's configured budget".
    let implicit = QueryBatch::SampledSeverity { pairs: pairs.clone(), witnesses: 0 };
    let explicit = QueryBatch::SampledSeverity {
        pairs,
        witnesses: o.serve_config(4).estimate.severity_witnesses as u32,
    };
    assert_eq!(frame(service.query(&implicit)), frame(service.query(&explicit)));
}
