//! End-to-end exercise of the facade's re-export surface: the
//! quickstart path (synthetic delay space → Vivaldi embedding → TIV
//! alert) on a small, seed-fixed instance, entirely through
//! `tivoid::prelude` and `tivoid::<crate>` module paths.

use tivoid::prelude::*;

const SEED: u64 = 42;
const NODES: usize = 80;

fn build_space() -> InternetDelaySpace {
    InternetDelaySpace::preset(Dataset::Ds2).with_nodes(NODES).build(SEED)
}

#[test]
fn quickstart_path_end_to_end() {
    // 1. Synthetic delay space: right size, positive delays, TIV-rich.
    let space = build_space();
    let m = space.matrix();
    assert_eq!(m.len(), NODES);
    assert!(m.edges().count() > 0, "no measured edges");
    for (_, _, d) in m.edges() {
        assert!(d > 0.0 && d.is_finite(), "bad delay {d}");
    }

    let sev = Severity::compute(m, 0);
    let viol = sev.violating_triangle_fraction();
    assert!(
        viol > 0.02 && viol < 0.60,
        "DS² preset should violate a nontrivial fraction of triangles, got {viol}"
    );
    // The severity distribution has the paper's long-tail shape: most
    // edges harmless, a heavy right tail.
    let cdf = sev.cdf(m);
    assert!(cdf.median() < cdf.quantile(0.95));
    assert!(cdf.quantile(1.0) > 1.0, "no severe TIV edge in the tail");

    // 2. Vivaldi embedding converges to a usable error level.
    let mut sys = VivaldiSystem::new(VivaldiConfig::default(), m.len(), SEED);
    let mut net = Network::new(m, JitterModel::None, SEED);
    sys.run_rounds(&mut net, 150);
    let emb = sys.embedding();
    let err = emb.abs_error_cdf(m);
    assert!(err.median() < 150.0, "embedding error unreasonably large: median {} ms", err.median());
    assert!(net.stats().total() > 0, "embedding probed nothing");

    // 3. The TIV alert flags shrunk edges, and the flagged set is
    //    enriched in truly severe edges versus the base rate.
    let alert = TivAlert::new(0.6);
    let worst: std::collections::HashSet<_> = sev.worst_edges(m, 0.20).into_iter().collect();
    let mut alarmed = 0usize;
    let mut alarmed_bad = 0usize;
    for (i, j, _) in m.edges() {
        if alert.check(&emb, m, i, j) == Some(true) {
            alarmed += 1;
            if worst.contains(&(i, j)) {
                alarmed_bad += 1;
            }
        }
    }
    assert!(alarmed > 0, "alert never fired on a TIV-rich space");
    let precision = alarmed_bad as f64 / alarmed as f64;
    assert!(precision > 0.4, "alert precision {precision:.2} barely beats the 0.20 base rate");
}

#[test]
fn quickstart_path_is_deterministic_in_the_seed() {
    let a = build_space();
    let b = build_space();
    assert_eq!(a.matrix(), b.matrix(), "same seed must rebuild the same space");

    let embed = |m: &DelayMatrix| {
        let mut sys = VivaldiSystem::new(VivaldiConfig::default(), m.len(), SEED);
        let mut net = Network::new(m, JitterModel::None, SEED);
        sys.run_rounds(&mut net, 50);
        sys.embedding()
    };
    let (ea, eb) = (embed(a.matrix()), embed(b.matrix()));
    for i in 0..NODES {
        assert_eq!(ea.coord(i), eb.coord(i), "embedding diverged at node {i}");
    }
}

#[test]
fn facade_module_paths_are_wired() {
    // The re-exported module paths the examples rely on.
    let text = "# src dst rtt\n0 1 10.0\n1 2 12.5\n0 2 30.0\n";
    let m = tivoid::delayspace::io::from_pairs_text(text).expect("pair-list parses");
    assert_eq!(m.len(), 3);
    assert_eq!(m.get(0, 2), Some(30.0));

    // A 3-node TIV: 0–2 direct (30 ms) beats 0–1–2 (22.5 ms).
    let sp = tivoid::delayspace::apsp::ShortestPaths::compute(&m, 1);
    assert!(sp.get(0, 2) < 23.0);

    // Deterministic RNG helpers through the facade path.
    let mut r = tivoid::delayspace::rng::rng(7);
    let x = tivoid::delayspace::rng::pareto(&mut r, 1.5, 4.0);
    assert!((1.0..=4.0).contains(&x));
}
