//! Chaos equivalence (ISSUE-10 headline): a replica crashed and
//! restarted **mid-epoch, under live traffic** answers byte-identically
//! to a replica that never crashed — extending the wire-equivalence
//! discipline across failure and recovery.
//!
//! Why this is testable at all: a serving answer is a pure function of
//! `(snapshot, query, config)`, every replica of a [`Deployment`]
//! holds a full copy of the same snapshot, and a restart rebuilds its
//! service from the latest built snapshot through the one validated
//! constructor surface (`ServedSnapshot::into_parts` →
//! `ServedSnapshot::assemble`). There is nothing a crash is allowed to
//! change, so "recovered" means `call_frame` equality on whole frames —
//! every `f64` compared by its IEEE bit pattern, not approximately.

use tivoid::tivgate::client::GateClient;
use tivoid::tivgate::deploy::Deployment;
use tivoid::tivgate::proto::Request;
use tivoid::tivgate::testutil::{small_builder, small_matrix, SMALL_NODES};
use tivoid::tivserve::epoch::Observation;
use tivoid::tivserve::loadgen::{generate, WorkloadConfig};

/// The seeded probe set: Zipf-skewed batches from the shared workload
/// generator, the same stream every run.
fn probe_batches() -> Vec<Vec<(u32, u32)>> {
    let cfg = WorkloadConfig {
        queries: 120,
        batch: 24,
        observe_frac: 0.0,
        seed: 4321,
        ..WorkloadConfig::default()
    };
    generate(&cfg, &small_matrix())
        .into_iter()
        .map(|b| b.pairs.iter().map(|&(a, c)| (a as u32, c as u32)).collect())
        .collect()
}

/// Observations that force the next epoch to differ from the current
/// one; in range, no self-loops, positive RTTs.
fn epoch_observations(salt: usize) -> Vec<Observation> {
    (0..12)
        .map(|k| Observation {
            src: (k + salt) % SMALL_NODES,
            dst: (k + salt + 7) % SMALL_NODES,
            rtt_ms: 30.0 + (k + salt) as f64,
        })
        .collect()
}

/// All five typed request kinds for one probe batch — recovery must be
/// bit-exact for every answer shape, not just estimates.
fn requests_for(id: u32, pairs: &[(u32, u32)]) -> Vec<Request> {
    vec![
        Request::Estimate { id, pairs: pairs.to_vec() },
        Request::Route { id, pairs: pairs.to_vec() },
        Request::Severity { id, pairs: pairs.to_vec() },
        Request::Alerts { id, pairs: pairs.to_vec() },
        Request::SampledSeverity { id, witnesses: 8, pairs: pairs.to_vec() },
    ]
}

/// Collects the raw wire frames one replica answers for the whole
/// probe set.
fn frames_of(client: &mut GateClient, batches: &[Vec<(u32, u32)>]) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    for (bi, pairs) in batches.iter().enumerate() {
        for req in requests_for(bi as u32, pairs) {
            frames.push(client.call_frame(&req).expect("wire call"));
        }
    }
    frames
}

/// The multi-replica scenario: crash the last replica mid-epoch while
/// traffic keeps flowing and observations keep arriving, publish an
/// epoch it never sees, restart it, and require its answers byte-equal
/// a never-crashed control replica's.
fn crash_recovery_equivalence_at(replicas: usize) {
    assert!(replicas >= 2, "the scenario needs a never-crashed control");
    let (builder, snapshot, serve_cfg) = small_builder();
    let handle = Deployment::new(snapshot, serve_cfg)
        .replicas(replicas)
        // The threshold never fires on its own; epochs advance only on
        // the explicit publish_now() calls below.
        .publisher(builder, usize::MAX / 2)
        .spawn()
        .expect("spawn deployment");
    let feed = handle.feed().expect("deployment has a publisher");
    let batches = probe_batches();
    let victim = replicas - 1;
    let control = 0;

    // Epoch 0, everyone up: all replicas agree frame-for-frame.
    let mut clients: Vec<GateClient> = (0..replicas)
        .map(|r| GateClient::connect(handle.addr(r).expect("replica up")).expect("connect"))
        .collect();
    let epoch0_control = frames_of(&mut clients[control], &batches);
    for (r, client) in clients.iter_mut().enumerate().skip(1) {
        assert_eq!(
            frames_of(client, &batches),
            epoch0_control,
            "replica {r} disagrees with the control at epoch 0"
        );
    }

    // Mid-epoch: half the observations land, then the victim crashes.
    let obs = epoch_observations(0);
    for &o in &obs[..obs.len() / 2] {
        feed.observe(o).expect("publisher is live");
    }
    handle.crash(victim).expect("crash victim");

    // Traffic keeps flowing on the survivors, the rest of the epoch's
    // observations arrive, and an epoch the victim never sees is
    // published.
    for &o in &obs[obs.len() / 2..] {
        feed.observe(o).expect("publisher is live");
    }
    let epoch = handle.publish_now().expect("forced publish");
    assert_eq!(epoch, 1);
    let survivor_frames = frames_of(&mut clients[control], &batches);
    assert_ne!(
        survivor_frames, epoch0_control,
        "the published epoch must change the answers (else recovery is untestable)"
    );
    assert_eq!(handle.replica_epoch(victim), None, "victim is down");

    // Restart: the victim rebuilds from the latest built snapshot and
    // must answer byte-identically to the control — no replay, no
    // catch-up traffic, no second publish.
    handle.restart(victim).expect("restart victim");
    assert_eq!(handle.replica_epoch(victim), Some(1), "restart lands on the latest epoch");
    let mut revived =
        GateClient::connect(handle.addr(victim).expect("victim up")).expect("connect");
    assert_eq!(
        frames_of(&mut revived, &batches),
        survivor_frames,
        "restarted replica {victim} differs from the never-crashed control"
    );

    // And the next epoch reaches old and new replicas alike.
    for o in epoch_observations(3) {
        feed.observe(o).expect("publisher is live");
    }
    assert_eq!(handle.publish_now(), Some(2));
    let control_e2 = frames_of(&mut clients[control], &batches);
    assert_eq!(
        frames_of(&mut revived, &batches),
        control_e2,
        "restarted replica diverged on the post-recovery epoch"
    );

    handle.shutdown().expect("clean shutdown");
}

#[test]
fn crash_recovery_is_bitexact_with_two_replicas() {
    crash_recovery_equivalence_at(2);
}

#[test]
fn crash_recovery_is_bitexact_with_four_replicas() {
    crash_recovery_equivalence_at(4);
}

/// With a single replica there is no control to compare against, so
/// the discipline degrades to self-equivalence: frames recorded before
/// the crash must be reproduced exactly after the restart, because the
/// restart rebuilds from the same retained snapshot.
#[test]
fn single_replica_restart_reproduces_its_own_frames() {
    let (builder, snapshot, serve_cfg) = small_builder();
    let handle = Deployment::new(snapshot, serve_cfg)
        .replicas(1)
        .publisher(builder, usize::MAX / 2)
        .spawn()
        .expect("spawn deployment");
    let feed = handle.feed().expect("deployment has a publisher");
    let batches = probe_batches();

    // Advance off the bootstrap epoch so the retained snapshot is one
    // the publisher built, then record the pre-crash answers.
    for o in epoch_observations(0) {
        feed.observe(o).expect("publisher is live");
    }
    assert_eq!(handle.publish_now(), Some(1));
    let mut client = GateClient::connect(handle.addr(0).expect("up")).expect("connect");
    let before = frames_of(&mut client, &batches);

    handle.crash(0).expect("crash");
    assert!(handle.addrs().is_empty(), "the whole deployment is down");
    handle.restart(0).expect("restart");
    assert_eq!(handle.replica_epoch(0), Some(1));

    let mut revived = GateClient::connect(handle.addr(0).expect("up")).expect("connect");
    assert_eq!(
        frames_of(&mut revived, &batches),
        before,
        "single-replica restart failed to reproduce its own pre-crash frames"
    );
    handle.shutdown().expect("clean shutdown");
}

/// The full harness, driven through the facade: the standard fault
/// plan (crash, restart, withheld publishes, heal) under live load
/// must report bit-exact recovery and hold its SLOs.
#[test]
fn chaos_harness_confirms_recovery_under_the_standard_plan() {
    use tivoid::prelude::{run_chaos, ChaosConfig, FaultPlan};

    let cfg = ChaosConfig {
        nodes: 48,
        replicas: 2,
        queries: 1_200,
        batch: 50,
        publish_every_batches: 4,
        ..ChaosConfig::default()
    };
    let plan = FaultPlan::standard(cfg.replicas, cfg.queries / cfg.batch);
    let report = run_chaos(&cfg, &plan).expect("chaos run");
    assert!(report.recovered_bitexact, "recovery must be bit-exact: {report}");
    assert!(report.slo_ok(), "standard plan must hold the default SLOs: {report}");
    assert!(report.unavailable_batches > 0, "the crash window must be visible");
}
