//! Behavioural tests for the persistent work-stealing pool behind the
//! kernels: worker reuse across consecutive kernel calls, and load
//! balancing under pathological row skew.
//!
//! These complement the bit-equivalence suites (`parallel_equivalence`
//! etc.), which pin *what* the kernels compute; this file pins *how*
//! the pool executes them — no per-call thread churn, and stolen work
//! instead of a serialised heavy chunk.

use std::time::{Duration, Instant};
use tivoid::prelude::*;
use tivoid::tivcore::Severity;
use tivoid::tivpar;

/// Worker count used by every region in this file. Keeping all tests
/// at one count means the pool's high-water mark is reached by the
/// first warm-up region and `spawned_total` must then stay frozen no
/// matter which test the harness interleaves.
const WORKERS: usize = 4;

fn ds2(n: usize, seed: u64) -> DelayMatrix {
    InternetDelaySpace::preset(Dataset::Ds2).with_nodes(n).build(seed).into_matrix()
}

/// Run one throwaway region so the pool has spawned its workers.
fn warm_pool() {
    let v = tivpar::par_map_rows(WORKERS * 4, WORKERS, |i| i as u64);
    assert_eq!(v.len(), WORKERS * 4);
}

/// Consecutive kernel calls must reuse the same pool workers: the
/// whole point of the persistent pool is that thread spawns happen
/// once per process, not once per call. `spawned_total` is the
/// counting spawn hook — it only moves when a *new* OS thread is
/// created, so any per-call spawning shows up as growth here.
#[test]
fn consecutive_kernel_calls_spawn_no_new_threads() {
    warm_pool();
    let before = tivpar::pool::stats();
    assert!(
        before.live_workers < WORKERS,
        "pool grew past its target: {} workers live for {}-worker regions",
        before.live_workers,
        WORKERS
    );

    let m = ds2(96, 7);
    let first = Severity::compute(&m, WORKERS);
    let second = Severity::compute(&m, WORKERS);
    assert_eq!(
        first.violating_triangle_fraction().to_bits(),
        second.violating_triangle_fraction().to_bits(),
        "same input must give same severity"
    );

    let after = tivpar::pool::stats();
    assert_eq!(
        after.spawned_total, before.spawned_total,
        "kernel calls after warm-up spawned new threads — pool reuse is broken"
    );
    assert_eq!(after.live_workers, before.live_workers, "pool workers died or were replaced");
    assert!(
        after.regions_run > before.regions_run,
        "the kernel calls never reached the pool (regions_run did not move)"
    );
}

/// Spin for `units` of deterministic busy work; `black_box` keeps the
/// optimiser from deleting the loop.
fn spin(units: u64) -> u64 {
    let mut acc = 0x9e37_79b9_7f4a_7c15u64;
    for i in 0..units {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(std::hint::black_box(i));
    }
    std::hint::black_box(acc)
}

/// Wall-clock of one `par_map_rows` region at [`WORKERS`] where row
/// `r` costs `cost(r)` spin units. Minimum over `reps` runs, so a
/// single scheduling hiccup cannot decide the test.
fn timed_region(reps: usize, cost: impl Fn(usize) -> u64 + Sync) -> Duration {
    let rows = 32;
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            let out = tivpar::par_map_rows(rows, WORKERS, |r| spin(cost(r)));
            let elapsed = start.elapsed();
            assert_eq!(out.len(), rows);
            elapsed
        })
        .min()
        .expect("at least one rep")
}

/// One pathologically heavy row must not serialise the region: with
/// fine-grained chunks and stealing, the heavy chunk pins one worker
/// while the rest drain everything else, so the makespan stays within
/// ~2x of the same total work spread evenly. A coarse
/// one-chunk-per-worker split without stealing fails this: the heavy
/// worker also owns a quarter of the light rows. On a single-core
/// machine both layouts run the same total work serially, so the
/// bound holds there trivially — the test bites on multi-core CI.
#[test]
fn skewed_row_stays_within_2x_of_even_work() {
    warm_pool();
    // 32 rows; the skewed case gives one row 16 light-rows' worth of
    // work. Both cases run the identical total of 47 * LIGHT units.
    const LIGHT: u64 = 200_000;
    const ROWS: u64 = 32;
    const HEAVY: u64 = 16 * LIGHT;
    const TOTAL: u64 = (ROWS - 1) * LIGHT + HEAVY;

    let even = timed_region(5, |_| TOTAL / ROWS);
    let skew = timed_region(5, |r| if r == 0 { HEAVY } else { LIGHT });

    assert!(
        skew <= even * 2 + Duration::from_millis(2),
        "heavy row serialised the region: skew {skew:?} vs even {even:?} (bound 2x)"
    );
}
