//! Wire equivalence (ISSUE-7 headline): answers served over real TCP
//! sockets are **bit-identical** to in-process [`TivServe`] calls —
//! across replica counts, across an epoch publish mid-stream, and down
//! to the raw frame bytes.
//!
//! Why this is testable at all: a serving answer is a pure function of
//! `(snapshot, query, config)`, a [`ReplicaSet`] seeds every replica
//! with a clone of the same snapshot, and the fixtures in
//! [`tivgate::testutil`] are pure functions of fixed seeds — so a
//! reference service built independently in this process holds exactly
//! the snapshot the replicas hold behind their sockets. The codec
//! carries every `f64` as its IEEE bit pattern, so "equal" here means
//! `to_bits()` equal, not approximately equal: the comparison is
//! `call_frame(request) == encode_response(direct_answer)` on whole
//! frames.

use tivoid::tivgate::client::GateClient;
use tivoid::tivgate::proto::{encode_response, Request, Response};
use tivoid::tivgate::replica::ReplicaSet;
use tivoid::tivgate::testutil::{small_builder, small_matrix, SMALL_NODES};
use tivoid::tivgate::Front;
use tivoid::tivserve::epoch::{EpochBuilder, Observation};
use tivoid::tivserve::loadgen::{generate, WorkloadConfig};
use tivoid::tivserve::query::QueryBatch;
use tivoid::tivserve::service::TivServe;

/// Witness budget the sampled-severity comparisons use everywhere in
/// this suite.
const WITNESSES: u32 = 8;

/// The seeded query set: Zipf-skewed batches from the shared workload
/// generator, the same stream every run.
fn query_batches() -> Vec<Vec<(u32, u32)>> {
    let cfg = WorkloadConfig {
        queries: 240,
        batch: 24,
        observe_frac: 0.0,
        seed: 1234,
        ..WorkloadConfig::default()
    };
    generate(&cfg, &small_matrix())
        .into_iter()
        .map(|b| b.pairs.iter().map(|&(a, c)| (a as u32, c as u32)).collect())
        .collect()
}

fn as_usize(pairs: &[(u32, u32)]) -> Vec<(usize, usize)> {
    pairs.iter().map(|&(a, c)| (a as usize, c as usize)).collect()
}

/// Asserts that every replica's raw wire answer for every batch equals,
/// byte for byte, the frame an in-process reference service's direct
/// answer encodes to — for all five query kinds, both through the
/// legacy typed requests and through the unified [`QueryBatch`] path.
fn assert_wire_matches_direct(
    clients: &mut [GateClient],
    reference: &TivServe,
    batches: &[Vec<(u32, u32)>],
    id_base: u32,
) {
    for (bi, pairs) in batches.iter().enumerate() {
        let upairs = as_usize(pairs);
        let id = id_base + bi as u32;
        let expected = [
            (
                Request::Estimate { id, pairs: pairs.clone() },
                encode_response(&Response::Estimate {
                    id,
                    items: reference.estimate_batch(&upairs),
                }),
            ),
            (
                Request::Route { id, pairs: pairs.clone() },
                encode_response(&Response::Route { id, items: reference.route_batch(&upairs) }),
            ),
            (
                Request::Severity { id, pairs: pairs.clone() },
                encode_response(&Response::Severity {
                    id,
                    items: reference.severity_batch(&upairs),
                }),
            ),
            (
                Request::Alerts { id, pairs: pairs.clone() },
                encode_response(&Response::Alerts { id, items: reference.alerts_batch(&upairs) }),
            ),
            (
                Request::SampledSeverity { id, witnesses: WITNESSES, pairs: pairs.clone() },
                encode_response(&Response::SampledSeverity {
                    id,
                    items: reference.sampled_severity_batch(&upairs, WITNESSES),
                }),
            ),
        ];
        for (ri, client) in clients.iter_mut().enumerate() {
            for (request, want) in &expected {
                let got = client.call_frame(request).expect("wire call");
                assert_eq!(
                    &got, want,
                    "replica {ri}, batch {bi}: wire frame differs from in-process encoding"
                );
            }
        }
        // The unified query surface travels the exact same frames: a
        // QueryBatch encoded via Request::from_query answers with the
        // byte-identical frame Response::from_reply(reference.query(..))
        // encodes to — for every kind, defined once in the enum.
        for query in [
            QueryBatch::Estimate(upairs.clone()),
            QueryBatch::Route(upairs.clone()),
            QueryBatch::Severity(upairs.clone()),
            QueryBatch::Alerts(upairs.clone()),
            QueryBatch::SampledSeverity { pairs: upairs.clone(), witnesses: WITNESSES },
        ] {
            let want = encode_response(&Response::from_reply(id, reference.query(&query)));
            for (ri, client) in clients.iter_mut().enumerate() {
                let got = client.call_frame(&Request::from_query(id, &query)).expect("wire query");
                assert_eq!(
                    got, want,
                    "replica {ri}, batch {bi}: unified query frame differs from in-process \
                     encoding ({query:?})"
                );
            }
        }
    }
}

/// A batch of observations to force the next epoch; in range, no
/// self-loops, positive RTTs.
fn epoch_observations() -> Vec<Observation> {
    (0..12)
        .map(|k| Observation {
            src: k % SMALL_NODES,
            dst: (k + 7) % SMALL_NODES,
            rtt_ms: 30.0 + k as f64,
        })
        .collect()
}

/// The core scenario at one replica count: compare at epoch 0, publish
/// a new snapshot into every replica *and* the reference mid-stream,
/// compare again at epoch 1.
fn wire_equivalence_at(replicas: usize) {
    let (mut builder, snapshot, serve_cfg) = small_builder();
    // The reference is built independently from the same seeds — the
    // purity of the fixtures is exactly what is under test here.
    let reference = {
        let (_, snap) =
            EpochBuilder::bootstrap(small_matrix(), tivoid::tivgate::testutil::fast_epochs());
        TivServe::new(serve_cfg, snap)
    };
    let set = ReplicaSet::spawn(&snapshot, serve_cfg, replicas).expect("spawn replica set");
    let mut clients: Vec<GateClient> =
        set.addrs().into_iter().map(|a| GateClient::connect(a).expect("connect")).collect();
    let batches = query_batches();

    // Epoch 0: every replica, every batch, every kind, byte-identical.
    assert_wire_matches_direct(&mut clients, &reference, &batches, 0);

    // Mid-stream epoch publish, pushed into the replicas and the
    // reference alike.
    for obs in epoch_observations() {
        builder.ingest(obs);
    }
    let next = builder.build();
    assert_eq!(set.publish_all(&next), 1, "all replicas advance to epoch 1");
    assert_eq!(reference.publish(next.clone()), 1, "reference advances to epoch 1");

    // Epoch 1: the answers changed (they now carry the new epoch), and
    // the wire still matches the in-process encoding byte for byte.
    assert_wire_matches_direct(&mut clients, &reference, &batches, 10_000);

    // The front's scatter/gather over the ring reassembles the same
    // answers in pair order — compare through the codec so f64s are
    // compared by bit pattern.
    let mut front = Front::connect(&set.addrs()).expect("front connect");
    for pairs in &batches {
        let via_front = front.estimate_batch(pairs).expect("front estimate");
        let direct = reference.estimate_batch(&as_usize(pairs));
        assert_eq!(
            encode_response(&Response::Estimate { id: 7, items: via_front }),
            encode_response(&Response::Estimate { id: 7, items: direct }),
            "front reassembly differs from in-process answers"
        );
        let via_front = front.route_batch(pairs).expect("front route");
        let direct = reference.route_batch(&as_usize(pairs));
        assert_eq!(
            encode_response(&Response::Route { id: 9, items: via_front }),
            encode_response(&Response::Route { id: 9, items: direct }),
            "front route reassembly differs from in-process answers"
        );
        // And the front's unified entry point: scatter/gather over the
        // ring, reassembled in pair order, equals the direct enum call.
        let query = QueryBatch::SampledSeverity { pairs: as_usize(pairs), witnesses: WITNESSES };
        let via_front = front.query(&query).expect("front query");
        assert_eq!(
            encode_response(&Response::from_reply(11, via_front)),
            encode_response(&Response::from_reply(11, reference.query(&query))),
            "front unified-query reassembly differs from in-process answers"
        );
    }

    set.shutdown().expect("clean shutdown");
}

#[test]
fn wire_equals_in_process_with_one_replica() {
    wire_equivalence_at(1);
}

#[test]
fn wire_equals_in_process_with_two_replicas() {
    wire_equivalence_at(2);
}

#[test]
fn wire_equals_in_process_with_four_replicas() {
    wire_equivalence_at(4);
}

/// The epoch boundary itself is visible and consistent over the wire:
/// pings before the publish report epoch 0 on every replica, pings
/// after report epoch 1 on every replica — no replica lags.
#[test]
fn epoch_publish_is_atomic_at_batch_boundaries() {
    let (mut builder, snapshot, serve_cfg) = small_builder();
    let set = ReplicaSet::spawn(&snapshot, serve_cfg, 3).expect("spawn replica set");
    let mut front = Front::connect(&set.addrs()).expect("front connect");
    for (epoch, nodes) in front.ping_all().expect("ping") {
        assert_eq!(epoch, 0);
        assert_eq!(nodes as usize, SMALL_NODES);
    }
    for obs in epoch_observations() {
        builder.ingest(obs);
    }
    assert_eq!(set.publish_all(&builder.build()), 1);
    for (epoch, _) in front.ping_all().expect("ping") {
        assert_eq!(epoch, 1, "a replica lagged behind the publish");
    }
    set.shutdown().expect("clean shutdown");
}
