//! Serial-equivalence property tests for the parallel kernels layer.
//!
//! Every kernel ported onto `tivpar` promises the same contract: the
//! output is a pure function of its inputs, **bit-identical at every
//! thread count**. These properties pin that contract on seeded DS²
//! delay spaces across worker counts {1, 2, 4, 7} — including counts
//! that exceed this machine's cores and a prime count that makes the
//! row chunking ragged.

use ides::Mat;
use proptest::prelude::*;
use tivoid::prelude::*;
use tivoid::tivcore::severity::estimate_severity_batch;
use tivoid::tivcore::{accuracy_recall_sweep_threaded, Severity};

/// The non-serial worker counts the properties sweep.
const THREADS: [usize; 3] = [2, 4, 7];

fn ds2(n: usize, seed: u64) -> DelayMatrix {
    InternetDelaySpace::preset(Dataset::Ds2).with_nodes(n).build(seed).into_matrix()
}

/// `Option<f64>` to comparable bits (`None` ≠ any measured value).
fn bits(v: Option<f64>) -> Option<u64> {
    v.map(f64::to_bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn severity_bit_identical_across_thread_counts(n in 30usize..80, seed in 0u64..1_000) {
        let m = ds2(n, seed);
        let serial = Severity::compute(&m, 1);
        for &t in &THREADS {
            let par = Severity::compute(&m, t);
            for i in 0..n {
                for j in 0..n {
                    prop_assert_eq!(
                        bits(par.severity(i, j)),
                        bits(serial.severity(i, j)),
                        "severity({},{}) diverged at {} threads", i, j, t
                    );
                    prop_assert_eq!(par.count(i, j), serial.count(i, j));
                }
            }
        }
    }

    #[test]
    fn apsp_bit_identical_across_thread_counts(n in 30usize..80, seed in 0u64..1_000) {
        let m = ds2(n, seed);
        let serial = ShortestPaths::compute(&m, 1);
        for &t in &THREADS {
            let par = ShortestPaths::compute(&m, t);
            for i in 0..n {
                for j in 0..n {
                    prop_assert_eq!(
                        par.get(i, j).to_bits(),
                        serial.get(i, j).to_bits(),
                        "apsp({},{}) diverged at {} threads", i, j, t
                    );
                }
            }
        }
    }

    #[test]
    fn estimator_batch_bit_identical_across_thread_counts(
        n in 30usize..80,
        seed in 0u64..1_000,
        k in 4usize..32,
    ) {
        let m = ds2(n, seed);
        let edges: Vec<(NodeId, NodeId)> = m.edges().map(|(i, j, _)| (i, j)).collect();
        let serial = estimate_severity_batch(&m, &edges, k, seed, 1);
        for &t in &THREADS {
            let par = estimate_severity_batch(&m, &edges, k, seed, t);
            prop_assert_eq!(par.len(), serial.len());
            for (p, s) in par.iter().zip(&serial) {
                prop_assert_eq!(bits(*p), bits(*s), "estimator diverged at {} threads", t);
            }
        }
    }

    #[test]
    fn nmf_bit_identical_across_thread_counts(n in 10usize..30, seed in 0u64..1_000) {
        let m = ds2(n, seed);
        let a = Mat::from_fn(n, n, |r, c| m.get(r, c).unwrap_or(0.0));
        let serial = ides::factorize_threaded(&a, 3, 25, seed, 1);
        for &t in &THREADS {
            let par = ides::factorize_threaded(&a, 3, 25, seed, t);
            prop_assert_eq!(&par.w, &serial.w, "NMF W diverged at {} threads", t);
            prop_assert_eq!(&par.h, &serial.h, "NMF H diverged at {} threads", t);
            prop_assert_eq!(par.residual.to_bits(), serial.residual.to_bits());
        }
    }

    #[test]
    fn svd_bit_identical_across_thread_counts(n in 10usize..30, seed in 0u64..1_000) {
        let m = ds2(n, seed);
        let a = Mat::from_fn(n, n, |r, c| m.get(r, c).unwrap_or(0.0));
        let serial = ides::truncated_svd_threaded(&a, 4, 30, seed, 1);
        for &t in &THREADS {
            let par = ides::truncated_svd_threaded(&a, 4, 30, seed, t);
            prop_assert_eq!(par.len(), serial.len());
            for (p, s) in par.iter().zip(&serial) {
                prop_assert_eq!(p.sigma.to_bits(), s.sigma.to_bits());
                prop_assert_eq!(&p.u, &s.u, "SVD u diverged at {} threads", t);
                prop_assert_eq!(&p.v, &s.v, "SVD v diverged at {} threads", t);
            }
        }
    }
}

/// The alert sweep needs an embedding, which is the expensive part, so
/// it runs as one deterministic case rather than a property.
#[test]
fn alert_sweep_bit_identical_across_thread_counts() {
    let m = ds2(100, 5);
    let mut sys = VivaldiSystem::new(VivaldiConfig::default(), m.len(), 5);
    let mut net = Network::new(&m, JitterModel::None, 5);
    sys.run_rounds(&mut net, 60);
    let emb = sys.embedding();
    let sev = Severity::compute(&m, 0);
    let thresholds: Vec<f64> = (0..=20).map(|i| i as f64 * 0.05).collect();
    let serial = accuracy_recall_sweep_threaded(&emb, &m, &sev, 0.2, &thresholds, 1);
    for &t in &THREADS {
        let par = accuracy_recall_sweep_threaded(&emb, &m, &sev, 0.2, &thresholds, t);
        assert_eq!(par.len(), serial.len());
        for (p, s) in par.iter().zip(&serial) {
            assert_eq!(p.accuracy.to_bits(), s.accuracy.to_bits());
            assert_eq!(p.recall.to_bits(), s.recall.to_bits());
            assert_eq!(p.alerted_frac.to_bits(), s.alerted_frac.to_bits());
        }
    }
}

/// The experiment fan-out produces the same figures at any worker
/// count (each figure is a pure function of scale and seed).
#[test]
fn experiment_fanout_matches_serial() {
    use tivoid::experiments::scale::ExperimentScale;
    use tivoid::experiments::suite;
    let ids: Vec<String> = ["fig1", "fig2", "fig12"].iter().map(|s| s.to_string()).collect();
    let serial = suite::run_many(&ids, ExperimentScale::Tiny, 7, 1);
    for &t in &THREADS {
        let par = suite::run_many(&ids, ExperimentScale::Tiny, 7, t);
        for (p, s) in par.iter().zip(&serial) {
            assert_eq!(p.id, s.id);
            assert_eq!(
                p.output.as_ref().unwrap().figure.to_csv(),
                s.output.as_ref().unwrap().figure.to_csv(),
                "figure {} diverged at {} threads",
                p.id,
                t
            );
        }
    }
}
