//! Equivalence pins for the detour-routing layer (ISSUE-4 acceptance):
//!
//! * [`DetourTable::compute`] is **bit-identical across thread counts
//!   {1, 2, 4, 7}** — the search parallelises over source rows like
//!   every other `tivpar` kernel, so the worker count may change
//!   latency, never a relay or a delay bit;
//! * `TivServe::route_batch` is **bit-identical across shard counts
//!   {1, 2, 4}** — the same closed-loop query stream, replayed against
//!   services differing only in shard count, produces identical route
//!   answers (and they all equal the serial `snapshot.route` loop);
//! * the online answer (`EpochSnapshot::route` → `best_detour`) and
//!   the offline table agree on every pair, so a deployment can mix
//!   cached `route_batch` answers with batch-computed tables freely.

use proptest::prelude::*;
use tivoid::experiments::serve::{build_service, ServeOptions};
use tivoid::prelude::*;
use tivoid::tivserve::loadgen;

/// The non-serial worker counts the table property sweeps.
const THREADS: [usize; 3] = [2, 4, 7];

/// Shard counts compared against the unsharded single-thread path.
const SHARDS: [usize; 3] = [1, 2, 4];

fn ds2(n: usize, seed: u64) -> DelayMatrix {
    InternetDelaySpace::preset(Dataset::Ds2).with_nodes(n).build(seed).into_matrix()
}

/// Field-by-field bit comparison of route answers.
fn assert_route_bit_identical(a: &RouteEstimate, b: &RouteEstimate, what: &str) {
    assert_eq!(a.epoch, b.epoch, "{what}: epoch");
    assert_eq!(a.direct_ms.map(f64::to_bits), b.direct_ms.map(f64::to_bits), "{what}: direct");
    assert_eq!(a.relay, b.relay, "{what}: relay");
    assert_eq!(a.via_ms.map(f64::to_bits), b.via_ms.map(f64::to_bits), "{what}: via");
    assert_eq!(a.saving_ms.map(f64::to_bits), b.saving_ms.map(f64::to_bits), "{what}: saving");
    assert_eq!(
        a.saving_frac.map(f64::to_bits),
        b.saving_frac.map(f64::to_bits),
        "{what}: saving_frac"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn detour_table_bit_identical_across_thread_counts(
        n in 30usize..80,
        seed in 0u64..1_000,
        k in 1usize..6,
    ) {
        let m = ds2(n, seed);
        let serial = DetourTable::compute(&m, k, 1);
        for &t in &THREADS {
            let par = DetourTable::compute(&m, k, t);
            for a in 0..n {
                for c in 0..n {
                    let sr: Vec<_> = serial.relays(a, c).collect();
                    let pr: Vec<_> = par.relays(a, c).collect();
                    prop_assert_eq!(sr.len(), pr.len(), "rank count ({},{}) at {} threads", a, c, t);
                    for (s, p) in sr.iter().zip(&pr) {
                        prop_assert_eq!(s.relay, p.relay, "relay ({},{}) at {} threads", a, c, t);
                        prop_assert_eq!(
                            s.via_ms.to_bits(), p.via_ms.to_bits(),
                            "via ({},{}) at {} threads", a, c, t
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn online_route_matches_offline_table(n in 20usize..60, seed in 0u64..1_000) {
        let m = ds2(n, seed);
        let table = DetourTable::compute(&m, 3, 0);
        for a in 0..n {
            for c in 0..n {
                let online = best_detour(&m, a, c);
                let offline = table.best(a, c);
                prop_assert_eq!(
                    online.map(|r| (r.relay, r.via_ms.to_bits())),
                    offline.map(|r| (r.relay, r.via_ms.to_bits())),
                    "pair ({},{})", a, c
                );
            }
        }
    }
}

#[test]
fn route_batches_match_the_unsharded_single_thread_path() {
    // The exact same query stream the estimate-equivalence test uses,
    // answered as route queries, across shard counts — and pinned
    // against the serial snapshot.route reference loop.
    let o = ServeOptions {
        nodes: 200,
        queries: 2_000,
        batch: 64,
        observe_frac: 0.15,
        // Force the fan-out path even for these small batches — the
        // point is to pin the *sharded* code against the serial
        // reference.
        parallel_threshold: 0,
        ..ServeOptions::default()
    };
    let (reference_service, _, matrix) = build_service(&o, 1);
    let batches = loadgen::generate(&o.workload(), &matrix);
    let snapshot = reference_service.snapshot();
    let reference: Vec<Vec<RouteEstimate>> =
        batches.iter().map(|b| reference_service.route_batch(&b.pairs)).collect();
    // The unsharded service equals the serial evaluation loop.
    for (bi, batch) in batches.iter().enumerate() {
        for (qi, &(a, c)) in batch.pairs.iter().enumerate() {
            assert_route_bit_identical(
                &reference[bi][qi],
                &snapshot.route(a, c),
                &format!("serial reference, batch {bi}, query {qi}"),
            );
        }
    }
    // And every shard count equals the unsharded service.
    for shards in SHARDS {
        let (service, _, m) = build_service(&o, shards);
        assert_eq!(m, matrix, "matrix must not depend on shard count");
        for (bi, batch) in batches.iter().enumerate() {
            let got = service.route_batch(&batch.pairs);
            assert_eq!(got.len(), reference[bi].len());
            for (qi, (g, r)) in got.iter().zip(&reference[bi]).enumerate() {
                assert_route_bit_identical(
                    g,
                    r,
                    &format!("{shards} shards, batch {bi}, query {qi}"),
                );
            }
        }
    }
}

#[test]
fn route_equivalence_survives_epoch_publishes() {
    // Publish a rebuilt snapshot mid-stream at the same point for every
    // shard count: the route answers must stay identical across shard
    // counts and visibly switch epochs at the boundary.
    let o = ServeOptions {
        nodes: 120,
        queries: 1_000,
        batch: 50,
        observe_frac: 0.15,
        parallel_threshold: 0,
        epoch_every: 0,
        ..ServeOptions::default()
    };
    let services: Vec<_> = SHARDS.iter().map(|&s| build_service(&o, s)).collect();
    let matrix = services[0].2.clone();
    let batches = loadgen::generate(&o.workload(), &matrix);
    let mid = batches.len() / 2;
    let mut all_answers: Vec<Vec<Vec<RouteEstimate>>> = SHARDS.iter().map(|_| Vec::new()).collect();
    for (si, (service, builder, _)) in services.into_iter().enumerate() {
        let mut builder = builder;
        for (bi, batch) in batches.iter().enumerate() {
            if bi == mid {
                for earlier in &batches[..mid] {
                    for &obs in &earlier.observations {
                        builder.ingest(obs);
                    }
                }
                service.publish(builder.build());
            }
            all_answers[si].push(service.route_batch(&batch.pairs));
        }
        assert_eq!(service.epoch(), 1, "one epoch published");
    }
    let (reference, rest) = all_answers.split_first().expect("at least one shard count");
    for (k, got) in rest.iter().enumerate() {
        for (bi, (gb, rb)) in got.iter().zip(reference).enumerate() {
            for (qi, (g, r)) in gb.iter().zip(rb).enumerate() {
                assert_route_bit_identical(
                    g,
                    r,
                    &format!("{} shards, batch {bi}, query {qi}", SHARDS[k + 1]),
                );
            }
        }
    }
    assert_eq!(reference[0][0].epoch, 0);
    assert_eq!(reference[mid][0].epoch, 1);
}
