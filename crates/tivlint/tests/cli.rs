//! CLI contract tests: exit codes and the waiver-budget comparison,
//! run against the fixture trees through the real binary (the same
//! code path CI's `lint-tiv` job exercises).

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn tivlint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tivlint")).args(args).output().expect("binary runs")
}

fn check(fixture: &str, extra: &[&str]) -> (Option<i32>, String) {
    let root = fixture_root(fixture);
    let mut args = vec!["--check", "--root", root.to_str().expect("utf8 path")];
    args.extend_from_slice(extra);
    let out = tivlint(&args);
    (out.status.code(), String::from_utf8_lossy(&out.stdout).into_owned())
}

/// Writes `content` to a unique temp file and returns its path.
fn temp_budget(tag: &str, content: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("tivlint-budget-{}-{tag}", std::process::id()));
    std::fs::write(&path, content).expect("temp file writable");
    path
}

#[test]
fn clean_fixture_exits_zero_and_reports_used_waivers() {
    let (code, stdout) = check("waived_clean", &[]);
    assert_eq!(code, Some(0), "stdout:\n{stdout}");
    assert!(stdout.contains("0 finding(s), 2 waiver(s) used, 0 waiver error(s)"), "{stdout}");
}

#[test]
fn violations_exit_one_with_file_line_diagnostics() {
    let (code, stdout) = check("wirepanic", &[]);
    assert_eq!(code, Some(1), "stdout:\n{stdout}");
    assert!(stdout.contains("crates/tivgate/src/conn.rs:2: no-panic-wire-path:"), "{stdout}");
    assert!(stdout.contains("crates/tivgate/src/conn.rs:6: no-panic-wire-path:"), "{stdout}");
}

#[test]
fn waiver_defects_alone_exit_one() {
    let (code, stdout) = check("waivers", &[]);
    assert_eq!(code, Some(1), "stdout:\n{stdout}");
    assert!(stdout.contains("0 finding(s)"), "{stdout}");
    assert!(stdout.contains("3 waiver error(s)"), "{stdout}");
}

#[test]
fn budget_equal_passes_exceeded_fails_slack_notes() {
    let exact = temp_budget("exact", "# waivers in waived_clean\n2\n");
    let (code, stdout) = check("waived_clean", &["--waiver-budget", exact.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("waiver budget ok: 2 used = 2 budgeted"), "{stdout}");

    let tight = temp_budget("tight", "1\n");
    let (code, stdout) = check("waived_clean", &["--waiver-budget", tight.to_str().unwrap()]);
    assert_eq!(code, Some(1), "a new waiver must raise the budget in the same PR; {stdout}");
    assert!(stdout.contains("waiver budget exceeded: 2 used > 1 budgeted"), "{stdout}");

    let slack = temp_budget("slack", "9\n");
    let (code, stdout) = check("waived_clean", &["--waiver-budget", slack.to_str().unwrap()]);
    assert_eq!(code, Some(0), "slack is a note, not a failure; {stdout}");
    assert!(stdout.contains("only 2 of 9 budgeted waivers used"), "{stdout}");

    for p in [exact, tight, slack] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn unreadable_budget_is_a_usage_error() {
    let (code, _) = check("waived_clean", &["--waiver-budget", "/nonexistent/budget.txt"]);
    assert_eq!(code, Some(2));
}

#[test]
fn list_rules_prints_the_catalog() {
    let out = tivlint(&["--list-rules"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let rules: Vec<&str> = stdout.lines().collect();
    assert_eq!(
        rules,
        [
            "float-total-order",
            "pool-discipline",
            "unsafe-containment",
            "no-panic-wire-path",
            "wire-kind-coverage",
        ]
    );
}

#[test]
fn unknown_arguments_are_usage_errors() {
    let out = tivlint(&["--check", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}
