//! Lexer property tests: random sequences drawn from an atom table —
//! one entry per lexical class the rules depend on, biased toward the
//! hard cases (raw strings, nested comments, char-vs-lifetime) — are
//! glued together with random whitespace and lexed. The token stream
//! must reproduce the atom sequence exactly: kind, text, and the line
//! each atom landed on. A second property feeds adversarial soups of
//! quotes/hashes/slashes and asserts the lexer terminates with
//! monotone line numbers, whatever the input.

use proptest::collection::vec;
use proptest::prelude::*;
use tivlint::lexer::{lex, TokKind};

/// `(source, expected kind, expected token text)`. Raw identifiers are
/// the one case where text differs from source (the `r#` prefix is
/// dropped so rules match `r#unsafe` and `unsafe` alike).
const ATOMS: &[(&str, TokKind, &str)] = &[
    ("ident_a", TokKind::Ident, "ident_a"),
    ("unsafe", TokKind::Ident, "unsafe"),
    ("partial_cmp", TokKind::Ident, "partial_cmp"),
    ("r#match", TokKind::Ident, "match"),
    ("42", TokKind::Num, "42"),
    ("0x7f", TokKind::Num, "0x7f"),
    ("1_000", TokKind::Num, "1_000"),
    ("1.5e-3", TokKind::Num, "1.5e-3"),
    ("\"plain // string\"", TokKind::Str, "\"plain // string\""),
    ("\"esc \\\" quote\"", TokKind::Str, "\"esc \\\" quote\""),
    ("\"multi\nline\"", TokKind::Str, "\"multi\nline\""),
    ("r\"raw\"", TokKind::Str, "r\"raw\""),
    ("r#\"raw \" hash\"#", TokKind::Str, "r#\"raw \" hash\"#"),
    ("r##\"deep \"# still\"##", TokKind::Str, "r##\"deep \"# still\"##"),
    ("b\"bytes\"", TokKind::Str, "b\"bytes\""),
    ("br#\"raw bytes\"#", TokKind::Str, "br#\"raw bytes\"#"),
    ("'x'", TokKind::Char, "'x'"),
    ("'\\n'", TokKind::Char, "'\\n'"),
    ("'\"'", TokKind::Char, "'\"'"),
    ("b'q'", TokKind::Char, "b'q'"),
    ("'static", TokKind::Lifetime, "'static"),
    ("'a", TokKind::Lifetime, "'a"),
    (".", TokKind::Punct, "."),
    ("[", TokKind::Punct, "["),
    ("]", TokKind::Punct, "]"),
    ("!", TokKind::Punct, "!"),
    ("#", TokKind::Punct, "#"),
    ("// line note", TokKind::Comment, "// line note"),
    ("/* block /* nested */ note */", TokKind::Comment, "/* block /* nested */ note */"),
];

/// Whitespace glue between atoms. A line comment swallows the rest of
/// its line, so the builder forces a newline after those regardless of
/// the drawn separator.
const SEPS: &[&str] = &[" ", "\t", "\n", " \n  ", "\r\n"];

proptest! {
    #[test]
    fn atom_sequences_round_trip(
        picks in vec((0usize..ATOMS.len(), 0usize..SEPS.len()), 0..40),
    ) {
        let mut src = String::new();
        let mut line = 1u32;
        let mut expected = Vec::with_capacity(picks.len());
        for &(a, s) in &picks {
            let (text, kind, tok_text) = ATOMS[a];
            expected.push((kind, tok_text.to_string(), line));
            line += text.matches('\n').count() as u32;
            src.push_str(text);
            let sep = if kind == TokKind::Comment && text.starts_with("//") { "\n" } else { SEPS[s] };
            line += sep.matches('\n').count() as u32;
            src.push_str(sep);
        }

        let got: Vec<(TokKind, String, u32)> =
            lex(&src).into_iter().map(|t| (t.kind, t.text, t.line)).collect();
        prop_assert_eq!(got, expected, "source was {:?}", src);
    }

    #[test]
    fn adversarial_soups_terminate_with_monotone_lines(
        bytes in vec(0usize..16, 0..120),
    ) {
        // A palette dense in delimiter bytes: every draw is a quote,
        // hash, slash, star, backslash or prefix letter, so unclosed
        // and interleaved constructs dominate the generated input.
        const PALETTE: [char; 16] =
            ['"', '\'', '#', 'r', 'b', '/', '*', '\\', '\n', ' ', 'x', '0', '.', '[', '!', 'e'];
        let src: String = bytes.iter().map(|&i| PALETTE[i]).collect();
        let toks = lex(&src);
        let mut prev = 1u32;
        for t in &toks {
            prop_assert!(t.line >= prev, "line went backwards in {:?}", src);
            prop_assert!(!t.text.is_empty(), "empty token from {:?}", src);
            prev = t.line;
        }
        let last_line = 1 + src.matches('\n').count() as u32;
        prop_assert!(toks.iter().all(|t| t.line <= last_line));
    }
}
