#![forbid(unsafe_code)]

pub fn ranked(a: (u32, u32), b: (u32, u32)) -> bool {
    // tivlint: allow(float-total-order, "operands are u32 tuples, not floats")
    a.partial_cmp(&b).is_some()
}

pub fn trailing(a: f64, b: f64) -> bool {
    a.partial_cmp(&b).is_some() // tivlint: allow(float-total-order, "only comparability is probed; NaN maps to false")
}

// tivlint: allow(pool-discipline, "stale: the spawn this covered is gone")
pub fn no_threads_here() {}

pub fn reasonless(a: f64, b: f64) -> bool {
    // tivlint: allow(float-total-order)
    a.partial_cmp(&b).is_some()
}

// tivlint: allow(no-such-rule, "typo in the rule name")
pub fn unknown_rule() {}
