#![forbid(unsafe_code)]

fn rank(xs: &mut [(u32, f64)]) {
    xs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_harness_may_use_partial_cmp() {
        let mut v = [(1u32, 2.0f64)];
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    }
}
