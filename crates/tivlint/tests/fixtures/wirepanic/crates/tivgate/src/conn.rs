pub fn drain(buf: &[u8], n: usize) -> u8 {
    let first = *buf.get(0).unwrap();
    if n > buf.len() {
        panic!("short read");
    }
    first + buf[n - 1]
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_harness_may_index() {
        let v = [1u8, 2];
        assert_eq!(v[0], 1);
    }
}
