pub enum Kind {
    Estimate = 0x01,
    Rogue = 0x07,
    EstimateReply = 0x81,
}

pub enum Request {
    Estimate { id: u32 },
    Rogue { id: u32 },
}

pub fn decode_request(kind: Kind) -> Option<Request> {
    match kind {
        Kind::Estimate => Some(Request::Estimate { id: 0 }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_round_trips() {
        let _ = decode_request(Kind::Estimate);
        let _ = Request::Estimate { id: 7 };
    }
}
