use crate::proto::Request;

pub fn dispatch(req: Request) -> u32 {
    match req {
        Request::Estimate { id } => id,
        _ => 0,
    }
}
