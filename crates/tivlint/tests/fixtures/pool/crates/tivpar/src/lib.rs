#![forbid(unsafe_code)]

pub fn pool_worker() {
    let h = std::thread::spawn(|| ());
    let _ = h.join();
}
