#![forbid(unsafe_code)]

pub fn fan_out() {
    let h = std::thread::spawn(|| 1 + 1);
    let _ = h.join();
}
