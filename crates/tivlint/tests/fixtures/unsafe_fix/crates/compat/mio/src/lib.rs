pub fn epoll_shim(p: *const u8) -> u8 {
    unsafe { *p }
}
