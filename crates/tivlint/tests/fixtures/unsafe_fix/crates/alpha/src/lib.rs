#![forbid(unsafe_code)]

pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
