//! Beta: deliberately missing the forbid attribute.

pub fn fine() {}
