#![forbid(unsafe_code)]

pub fn ranked(a: (u32, u32), b: (u32, u32)) -> bool {
    // tivlint: allow(float-total-order, "operands are integer tuples, not floats")
    a.partial_cmp(&b).is_some()
}
