// tivlint: allow-file(float-total-order, "statistical helper: every comparison here is on integer ranks")

pub fn above(x: (u32, u32), y: (u32, u32)) -> bool {
    x.partial_cmp(&y).is_some()
}

pub fn below(x: (u32, u32), y: (u32, u32)) -> bool {
    x.partial_cmp(&y).is_some()
}
