//! Seeded-violation fixtures: every fixture tree under
//! `tests/fixtures/` mimics the real workspace layout
//! (`crates/<name>/src/...`), carries a deliberate violation of one
//! rule, and the assertions here pin the *exact* `file:line`
//! diagnostics tivlint must produce for it. If a rule's matching logic
//! drifts — false positive, missed line, wrong rule id — one of these
//! tests names the regression.

use std::path::PathBuf;
use tivlint::engine::{analyze, Report};

fn run(fixture: &str) -> Report {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(fixture);
    analyze(&root).expect("fixture tree readable")
}

/// `(rel, line)` of every finding for `rule`, in report order.
fn sites(report: &Report, rule: &str) -> Vec<(String, u32)> {
    report.findings.iter().filter(|f| f.rule == rule).map(|f| (f.rel.clone(), f.line)).collect()
}

#[test]
fn float_total_order_flags_prod_code_and_exempts_tests() {
    let r = run("float_order");
    assert_eq!(
        sites(&r, "float-total-order"),
        [("crates/alpha/src/lib.rs".to_string(), 4)],
        "one finding at the non-test partial_cmp; the #[cfg(test)] copy is exempt"
    );
    assert_eq!(r.findings.len(), 1, "no other rule fires: {:?}", r.findings);
    let shown = r.findings[0].to_string();
    assert!(
        shown.starts_with("crates/alpha/src/lib.rs:4: float-total-order: "),
        "diagnostic format is rel:line: rule: msg, got {shown:?}"
    );
}

#[test]
fn pool_discipline_flags_spawn_but_exempts_tivpar() {
    let r = run("pool");
    assert_eq!(sites(&r, "pool-discipline"), [("crates/alpha/src/lib.rs".to_string(), 4)]);
    assert!(
        r.findings.iter().all(|f| !f.rel.contains("tivpar")),
        "tivpar owns the pool and may touch std::thread: {:?}",
        r.findings
    );
}

#[test]
fn unsafe_containment_flags_tokens_and_missing_forbid_but_not_compat() {
    let r = run("unsafe_fix");
    assert_eq!(
        sites(&r, "unsafe-containment"),
        [
            ("crates/alpha/src/lib.rs".to_string(), 4), // unsafe block
            ("crates/beta/src/lib.rs".to_string(), 1),  // missing #![forbid(unsafe_code)]
        ]
    );
    assert!(
        r.findings.iter().all(|f| !f.rel.starts_with("crates/compat/")),
        "compat/mio is the sanctioned unsafe home: {:?}",
        r.findings
    );
}

#[test]
fn no_panic_wire_path_flags_unwrap_panic_and_indexing() {
    let r = run("wirepanic");
    assert_eq!(
        sites(&r, "no-panic-wire-path"),
        [
            ("crates/tivgate/src/conn.rs".to_string(), 2), // .unwrap()
            ("crates/tivgate/src/conn.rs".to_string(), 4), // panic!
            ("crates/tivgate/src/conn.rs".to_string(), 6), // buf[n - 1]
        ]
    );
    assert_eq!(r.findings.len(), 3, "the #[cfg(test)] indexing is exempt: {:?}", r.findings);
}

#[test]
fn wire_kind_coverage_demands_decode_dispatch_and_test() {
    let r = run("wirekind");
    let hits = sites(&r, "wire-kind-coverage");
    assert_eq!(
        hits,
        [
            ("crates/tivgate/src/proto.rs".to_string(), 3),
            ("crates/tivgate/src/proto.rs".to_string(), 3),
            ("crates/tivgate/src/proto.rs".to_string(), 3),
        ],
        "Rogue (0x07) is missing all three sites; Estimate is covered and \
         EstimateReply (0x81) is a response kind outside the request range"
    );
    let msgs: Vec<&str> = r.findings.iter().map(|f| f.msg.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("decode_request")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("dispatch")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("round-trip")), "{msgs:?}");
    assert!(msgs.iter().all(|m| m.contains("Rogue")), "{msgs:?}");
}

#[test]
fn waivers_suppress_but_their_own_defects_fail_the_run() {
    let r = run("waivers");
    assert!(r.findings.is_empty(), "all three partial_cmp sites are waived: {:?}", r.findings);
    assert_eq!(r.waived.len(), 3, "standalone-above, trailing, and reasonless waivers all hit");
    assert_eq!(r.waivers_used, 3);
    assert!(!r.clean(), "waiver defects fail the run even with zero findings");
    assert_eq!(r.waiver_errors.len(), 3, "{:?}", r.waiver_errors);
    assert!(
        r.waiver_errors.iter().any(|e| e.contains(":16:") && e.contains("no reason")),
        "{:?}",
        r.waiver_errors
    );
    assert!(
        r.waiver_errors.iter().any(|e| e.contains(":20:") && e.contains("unknown rule")),
        "{:?}",
        r.waiver_errors
    );
    assert!(
        r.waiver_errors.iter().any(|e| e.contains(":12:") && e.contains("stale")),
        "{:?}",
        r.waiver_errors
    );
}

#[test]
fn file_scoped_waiver_counts_once_however_many_findings_it_covers() {
    let r = run("waived_clean");
    assert!(r.clean(), "findings {:?}, waiver errors {:?}", r.findings, r.waiver_errors);
    assert_eq!(r.waived.len(), 3, "one line waiver + two sites under one allow-file");
    assert_eq!(r.waivers_used, 2, "the allow-file comment is one waiver, not two");
}
