//! A small, line-aware Rust lexer for static analysis.
//!
//! The rules in this crate pattern-match *token* streams, never raw
//! text, so a `partial_cmp` inside a string literal, a `thread::spawn`
//! inside a doc comment, or an `unsafe` in a `//` line can never
//! produce a false finding. The lexer therefore has to get exactly the
//! hard parts of Rust's lexical grammar right:
//!
//! * line (`//`) and **nested** block (`/* /* */ */`) comments;
//! * string literals with escapes (`"\" // not a comment"`);
//! * raw strings `r"…"` / `r#"…"#` with any number of hashes (no
//!   escapes, may contain quotes and comment markers);
//! * byte strings `b"…"`, raw byte strings `br#"…"#`;
//! * char and byte-char literals (`'"'`, `'\''`, `b'x'`) versus
//!   lifetimes (`'a`, `'static`) — the classic single-quote ambiguity;
//! * raw identifiers (`r#match`).
//!
//! It is deliberately *not* a full parser: tokens carry only a kind,
//! the 1-based line they start on, and their text. Comments are kept
//! as tokens (the waiver syntax lives in them); rules iterate over
//! "significant" tokens via [`significant`].

/// Lexical class of a [`Tok`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers are stored without `r#`).
    Ident,
    /// A single punctuation character (`.`, `:`, `[`, `!`, …).
    Punct,
    /// A lifetime (`'a`), stored without the leading quote.
    Lifetime,
    /// String, raw string, byte string or raw byte string literal.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Numeric literal (integer or float, any base).
    Num,
    /// Line or block comment, text included (waivers live here).
    Comment,
}

/// One lexed token: kind, 1-based start line, and verbatim text
/// (except raw identifiers, which drop their `r#` prefix so rules can
/// match `r#unsafe` and `unsafe` alike).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// Lexical class.
    pub kind: TokKind,
    /// 1-based line the token *starts* on (multi-line tokens keep
    /// their start line — diagnostics point at where the construct
    /// begins).
    pub line: u32,
    /// Token text.
    pub text: String,
}

/// Iterator over the non-comment tokens of a slice.
pub fn significant(toks: &[Tok]) -> impl Iterator<Item = &Tok> {
    toks.iter().filter(|t| t.kind != TokKind::Comment)
}

/// Parses the value of an integer literal token (`7`, `0x86`, `0b101`,
/// `1_000`), `None` for floats or malformed text.
pub fn int_value(text: &str) -> Option<u64> {
    let t = text.replace('_', "");
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        return u64::from_str_radix(hex, 16).ok();
    }
    if let Some(oct) = t.strip_prefix("0o") {
        return u64::from_str_radix(oct, 8).ok();
    }
    if let Some(bin) = t.strip_prefix("0b") {
        return u64::from_str_radix(bin, 2).ok();
    }
    t.parse().ok()
}

/// Lexes `src` into tokens. Never panics: unterminated constructs
/// (string, block comment) simply run to end of input, and any byte
/// that fits no class becomes a [`TokKind::Punct`].
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer { s: src.as_bytes(), src, pos: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer<'a> {
    s: &'a [u8],
    src: &'a str,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Tok> {
        while self.pos < self.s.len() {
            let start = self.pos;
            let line = self.line;
            let c = self.s[self.pos];
            match c {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    self.line_comment();
                    self.push(TokKind::Comment, line, start);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment();
                    self.push(TokKind::Comment, line, start);
                }
                b'"' => {
                    self.string();
                    self.push(TokKind::Str, line, start);
                }
                b'\'' => self.quote(start, line),
                b'r' | b'b' if self.raw_or_byte(start, line) => {}
                c if c.is_ascii_digit() => {
                    self.number();
                    self.push(TokKind::Num, line, start);
                }
                c if c == b'_' || c.is_ascii_alphabetic() => {
                    self.ident();
                    self.push(TokKind::Ident, line, start);
                }
                _ => {
                    // Multi-byte UTF-8 (only legal in comments/strings
                    // for real Rust, but never panic on weird input).
                    let w = utf8_len(c);
                    self.pos += w;
                    self.push(TokKind::Punct, line, start);
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.s.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, line: u32, start: usize) {
        self.out.push(Tok { kind, line, text: self.src[start..self.pos].to_string() });
    }

    fn bump_line(&mut self, c: u8) {
        if c == b'\n' {
            self.line += 1;
        }
    }

    fn line_comment(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos] != b'\n' {
            self.pos += 1;
        }
    }

    fn block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.s.len() && depth > 0 {
            if self.s[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.s[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.bump_line(self.s[self.pos]);
                self.pos += 1;
            }
        }
    }

    /// Consumes a `"…"` string starting at the opening quote.
    fn string(&mut self) {
        self.pos += 1;
        while self.pos < self.s.len() {
            match self.s[self.pos] {
                b'\\' => {
                    // Escaped char; a line-continuation escape still
                    // advances the line counter.
                    if self.peek(1) == Some(b'\n') {
                        self.line += 1;
                    }
                    self.pos += 2.min(self.s.len() - self.pos);
                }
                b'"' => {
                    self.pos += 1;
                    return;
                }
                c => {
                    self.bump_line(c);
                    self.pos += 1;
                }
            }
        }
    }

    /// Consumes a `r"…"` / `r#…#"…"#…#` raw string starting at the
    /// first `#` or quote (after the `r` / `br` prefix).
    fn raw_string(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        if self.peek(0) != Some(b'"') {
            return; // not actually a raw string; caller handled prefix
        }
        self.pos += 1;
        while self.pos < self.s.len() {
            let c = self.s[self.pos];
            if c == b'"'
                && self.s[self.pos + 1..].iter().take(hashes).filter(|&&b| b == b'#').count()
                    == hashes
            {
                self.pos += 1 + hashes;
                return;
            }
            self.bump_line(c);
            self.pos += 1;
        }
    }

    /// Handles `'` — either a lifetime or a char literal.
    fn quote(&mut self, start: usize, line: u32) {
        // 'x' where x is escaped => char. 'a followed by another quote
        // => char ('a'). Otherwise an identifier start => lifetime.
        match self.peek(1) {
            Some(b'\\') => {
                self.pos += 2; // consume ' and backslash
                if self.pos < self.s.len() {
                    self.pos += utf8_len(self.s[self.pos]); // escaped char
                }
                // Consume to the closing quote (covers \u{…} forms).
                while self.pos < self.s.len() && self.s[self.pos] != b'\'' {
                    self.bump_line(self.s[self.pos]);
                    self.pos += 1;
                }
                self.pos += 1.min(self.s.len() - self.pos);
                self.push(TokKind::Char, line, start);
            }
            Some(c) if c == b'_' || c.is_ascii_alphabetic() => {
                if self.peek(2) == Some(b'\'') {
                    self.pos += 3; // 'a'
                    self.push(TokKind::Char, line, start);
                } else {
                    self.pos += 1;
                    self.ident();
                    self.push(TokKind::Lifetime, line, start);
                }
            }
            Some(c) => {
                // Non-identifier char literal: '"', '[', '🦀', ' '.
                self.pos += 1 + utf8_len(c);
                if self.peek(0) == Some(b'\'') {
                    self.pos += 1;
                }
                self.push(TokKind::Char, line, start);
            }
            None => {
                self.pos += 1;
                self.push(TokKind::Punct, line, start);
            }
        }
    }

    /// Dispatches the `r` / `b` prefixed forms. Returns false when the
    /// character is just the start of a plain identifier, leaving
    /// `pos` untouched.
    fn raw_or_byte(&mut self, start: usize, line: u32) -> bool {
        let c = self.s[self.pos];
        let (n1, n2) = (self.peek(1), self.peek(2));
        match (c, n1, n2) {
            // r"…" or r#…  (raw string or raw identifier)
            (b'r', Some(b'"'), _) => {
                self.pos += 1;
                self.raw_string();
                self.push(TokKind::Str, line, start);
                true
            }
            (b'r', Some(b'#'), next) => {
                if next == Some(b'"') || next == Some(b'#') {
                    self.pos += 1;
                    self.raw_string();
                    self.push(TokKind::Str, line, start);
                } else {
                    // Raw identifier r#match: skip the prefix so the
                    // token text matches the plain spelling.
                    self.pos += 2;
                    let istart = self.pos;
                    self.ident();
                    if self.pos == istart {
                        // `r#` followed by no identifier (malformed
                        // input): emit the pieces rather than an
                        // empty-text token.
                        self.out.push(Tok { kind: TokKind::Ident, line, text: "r".into() });
                        self.out.push(Tok { kind: TokKind::Punct, line, text: "#".into() });
                    } else {
                        let text = self.src[istart..self.pos].to_string();
                        self.out.push(Tok { kind: TokKind::Ident, line, text });
                    }
                }
                true
            }
            // b"…", br"…", br#"…"#, b'x'
            (b'b', Some(b'"'), _) => {
                self.pos += 1;
                self.string();
                self.push(TokKind::Str, line, start);
                true
            }
            (b'b', Some(b'r'), Some(b'"' | b'#')) => {
                self.pos += 2;
                self.raw_string();
                self.push(TokKind::Str, line, start);
                true
            }
            (b'b', Some(b'\''), _) => {
                self.pos += 1;
                self.quote(start, line);
                // quote() pushed a Char/Lifetime token with text missing
                // the `b`; fix the text up to cover the full literal.
                if let Some(last) = self.out.last_mut() {
                    last.kind = TokKind::Char;
                    last.text = self.src[start..self.pos].to_string();
                }
                true
            }
            _ => false,
        }
    }

    fn number(&mut self) {
        // Base prefix.
        if self.peek(0) == Some(b'0') && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'b')) {
            self.pos += 2;
        }
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == b'_' {
                // Exponent sign: 1e-3, 2.5E+7.
                if (c == b'e' || c == b'E') && matches!(self.peek(1), Some(b'+' | b'-')) {
                    self.pos += 1;
                }
                self.pos += 1;
            } else if c == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // 1.5 consumes the dot; 1..n does not (range syntax).
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn ident(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == b'_' || c.is_ascii_alphanumeric() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }
}

/// Width in bytes of the UTF-8 sequence starting with `b` (1 for
/// ASCII and for malformed leading bytes — progress is guaranteed).
fn utf8_len(b: u8) -> usize {
    match b {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src).into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn comments_hide_tokens_and_nest() {
        assert_eq!(idents("a // unsafe partial_cmp\nb"), ["a", "b"]);
        assert_eq!(idents("a /* unsafe /* nested */ still comment */ b"), ["a", "b"]);
        // Unterminated block comment swallows the rest, never panics.
        assert_eq!(idents("a /* open\nunsafe"), ["a"]);
    }

    #[test]
    fn strings_hide_comment_markers_and_escapes() {
        assert_eq!(idents(r#"a "// not a comment" b"#), ["a", "b"]);
        assert_eq!(idents(r#"a "escaped \" quote // still string" b"#), ["a", "b"]);
        assert_eq!(idents("a \"/* no comment */\" unsafe"), ["a", "unsafe"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "a r#\"contains \" and // and /* \"# b";
        assert_eq!(idents(src), ["a", "b"]);
        let two = "x r##\"inner \"# still open\"## y";
        assert_eq!(idents(two), ["x", "y"]);
        assert_eq!(idents("p r\"plain raw\" q"), ["p", "q"]);
        assert_eq!(idents("p br#\"raw bytes \" here\"# q"), ["p", "q"]);
        assert_eq!(idents("p b\"bytes // ok\" q"), ["p", "q"]);
    }

    #[test]
    fn char_literals_versus_lifetimes() {
        // '"' is a char literal, not the start of a string.
        assert_eq!(idents("a '\"' unsafe \" swallowed? b"), ["a", "unsafe"]);
        assert_eq!(idents(r"m '\'' n"), ["m", "n"]);
        assert_eq!(idents("f('x') g"), ["f", "g"]);
        assert_eq!(idents("b'q' z"), ["z"]);
        let toks = lex("&'a str + 'static");
        let lifetimes: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| t.text.as_str()).collect();
        assert_eq!(lifetimes, ["'a", "'static"]);
    }

    #[test]
    fn raw_identifiers_drop_their_prefix() {
        assert_eq!(idents("r#unsafe r#match normal"), ["unsafe", "match", "normal"]);
        // …but r-strings starting with the same bytes stay strings.
        assert_eq!(idents("r#\"unsafe\"# tail"), ["tail"]);
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let got = kinds("0..n");
        assert_eq!(
            got,
            vec![
                (TokKind::Num, "0".into()),
                (TokKind::Punct, ".".into()),
                (TokKind::Punct, ".".into()),
                (TokKind::Ident, "n".into()),
            ]
        );
        assert_eq!(kinds("1.5e-3")[0], (TokKind::Num, "1.5e-3".into()));
        assert_eq!(kinds("0x86")[0], (TokKind::Num, "0x86".into()));
    }

    #[test]
    fn int_values_parse_all_bases() {
        assert_eq!(int_value("0x86"), Some(0x86));
        assert_eq!(int_value("1_000"), Some(1000));
        assert_eq!(int_value("0b101"), Some(5));
        assert_eq!(int_value("0o17"), Some(15));
        assert_eq!(int_value("1.5"), None);
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let src = "one\n\"str\nspans\nlines\" two\n/* c\nc */ three";
        let toks = lex(src);
        let find = |name: &str| toks.iter().find(|t| t.text == name).unwrap().line;
        assert_eq!(find("one"), 1);
        assert_eq!(find("two"), 4, "after a string spanning lines 2-4");
        assert_eq!(find("three"), 6, "after a block comment spanning 5-6");
    }

    #[test]
    fn unterminated_inputs_never_panic() {
        for src in ["\"open", "r#\"open", "/* open", "'", "b'", "r#", "1e", "\\"] {
            let _ = lex(src);
        }
    }
}
