//! # `tivlint` — the workspace invariant checker
//!
//! This workspace's evidence chain rests on invariants no ordinary
//! test can pin for code that has not been written yet: answers stay
//! bit-identical across thread counts, shard counts, replica counts
//! and the wire; malformed network bytes never panic a replica;
//! `unsafe` stays confined to the one FFI shim that needs it. Until
//! this crate, those were conventions — and PR 4's
//! `partial_cmp().unwrap()` NaN panic showed how a convention fails:
//! silently, in the one code path review did not cover.
//!
//! `tivlint` mechanizes the discipline as an offline, dependency-free
//! static-analysis pass:
//!
//! * a [`lexer`] that understands comments, strings, raw strings and
//!   char-vs-lifetime quotes, so rules match *tokens*, never text in
//!   a string or a doc comment;
//! * an [`engine`] that classifies test regions, applies
//!   `// tivlint: allow(rule, "reason")` waivers, rejects waivers
//!   without reasons, and reports *stale* waivers so exemptions can
//!   only shrink;
//! * five [`rules`] grounded in real incidents (see `docs/LINTS.md`).
//!
//! The binary (`cargo run -p tivlint -- --check`) exits non-zero on
//! any unwaived finding and is wired into CI as the `lint-tiv` job,
//! where the used-waiver count is also compared against the
//! checked-in budget (`ci/lint-waiver-budget.txt`): a new waiver
//! fails CI until the budget is consciously raised in the same PR.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod rules;
