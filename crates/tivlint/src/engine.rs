//! Workspace walking, test-region detection, waivers and reporting.
//!
//! The engine loads every `.rs` file under `<root>/crates` (skipping
//! `target/` build output and the linter's own seeded-violation
//! `fixtures/` trees), lexes each one, computes which lines are *test
//! code* (integration `tests/`/`benches/` files, plus the brace span
//! of any item annotated `#[cfg(test)]` or `#[test]`), runs every
//! rule, and then reconciles findings against waivers.
//!
//! ## Waivers
//!
//! A finding is suppressed by a comment of the form
//!
//! ```text
//! // tivlint: allow(rule-name, "why this occurrence is sound")
//! ```
//!
//! placed on the offending line or on the line directly above it, or
//! by a file-scoped
//!
//! ```text
//! // tivlint: allow-file(rule-name, "why the whole file is exempt")
//! ```
//!
//! anywhere in the file. The reason string is mandatory — a waiver
//! without one is itself an error — and a waiver that suppresses
//! nothing is reported as *stale* so dead exemptions cannot
//! accumulate. The total number of used waivers is compared against
//! the checked-in budget in CI (see `--waiver-budget`).

use crate::lexer::{self, Tok, TokKind};
use crate::rules;
use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lexed source file plus the line classification rules need.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Token stream (comments included).
    pub toks: Vec<Tok>,
    /// Whole file is test/bench code (`tests/` or `benches/` dir).
    pub is_test_file: bool,
    /// 1-based lines inside `#[cfg(test)]` / `#[test]` item bodies.
    test_lines: BTreeSet<u32>,
}

impl SourceFile {
    /// Lexes `src` as the file `rel` and classifies its test regions.
    pub fn parse(rel: &str, src: &str) -> SourceFile {
        let toks = lexer::lex(src);
        let is_test_file = rel.split('/').any(|c| c == "tests" || c == "benches");
        let test_lines = test_region_lines(&toks);
        SourceFile { rel: rel.to_string(), toks, is_test_file, test_lines }
    }

    /// True when `line` is test code for rules that exempt tests.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.is_test_file || self.test_lines.contains(&line)
    }

    /// True when this file belongs to a `crates/compat/*` stub crate.
    pub fn is_compat(&self) -> bool {
        self.rel.starts_with("crates/compat/")
    }

    /// The crate directory (`crates/foo` or `crates/compat/foo`) this
    /// file belongs to, when under `crates/`.
    pub fn crate_dir(&self) -> Option<&str> {
        let parts: Vec<&str> = self.rel.split('/').collect();
        match parts.as_slice() {
            ["crates", "compat", name, ..] => {
                Some(&self.rel[..("crates/compat/".len() + name.len())])
            }
            ["crates", name, ..] => Some(&self.rel[..("crates/".len() + name.len())]),
            _ => None,
        }
    }
}

/// A rule violation at a specific line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Root-relative `/`-separated path.
    pub rel: String,
    /// 1-based line.
    pub line: u32,
    /// Rule identifier (kebab-case, as used in waivers).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.rel, self.line, self.rule, self.msg)
    }
}

/// A parsed `tivlint: allow(...)` comment.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// Root-relative path of the file containing the waiver.
    pub rel: String,
    /// Line of the waiver comment.
    pub line: u32,
    /// Rule the waiver names.
    pub rule: String,
    /// The mandatory justification (may be empty if the author forgot
    /// — that is reported as an error).
    pub reason: String,
    /// `allow-file` form: applies to the whole file.
    pub file_scope: bool,
    /// Lines the waiver can suppress (line-scoped form only).
    pub targets: Vec<u32>,
}

/// The outcome of analyzing a workspace.
#[derive(Default)]
pub struct Report {
    /// Violations not covered by any waiver — these fail the build.
    pub findings: Vec<Finding>,
    /// Violations suppressed by a waiver, with the justification.
    pub waived: Vec<(Finding, String)>,
    /// Waiver-syntax problems: missing reason, unknown rule, stale
    /// waiver. These fail the build too.
    pub waiver_errors: Vec<String>,
    /// Waiver *comments* that suppressed at least one finding (several
    /// findings under one comment count once) — the number the CI
    /// budget compares.
    pub waivers_used: usize,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the workspace passes: no unwaived findings and no
    /// waiver errors.
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.waiver_errors.is_empty()
    }
}

/// Analyzes every `.rs` file under `<root>/crates`.
pub fn analyze(root: &Path) -> io::Result<Report> {
    let mut paths = Vec::new();
    collect_rs(&root.join("crates"), &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        let src = fs::read_to_string(path)?;
        let rel = rel_path(root, path);
        files.push(SourceFile::parse(&rel, &src));
    }
    Ok(analyze_files(&files))
}

/// Runs all rules over pre-parsed files and reconciles waivers.
/// Separated from [`analyze`] so fixtures can be tested in-memory.
pub fn analyze_files(files: &[SourceFile]) -> Report {
    let mut raw = Vec::new();
    for file in files {
        rules::check_file(file, &mut raw);
    }
    rules::check_workspace(files, &mut raw);
    raw.sort_by(|a, b| (&a.rel, a.line, a.rule).cmp(&(&b.rel, b.line, b.rule)));

    let mut waivers: Vec<Waiver> = files.iter().flat_map(collect_waivers).collect();
    let mut report = Report { files_scanned: files.len(), ..Report::default() };

    for w in &waivers {
        if !rules::RULES.contains(&w.rule.as_str()) {
            report.waiver_errors.push(format!(
                "{}:{}: waiver names unknown rule `{}` (known: {})",
                w.rel,
                w.line,
                w.rule,
                rules::RULES.join(", ")
            ));
        }
        if w.reason.trim().is_empty() {
            report.waiver_errors.push(format!(
                "{}:{}: waiver for `{}` has no reason — every waiver must say why the \
                 occurrence is sound",
                w.rel, w.line, w.rule
            ));
        }
    }

    let mut used = vec![false; waivers.len()];
    for finding in raw {
        let hit = waivers.iter().position(|w| {
            w.rule == finding.rule
                && w.rel == finding.rel
                && (w.file_scope || w.targets.contains(&finding.line))
        });
        match hit {
            Some(i) => {
                used[i] = true;
                report.waived.push((finding, waivers[i].reason.clone()));
            }
            None => report.findings.push(finding),
        }
    }
    for (i, w) in waivers.iter_mut().enumerate() {
        if !used[i] && rules::RULES.contains(&w.rule.as_str()) {
            report.waiver_errors.push(format!(
                "{}:{}: stale waiver for `{}` — it suppresses nothing; remove it",
                w.rel, w.line, w.rule
            ));
        }
    }
    report.waivers_used = used.iter().filter(|&&u| u).count();
    report
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `target/` is build output; `fixtures/` trees hold this
            // crate's *seeded violations* and must never fail the real
            // workspace run.
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Lines covered by `#[cfg(test)]` / `#[test]` item bodies.
///
/// After such an attribute, any further attributes are skipped and
/// the following item's brace span (first `{` before a `;`, through
/// its matching `}`) is marked, inclusive of both brace lines.
fn test_region_lines(toks: &[Tok]) -> BTreeSet<u32> {
    let sig: Vec<&Tok> = lexer::significant(toks).collect();
    let mut lines = BTreeSet::new();
    let mut i = 0;
    while i < sig.len() {
        if sig[i].text == "#" && at(&sig, i + 1) == "[" {
            let close = match matching(&sig, i + 1, "[", "]") {
                Some(c) => c,
                None => break,
            };
            let body: Vec<&str> = sig[i + 2..close].iter().map(|t| t.text.as_str()).collect();
            let is_test_attr = body.first() == Some(&"test")
                || (body.first() == Some(&"cfg") && body.contains(&"test"));
            if is_test_attr {
                // Skip any further attributes between this one and the
                // item itself.
                let mut j = close + 1;
                while at(&sig, j) == "#" && at(&sig, j + 1) == "[" {
                    match matching(&sig, j + 1, "[", "]") {
                        Some(c) => j = c + 1,
                        None => return lines,
                    }
                }
                // Find the item's opening brace; a `;` first means a
                // body-less item (`mod tests;`) with no region.
                while j < sig.len() && at(&sig, j) != "{" && at(&sig, j) != ";" {
                    j += 1;
                }
                if at(&sig, j) == "{" {
                    if let Some(end) = matching(&sig, j, "{", "}") {
                        for l in sig[j].line..=sig[end].line {
                            lines.insert(l);
                        }
                        i = end + 1;
                        continue;
                    }
                }
                i = j + 1;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    lines
}

fn at<'a>(sig: &[&'a Tok], i: usize) -> &'a str {
    sig.get(i).map(|t| t.text.as_str()).unwrap_or("")
}

/// Index of the token matching the opener at `open_idx`.
fn matching(sig: &[&Tok], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in sig.iter().enumerate().skip(open_idx) {
        if t.text == open {
            depth += 1;
        } else if t.text == close {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Extracts every waiver comment from a file.
fn collect_waivers(file: &SourceFile) -> Vec<Waiver> {
    let mut out = Vec::new();
    // Lines that contain non-comment tokens, for waiver targeting.
    let code_lines: BTreeSet<u32> = lexer::significant(&file.toks).map(|t| t.line).collect();
    for (idx, tok) in file.toks.iter().enumerate() {
        if tok.kind != TokKind::Comment {
            continue;
        }
        // Waivers are code annotations, not documentation: only plain
        // `//` / `/*` comments count, so rustdoc prose *about* the
        // waiver syntax can never waive anything.
        if ["///", "//!", "/**", "/*!"].iter().any(|p| tok.text.starts_with(p)) {
            continue;
        }
        let Some((file_scope, rule, reason)) = parse_waiver(&tok.text) else { continue };
        // A waiver trailing code on the same line targets that line; a
        // standalone waiver comment targets the next code line
        // (skipping further standalone comments/blank lines).
        let own_line_has_code = file.toks[..idx]
            .iter()
            .chain(file.toks[idx + 1..].iter())
            .any(|t| t.kind != TokKind::Comment && t.line == tok.line);
        let targets = if file_scope {
            Vec::new()
        } else if own_line_has_code {
            vec![tok.line]
        } else {
            code_lines.range(tok.line + 1..).next().map(|&l| vec![l]).unwrap_or_default()
        };
        out.push(Waiver {
            rel: file.rel.clone(),
            line: tok.line,
            rule,
            reason,
            file_scope,
            targets,
        });
    }
    out
}

/// Parses `tivlint: allow(rule, "reason")` / `allow-file(...)` out of
/// a comment's text. Returns `(file_scope, rule, reason)`.
fn parse_waiver(comment: &str) -> Option<(bool, String, String)> {
    let pos = comment.find("tivlint:")?;
    let rest = comment[pos + "tivlint:".len()..].trim_start();
    let (file_scope, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
        (true, r)
    } else if let Some(r) = rest.strip_prefix("allow(") {
        (false, r)
    } else {
        return None;
    };
    let close = rest.find(')')?;
    let inner = &rest[..close];
    let (rule, reason) = match inner.find(',') {
        Some(c) => (&inner[..c], inner[c + 1..].trim()),
        None => (inner, ""),
    };
    let reason = reason.trim_matches('"').to_string();
    Some((file_scope, rule.trim().to_string(), reason))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::parse(rel, src)
    }

    #[test]
    fn cfg_test_mod_lines_are_test_lines() {
        let f = file(
            "crates/x/src/lib.rs",
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n",
        );
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn test_attr_with_should_panic_covers_the_fn() {
        let f = file(
            "crates/x/src/lib.rs",
            "#[test]\n#[should_panic(expected = \"boom\")]\nfn t() {\n    body();\n}\nfn prod() {}\n",
        );
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn integration_test_files_are_test_everywhere() {
        let f = file("crates/x/tests/it.rs", "fn anything() {}\n");
        assert!(f.is_test_line(1));
        let b = file("crates/bench/benches/scale.rs", "fn anything() {}\n");
        assert!(b.is_test_line(1));
    }

    #[test]
    fn waiver_parsing_and_targeting() {
        let f = file(
            "crates/x/src/lib.rs",
            "// tivlint: allow(float-total-order, \"not a float\")\nfn a() {}\nfn b() {} // tivlint: allow(unsafe-containment, \"why\")\n// tivlint: allow-file(pool-discipline, \"whole file\")\n",
        );
        let ws = collect_waivers(&f);
        assert_eq!(ws.len(), 3);
        assert_eq!(ws[0].rule, "float-total-order");
        assert_eq!(ws[0].targets, vec![2], "standalone comment targets the next code line");
        assert_eq!(ws[1].targets, vec![3], "trailing comment targets its own line");
        assert!(ws[2].file_scope);
        assert_eq!(ws[2].reason, "whole file");
    }

    #[test]
    fn crate_dir_distinguishes_compat() {
        let f = file("crates/compat/mio/src/lib.rs", "");
        assert_eq!(f.crate_dir(), Some("crates/compat/mio"));
        assert!(f.is_compat());
        let g = file("crates/tivgate/src/proto.rs", "");
        assert_eq!(g.crate_dir(), Some("crates/tivgate"));
        assert!(!g.is_compat());
    }
}
