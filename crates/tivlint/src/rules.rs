//! The five rules. Each is grounded in a real incident or a guarantee
//! the test suite pins — see `docs/LINTS.md` for the full catalog.
//!
//! | rule | guards |
//! |------|--------|
//! | `float-total-order`   | no `partial_cmp` on the NaN-capable paths (the PR-4 severity panic class) |
//! | `pool-discipline`     | all parallelism goes through `tivpar` (bit-equivalence across thread counts) |
//! | `unsafe-containment`  | `unsafe` only in `compat/mio`; everyone else carries `#![forbid(unsafe_code)]` |
//! | `no-panic-wire-path`  | malformed network input can never panic `tivgate`'s decode/dispatch |
//! | `wire-kind-coverage`  | every request kind has a decode arm, a dispatch arm, and a round-trip test |

use crate::engine::{Finding, SourceFile};
use crate::lexer::{self, int_value, Tok, TokKind};

/// Every rule identifier, in catalog order. Waivers must name one of
/// these.
pub const RULES: [&str; 5] = [
    "float-total-order",
    "pool-discipline",
    "unsafe-containment",
    "no-panic-wire-path",
    "wire-kind-coverage",
];

/// The `tivgate` files whose non-test code is a wire path: every byte
/// they handle may come from a hostile or corrupted peer.
const WIRE_PATH_FILES: [&str; 3] =
    ["crates/tivgate/src/conn.rs", "crates/tivgate/src/proto.rs", "crates/tivgate/src/server.rs"];

/// Runs every single-file rule over `file`.
pub fn check_file(file: &SourceFile, out: &mut Vec<Finding>) {
    let sig: Vec<&Tok> = lexer::significant(&file.toks).collect();
    float_total_order(file, &sig, out);
    pool_discipline(file, &sig, out);
    unsafe_tokens(file, &sig, out);
    no_panic_wire_path(file, &sig, out);
}

/// Runs the cross-file rules over the whole workspace.
pub fn check_workspace(files: &[SourceFile], out: &mut Vec<Finding>) {
    forbid_attribute_sweep(files, out);
    wire_kind_coverage(files, out);
}

fn finding(file: &SourceFile, line: u32, rule: &'static str, msg: String) -> Finding {
    Finding { rel: file.rel.clone(), line, rule, msg }
}

/// `float-total-order`: `.partial_cmp(` outside tests. PR 4 shipped a
/// `partial_cmp().unwrap()` that panicked the severity pass the first
/// time a NaN-seeded matrix reached it; `f64::total_cmp` is the same
/// comparison with NaN given a defined order.
fn float_total_order(file: &SourceFile, sig: &[&Tok], out: &mut Vec<Finding>) {
    if file.is_test_file {
        return;
    }
    for w in sig.windows(2) {
        if w[0].text == "." && w[1].text == "partial_cmp" && !file.is_test_line(w[1].line) {
            out.push(finding(
                file,
                w[1].line,
                "float-total-order",
                "`.partial_cmp()` is not a total order (NaN breaks it — the PR-4 severity \
                 panic class); use `f64::total_cmp`, or waive with a reason if the operands \
                 are not floats"
                    .to_string(),
            ));
        }
    }
}

/// `pool-discipline`: `thread::{spawn,scope,Builder}` outside
/// `tivpar`/`compat`. Parallel *kernels* must go through the `tivpar`
/// pool or the bit-equivalence-across-thread-counts guarantee silently
/// stops covering them; long-lived background threads (epoch builders,
/// servers) are legitimate but must say so in a waiver.
fn pool_discipline(file: &SourceFile, sig: &[&Tok], out: &mut Vec<Finding>) {
    let dir = file.crate_dir().unwrap_or("");
    if file.is_test_file || dir == "crates/tivpar" || file.is_compat() {
        return;
    }
    for w in sig.windows(4) {
        let call = w[0].text == "thread"
            && w[1].text == ":"
            && w[2].text == ":"
            && matches!(w[3].text.as_str(), "spawn" | "scope" | "Builder");
        if call && !file.is_test_line(w[3].line) {
            out.push(finding(
                file,
                w[3].line,
                "pool-discipline",
                format!(
                    "`thread::{}` outside tivpar: parallel kernels must use the tivpar pool \
                     (bit-identical across thread counts); a long-lived background thread is \
                     fine but needs a waiver saying so",
                    w[3].text
                ),
            ));
        }
    }
}

/// `unsafe-containment` (token half): `unsafe` anywhere outside
/// `crates/compat/mio`, tests included — test code links into the same
/// binaries and a UB test is still UB.
fn unsafe_tokens(file: &SourceFile, sig: &[&Tok], out: &mut Vec<Finding>) {
    if file.crate_dir() == Some("crates/compat/mio") {
        return;
    }
    for t in sig {
        if t.kind == TokKind::Ident && t.text == "unsafe" {
            out.push(finding(
                file,
                t.line,
                "unsafe-containment",
                "`unsafe` outside crates/compat/mio — the workspace confines unsafety to \
                 the epoll FFI shim; justify any other use with a waiver"
                    .to_string(),
            ));
        }
    }
}

/// `unsafe-containment` (attribute half): every non-compat crate's
/// `lib.rs` must carry `#![forbid(unsafe_code)]` so the containment
/// holds even for code tivlint never sees (macros, generated code).
fn forbid_attribute_sweep(files: &[SourceFile], out: &mut Vec<Finding>) {
    for file in files {
        if file.is_compat() || !file.rel.ends_with("/src/lib.rs") {
            continue;
        }
        let sig: Vec<&Tok> = lexer::significant(&file.toks).collect();
        let has_forbid = sig
            .windows(3)
            .any(|w| w[0].text == "forbid" && w[1].text == "(" && w[2].text == "unsafe_code");
        if !has_forbid {
            out.push(finding(
                file,
                1,
                "unsafe-containment",
                "crate is missing `#![forbid(unsafe_code)]` — every non-compat crate pins \
                 the unsafety containment at the compiler level"
                    .to_string(),
            ));
        }
    }
}

/// `no-panic-wire-path`: `unwrap`/`expect`/panicking macros/slice
/// indexing in `tivgate::{conn,proto,server}` non-test code. The
/// `malformed.rs` suite proves hostile bytes get error frames, never
/// panics; this rule makes the same claim statically, for the inputs
/// the fuzz corpus has not found yet.
fn no_panic_wire_path(file: &SourceFile, sig: &[&Tok], out: &mut Vec<Finding>) {
    if !WIRE_PATH_FILES.contains(&file.rel.as_str()) {
        return;
    }
    let flag = |out: &mut Vec<Finding>, line: u32, what: &str| {
        out.push(finding(
            file,
            line,
            "no-panic-wire-path",
            format!(
                "{what} on a wire path: malformed network input must produce a structured \
                 error frame or a clean close, never a panic; prove the guard in a waiver \
                 if this cannot fail"
            ),
        ));
    };
    for (i, t) in sig.iter().enumerate() {
        if file.is_test_line(t.line) {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| sig[p].text.as_str()).unwrap_or("");
        let next = sig.get(i + 1).map(|n| n.text.as_str()).unwrap_or("");
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "unwrap" | "expect") if prev == "." => {
                flag(out, t.line, &format!("`.{}()`", t.text));
            }
            (TokKind::Ident, "panic" | "unreachable" | "todo" | "unimplemented") if next == "!" => {
                flag(out, t.line, &format!("`{}!`", t.text));
            }
            (TokKind::Punct, "[") => {
                // Expression indexing: `buf[..]`, `map[k]`, `f()[0]`.
                // Types (`[u8; 4]`), attributes (`#[...]`), macro
                // brackets (`vec![...]`) have non-postfix contexts.
                let prev_kind = i.checked_sub(1).map(|p| sig[p].kind);
                let postfix = (prev_kind == Some(TokKind::Ident)
                    && !matches!(
                        prev,
                        "mut" | "dyn" | "in" | "as" | "let" | "return" | "else" | "match"
                    ))
                    || prev == "]"
                    || prev == ")";
                if i > 0 && postfix {
                    flag(out, t.line, "slice/array indexing");
                }
            }
            _ => {}
        }
    }
}

/// `wire-kind-coverage`: parses the `Kind` enum in
/// `tivgate/src/proto.rs`; every *request* kind (discriminant in the
/// `0x01..=0x7F` request range) must have
///
/// 1. a decode arm inside `fn decode_request` (proto.rs),
/// 2. a server dispatch arm (`Request::<Name>` in server.rs non-test
///    code), and
/// 3. a codec round-trip test (`Request::<Name>` in proto.rs test
///    code).
///
/// This is the cross-file check: adding `Kind::Foo = 0x07` without the
/// other three sites fails CI with one finding per missing site.
fn wire_kind_coverage(files: &[SourceFile], out: &mut Vec<Finding>) {
    let Some(proto) = files.iter().find(|f| f.rel.ends_with("tivgate/src/proto.rs")) else {
        return;
    };
    let server = files.iter().find(|f| f.rel.ends_with("tivgate/src/server.rs"));
    let sig: Vec<&Tok> = lexer::significant(&proto.toks).collect();

    // Parse `enum Kind { Name = 0xNN, ... }`.
    let mut kinds: Vec<(String, u64, u32)> = Vec::new(); // (name, value, line)
    let mut i = 0;
    while i + 2 < sig.len() {
        if sig[i].text == "enum" && sig[i + 1].text == "Kind" {
            let Some(open) = (i + 2..sig.len()).find(|&k| sig[k].text == "{") else { break };
            let mut depth = 0usize;
            let mut k = open;
            while k < sig.len() {
                match sig[k].text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "=" if depth == 1 && k > open && k + 1 < sig.len() => {
                        let name = &sig[k - 1];
                        let val = &sig[k + 1];
                        if name.kind == TokKind::Ident && val.kind == TokKind::Num {
                            if let Some(v) = int_value(&val.text) {
                                kinds.push((name.text.clone(), v, name.line));
                            }
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            break;
        }
        i += 1;
    }

    let requests: Vec<(String, u64, u32)> =
        kinds.into_iter().filter(|(_, v, _)| (0x01..=0x7F).contains(v)).collect();
    if requests.is_empty() {
        return;
    }

    let server_sig: Vec<&Tok> =
        server.map(|s| lexer::significant(&s.toks).collect()).unwrap_or_default();
    let decode_span = fn_body_span(&sig, "decode_request");
    for (name, _, line) in &requests {
        // 1. Decode arm: `Kind :: <name>` inside fn decode_request.
        let decoded =
            decode_span.as_ref().is_some_and(|&(lo, hi)| path_seq(&sig[lo..hi], "Kind", name));
        if !decoded {
            out.push(Finding {
                rel: proto.rel.clone(),
                line: *line,
                rule: "wire-kind-coverage",
                msg: format!(
                    "request kind `{name}` has no `Kind::{name}` arm in `decode_request` — \
                     a client can send it but the server cannot parse it"
                ),
            });
        }
        // 2. Server dispatch: `Request :: <name>` in server.rs
        //    non-test code.
        let dispatched = server.is_some_and(|s| {
            server_sig.windows(4).any(|w| {
                w[0].text == "Request"
                    && w[1].text == ":"
                    && w[2].text == ":"
                    && w[3].text == *name
                    && !s.is_test_line(w[3].line)
            })
        });
        if !dispatched {
            out.push(Finding {
                rel: proto.rel.clone(),
                line: *line,
                rule: "wire-kind-coverage",
                msg: format!(
                    "request kind `{name}` has no `Request::{name}` dispatch site in \
                     server.rs — decoded frames of this kind would be unanswerable"
                ),
            });
        }
        // 3. Round-trip test: `Request :: <name>` on a proto.rs test
        //    line.
        let tested = sig.windows(4).any(|w| {
            w[0].text == "Request"
                && w[1].text == ":"
                && w[2].text == ":"
                && w[3].text == *name
                && proto.is_test_line(w[3].line)
        });
        if !tested {
            out.push(Finding {
                rel: proto.rel.clone(),
                line: *line,
                rule: "wire-kind-coverage",
                msg: format!(
                    "request kind `{name}` appears in no codec round-trip test in proto.rs \
                     — encode/decode symmetry for it is unpinned"
                ),
            });
        }
    }
}

/// `Name :: seg` token sequence search (two-colon path).
fn path_seq(sig: &[&Tok], head: &str, seg: &str) -> bool {
    sig.windows(4)
        .any(|w| w[0].text == head && w[1].text == ":" && w[2].text == ":" && w[3].text == seg)
}

/// Significant-token index span `(body_start, body_end)` of `fn
/// <name>`'s brace body (exclusive end).
fn fn_body_span(sig: &[&Tok], name: &str) -> Option<(usize, usize)> {
    let mut i = 0;
    while i + 1 < sig.len() {
        if sig[i].text == "fn" && sig[i + 1].text == name {
            let open = (i + 2..sig.len()).find(|&k| sig[k].text == "{")?;
            let mut depth = 0usize;
            for (k, t) in sig.iter().enumerate().skip(open) {
                match t.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            return Some((open, k));
                        }
                    }
                    _ => {}
                }
            }
            return None;
        }
        i += 1;
    }
    None
}
