//! `tivlint` CLI: `cargo run -p tivlint -- --check`.
//!
//! Exit codes: `0` clean, `1` findings / waiver errors / budget
//! exceeded, `2` usage or I/O errors.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use tivlint::engine;
use tivlint::rules::RULES;

const USAGE: &str = "\
tivlint — workspace invariant checker

USAGE:
    tivlint --check [--root DIR] [--waiver-budget FILE]
    tivlint --list-rules

OPTIONS:
    --check                Analyze the workspace; exit 1 on any
                           unwaived finding, reasonless waiver or
                           stale waiver.
    --root DIR             Workspace root (default: walk up from the
                           current directory to the first dir with
                           both Cargo.toml and crates/).
    --waiver-budget FILE   Compare the used-waiver count against the
                           integer in FILE; exit 1 if it grew.
    --list-rules           Print the rule identifiers and exit.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut root: Option<PathBuf> = None;
    let mut budget_file: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--list-rules" => {
                for rule in RULES {
                    println!("{rule}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a directory"),
            },
            "--waiver-budget" => match it.next() {
                Some(f) => budget_file = Some(PathBuf::from(f)),
                None => return usage_error("--waiver-budget needs a file"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if !check {
        print!("{USAGE}");
        return ExitCode::from(2);
    }

    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!("tivlint: no workspace root found (no Cargo.toml + crates/ upward)");
            return ExitCode::from(2);
        }
    };

    let report = match engine::analyze(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tivlint: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &report.findings {
        println!("{f}");
    }
    for e in &report.waiver_errors {
        println!("{e}");
    }
    println!(
        "tivlint: {} files, {} finding(s), {} waiver(s) used, {} waiver error(s)",
        report.files_scanned,
        report.findings.len(),
        report.waivers_used,
        report.waiver_errors.len(),
    );

    let mut failed = !report.clean();
    if let Some(bf) = budget_file {
        match read_budget(&bf) {
            Ok(budget) => {
                if report.waivers_used > budget {
                    println!(
                        "tivlint: waiver budget exceeded: {} used > {} budgeted ({}) — a new \
                         waiver must raise the budget in the same PR, with the justification \
                         in the waiver's reason string",
                        report.waivers_used,
                        budget,
                        bf.display()
                    );
                    failed = true;
                } else if report.waivers_used < budget {
                    println!(
                        "tivlint: note: only {} of {} budgeted waivers used — lower the \
                         budget in {} to pin the improvement",
                        report.waivers_used,
                        budget,
                        bf.display()
                    );
                } else {
                    println!(
                        "tivlint: waiver budget ok: {} used = {} budgeted",
                        report.waivers_used, budget
                    );
                }
            }
            Err(e) => {
                eprintln!("tivlint: cannot read waiver budget {}: {e}", bf.display());
                return ExitCode::from(2);
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("tivlint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

/// Walks up from the current directory to the first directory that
/// looks like the workspace root.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Reads the budget file: one integer, `#` comment lines ignored.
fn read_budget(path: &Path) -> std::io::Result<usize> {
    let text = std::fs::read_to_string(path)?;
    text.lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .and_then(|l| l.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "expected a single integer line (\"#\" comments allowed)",
            )
        })
}
