//! The k-best one-hop detour search.
//!
//! For an ordered pair `(a, c)`, a *detour* is a relay `b` (distinct
//! from both endpoints) whose two measured hops give an alternative
//! path delay `via = d(a,b) + d(b,c)`. The search keeps the `k`
//! relays with the smallest `via` — ties broken by the smaller relay
//! id, so the ranking is a total order and the whole computation is a
//! pure function of `(matrix, k)`.
//!
//! The exact table is O(n³) like the severity kernel, and parallelises
//! identically: every output row (one source node) is independent, so
//! [`DetourTable::compute`] fans rows out over [`tivpar`] and is
//! bit-identical at every thread count.

use delayspace::matrix::{DelayMatrix, NodeId};

/// Sentinel marking an unused relay slot in the table's backing store.
const NO_RELAY: u32 = u32::MAX;

/// One ranked relay for an ordered pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Relay {
    /// The relay node `b`.
    pub relay: NodeId,
    /// The detour delay `d(a,b) + d(b,c)` in milliseconds.
    pub via_ms: f64,
}

/// The detour gain of one edge: the best relay compared against the
/// measured direct path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DetourGain {
    /// The best relay.
    pub relay: NodeId,
    /// Detour delay through the relay (ms).
    pub via_ms: f64,
    /// Measured direct delay (ms).
    pub direct_ms: f64,
    /// `direct - via` in ms; positive iff the detour beats the direct
    /// path (i.e. the edge is part of a triangle inequality violation).
    pub saving_ms: f64,
    /// `saving_ms / direct_ms` (0 when the direct delay is zero).
    pub saving_frac: f64,
}

impl DetourGain {
    /// True when the detour strictly beats the direct path.
    pub fn beneficial(&self) -> bool {
        self.saving_ms > 0.0
    }
}

/// The k-best one-hop detours of every ordered pair of a delay space.
#[derive(Clone, Debug)]
pub struct DetourTable {
    n: usize,
    k: usize,
    /// Row-major `[a][c][rank]` relay ids; [`NO_RELAY`] marks unused
    /// slots (ranks are filled left to right, so used slots are a
    /// prefix).
    relays: Vec<u32>,
    /// Detour delays, parallel to `relays` (NaN in unused slots).
    via: Vec<f64>,
}

impl DetourTable {
    /// Computes the `k` best relays for every ordered pair, using up to
    /// `threads` workers (0 = auto, [`tivpar::resolve_threads`]
    /// semantics).
    ///
    /// The result is bit-identical at every thread count: each output
    /// row depends only on the input matrix.
    ///
    /// # Panics
    /// Panics when `k` is zero or the matrix has 2³²−1 nodes or more.
    pub fn compute(m: &DelayMatrix, k: usize, threads: usize) -> Self {
        assert!(k >= 1, "a detour table needs k >= 1");
        let n = m.len();
        assert!((n as u64) < NO_RELAY as u64, "node ids must fit in u32");
        let mut relays = vec![NO_RELAY; n * n * k];
        let mut via = vec![f64::NAN; n * n * k];
        // The delay matrix is symmetric and the relay scan visits
        // witnesses in the same ascending order for (a,c) and (c,a), so
        // the two pairs' k-best lists are bit-identical (the argument
        // `repair_rows` already uses to patch destinations). Compute
        // only c > a and mirror the lower triangle: half the O(n³k)
        // work, with the pool's stealing absorbing the triangular row
        // skew.
        tivpar::par_fill_rows2(&mut relays, &mut via, n, threads, |a, rrow, vrow| {
            detour_row_from(m, k, a, a + 1, rrow, vrow)
        });
        for a in 1..n {
            let (done_r, row_r) = relays.split_at_mut(a * n * k);
            let (done_v, row_v) = via.split_at_mut(a * n * k);
            for c in 0..a {
                let src = (c * n + a) * k;
                row_r[c * k..(c + 1) * k].copy_from_slice(&done_r[src..src + k]);
                row_v[c * k..(c + 1) * k].copy_from_slice(&done_v[src..src + k]);
            }
        }
        DetourTable { n, k, relays, via }
    }

    /// Repairs the table after `m` changed on edges incident to the
    /// `dirty` nodes: recomputes exactly those source rows (in parallel
    /// over the dirty set, [`tivpar::resolve_threads`] semantics) and
    /// patches the dirty destination slots of every clean row by
    /// symmetry.
    ///
    /// The k-best list of `(a, c)` reads only delays incident to `a` or
    /// `c` (`via = d(a,b) + d(b,c)`), so an edge change can only affect
    /// pairs touching one of its endpoints; and the relay scan visits
    /// witnesses in the same ascending order for `(a, c)` and `(c, a)`
    /// over a symmetric matrix, so the mirrored slots are bit-identical.
    /// After this repair the table equals `DetourTable::compute(m, k, _)`
    /// from scratch, bit for bit — pinned by `tivoid`'s
    /// `flux_equivalence` test.
    ///
    /// # Panics
    /// Panics when the matrix size differs from the table's, or when
    /// `dirty` is not strictly increasing or names a node `>= n`.
    pub fn repair_rows(&mut self, m: &DelayMatrix, dirty: &[NodeId], threads: usize) {
        let (n, k) = (self.n, self.k);
        assert_eq!(m.len(), n, "matrix has {} nodes, table covers {n}", m.len());
        assert!(dirty.windows(2).all(|w| w[0] < w[1]), "dirty rows must be strictly increasing");
        if let Some(&last) = dirty.last() {
            assert!(last < n, "dirty row {last} outside {n} nodes");
        }
        // Recompute each dirty source row with the full pass's kernel on
        // the full pass's scratch initial state (empty slots).
        let rows: Vec<(Vec<u32>, Vec<f64>)> = tivpar::par_map_rows(dirty.len(), threads, |i| {
            let a = dirty[i];
            let mut rrow = vec![NO_RELAY; n * k];
            let mut vrow = vec![f64::NAN; n * k];
            detour_row(m, k, a, &mut rrow, &mut vrow);
            (rrow, vrow)
        });
        for (i, (rrow, vrow)) in rows.into_iter().enumerate() {
            let a = dirty[i];
            self.relays[a * n * k..(a + 1) * n * k].copy_from_slice(&rrow);
            self.via[a * n * k..(a + 1) * n * k].copy_from_slice(&vrow);
        }
        // Mirror the dirty destinations into every clean source row.
        let mut is_dirty = vec![false; n];
        for &d in dirty {
            is_dirty[d] = true;
        }
        for a in (0..n).filter(|&a| !is_dirty[a]) {
            for &d in dirty {
                for slot in 0..k {
                    self.relays[(a * n + d) * k + slot] = self.relays[(d * n + a) * k + slot];
                    self.via[(a * n + d) * k + slot] = self.via[(d * n + a) * k + slot];
                }
            }
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the table covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The `k` the table was built with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The ranked relays of `(a, c)`, best first (possibly empty).
    pub fn relays(&self, a: NodeId, c: NodeId) -> impl Iterator<Item = Relay> + '_ {
        let base = (a * self.n + c) * self.k;
        let ids = &self.relays[base..base + self.k];
        let via = &self.via[base..base + self.k];
        ids.iter()
            .zip(via)
            .take_while(|(&r, _)| r != NO_RELAY)
            .map(|(&r, &v)| Relay { relay: r as NodeId, via_ms: v })
    }

    /// The best relay of `(a, c)`, when any two-hop path is measured.
    pub fn best(&self, a: NodeId, c: NodeId) -> Option<Relay> {
        self.relays(a, c).next()
    }

    /// The best relay of `(a, c)` compared against the direct path of
    /// `m` (which must be the matrix the table was computed from).
    /// `None` when the direct edge is unmeasured or no relay exists.
    pub fn gain(&self, m: &DelayMatrix, a: NodeId, c: NodeId) -> Option<DetourGain> {
        let direct_ms = m.get(a, c)?;
        let best = self.best(a, c)?;
        let saving_ms = direct_ms - best.via_ms;
        let saving_frac = if direct_ms > 0.0 { saving_ms / direct_ms } else { 0.0 };
        Some(DetourGain {
            relay: best.relay,
            via_ms: best.via_ms,
            direct_ms,
            saving_ms,
            saving_frac,
        })
    }
}

/// Fills one source row of the table: for every destination `c`, the
/// `k` best relays of `(a, c)` by `(via, relay id)` order, written as a
/// prefix of the pair's `k` slots — the kernel
/// [`DetourTable::repair_rows`] runs per dirty row.
fn detour_row(m: &DelayMatrix, k: usize, a: usize, rrow: &mut [u32], vrow: &mut [f64]) {
    detour_row_from(m, k, a, 0, rrow, vrow);
}

/// Fills destinations `from..n` of source row `a` (slots below `from`
/// are left untouched). `DetourTable::compute` passes `from == a + 1`
/// to do only the upper triangle; the lower triangle is mirrored
/// afterwards.
fn detour_row_from(
    m: &DelayMatrix,
    k: usize,
    a: usize,
    from: usize,
    rrow: &mut [u32],
    vrow: &mut [f64],
) {
    let n = m.len();
    let row_a = m.row(a);
    for c in from..n {
        if c == a {
            continue; // no detour to yourself; slots stay empty
        }
        let base = c * k;
        detour_pair(row_a, m.row(c), a, c, k, &mut rrow[base..base + k], &mut vrow[base..base + k]);
    }
}

/// The k-best scan for one ordered pair, writing the ranked relays as a
/// prefix of the `k` `rslots`/`vslots`.
///
/// Two phases, both visiting relays in ascending `b` order (which is
/// what makes the list — ties broken by smaller relay id — a pure
/// function of the matrix):
///
/// 1. until the list holds `k` entries, every measured relay inserts;
/// 2. once full, a relay inserts only if it *strictly* beats the
///    current worst (`vslots[k-1]`): an equal `via` loses the id
///    tiebreak to every already-inserted relay (their ids are all
///    smaller), and a NaN (unmeasured hop) fails the comparison. So
///    the hot path is one add and one plain `f64` compare against a
///    cached copy of the worst slot — no `total_cmp`, no NaN branch,
///    no insertion-scan — and the full `ranks_before` insertion only
///    runs on the rare strict improvement. The candidates that insert,
///    and the order they insert in, are exactly the naive scan's,
///    keeping the table bit-identical.
///
/// (A 32-wide tiled `any(via < worst)` pre-scan was tried here first,
/// mirroring the severity kernel: it loses. Severity's threshold is
/// fixed per pair, but the k-best threshold is the *running* 4th-best,
/// loose enough through most of the scan that ~80% of tiles contained
/// a candidate at n=256 — the pre-scan was pure overhead.)
fn detour_pair(
    row_a: &[f64],
    row_c: &[f64],
    a: usize,
    c: usize,
    k: usize,
    rslots: &mut [u32],
    vslots: &mut [f64],
) {
    let n = row_a.len();
    let mut len = 0usize;
    let mut b = 0usize;
    // Phase 1: fill the list.
    while b < n && len < k {
        if b != a && b != c {
            let alt = row_a[b] + row_c[b];
            if !alt.is_nan() {
                // Insertion position among the current best, ordered by
                // (via, relay id). Scanning from the end keeps the
                // common no-op case cheap.
                let mut pos = len;
                while pos > 0 && ranks_before(alt, b as u32, vslots[pos - 1], rslots[pos - 1]) {
                    pos -= 1;
                }
                len += 1;
                for slot in (pos + 1..len).rev() {
                    rslots[slot] = rslots[slot - 1];
                    vslots[slot] = vslots[slot - 1];
                }
                rslots[pos] = b as u32;
                vslots[pos] = alt;
            }
        }
        b += 1;
    }
    // Phase 2: full list — only a strict improvement on the worst slot
    // can insert (ties lose the id tiebreak), so the hot path is one
    // add and one plain f64 compare per relay.
    let mut worst = vslots[k - 1];
    while b < n {
        let alt = row_a[b] + row_c[b];
        if alt < worst && b != a && b != c {
            let mut pos = k;
            while pos > 0 && ranks_before(alt, b as u32, vslots[pos - 1], rslots[pos - 1]) {
                pos -= 1;
            }
            for slot in (pos + 1..k).rev() {
                rslots[slot] = rslots[slot - 1];
                vslots[slot] = vslots[slot - 1];
            }
            rslots[pos] = b as u32;
            vslots[pos] = alt;
            worst = vslots[k - 1];
        }
        b += 1;
    }
}

/// The ranking order of the search: smaller detour delay first, ties by
/// smaller relay id. Total over the finite `via` values the scan feeds
/// it, which is what makes the k-best list (and every consumer)
/// deterministic.
fn ranks_before(via_a: f64, relay_a: u32, via_b: f64, relay_b: u32) -> bool {
    match via_a.total_cmp(&via_b) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Equal => relay_a < relay_b,
        std::cmp::Ordering::Greater => false,
    }
}

/// The single-pair scan: the best relay of `(a, c)` by the same
/// `(via, relay id)` order the table uses, so this returns exactly
/// [`DetourTable::best`] without building the table. This is the
/// kernel behind the serving layer's `route_batch` query.
pub fn best_detour(m: &DelayMatrix, a: NodeId, c: NodeId) -> Option<Relay> {
    if a == c {
        return None; // matches the table: self pairs have no detour
    }
    let n = m.len();
    let (row_a, row_c) = (m.row(a), m.row(c));
    let mut best: Option<(f64, usize)> = None;
    for b in 0..n {
        if b == a || b == c {
            continue;
        }
        let alt = row_a[b] + row_c[b];
        if alt.is_nan() {
            continue;
        }
        // Strict improvement only: ties keep the earlier (smaller) id.
        if best.map_or(true, |(bv, _)| alt.total_cmp(&bv).is_lt()) {
            best = Some((alt, b));
        }
    }
    best.map(|(via_ms, relay)| Relay { relay, via_ms })
}

/// Sampled single-pair detour search, generic over any
/// [`DelayStore`](delayspace::DelayStore): the best relay among `k`
/// witnesses drawn uniformly (without replacement) from `S \ {a, c}`,
/// ranked by the same `(via, relay id)` order as [`best_detour`].
///
/// This is the million-node variant of the detour search: on a sparse
/// store it costs `2k` lookups instead of an `O(n)` row scan, and a
/// candidate with an unmeasured hop yields a NaN `via` that is skipped
/// exactly as in the dense scan. With `k ≥ n − 2` every witness is
/// examined, so the result equals [`best_detour`] on the same data. The
/// witness sample is a pure function of `(seed, n, k)` — the same
/// deterministic stream at any thread count.
pub fn sampled_detour<S: delayspace::DelayStore>(
    store: &S,
    a: NodeId,
    c: NodeId,
    k: usize,
    seed: u64,
) -> Option<Relay> {
    use delayspace::rng;
    if a == c {
        return None; // matches the table: self pairs have no detour
    }
    let n = store.len();
    if n <= 2 {
        return None;
    }
    let k = k.min(n - 2);
    let mut r = rng::sub_rng(seed, "route/sample");
    let mut best: Option<(f64, usize)> = None;
    for idx in rng::sample_indices(&mut r, n - 2, k) {
        // Map 0..n-2 onto node ids skipping a and c (the severity
        // estimator's mapping, so the two samplers agree on witnesses).
        let (lo, hi) = if a < c { (a, c) } else { (c, a) };
        let mut b = idx;
        if b >= lo {
            b += 1;
        }
        if b >= hi {
            b += 1;
        }
        let alt = store.raw(a, b) + store.raw(c, b);
        if alt.is_nan() {
            continue;
        }
        if best.map_or(true, |(bv, bb)| ranks_before(alt, b as u32, bv, bb as u32)) {
            best = Some((alt, b));
        }
    }
    best.map(|(via_ms, relay)| Relay { relay, via_ms })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiv_triangle() -> DelayMatrix {
        let mut m = DelayMatrix::new(3);
        m.set(0, 1, 5.0);
        m.set(1, 2, 5.0);
        m.set(0, 2, 100.0);
        m
    }

    #[test]
    fn finds_the_obvious_relay() {
        let m = tiv_triangle();
        let t = DetourTable::compute(&m, 2, 1);
        let best = t.best(0, 2).unwrap();
        assert_eq!(best.relay, 1);
        assert_eq!(best.via_ms, 10.0);
        // Symmetric matrix: the reverse direction agrees.
        assert_eq!(t.best(2, 0), Some(best));
        // The short edges only have the long detour through 2 (or 0).
        assert_eq!(t.best(0, 1), Some(Relay { relay: 2, via_ms: 105.0 }));
        // Self pairs have no detour.
        assert_eq!(t.best(0, 0), None);
    }

    #[test]
    fn gain_measures_savings() {
        let m = tiv_triangle();
        let t = DetourTable::compute(&m, 1, 1);
        let g = t.gain(&m, 0, 2).unwrap();
        assert_eq!(g.saving_ms, 90.0);
        assert!((g.saving_frac - 0.9).abs() < 1e-12);
        assert!(g.beneficial());
        // The short edge's best detour is worse than direct.
        let g01 = t.gain(&m, 0, 1).unwrap();
        assert_eq!(g01.saving_ms, -100.0);
        assert!(!g01.beneficial());
    }

    #[test]
    fn k_best_are_sorted_and_distinct() {
        let m = DelayMatrix::from_complete_fn(20, |i, j| ((i * 7 + j * 13) % 50) as f64 + 1.0);
        let t = DetourTable::compute(&m, 5, 1);
        for a in 0..20 {
            for c in 0..20 {
                let rs: Vec<Relay> = t.relays(a, c).collect();
                if a == c {
                    assert!(rs.is_empty());
                    continue;
                }
                assert_eq!(rs.len(), 5);
                for w in rs.windows(2) {
                    assert!(
                        w[0].via_ms < w[1].via_ms
                            || (w[0].via_ms == w[1].via_ms && w[0].relay < w[1].relay),
                        "ranking out of order at ({a},{c}): {w:?}"
                    );
                }
                for r in &rs {
                    assert!(r.relay != a && r.relay != c);
                    assert_eq!(r.via_ms, m.raw(a, r.relay) + m.raw(r.relay, c));
                }
            }
        }
    }

    #[test]
    fn best_detour_matches_table_rank_zero() {
        let m = DelayMatrix::from_complete_fn(30, |i, j| ((i * 31 + j * 17) % 97) as f64 + 0.5);
        let t = DetourTable::compute(&m, 3, 1);
        for a in 0..30 {
            for c in 0..30 {
                assert_eq!(best_detour(&m, a, c), t.best(a, c), "pair ({a},{c})");
            }
        }
    }

    #[test]
    fn equal_via_ties_break_by_relay_id() {
        // Relays 1 and 2 both give via = 20; rank 0 must be relay 1.
        let mut m = DelayMatrix::new(4);
        m.set(0, 3, 100.0);
        m.set(0, 1, 10.0);
        m.set(1, 3, 10.0);
        m.set(0, 2, 10.0);
        m.set(2, 3, 10.0);
        let t = DetourTable::compute(&m, 2, 1);
        let rs: Vec<Relay> = t.relays(0, 3).collect();
        assert_eq!(rs[0], Relay { relay: 1, via_ms: 20.0 });
        assert_eq!(rs[1], Relay { relay: 2, via_ms: 20.0 });
        assert_eq!(best_detour(&m, 0, 3), Some(rs[0]));
    }

    #[test]
    fn missing_hops_are_skipped() {
        let mut m = tiv_triangle();
        m.clear(0, 1); // relay 1 loses a hop: (0,2) now has no detour
        let t = DetourTable::compute(&m, 2, 1);
        assert_eq!(t.best(0, 2), None);
        assert_eq!(best_detour(&m, 0, 2), None);
        // Gain over an unmeasured direct edge is also None.
        let mut m2 = tiv_triangle();
        m2.clear(0, 2);
        let t2 = DetourTable::compute(&m2, 2, 1);
        assert!(t2.best(0, 2).is_some());
        assert_eq!(t2.gain(&m2, 0, 2), None);
    }

    #[test]
    fn parallel_matches_serial() {
        let m = DelayMatrix::from_fn(40, |i, j| {
            ((i + j) % 7 != 0).then(|| ((i * 13 + j * 29) % 83) as f64 + 1.0)
        });
        let serial = DetourTable::compute(&m, 4, 1);
        for t in [2usize, 4, 7] {
            let par = DetourTable::compute(&m, 4, t);
            assert_eq!(par.relays, serial.relays, "relays diverged at {t} threads");
            let sb: Vec<u64> = serial.via.iter().map(|v| v.to_bits()).collect();
            let pb: Vec<u64> = par.via.iter().map(|v| v.to_bits()).collect();
            assert_eq!(pb, sb, "via delays diverged at {t} threads");
        }
    }

    #[test]
    fn repair_rows_matches_full_recompute() {
        let mut m = DelayMatrix::from_fn(50, |i, j| {
            ((i + j) % 9 != 0).then(|| ((i * 17 + j * 23) % 71) as f64 + 1.0)
        });
        let mut table = DetourTable::compute(&m, 3, 2);
        // Grow, shrink, clear and newly-measure edges; the dirty set is
        // the incident nodes.
        m.set(2, 30, 500.0);
        m.set(11, 44, 0.5);
        m.clear(30, 12);
        m.set(9, 18, 3.0);
        let dirty = vec![2usize, 9, 11, 12, 18, 30, 44];
        for threads in [1usize, 2, 4] {
            let mut repaired = table.clone();
            repaired.repair_rows(&m, &dirty, threads);
            let full = DetourTable::compute(&m, 3, 1);
            assert_eq!(repaired.relays, full.relays, "relays diverged at {threads} threads");
            let rb: Vec<u64> = repaired.via.iter().map(|v| v.to_bits()).collect();
            let fb: Vec<u64> = full.via.iter().map(|v| v.to_bits()).collect();
            assert_eq!(rb, fb, "via delays diverged at {threads} threads");
        }
        // An empty dirty set is a no-op.
        let before = table.relays.clone();
        table.repair_rows(&DelayMatrix::from_fn(50, |_, _| Some(1.0)), &[], 1);
        assert_eq!(table.relays, before);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn repair_rejects_unsorted_dirty_set() {
        let m = tiv_triangle();
        let mut t = DetourTable::compute(&m, 1, 1);
        t.repair_rows(&m, &[1, 1], 1);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn repair_rejects_out_of_range_row() {
        let m = tiv_triangle();
        let mut t = DetourTable::compute(&m, 1, 1);
        t.repair_rows(&m, &[3], 1);
    }

    #[test]
    fn empty_and_tiny_matrices() {
        let t = DetourTable::compute(&DelayMatrix::new(0), 3, 1);
        assert!(t.is_empty());
        let t2 = DetourTable::compute(&DelayMatrix::new(2), 3, 1);
        assert_eq!(t2.best(0, 1), None); // no third node to relay through
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_rejected() {
        DetourTable::compute(&DelayMatrix::new(3), 0, 1);
    }

    #[test]
    fn sampled_detour_at_full_k_equals_exact() {
        use delayspace::synth::{Dataset, InternetDelaySpace};
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(40).build(23);
        let m = s.matrix();
        for (a, c) in [(0usize, 1usize), (3, 17), (30, 9), (12, 12)] {
            let exact = best_detour(m, a, c);
            let sampled = sampled_detour(m, a, c, m.len(), 7);
            assert_eq!(sampled, exact, "full-sample detour diverged on ({a},{c})");
        }
    }

    #[test]
    fn sampled_detour_is_bit_identical_on_sparse_store() {
        use delayspace::store::SparseDelayStore;
        use delayspace::synth::{Dataset, InternetDelaySpace};
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(50).build(19);
        let m = s.matrix();
        let sparse = SparseDelayStore::from_matrix(m);
        for seed in 0..6u64 {
            for (a, c) in [(0usize, 5usize), (7, 44), (20, 21)] {
                let dense = sampled_detour(m, a, c, 8, seed);
                let via_sparse = sampled_detour(&sparse, a, c, 8, seed);
                match (dense, via_sparse) {
                    (Some(d), Some(s)) => {
                        assert_eq!(d.relay, s.relay);
                        assert_eq!(d.via_ms.to_bits(), s.via_ms.to_bits());
                    }
                    (d, s) => assert_eq!(d, s),
                }
            }
        }
    }

    #[test]
    fn sampled_detour_is_deterministic_and_skips_missing_hops() {
        let mut m = DelayMatrix::new(5);
        m.set(0, 1, 50.0);
        m.set(0, 2, 10.0);
        m.set(1, 2, 10.0);
        // Relays 3 and 4 have no measured hops: NaN via, always skipped.
        let a = sampled_detour(&m, 0, 1, 3, 42);
        let b = sampled_detour(&m, 0, 1, 3, 42);
        assert_eq!(a, b, "same seed must give the same relay");
        if let Some(r) = a {
            assert_eq!(r.relay, 2);
            assert_eq!(r.via_ms, 20.0);
        }
        assert_eq!(sampled_detour(&m, 1, 1, 3, 42), None);
        assert_eq!(sampled_detour(&DelayMatrix::new(2), 0, 1, 3, 42), None);
    }
}
