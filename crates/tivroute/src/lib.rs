//! # `tivroute` — TIV-exploiting one-hop detour routing
//!
//! The paper's central payoff is that triangle inequality violations
//! are not just noise to be tolerated: when
//! `d(a,c) > d(a,b) + d(b,c)`, the violation is an *opportunity* — an
//! overlay can beat the direct path `a→c` by relaying through `b`.
//! The rest of this workspace measures TIVs ([`tivcore::severity`]),
//! embeds around them (`vivaldi`, `ides`) and serves edge estimates
//! (`tivserve`); this crate is the application layer that finally
//! *uses* a TIV to route around it.
//!
//! Two entry points:
//!
//! * [`DetourTable::compute`] — the batch kernel: for every ordered
//!   pair `(a, c)`, the `k` relays minimizing `d(a,b) + d(b,c)`,
//!   parallelized over source rows with [`tivpar`] and **bit-identical
//!   at every thread count** (pinned by `tivoid`'s `route_equivalence`
//!   integration test).
//! * [`best_detour`] — the single-pair scan the serving layer's
//!   `route_batch` query runs; it returns exactly the table's rank-0
//!   relay (same ordering, same tie-break), so cached online answers
//!   and offline tables never disagree.
//!
//! [`DetourStats`] summarises the gains: the CDF of latency savings,
//! the fraction of edges with a beneficial detour, and savings binned
//! by TIV severity. By construction, an edge has a beneficial one-hop
//! detour **iff** its severity is positive — the severity metric counts
//! witnesses `b` with `d(a,b) + d(b,c) < d(a,c)`, and each such witness
//! is a relay that beats the direct path — so the detour layer is the
//! operational face of the severity analysis.
//!
//! ```
//! use delayspace::matrix::DelayMatrix;
//! use tivroute::{best_detour, DetourTable};
//!
//! // A severe TIV: the long edge (0,2) has a 10 ms relay path via 1.
//! let mut m = DelayMatrix::new(3);
//! m.set(0, 1, 5.0);
//! m.set(1, 2, 5.0);
//! m.set(0, 2, 100.0);
//!
//! let table = DetourTable::compute(&m, 2, 1);
//! let gain = table.gain(&m, 0, 2).unwrap();
//! assert_eq!(gain.relay, 1);
//! assert_eq!(gain.saving_ms, 90.0);
//! assert_eq!(best_detour(&m, 0, 2).unwrap().relay, 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod detour;
pub mod stats;

pub use detour::{best_detour, sampled_detour, DetourGain, DetourTable, Relay};
pub use stats::{DetourStats, SavingsBySeverity};
