//! Detour-gain statistics: how much latency the one-hop detours
//! recover, and how the gains line up with TIV severity.
//!
//! The headline numbers the `repro route` figure plots:
//!
//! * the CDF of per-edge latency savings (absolute and relative to the
//!   direct delay) when each edge takes its best one-hop detour;
//! * the fraction of measured edges with a *beneficial* detour — by
//!   construction exactly the edges with positive TIV severity;
//! * relative savings binned by severity, showing the paper's payoff:
//!   the more severe the violation, the more latency a detour recovers.

use crate::detour::DetourTable;
use delayspace::matrix::DelayMatrix;
use delayspace::stats::{BinnedStats, Cdf};
use tivcore::severity::Severity;

/// Relative latency savings attributed to TIV-severity bins — the one
/// aggregation surface behind both the offline detour figure
/// ([`DetourStats::savings_vs_severity`]) and the live application
/// workloads of the chaos harness, which attribute TIV-aware routing
/// wins to the severity of the edge they avoided.
#[derive(Clone, Debug)]
pub struct SavingsBySeverity {
    /// Samples attributed (severity was present and finite).
    pub samples: usize,
    /// The binned distribution: severity on x, relative saving on y.
    pub binned: BinnedStats,
}

impl SavingsBySeverity {
    /// Bins `(severity, relative saving)` samples into `bin`-wide
    /// severity bins up to `max`. Non-finite severities are skipped,
    /// never folded in as garbage — the same discipline
    /// [`DetourStats::compute`] applies to partially-covered severity
    /// matrices.
    pub fn from_samples(samples: Vec<(f64, f64)>, bin: f64, max: f64) -> Self {
        let kept: Vec<(f64, f64)> = samples.into_iter().filter(|(s, _)| s.is_finite()).collect();
        SavingsBySeverity { samples: kept.len(), binned: BinnedStats::build(kept, bin, max) }
    }

    /// `(bin midpoint, median saving)` for every populated bin — the
    /// paper's savings-vs-severity series.
    pub fn median_series(&self) -> Vec<(f64, f64)> {
        self.binned.median_series()
    }
}

/// Aggregated detour gains over the measured edges of a delay space.
#[derive(Clone, Debug)]
pub struct DetourStats {
    /// Measured unordered edges considered.
    pub edges: usize,
    /// Edges with at least one fully-measured two-hop path.
    pub routable: usize,
    /// Edges whose best detour strictly beats the direct path.
    pub beneficial: usize,
    /// Per-edge absolute saving in ms, clamped at 0 (an edge whose best
    /// detour loses to the direct path saves nothing — it simply keeps
    /// the direct path). One sample per measured edge.
    pub abs_savings_ms: Cdf,
    /// Per-edge relative saving (fraction of the direct delay), clamped
    /// at 0. One sample per measured edge.
    pub rel_savings: Cdf,
    /// Relative saving binned by the edge's TIV severity, when a
    /// severity matrix was supplied.
    pub savings_vs_severity: Option<BinnedStats>,
}

impl DetourStats {
    /// Computes the gain statistics of `table` against the matrix it
    /// was built from. When `sev` is given (computed from the same
    /// matrix), relative savings are additionally binned by severity
    /// in `sev_bin`-wide bins up to `sev_max`; edges whose severity is
    /// missing (NaN — e.g. measured after the severity pass) are
    /// skipped in that series, never folded in as garbage.
    pub fn compute(
        table: &DetourTable,
        m: &DelayMatrix,
        sev: Option<&Severity>,
        sev_bin: f64,
        sev_max: f64,
    ) -> Self {
        let mut edges = 0usize;
        let mut routable = 0usize;
        let mut beneficial = 0usize;
        let mut abs = Vec::new();
        let mut rel = Vec::new();
        let mut by_sev = Vec::new();
        for (i, j, _) in m.edges() {
            edges += 1;
            let (abs_s, rel_s) = match table.gain(m, i, j) {
                Some(g) => {
                    routable += 1;
                    if g.beneficial() {
                        beneficial += 1;
                    }
                    (g.saving_ms.max(0.0), g.saving_frac.max(0.0))
                }
                None => (0.0, 0.0),
            };
            abs.push(abs_s);
            rel.push(rel_s);
            if let Some(sev) = sev {
                // severity() is None for NaN entries, which keeps
                // partially-covered severity matrices safe here.
                if let Some(s) = sev.severity(i, j) {
                    by_sev.push((s, rel_s));
                }
            }
        }
        DetourStats {
            edges,
            routable,
            beneficial,
            abs_savings_ms: Cdf::from_samples(abs),
            rel_savings: Cdf::from_samples(rel),
            savings_vs_severity: sev
                .map(|_| SavingsBySeverity::from_samples(by_sev, sev_bin, sev_max).binned),
        }
    }

    /// Fraction of measured edges with a beneficial detour (the paper
    /// reports the fraction of violating edges; these coincide).
    pub fn beneficial_fraction(&self) -> f64 {
        if self.edges == 0 {
            0.0
        } else {
            self.beneficial as f64 / self.edges as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayspace::synth::{Dataset, InternetDelaySpace};

    fn ds2(n: usize, seed: u64) -> DelayMatrix {
        InternetDelaySpace::preset(Dataset::Ds2).with_nodes(n).build(seed).into_matrix()
    }

    #[test]
    fn beneficial_iff_severity_positive() {
        // The detour layer is the operational face of the severity
        // metric: an edge has a beneficial one-hop detour exactly when
        // its severity is positive.
        let m = ds2(80, 7);
        let table = DetourTable::compute(&m, 1, 0);
        let sev = Severity::compute(&m, 0);
        for (i, j, _) in m.edges() {
            let g = table.gain(&m, i, j).expect("complete matrix is routable");
            let s = sev.severity(i, j).expect("measured edge has severity");
            assert_eq!(g.beneficial(), s > 0.0, "edge ({i},{j}): saving {} sev {s}", g.saving_ms);
        }
    }

    #[test]
    fn stats_count_and_bound_savings() {
        let m = ds2(60, 3);
        let table = DetourTable::compute(&m, 2, 0);
        let sev = Severity::compute(&m, 0);
        let stats = DetourStats::compute(&table, &m, Some(&sev), 0.05, 2.0);
        assert_eq!(stats.edges, m.edges().count());
        assert_eq!(stats.routable, stats.edges, "complete matrix: every edge routable");
        assert!(stats.beneficial > 0, "DS2 has TIVs, so some edges must gain");
        assert!(stats.beneficial < stats.edges);
        assert_eq!(stats.rel_savings.len(), stats.edges);
        // Relative savings live in [0, 1): a detour can't be negative
        // length.
        let (lo, hi) = stats.rel_savings.range().unwrap();
        assert!(lo >= 0.0 && hi < 1.0, "relative savings out of range: [{lo}, {hi}]");
        let frac = stats.beneficial_fraction();
        assert!((0.0..=1.0).contains(&frac));
        // Fraction of edges saving nothing matches the CDF at 0.
        assert!((stats.rel_savings.eval(0.0) - (1.0 - frac)).abs() < 1e-12);
        assert!(stats.savings_vs_severity.is_some());
    }

    #[test]
    fn savings_grow_with_severity() {
        let m = ds2(150, 21);
        let table = DetourTable::compute(&m, 1, 0);
        let sev = Severity::compute(&m, 0);
        let stats = DetourStats::compute(&table, &m, Some(&sev), 0.05, 2.0);
        let series = stats.savings_vs_severity.as_ref().unwrap().median_series();
        assert!(series.len() >= 3, "need a few populated severity bins");
        // The paper's payoff: median savings in the most severe bin
        // beat the least severe bin.
        let first = series.first().unwrap().1;
        let last = series.last().unwrap().1;
        assert!(last > first, "savings should grow with severity: {first} .. {last}");
    }

    #[test]
    fn sparse_matrix_has_unroutable_edges() {
        // A 3-node path graph: edge (0,1) has relay 2 only via the
        // unmeasured (0,2) hop — no detour, but the edge still counts.
        let mut m = DelayMatrix::new(3);
        m.set(0, 1, 5.0);
        m.set(1, 2, 5.0);
        let table = DetourTable::compute(&m, 1, 1);
        let stats = DetourStats::compute(&table, &m, None, 0.05, 2.0);
        assert_eq!(stats.edges, 2);
        assert_eq!(stats.routable, 0);
        assert_eq!(stats.beneficial, 0);
        assert_eq!(stats.beneficial_fraction(), 0.0);
        assert!(stats.savings_vs_severity.is_none());
    }
}
