//! Minimal dense linear algebra for matrix factorization.
//!
//! IDES needs only a handful of operations — matrix/vector products,
//! transposed products, outer-product deflation — so we implement them
//! directly rather than pulling in a linear-algebra crate (DESIGN.md
//! keeps the dependency set to the allowed list).
//!
//! The matrix products ([`mul`], [`t_mul`], [`mul_t`]) and the
//! matrix–vector products parallelise over output rows (or elements)
//! with [`tivpar`]; each output element keeps the serial loop's exact
//! accumulation order, so every product is bit-identical at every
//! thread count.

/// A dense row-major matrix of f64.
#[derive(Clone, Debug, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Mat::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// A row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `y = self · x` (matrix–vector product). Serial; see
    /// [`Mat::matvec_threaded`] for the parallel form.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        self.matvec_threaded(x, 1)
    }

    /// `y = self · x` with up to `threads` workers
    /// ([`tivpar::resolve_threads`] semantics). Each output element is
    /// one row dot product, so the result is bit-identical to
    /// [`Mat::matvec`] at every thread count.
    pub fn matvec_threaded(&self, x: &[f64], threads: usize) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let threads = effective_threads(self.rows * self.cols, threads);
        tivpar::par_map_rows(self.rows, threads, |r| {
            self.row(r).iter().zip(x).map(|(a, b)| a * b).sum()
        })
    }

    /// `y = selfᵀ · x` (transposed matrix–vector product). Serial; see
    /// [`Mat::matvec_t_threaded`] for the parallel form.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            for (c, &a) in self.row(r).iter().enumerate() {
                y[c] += a * xr;
            }
        }
        y
    }

    /// `y = selfᵀ · x` with up to `threads` workers. Materialises the
    /// transpose in a blocked scratch pass (see [`Mat::transposed`])
    /// and computes each output element as a contiguous row dot —
    /// unit-stride loads that autovectorise, instead of the strided
    /// column walk the first generation did per element. `y[c]` still
    /// accumulates over rows in ascending order, exactly as
    /// [`Mat::matvec_t`] does, so the result is bit-identical to the
    /// serial product at every thread count. With one effective worker
    /// it delegates to the row-sweeping [`Mat::matvec_t`] — same
    /// accumulation order, same bits — and skips the scratch.
    pub fn matvec_t_threaded(&self, x: &[f64], threads: usize) -> Vec<f64> {
        let threads = effective_threads(self.rows * self.cols, threads);
        if tivpar::resolve_threads(threads) <= 1 {
            return self.matvec_t(x);
        }
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let t = self.transposed();
        tivpar::par_map_rows(self.cols, threads, |c| dot(t.row(c), x))
    }

    /// The transpose, materialised into a fresh row-major matrix in
    /// cache-line-sized tiles (32×32 f64s — each tile reads and writes
    /// four cache lines per row, so both the source and destination
    /// stay resident while the tile flips, instead of one of the two
    /// streaming a full row of cache misses per element).
    pub fn transposed(&self) -> Mat {
        const TILE: usize = 32;
        let mut t = Mat::zeros(self.cols, self.rows);
        for r0 in (0..self.rows).step_by(TILE) {
            let r1 = (r0 + TILE).min(self.rows);
            for c0 in (0..self.cols).step_by(TILE) {
                let c1 = (c0 + TILE).min(self.cols);
                for r in r0..r1 {
                    for c in c0..c1 {
                        t.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        t
    }

    /// Subtracts the rank-1 outer product `σ·u·vᵀ` in place (deflation).
    pub fn deflate(&mut self, sigma: f64, u: &[f64], v: &[f64]) {
        assert_eq!(u.len(), self.rows);
        assert_eq!(v.len(), self.cols);
        for (r, &ur) in u.iter().enumerate() {
            let row = self.row_mut(r);
            for (c, &vc) in v.iter().enumerate() {
                row[c] -= sigma * ur * vc;
            }
        }
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }
}

/// Products below this many multiply-adds run serially regardless of
/// the requested worker count: thread-spawn overhead would dominate
/// (the rank×rank Gram matrices of an NMF update are the typical
/// case). Safe for determinism — every product here is bit-identical
/// to its serial form, and the gate depends only on the input shapes.
const MIN_PAR_WORK: usize = 1 << 15;

/// Forces small products onto the calling thread.
fn effective_threads(work: usize, threads: usize) -> usize {
    if work < MIN_PAR_WORK {
        1
    } else {
        threads
    }
}

/// `AB` for A (n×k), B (k×m) → n×m, parallel over output rows with up
/// to `threads` workers. Per output row the accumulation order matches
/// the textbook serial triple loop, so the product is bit-identical at
/// every thread count.
pub fn mul(a: &Mat, b: &Mat, threads: usize) -> Mat {
    assert_eq!(a.cols(), b.rows(), "mul dimension mismatch");
    let threads = effective_threads(a.rows() * a.cols() * b.cols(), threads);
    let mut out = Mat::zeros(a.rows(), b.cols());
    tivpar::par_fill_rows(&mut out.data, a.rows, threads, |r, orow| {
        for (i, &av) in a.row(r).iter().enumerate() {
            for (o, &bv) in orow.iter_mut().zip(b.row(i)) {
                *o += av * bv;
            }
        }
    });
    out
}

/// `AᵀB` for A (n×k), B (n×m) → k×m, parallel over the k output rows.
/// Output row `i` scans all n rows of both inputs, accumulating in
/// ascending row order — bit-identical at every thread count.
pub fn t_mul(a: &Mat, b: &Mat, threads: usize) -> Mat {
    assert_eq!(a.rows(), b.rows(), "t_mul dimension mismatch");
    let threads = effective_threads(a.rows() * a.cols() * b.cols(), threads);
    let mut out = Mat::zeros(a.cols(), b.cols());
    tivpar::par_fill_rows(&mut out.data, a.cols, threads, |i, orow| {
        for r in 0..a.rows() {
            let av = a.get(r, i);
            for (o, &bv) in orow.iter_mut().zip(b.row(r)) {
                *o += av * bv;
            }
        }
    });
    out
}

/// `ABᵀ` for A (n×m), B (k×m) → n×k, parallel over output rows; each
/// element is one row-dot-row product.
pub fn mul_t(a: &Mat, b: &Mat, threads: usize) -> Mat {
    assert_eq!(a.cols(), b.cols(), "mul_t dimension mismatch");
    let threads = effective_threads(a.rows() * a.cols() * b.rows(), threads);
    let mut out = Mat::zeros(a.rows(), b.rows());
    tivpar::par_fill_rows(&mut out.data, a.rows, threads, |r, orow| {
        for (c, o) in orow.iter_mut().enumerate() {
            *o = dot(a.row(r), b.row(c));
        }
    });
    out
}

/// Euclidean norm of a vector.
pub fn norm(v: &[f64]) -> f64 {
    v.iter().map(|a| a * a).sum::<f64>().sqrt()
}

/// Normalises `v` in place; returns its prior norm. Vectors of
/// negligible norm are left unchanged (returns 0).
pub fn normalize(v: &mut [f64]) -> f64 {
    let n = norm(v);
    if n > 1e-300 {
        for a in v.iter_mut() {
            *a /= n;
        }
        n
    } else {
        0.0
    }
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Solves the square system `A·x = b` by Gaussian elimination with
/// partial pivoting. Returns `None` for (numerically) singular `A`.
/// Used for the tiny (rank × rank) normal-equation solves of
/// landmark-based IDES.
pub fn solve(a: &Mat, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "solve needs a square matrix");
    assert_eq!(b.len(), n, "rhs dimension mismatch");
    // Augmented working copy.
    let mut w: Vec<Vec<f64>> = (0..n)
        .map(|r| {
            let mut row = a.row(r).to_vec();
            row.push(b[r]);
            row
        })
        .collect();
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n).max_by(|&x, &y| w[x][col].abs().total_cmp(&w[y][col].abs()))?;
        if w[pivot][col].abs() < 1e-12 {
            return None;
        }
        w.swap(col, pivot);
        let (pivot_rows, rest) = w.split_at_mut(col + 1);
        let pivot_row = &pivot_rows[col];
        for row in rest.iter_mut() {
            let f = row[col] / pivot_row[col];
            for (rk, pk) in row[col..=n].iter_mut().zip(&pivot_row[col..=n]) {
                *rk -= f * pk;
            }
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut v = w[col][n];
        for k in (col + 1)..n {
            v -= w[col][k] * x[k];
        }
        x[col] = v / w[col][col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_computes_product() {
        let m = Mat::from_fn(2, 3, |r, c| (r * 3 + c) as f64); // [[0,1,2],[3,4,5]]
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 12.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn deflation_removes_rank_one() {
        // m = 2 * u vᵀ with unit u, v.
        let u = [1.0, 0.0];
        let v = [0.6, 0.8];
        let mut m = Mat::from_fn(2, 2, |r, c| 2.0 * u[r] * v[c]);
        m.deflate(2.0, &u, &v);
        assert!(m.frobenius() < 1e-12);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut v = vec![3.0, 4.0];
        let n = normalize(&mut v);
        assert_eq!(n, 5.0);
        assert!((norm(&v) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_checks_dims() {
        Mat::zeros(2, 3).matvec(&[1.0]);
    }

    #[test]
    fn products_match_naive_and_are_thread_invariant() {
        let a = Mat::from_fn(17, 5, |r, c| ((r * 3 + c * 7) % 13) as f64 - 4.0);
        let b = Mat::from_fn(5, 11, |r, c| ((r * 5 + c * 2) % 9) as f64 * 0.25);
        let naive = Mat::from_fn(17, 11, |r, c| (0..5).map(|i| a.get(r, i) * b.get(i, c)).sum());
        for t in [1usize, 2, 4, 7] {
            assert_eq!(mul(&a, &b, t), mul(&a, &b, 1));
            assert_eq!(t_mul(&a, &a, t), t_mul(&a, &a, 1));
            assert_eq!(mul_t(&b, &b, t), mul_t(&b, &b, 1));
        }
        let p = mul(&a, &b, 4);
        for r in 0..17 {
            for c in 0..11 {
                assert!((p.get(r, c) - naive.get(r, c)).abs() < 1e-12);
            }
        }
        // Transposed product against its definition (AᵀC needs matching
        // row counts).
        let c2 = Mat::from_fn(17, 11, |r, c| ((r + 3 * c) % 7) as f64 - 2.0);
        let tp = t_mul(&a, &c2, 3);
        for i in 0..5 {
            for j in 0..11 {
                let want: f64 = (0..17).map(|r| a.get(r, i) * c2.get(r, j)).sum();
                assert!((tp.get(i, j) - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn threaded_matvecs_are_bit_identical_to_serial() {
        let m = Mat::from_fn(23, 9, |r, c| 1.0 / ((r + 2 * c + 1) as f64));
        let x: Vec<f64> = (0..9).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..23).map(|i| (i as f64).cos()).collect();
        for t in [2usize, 4, 7] {
            assert_eq!(m.matvec_threaded(&x, t), m.matvec(&x));
            assert_eq!(m.matvec_t_threaded(&y, t), m.matvec_t(&y));
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        // A = [[2,1],[1,3]], x = [1,-2] → b = [0,-5].
        let a = Mat::from_fn(2, 2, |r, c| [[2.0, 1.0], [1.0, 3.0]][r][c]);
        let x = solve(&a, &[0.0, -5.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_detects_singular() {
        let a = Mat::from_fn(2, 2, |r, _| if r == 0 { 1.0 } else { 2.0 });
        assert!(solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn solve_larger_system_roundtrips() {
        let a = Mat::from_fn(5, 5, |r, c| if r == c { 10.0 } else { ((r * 3 + c * 7) % 5) as f64 });
        let x_true: Vec<f64> = (0..5).map(|i| i as f64 - 2.0).collect();
        let b = a.matvec(&x_true);
        let x = solve(&a, &b).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-9);
        }
    }
}
