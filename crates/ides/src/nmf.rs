//! Non-negative matrix factorization by Lee–Seung multiplicative
//! updates.
//!
//! The second factorization IDES supports: `D ≈ W·H` with `W, H ≥ 0`,
//! minimising the Frobenius reconstruction error. Non-negativity is a
//! natural fit for delays (predictions can never go negative, unlike
//! SVD's).
//!
//! The update loop is built on the parallel products of [`linalg`]
//! ([`linalg::mul`], [`linalg::t_mul`], [`linalg::mul_t`]), so a fit is
//! bit-identical at every thread count.

use crate::linalg::{self, Mat};
use delayspace::rng;
use rand::Rng;

/// Result of an NMF run: `D ≈ W·H`, `W` is rows×k, `H` is k×cols.
#[derive(Clone, Debug)]
pub struct Nmf {
    /// Left factor (rows × k), non-negative.
    pub w: Mat,
    /// Right factor (k × cols), non-negative.
    pub h: Mat,
    /// Final Frobenius reconstruction error.
    pub residual: f64,
}

/// Runs `iters` multiplicative updates for a rank-`k` factorization
/// with automatic parallelism — [`factorize_threaded`] with
/// `threads == 0`.
///
/// # Panics
/// Panics if `a` contains negative entries or `k` is zero.
pub fn factorize(a: &Mat, k: usize, iters: usize, seed: u64) -> Nmf {
    factorize_threaded(a, k, iters, seed, 0)
}

/// [`factorize`] with an explicit worker count
/// ([`tivpar::resolve_threads`] semantics). The O(n·m·k) products of
/// every update run row-parallel; the fit is a pure function of
/// `(a, k, iters, seed)`, bit-identical at every thread count.
///
/// # Panics
/// Panics if `a` contains negative entries or `k` is zero.
pub fn factorize_threaded(a: &Mat, k: usize, iters: usize, seed: u64, threads: usize) -> Nmf {
    assert!(k > 0, "rank must be positive");
    let (n, m) = (a.rows(), a.cols());
    for r in 0..n {
        assert!(a.row(r).iter().all(|&v| v >= 0.0), "NMF input must be non-negative");
    }
    let mut rng = rng::sub_rng(seed, "nmf");
    // Initialise with the scale of the data so the first updates are
    // well-conditioned.
    let mean = (0..n).flat_map(|r| a.row(r)).sum::<f64>() / (n * m) as f64;
    let scale = (mean / k as f64).max(1e-6).sqrt();
    let mut w = Mat::from_fn(n, k, |_, _| rng.gen_range(0.1..1.0) * scale);
    let mut h = Mat::from_fn(k, m, |_, _| rng.gen_range(0.1..1.0) * scale);

    const EPS: f64 = 1e-12;
    for _ in 0..iters {
        // H ← H ∘ (WᵀA) / (WᵀWH)
        let wt_a = linalg::t_mul(&w, a, threads); // k×m
        let wt_w = linalg::t_mul(&w, &w, threads); // k×k
        let wt_w_h = linalg::mul(&wt_w, &h, threads); // k×m
        for r in 0..k {
            for c in 0..m {
                let v = h.get(r, c) * wt_a.get(r, c) / (wt_w_h.get(r, c) + EPS);
                h.set(r, c, v);
            }
        }
        // W ← W ∘ (AHᵀ) / (WHHᵀ)
        let a_ht = linalg::mul_t(a, &h, threads); // n×k
        let h_ht = linalg::mul_t(&h, &h, threads); // k×k
        let w_h_ht = linalg::mul(&w, &h_ht, threads); // n×k
        for r in 0..n {
            for c in 0..k {
                let v = w.get(r, c) * a_ht.get(r, c) / (w_h_ht.get(r, c) + EPS);
                w.set(r, c, v);
            }
        }
    }

    // Per-row partial residuals folded in row order: deterministic in
    // the thread count (see `tivpar::par_sum_rows`).
    let resid = tivpar::par_sum_rows(n, threads, |r| {
        let mut row_sum = 0.0;
        for c in 0..m {
            let p: f64 = (0..k).map(|x| w.get(r, x) * h.get(x, c)).sum();
            row_sum += (a.get(r, c) - p).powi(2);
        }
        row_sum
    });
    Nmf { w, h, residual: resid.sqrt() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_stay_nonnegative() {
        let a = Mat::from_fn(8, 8, |r, c| ((r * 3 + c * 5) % 13) as f64);
        let nmf = factorize(&a, 3, 100, 1);
        for r in 0..8 {
            assert!(nmf.w.row(r).iter().all(|&v| v >= 0.0));
        }
        for r in 0..3 {
            assert!(nmf.h.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn residual_decreases_with_iterations() {
        let a = Mat::from_fn(10, 10, |r, c| (r as f64 - c as f64).abs() * 4.0 + 2.0);
        let early = factorize(&a, 4, 5, 2).residual;
        let late = factorize(&a, 4, 200, 2).residual;
        assert!(late < early, "NMF did not converge: {late} !< {early}");
    }

    #[test]
    fn low_rank_nonnegative_matrix_fits_well() {
        // A = W0 H0 exactly, rank 2.
        let w0 = Mat::from_fn(6, 2, |r, c| ((r + c) % 3 + 1) as f64);
        let h0 = Mat::from_fn(2, 6, |r, c| ((2 * r + c) % 4 + 1) as f64);
        let a = Mat::from_fn(6, 6, |r, c| (0..2).map(|x| w0.get(r, x) * h0.get(x, c)).sum());
        let nmf = factorize(&a, 2, 500, 3);
        let rel = nmf.residual / a.frobenius();
        assert!(rel < 0.05, "relative residual {rel} too high for exact rank-2 data");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_input_rejected() {
        let a = Mat::from_fn(2, 2, |r, c| if r == c { -1.0 } else { 1.0 });
        factorize(&a, 1, 10, 1);
    }

    #[test]
    fn threaded_fit_is_bit_identical_to_serial() {
        let a = Mat::from_fn(24, 24, |r, c| ((r * 5 + c * 11) % 17) as f64 + 0.5);
        let serial = factorize_threaded(&a, 4, 40, 9, 1);
        for t in [2usize, 4, 7] {
            let par = factorize_threaded(&a, 4, 40, 9, t);
            assert_eq!(par.w, serial.w);
            assert_eq!(par.h, serial.h);
            assert_eq!(par.residual.to_bits(), serial.residual.to_bits());
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Mat::from_fn(5, 5, |r, c| ((r + c) % 7) as f64);
        let x = factorize(&a, 2, 50, 7);
        let y = factorize(&a, 2, 50, 7);
        assert_eq!(x.residual, y.residual);
    }
}
