//! The IDES predictor: per-node incoming/outgoing vectors.
//!
//! IDES (Mao & Saul \[16\]) drops the metric-space constraint: node `i`
//! gets an outgoing vector `o_i` and an incoming vector `n_j`, and the
//! predicted delay is the inner product `o_i · n_j`. Because inner
//! products need not satisfy the triangle inequality, the model can in
//! principle represent TIVs — Section 4.2 of the paper tests whether
//! that helps neighbor selection (Figure 15; it does not).

use crate::linalg::Mat;
use crate::nmf;
use crate::svd;
use delayspace::matrix::{DelayMatrix, NodeId};
use delayspace::stats::Cdf;

/// Which factorization backs the model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Factorization {
    /// Truncated SVD (`D ≈ U Σ Vᵀ`, vectors `U√Σ` / `V√Σ`).
    Svd,
    /// Non-negative matrix factorization (Lee–Seung updates).
    Nmf,
}

/// A fitted IDES model.
#[derive(Clone, Debug)]
pub struct IdesModel {
    /// Outgoing vectors, one row per node (n × d).
    out: Mat,
    /// Incoming vectors, one row per node (n × d).
    inc: Mat,
}

impl IdesModel {
    /// Fits an IDES model of `rank` dimensions to a delay matrix.
    ///
    /// Missing entries are imputed with the mean of the measured
    /// delays of the two endpoints (the standard completion used when
    /// factorising incomplete delay matrices).
    pub fn fit(m: &DelayMatrix, rank: usize, kind: Factorization, seed: u64) -> Self {
        assert!(rank > 0, "rank must be positive");
        assert!(m.len() > 1, "need at least two nodes");
        let dense = impute(m);
        match kind {
            Factorization::Svd => {
                let triplets = svd::truncated_svd(&dense, rank, 60, seed);
                let k = triplets.len();
                let n = m.len();
                let mut out = Mat::zeros(n, k);
                let mut inc = Mat::zeros(n, k);
                for (x, t) in triplets.iter().enumerate() {
                    let s = t.sigma.sqrt();
                    for i in 0..n {
                        out.set(i, x, t.u[i] * s);
                        inc.set(i, x, t.v[i] * s);
                    }
                }
                IdesModel { out, inc }
            }
            Factorization::Nmf => {
                let f = nmf::factorize(&dense, rank, 200, seed);
                let n = m.len();
                let out = f.w.clone();
                // H is k×n; incoming vector of j is column j of H.
                let inc = Mat::from_fn(n, rank, |j, x| f.h.get(x, j));
                IdesModel { out, inc }
            }
        }
    }

    /// Fits the *deployable* landmark-based IDES: factorize the
    /// `landmarks × landmarks` delay sub-matrix, then solve each
    /// ordinary node's outgoing/incoming vectors by least squares
    /// against its measured delays **to the landmarks only** (the
    /// architecture of Mao & Saul \[16\]; each node needs O(landmarks)
    /// measurements rather than the full matrix).
    ///
    /// This is the variant Section 4.2 evaluates — the full-matrix
    /// [`IdesModel::fit`] is an oracle upper bound by comparison.
    ///
    /// # Panics
    /// Panics when `landmark_count < rank` (the least-squares system
    /// would be underdetermined) or the matrix is smaller than the
    /// landmark set.
    pub fn fit_landmarks(m: &DelayMatrix, rank: usize, landmark_count: usize, seed: u64) -> Self {
        use crate::linalg::{solve, Mat};
        use delayspace::rng;
        assert!(rank > 0, "rank must be positive");
        assert!(landmark_count >= rank, "need at least `rank` landmarks");
        assert!(m.len() > landmark_count, "matrix smaller than landmark set");
        let n = m.len();
        let mut r = rng::sub_rng(seed, "ides/landmarks");
        let landmarks = rng::sample_indices(&mut r, n, landmark_count);

        // Factorize the landmark sub-matrix (imputing its gaps).
        let sub = m.submatrix(&landmarks);
        let dense = impute(&sub);
        let triplets = svd::truncated_svd(&dense, rank, 60, seed);
        let k = triplets.len().max(1);
        let l = landmarks.len();
        let mut out_l = Mat::zeros(l, k);
        let mut in_l = Mat::zeros(l, k);
        for (x, t) in triplets.iter().enumerate() {
            let s = t.sigma.sqrt();
            for i in 0..l {
                out_l.set(i, x, t.u[i] * s);
                in_l.set(i, x, t.v[i] * s);
            }
        }

        // Normal-equation matrices, shared by every ordinary node:
        // out_x = argmin ‖In_L·out_x − d(x,L)‖  →  (In_Lᵀ In_L)·out_x = In_Lᵀ d.
        let gram =
            |f: &Mat| Mat::from_fn(k, k, |a, b| (0..l).map(|i| f.get(i, a) * f.get(i, b)).sum());
        let gram_in = gram(&in_l);
        let gram_out = gram(&out_l);

        let mut out = Mat::zeros(n, k);
        let mut inc = Mat::zeros(n, k);
        for node in 0..n {
            if let Some(pos) = landmarks.iter().position(|&lm| lm == node) {
                for x in 0..k {
                    out.set(node, x, out_l.get(pos, x));
                    inc.set(node, x, in_l.get(pos, x));
                }
                continue;
            }
            // Delays to the landmarks (gaps filled with the node's mean).
            let mut d: Vec<f64> = landmarks.iter().map(|&lm| m.raw(node, lm)).collect();
            let mean = {
                let known: Vec<f64> = d.iter().copied().filter(|v| !v.is_nan()).collect();
                if known.is_empty() {
                    0.0
                } else {
                    known.iter().sum::<f64>() / known.len() as f64
                }
            };
            for v in &mut d {
                if v.is_nan() {
                    *v = mean;
                }
            }
            // Right-hand sides In_Lᵀ·d and Out_Lᵀ·d.
            let rhs = |f: &Mat| -> Vec<f64> {
                (0..k).map(|x| (0..l).map(|i| f.get(i, x) * d[i]).sum()).collect()
            };
            let ox = solve(&gram_in, &rhs(&in_l)).unwrap_or_else(|| vec![0.0; k]);
            let ix = solve(&gram_out, &rhs(&out_l)).unwrap_or_else(|| vec![0.0; k]);
            for x in 0..k {
                out.set(node, x, ox[x]);
                inc.set(node, x, ix[x]);
            }
        }
        IdesModel { out, inc }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.out.rows()
    }

    /// True when the model is empty (never; API symmetry).
    pub fn is_empty(&self) -> bool {
        self.out.rows() == 0
    }

    /// Model rank.
    pub fn rank(&self) -> usize {
        self.out.cols()
    }

    /// Predicted delay `o_i · n_j`, clamped at zero (SVD products can go
    /// negative; a negative delay prediction is meaningless).
    pub fn predicted(&self, i: NodeId, j: NodeId) -> f64 {
        if i == j {
            return 0.0;
        }
        let p: f64 = self.out.row(i).iter().zip(self.inc.row(j)).map(|(a, b)| a * b).sum();
        p.max(0.0)
    }

    /// CDF of absolute prediction error over measured edges.
    pub fn abs_error_cdf(&self, m: &DelayMatrix) -> Cdf {
        Cdf::from_samples(m.edges().map(|(i, j, d)| (self.predicted(i, j) - d).abs()))
    }

    /// Among `candidates`, the node with the smallest predicted delay to
    /// `client`.
    pub fn select_nearest(&self, client: NodeId, candidates: &[NodeId]) -> Option<NodeId> {
        candidates
            .iter()
            .copied()
            .filter(|&c| c != client)
            .min_by(|&a, &b| self.predicted(client, a).total_cmp(&self.predicted(client, b)))
    }
}

/// Fills missing entries with the mean of the endpoints' measured
/// delays (falling back to the global mean for isolated nodes).
fn impute(m: &DelayMatrix) -> Mat {
    let n = m.len();
    let mut row_mean = vec![0.0; n];
    let mut global_sum = 0.0;
    let mut global_cnt = 0usize;
    for (i, mean) in row_mean.iter_mut().enumerate() {
        let mut sum = 0.0;
        let mut cnt = 0usize;
        for j in 0..n {
            if i != j {
                if let Some(d) = m.get(i, j) {
                    sum += d;
                    cnt += 1;
                }
            }
        }
        *mean = if cnt > 0 { sum / cnt as f64 } else { f64::NAN };
        global_sum += sum;
        global_cnt += cnt;
    }
    let global = if global_cnt > 0 { global_sum / global_cnt as f64 } else { 0.0 };
    Mat::from_fn(n, n, |i, j| {
        if i == j {
            0.0
        } else {
            m.get(i, j).unwrap_or_else(|| {
                let (a, b) = (row_mean[i], row_mean[j]);
                match (a.is_nan(), b.is_nan()) {
                    (false, false) => 0.5 * (a + b),
                    (false, true) => a,
                    (true, false) => b,
                    (true, true) => global,
                }
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayspace::synth::{Dataset, InternetDelaySpace};

    #[test]
    fn fits_structured_matrix_reasonably() {
        let space = InternetDelaySpace::preset(Dataset::Euclidean).with_nodes(60).build(3);
        let m = space.matrix();
        let model = IdesModel::fit(m, 8, Factorization::Svd, 1);
        let med = model.abs_error_cdf(m).median();
        let scale = Cdf::from_samples(m.edge_delays()).median();
        assert!(med < scale * 0.4, "median error {med} too large relative to median delay {scale}");
    }

    #[test]
    fn predictions_are_nonnegative_and_zero_on_diagonal() {
        let space = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(40).build(5);
        for kind in [Factorization::Svd, Factorization::Nmf] {
            let model = IdesModel::fit(space.matrix(), 5, kind, 2);
            for i in 0..40 {
                assert_eq!(model.predicted(i, i), 0.0);
                for j in 0..40 {
                    assert!(model.predicted(i, j) >= 0.0);
                }
            }
        }
    }

    #[test]
    fn ides_can_represent_a_tiv() {
        // A 3-node TIV: 5/5/100. A 2-D inner-product model can express
        // it exactly (unlike any metric embedding); verify a good fit.
        let mut m = DelayMatrix::new(3);
        m.set(0, 1, 5.0);
        m.set(1, 2, 5.0);
        m.set(0, 2, 100.0);
        let model = IdesModel::fit(&m, 3, Factorization::Svd, 4);
        // Total absolute error across the 3 edges must be far below the
        // ~63 ms floor a 1-D/2-D Euclidean embedding is forced into.
        let total: f64 = [(0, 1, 5.0), (1, 2, 5.0), (0, 2, 100.0)]
            .iter()
            .map(|&(i, j, d)| (model.predicted(i, j) - d).abs())
            .sum();
        assert!(total < 25.0, "IDES should fit a TIV triangle, total err {total}");
    }

    #[test]
    fn nmf_variant_runs_and_selects() {
        let space = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(30).build(6);
        let model = IdesModel::fit(space.matrix(), 4, Factorization::Nmf, 3);
        let sel = model.select_nearest(0, &[5, 10, 15]).unwrap();
        assert!([5, 10, 15].contains(&sel));
    }

    #[test]
    fn handles_missing_entries() {
        let space =
            InternetDelaySpace::preset(Dataset::Ds2).with_nodes(40).with_missing(0.1).build(7);
        let model = IdesModel::fit(space.matrix(), 5, Factorization::Svd, 4);
        assert_eq!(model.len(), 40);
        assert!(model.predicted(0, 1).is_finite());
    }

    #[test]
    fn landmark_model_predicts_reasonably_on_metric_space() {
        let space = InternetDelaySpace::preset(Dataset::Euclidean).with_nodes(80).build(9);
        let m = space.matrix();
        let model = IdesModel::fit_landmarks(m, 8, 24, 2);
        let med = model.abs_error_cdf(m).median();
        let scale = Cdf::from_samples(m.edge_delays()).median();
        assert!(med < scale * 0.6, "landmark IDES error {med} too large vs median delay {scale}");
    }

    #[test]
    fn landmark_model_worse_than_oracle_on_tiv_space() {
        // The full-matrix fit sees everything; the landmark fit sees
        // O(L) measurements per node, so its error must be at least
        // comparable and typically worse on a TIV-rich space.
        let space = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(100).build(11);
        let m = space.matrix();
        let oracle = IdesModel::fit(m, 10, Factorization::Svd, 3).abs_error_cdf(m).median();
        let landmark = IdesModel::fit_landmarks(m, 10, 30, 3).abs_error_cdf(m).median();
        assert!(
            landmark >= oracle * 0.8,
            "landmark fit ({landmark}) implausibly beats the oracle ({oracle})"
        );
    }

    #[test]
    fn landmark_vectors_match_factorization_for_landmarks() {
        let space = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(60).build(13);
        let m = space.matrix();
        let model = IdesModel::fit_landmarks(m, 6, 20, 5);
        // Landmarks predict each other with the factorization quality.
        assert!(model.predicted(0, 1).is_finite());
        assert_eq!(model.len(), 60);
    }

    #[test]
    #[should_panic(expected = "at least `rank` landmarks")]
    fn too_few_landmarks_rejected() {
        let space = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(40).build(1);
        IdesModel::fit_landmarks(space.matrix(), 10, 5, 1);
    }

    #[test]
    fn rank_is_capped_by_matrix() {
        let mut m = DelayMatrix::new(3);
        m.set(0, 1, 5.0);
        m.set(1, 2, 6.0);
        m.set(0, 2, 7.0);
        let model = IdesModel::fit(&m, 10, Factorization::Svd, 1);
        assert!(model.rank() <= 3);
    }
}
