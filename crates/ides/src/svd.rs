//! Truncated singular value decomposition by power iteration with
//! deflation.
//!
//! IDES factorises the delay matrix `D ≈ U·Σ·Vᵀ` and keeps the top `d`
//! singular triplets. Power iteration on `DᵀD` (implemented as repeated
//! `v ← normalize(Dᵀ(D·v))`) converges to the dominant right singular
//! vector; deflating `σ·u·vᵀ` and repeating extracts the next one.
//! O(d · iterations · n²), amply fast at our scales, and accurate enough
//! for a predictor whose input is itself noisy measurement data.

use crate::linalg::{norm, normalize, Mat};
use delayspace::rng::{self, DetRng};
use rand::Rng;

/// One singular triplet.
#[derive(Clone, Debug)]
pub struct SingularTriplet {
    /// Singular value (non-negative).
    pub sigma: f64,
    /// Left singular vector (length = rows).
    pub u: Vec<f64>,
    /// Right singular vector (length = cols).
    pub v: Vec<f64>,
}

/// Computes the top `k` singular triplets of `a` with automatic
/// parallelism — [`truncated_svd_threaded`] with `threads == 0`.
///
/// `iters` power iterations per triplet (50 is plenty for the
/// well-separated spectra of delay matrices). Stops early when the
/// residual matrix is numerically zero.
pub fn truncated_svd(a: &Mat, k: usize, iters: usize, seed: u64) -> Vec<SingularTriplet> {
    truncated_svd_threaded(a, k, iters, seed, 0)
}

/// [`truncated_svd`] with an explicit worker count
/// ([`tivpar::resolve_threads`] semantics). The O(n²) matrix–vector
/// products inside the power iteration run row-parallel; they are
/// bit-identical to the serial products, so the decomposition does not
/// depend on the thread count.
pub fn truncated_svd_threaded(
    a: &Mat,
    k: usize,
    iters: usize,
    seed: u64,
    threads: usize,
) -> Vec<SingularTriplet> {
    assert!(k > 0, "rank must be positive");
    let mut work = a.clone();
    let mut rng = rng::sub_rng(seed, "svd");
    let mut out = Vec::with_capacity(k);
    for _ in 0..k.min(a.rows().min(a.cols())) {
        let Some(t) = dominant_triplet(&work, iters, &mut rng, threads) else { break };
        work.deflate(t.sigma, &t.u, &t.v);
        out.push(t);
    }
    out
}

fn dominant_triplet(
    a: &Mat,
    iters: usize,
    rng: &mut DetRng,
    threads: usize,
) -> Option<SingularTriplet> {
    let cols = a.cols();
    let mut v: Vec<f64> = (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    if normalize(&mut v) == 0.0 {
        return None;
    }
    let mut sigma = 0.0;
    for _ in 0..iters {
        let av = a.matvec_threaded(&v, threads);
        let mut next = a.matvec_t_threaded(&av, threads);
        let n = normalize(&mut next);
        if n == 0.0 {
            return None; // residual is (numerically) zero
        }
        v = next;
        sigma = norm(&a.matvec_threaded(&v, threads));
    }
    if sigma < 1e-10 {
        return None;
    }
    let mut u = a.matvec_threaded(&v, threads);
    for x in u.iter_mut() {
        *x /= sigma;
    }
    Some(SingularTriplet { sigma, u, v })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn rank_one_matrix_is_recovered_exactly() {
        // A = 3 * u vᵀ with unit u, v.
        let u = [0.6, 0.8];
        let v = [1.0 / 2f64.sqrt(), -1.0 / 2f64.sqrt()];
        let a = Mat::from_fn(2, 2, |r, c| 3.0 * u[r] * v[c]);
        let svd = truncated_svd(&a, 2, 60, 1);
        assert_eq!(svd.len(), 1, "rank-1 matrix must stop after one triplet");
        assert!(approx(svd[0].sigma, 3.0, 1e-8));
    }

    #[test]
    fn diagonal_matrix_singular_values() {
        let a = Mat::from_fn(3, 3, |r, c| if r == c { [5.0, 3.0, 1.0][r] } else { 0.0 });
        let svd = truncated_svd(&a, 3, 80, 2);
        assert_eq!(svd.len(), 3);
        assert!(approx(svd[0].sigma, 5.0, 1e-6));
        assert!(approx(svd[1].sigma, 3.0, 1e-6));
        assert!(approx(svd[2].sigma, 1.0, 1e-6));
    }

    #[test]
    fn reconstruction_error_decreases_with_rank() {
        // A structured symmetric matrix.
        let a = Mat::from_fn(10, 10, |r, c| ((r as f64 - c as f64).abs() * 7.0) + (r + c) as f64);
        let err_at = |k: usize| {
            let svd = truncated_svd(&a, k, 60, 3);
            let mut resid = a.clone();
            for t in &svd {
                resid.deflate(t.sigma, &t.u, &t.v);
            }
            resid.frobenius()
        };
        let e1 = err_at(1);
        let e3 = err_at(3);
        let e6 = err_at(6);
        assert!(e3 < e1, "rank 3 ({e3}) not better than rank 1 ({e1})");
        assert!(e6 < e3, "rank 6 ({e6}) not better than rank 3 ({e3})");
    }

    #[test]
    fn singular_vectors_are_unit_norm() {
        let a = Mat::from_fn(6, 6, |r, c| ((r * 13 + c * 7) % 11) as f64);
        for t in truncated_svd(&a, 4, 60, 4) {
            assert!(approx(norm(&t.u), 1.0, 1e-8));
            assert!(approx(norm(&t.v), 1.0, 1e-8));
            assert!(t.sigma > 0.0);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Mat::from_fn(5, 5, |r, c| (r * 5 + c) as f64);
        let s1 = truncated_svd(&a, 2, 50, 9);
        let s2 = truncated_svd(&a, 2, 50, 9);
        assert_eq!(s1[0].u, s2[0].u);
        assert_eq!(s1[1].v, s2[1].v);
    }
}
