//! # `ides` — delay prediction by matrix factorization
//!
//! A from-scratch implementation of IDES (Mao & Saul, IMC 2004), the
//! strawman of Section 4.2 of the IMC'07 TIV paper. IDES assigns each
//! node an *outgoing* and an *incoming* vector and predicts the delay
//! `i → j` as their inner product — a model that is not constrained by
//! the triangle inequality and so can, in principle, represent TIVs.
//!
//! The factorization backends (truncated [`svd`] via power iteration
//! with deflation, and Lee–Seung [`nmf`]) are implemented here directly
//! on a minimal dense-matrix type ([`linalg`]); no external linear
//! algebra crates are used.
//!
//! ```
//! use delayspace::synth::{Dataset, InternetDelaySpace};
//! use ides::{Factorization, IdesModel};
//!
//! let space = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(40).build(1);
//! let model = IdesModel::fit(space.matrix(), 8, Factorization::Svd, 1);
//! let predicted = model.predicted(0, 1);
//! assert!(predicted >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod linalg;
pub mod model;
pub mod nmf;
pub mod svd;

pub use linalg::Mat;
pub use model::{Factorization, IdesModel};
pub use nmf::Nmf;
pub use svd::{truncated_svd, SingularTriplet};
