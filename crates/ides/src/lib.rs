//! # `ides` — delay prediction by matrix factorization
//!
//! A from-scratch implementation of IDES (Mao & Saul, IMC 2004), the
//! strawman of Section 4.2 of the IMC'07 TIV paper. IDES assigns each
//! node an *outgoing* and an *incoming* vector and predicts the delay
//! `i → j` as their inner product — a model that is not constrained by
//! the triangle inequality and so can, in principle, represent TIVs.
//!
//! * [`linalg`] — the minimal dense-matrix type ([`Mat`]) plus the
//!   parallel products and solvers everything else is built on; no
//!   external linear-algebra crates are used,
//! * [`svd`] — truncated SVD by power iteration with deflation,
//! * [`nmf`] — non-negative factorization by Lee–Seung multiplicative
//!   updates,
//! * [`model`] — the [`IdesModel`] predictor over either backend,
//!   including the deployable landmark variant the paper evaluates.
//!
//! The factorization inner loops run on the [`tivpar`] kernels layer
//! (see [`nmf::factorize_threaded`] and [`svd::truncated_svd_threaded`])
//! and are bit-identical at every thread count.
//!
//! ```
//! use delayspace::synth::{Dataset, InternetDelaySpace};
//! use ides::{Factorization, IdesModel};
//!
//! let space = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(40).build(1);
//! let model = IdesModel::fit(space.matrix(), 8, Factorization::Svd, 1);
//! let predicted = model.predicted(0, 1);
//! assert!(predicted >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod linalg;
pub mod model;
pub mod nmf;
pub mod svd;

pub use linalg::Mat;
pub use model::{Factorization, IdesModel};
pub use nmf::{factorize_threaded, Nmf};
pub use svd::{truncated_svd, truncated_svd_threaded, SingularTriplet};
