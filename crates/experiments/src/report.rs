//! EXPERIMENTS.md generation: run every figure, compare against the
//! paper's claims, and emit a markdown report.
//!
//! The reproduction criterion (DESIGN.md) is *shape*, not absolute
//! numbers: who wins, by roughly what factor, where the crossovers and
//! trends fall. Each figure carries the paper's claim; the report
//! places the measured notes beside it.

use crate::lab::Lab;
use crate::suite;
use std::fmt::Write as _;

/// The paper's headline claim for each experiment id.
pub fn paper_claim(id: &str) -> &'static str {
    match id {
        "fig1" => {
            "Severity of an edge is proportional to the area above ratio 1 \
                   under its triangulation-ratio CDF."
        }
        "fig2" => {
            "TIVs present in all four data sets; most edges cause slight \
                   violations, a small fraction severe ones; long-tailed CDFs. \
                   Meridian set has the heaviest tail, p2psim the mildest."
        }
        "fig3" => {
            "Intra-cluster edges cause fewer/milder TIVs than cross-cluster \
                   edges (diagonal blocks darker); DS² mean #TIVs: 80 within vs \
                   206 across."
        }
        "fig4" => {
            "Longer edges violate more, but irregularly; DS² median severity \
                   peaks near 500–600 ms and falls at the far right."
        }
        "fig5" => "p2psim: the mildest severity-vs-delay profile (max ≈ 3).",
        "fig6" => {
            "Meridian set: severity grows towards long edges, heaviest tail \
                   (up to ≈ 20)."
        }
        "fig7" => "PlanetLab: moderate-heavy, irregular profile (up to ≈ 14).",
        "fig8" => {
            "Edges past ~200 ms are mostly cross-cluster; shortest paths grow \
                   slowly between 300–550 ms (short detours exist → severe TIVs) \
                   and jump past ~550 ms (genuinely far edges → few TIVs)."
        }
        "fig9" => {
            "Nearest-pair edges are only *slightly* more similar in severity \
                   than random pairs: proximity does not predict TIV."
        }
        "fig10" => {
            "On a 5/5/100 ms TIV triangle Vivaldi cannot converge: endless \
                    oscillation, persistent residual error."
        }
        "fig11" => {
            "Predictions oscillate over large ranges at every edge length \
                    (even 10 ms edges can swing by ~175 ms); median movement \
                    1.61 ms/step, p90 6.18."
        }
        "fig12" => {
            "Worked example: two TIVs misfile N in A's and B's rings, so the \
                    query returns B although N is 1 ms from the target."
        }
        "fig13" => {
            "Ring placement errors are frequent at β = 0.5 (10–30% below \
                    400 ms, worse beyond); larger β tolerates more at more probing \
                    cost."
        }
        "fig14" => {
            "Idealized Meridian (all members, no termination) is near-perfect \
                    on a Euclidean matrix but misses ~13% of cases on DS²."
        }
        "fig15" => {
            "IDES, though free of the metric constraint, is *worse* than \
                    Vivaldi for neighbor selection."
        }
        "fig16" => "LAT improves Vivaldi only slightly.",
        "fig17" => {
            "Globally removing the worst-20% severity edges improves Vivaldi \
                    only marginally — TIV is too widespread."
        }
        "fig18" => {
            "The same filter *degrades* Meridian: rings become \
                    under-populated (by up to 50%) and queries strand."
        }
        "fig19" => {
            "Shrunk edges (prediction ratio « 1) carry the severe TIVs; \
                    severity ≈ 0 beyond ratio 2 — the alert signal."
        }
        "fig20" => {
            "Tight thresholds are precise: at 0.1, worst-1% accuracy 0.92; \
                    at 0.6, ~4% of edges alerted, 65% of them in the worst 20%."
        }
        "fig21" => {
            "Recall mirrors accuracy: tight = low recall, loose = high; a \
                    usable operating point exists near 0.6."
        }
        "fig22" => {
            "Dynamic-neighbor iterations drive the severity of the spring \
                    set towards zero."
        }
        "fig23" => {
            "Neighbor-selection penalty improves iteration over iteration; \
                    clearly better than original Vivaldi by iteration 10."
        }
        "fig24" => {
            "TIV-aware Meridian improves the normal setting at ≈ +6% \
                    on-demand probes."
        }
        "fig25" => {
            "In the all-members setting TIV-aware Meridian beats even the \
                    no-termination idealized run, at ≈ +5% probes."
        }
        "ablation-filter" => {
            "(extension) penalty vs filter fraction: no fraction \
                    rescues Vivaldi the way neighbor rewiring does."
        }
        "ablation-dims" => {
            "(extension) extra embedding dimensions do not absorb \
                    TIVs."
        }
        "ablation-beta" => "(extension) β buys tolerance linearly in probes.",
        "ablation-tivmeridian" => {
            "(extension) decomposition of the Section 5.3 \
                    mechanism into dual placement and query restart."
        }
        "ablation-coords" => {
            "(extension) every predictor in the workspace on one \
                    selection task; all metric systems pay the TIV tax vs the \
                    oracle."
        }
        _ => "(no recorded claim)",
    }
}

/// Runs every figure and ablation in `lab` and renders the markdown
/// report.
pub fn generate(lab: &mut Lab) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# EXPERIMENTS — paper vs measured\n\n\
         Generated by `repro --report` at scale `{:?}`, seed {}.\n\n\
         Reproduction criterion: **shape** — who wins, by roughly what\n\
         factor, where trends and crossovers fall — not absolute numbers\n\
         (the substrate is a synthetic delay space, per DESIGN.md §1).\n\
         Full per-series data: `results/figN.csv` (Small) and\n\
         `results_full/figN.csv` (paper-scale sizes).\n",
        lab.scale(),
        lab.seed()
    );
    for id in suite::ALL_IDS.iter().chain(suite::ABLATION_IDS.iter()) {
        let Some(res) = suite::run(id, lab) else { continue };
        let fig = res.figure;
        let _ = writeln!(out, "## {id} — {}\n", fig.title);
        let _ = writeln!(out, "**Paper:** {}\n", paper_claim(id));
        let _ = writeln!(out, "**Measured:**");
        if fig.notes.is_empty() {
            let _ = writeln!(out, "- (see `{id}.csv`)");
        }
        for note in &fig.notes {
            let _ = writeln!(out, "- {note}");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExperimentScale;

    #[test]
    fn every_id_has_a_claim() {
        for id in suite::ALL_IDS.iter().chain(suite::ABLATION_IDS.iter()) {
            assert_ne!(paper_claim(id), "(no recorded claim)", "missing claim for {id}");
        }
    }

    #[test]
    fn report_contains_all_sections() {
        let mut lab = Lab::new(ExperimentScale::Tiny, 42);
        let report = generate(&mut lab);
        for id in suite::ALL_IDS {
            assert!(report.contains(&format!("## {id} — ")), "missing section {id}");
        }
        assert!(report.contains("**Paper:**"));
        assert!(report.contains("**Measured:**"));
    }
}
