//! The `repro sparse` experiment: how much severity accuracy does
//! witness sampling give up, and how much memory does the sparse store
//! give back?
//!
//! The million-node regime (ROADMAP item 3) rests on two substitutions:
//! the dense `n² × 8`-byte [`DelayMatrix`](delayspace::matrix::DelayMatrix)
//! becomes an observed-edge [`SparseDelayStore`], and the exact O(n)
//! per-edge severity scan becomes a k-witness sampled estimate with a
//! 95% confidence interval ([`tivcore::estimate_severity_ci`]). This
//! experiment quantifies both trades in the style of the paper's
//! Figures 20/21 (estimated vs measured quality):
//!
//! * **accuracy** — over a dense DS²-style space where the exact
//!   severity ([`tivcore::Severity::compute`]) is the ground truth,
//!   sweep the witness sampling rate and report the mean absolute
//!   estimation error, the mean 95% CI half-width, and the fraction of
//!   edges whose exact severity the CI actually covers;
//! * **scaling** — build sparse stores at growing n with a fixed
//!   observed degree and report their resident bytes and build time
//!   against the `n² × 8` bytes the dense matrix would need.
//!
//! Everything except wall-clock build time is a pure function of the
//! options: the accuracy figure's CSV is bit-reproducible.

use crate::figure::{Figure, Series};
use delayspace::rng::{sample_indices, sub_rng};
use delayspace::store::{DelayStore, NodePair, SparseDelayStore};
use delayspace::synth::{Dataset, InternetDelaySpace};
use rand::Rng;
use std::fmt;
use tivcore::{estimate_severity_ci_batch, Severity};

/// Witness sampling rates the accuracy sweep visits, as fractions of
/// the `n − 2` witness population. The last entry is full sampling,
/// where the estimate must collapse onto the exact severity.
pub const SAMPLING_RATES: [f64; 6] = [0.05, 0.1, 0.2, 0.4, 0.7, 1.0];

/// Everything the `sparse` subcommand can tune.
#[derive(Clone, Copy, Debug)]
pub struct SparseOptions {
    /// Nodes in the dense ground-truth delay space the accuracy sweep
    /// runs over (exact severity is O(n³) — keep this modest).
    pub nodes: usize,
    /// Measured pairs evaluated at each sampling rate.
    pub pairs: usize,
    /// Largest sparse store the scaling pass builds; it also builds
    /// half and a quarter of this size to expose the growth curve.
    pub scale_nodes: usize,
    /// Observed edges per node in the scaling builds (the sparse
    /// store's memory is `Θ(n · degree)` against dense `Θ(n²)`).
    pub degree: usize,
    /// Worker threads (0 = auto, `tivpar::resolve_threads`).
    pub threads: usize,
    /// Master seed (space, pair sample, witness samples, edge synth).
    pub seed: u64,
}

impl Default for SparseOptions {
    fn default() -> Self {
        SparseOptions {
            nodes: 256,
            pairs: 400,
            scale_nodes: 50_000,
            degree: 32,
            threads: 0,
            seed: 42,
        }
    }
}

/// One sampling rate's accuracy aggregate.
#[derive(Clone, Copy, Debug)]
pub struct AccuracyRow {
    /// Witness sampling rate `k / (n − 2)`.
    pub rate: f64,
    /// Witnesses sampled per edge at this rate.
    pub witnesses: usize,
    /// Mean `|estimate − exact|` over the evaluated pairs.
    pub mean_abs_err: f64,
    /// Mean 95% CI half-width over the evaluated pairs.
    pub mean_ci_halfwidth: f64,
    /// Fraction of pairs whose exact severity lies inside the CI.
    pub coverage: f64,
}

/// One scaling size's cost record.
#[derive(Clone, Copy, Debug)]
pub struct ScalingRow {
    /// Nodes in this sparse store.
    pub nodes: usize,
    /// Unordered observed edges it holds.
    pub edges: usize,
    /// Resident bytes of the sparse store.
    pub sparse_bytes: usize,
    /// Bytes the dense matrix would need (`n² × 8`).
    pub dense_bytes: usize,
    /// Wall milliseconds to build the store from its edge list.
    pub build_ms: f64,
}

/// The outcome `repro sparse` prints and writes.
#[derive(Clone, Debug)]
pub struct SparseReport {
    /// The options the run used.
    pub opts: SparseOptions,
    /// Accuracy aggregates, one per entry of [`SAMPLING_RATES`].
    pub rows: Vec<AccuracyRow>,
    /// Scaling records at the three sizes, ascending.
    pub scaling: Vec<ScalingRow>,
    /// The figures (`sparse-accuracy`, `sparse-scaling`), ready for
    /// CSV export.
    pub figures: Vec<Figure>,
}

impl fmt::Display for SparseReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = &self.opts;
        writeln!(
            f,
            "sparse severity: {} nodes dense ground truth, {} pairs, seed {}",
            o.nodes,
            self.rows.first().map_or(0, |_| o.pairs),
            o.seed
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  rate {:>4.0}% (k = {:>4}): mean |err| {:.5}, CI half-width {:.5}, \
                 coverage {:.1}%",
                r.rate * 100.0,
                r.witnesses,
                r.mean_abs_err,
                r.mean_ci_halfwidth,
                r.coverage * 100.0
            )?;
        }
        for s in &self.scaling {
            writeln!(
                f,
                "  n = {:>7}: sparse {:.1} MB vs dense {:.1} MB ({:.1}x smaller), \
                 built in {:.0} ms ({} edges)",
                s.nodes,
                s.sparse_bytes as f64 / 1e6,
                s.dense_bytes as f64 / 1e6,
                s.dense_bytes as f64 / s.sparse_bytes.max(1) as f64,
                s.build_ms,
                s.edges
            )?;
        }
        for fig in &self.figures {
            write!(f, "{}", fig.summary())?;
        }
        Ok(())
    }
}

/// Decodes index `idx` of the unordered-pair enumeration `(i < j)` over
/// `n` nodes back into the pair.
fn pair_of_index(n: usize, mut idx: usize) -> NodePair {
    let mut i = 0usize;
    while idx >= n - 1 - i {
        idx -= n - 1 - i;
        i += 1;
    }
    (i, i + 1 + idx)
}

/// Samples `count` distinct unordered pairs over `n` nodes, ascending.
fn sample_pairs(n: usize, count: usize, seed: u64) -> Vec<NodePair> {
    let total = n * (n - 1) / 2;
    let mut r = sub_rng(seed, "sparse/pairs");
    let mut pairs: Vec<NodePair> = sample_indices(&mut r, total, count.min(total))
        .into_iter()
        .map(|idx| pair_of_index(n, idx))
        .collect();
    pairs.sort_unstable();
    pairs
}

/// Synthesises the scaling edge list: `degree` observed edges per node
/// with plausible positive delays, deterministic in the seed.
fn scale_edges(n: usize, degree: usize, seed: u64) -> Vec<(usize, usize, f64)> {
    let mut r = sub_rng(seed, "sparse/scale");
    let mut edges = Vec::with_capacity(n * degree);
    for i in 0..n {
        for p in sample_indices(&mut r, n - 1, degree.min(n - 1)) {
            let j = if p >= i { p + 1 } else { p };
            let d: f64 = 5.0 + r.gen_range(0.0..95.0);
            edges.push((i, j, d));
        }
    }
    edges
}

/// Runs the full sparse experiment.
pub fn run_sparse(opts: &SparseOptions) -> SparseReport {
    assert!(opts.nodes >= 4, "the accuracy sweep needs at least 4 nodes");
    assert!(opts.pairs >= 1, "nothing to evaluate without pairs");
    assert!(opts.scale_nodes >= 8, "the scaling pass needs at least 8 nodes");
    assert!(opts.degree >= 1, "scaling stores need at least one edge per node");

    // --- Accuracy: exact vs sampled severity on a dense ground truth.
    let matrix = InternetDelaySpace::preset(Dataset::Ds2)
        .with_nodes(opts.nodes)
        .build(opts.seed)
        .into_matrix();
    let n = matrix.len();
    let store = SparseDelayStore::from_matrix(&matrix);
    let exact = Severity::compute(&matrix, opts.threads);
    let pairs: Vec<NodePair> = sample_pairs(n, opts.pairs, opts.seed)
        .into_iter()
        .filter(|&(a, c)| exact.severity(a, c).is_some())
        .collect();
    assert!(!pairs.is_empty(), "the sampled pairs must include measured edges");

    let mut rows = Vec::with_capacity(SAMPLING_RATES.len());
    for &rate in &SAMPLING_RATES {
        let witnesses = (((n - 2) as f64 * rate).round() as usize).clamp(2, n - 2);
        let estimates =
            estimate_severity_ci_batch(&store, &pairs, witnesses, opts.seed, opts.threads);
        let (mut err, mut half, mut covered) = (0.0f64, 0.0f64, 0usize);
        for (&(a, c), est) in pairs.iter().zip(&estimates) {
            let truth = exact.severity(a, c).expect("pairs were filtered to measured edges");
            let est = est.expect("measured edges estimate to Some");
            err += (est.point - truth).abs();
            half += (est.ci_hi - est.ci_lo) / 2.0;
            // Full sampling visits the witnesses in sample order while
            // the exact kernel scans ascending, so the two can differ in
            // the last bits; a relative slack keeps coverage honest.
            let tol = 1e-9 * (1.0 + truth.abs());
            if truth >= est.ci_lo - tol && truth <= est.ci_hi + tol {
                covered += 1;
            }
        }
        let m = pairs.len() as f64;
        rows.push(AccuracyRow {
            rate,
            witnesses,
            mean_abs_err: err / m,
            mean_ci_halfwidth: half / m,
            coverage: covered as f64 / m,
        });
    }

    // --- Scaling: sparse store cost at growing n vs the dense n².
    let sizes = [opts.scale_nodes / 4, opts.scale_nodes / 2, opts.scale_nodes];
    let mut scaling = Vec::with_capacity(sizes.len());
    for &sn in &sizes {
        let sn = sn.max(8);
        if scaling.iter().any(|s: &ScalingRow| s.nodes == sn) {
            continue;
        }
        let edges = scale_edges(sn, opts.degree, opts.seed);
        let started = std::time::Instant::now();
        let built = SparseDelayStore::from_edges(sn, edges.iter().copied());
        let build_ms = started.elapsed().as_secs_f64() * 1e3;
        scaling.push(ScalingRow {
            nodes: sn,
            edges: built.edge_count(),
            sparse_bytes: built.memory_bytes(),
            dense_bytes: sn * sn * std::mem::size_of::<f64>(),
            build_ms,
        });
    }

    // --- Figures.
    let accuracy_fig = Figure::new(
        "sparse-accuracy",
        "Sampled severity vs exact (DS2)",
        "witness sampling rate k/(n-2)",
        "mean error / CI width / coverage",
    )
    .with_series(Series::new(
        "mean |estimate - exact|",
        rows.iter().map(|r| (r.rate, r.mean_abs_err)).collect(),
    ))
    .with_series(Series::new(
        "mean 95% CI half-width",
        rows.iter().map(|r| (r.rate, r.mean_ci_halfwidth)).collect(),
    ))
    .with_series(Series::new(
        "CI coverage of exact",
        rows.iter().map(|r| (r.rate, r.coverage)).collect(),
    ))
    .with_note(format!(
        "{} pairs over a {}-node DS2 space, seed {}; exact severity from the full O(n) \
         witness scan",
        pairs.len(),
        n,
        opts.seed
    ));
    let scaling_fig = Figure::new(
        "sparse-scaling",
        "Sparse store cost vs dense matrix",
        "nodes",
        "resident MB (and build ms)",
    )
    .with_series(Series::new(
        "sparse store MB",
        scaling.iter().map(|s| (s.nodes as f64, s.sparse_bytes as f64 / 1e6)).collect(),
    ))
    .with_series(Series::new(
        "dense matrix MB",
        scaling.iter().map(|s| (s.nodes as f64, s.dense_bytes as f64 / 1e6)).collect(),
    ))
    .with_series(Series::new(
        "sparse build ms",
        scaling.iter().map(|s| (s.nodes as f64, s.build_ms)).collect(),
    ))
    .with_note(format!(
        "{} observed edges per node; sparse memory grows Θ(n·degree) against dense Θ(n²)",
        opts.degree
    ));

    SparseReport { opts: *opts, rows, scaling, figures: vec![accuracy_fig, scaling_fig] }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SparseOptions {
        SparseOptions { nodes: 48, pairs: 60, scale_nodes: 640, degree: 8, threads: 1, seed: 42 }
    }

    #[test]
    fn run_sparse_reports_accuracy_and_scaling() {
        let report = run_sparse(&tiny());
        assert_eq!(report.rows.len(), SAMPLING_RATES.len());
        for r in &report.rows {
            assert!((0.0..=1.0).contains(&r.coverage), "coverage out of range: {r:?}");
            assert!(r.mean_abs_err >= 0.0 && r.mean_ci_halfwidth >= 0.0);
        }
        assert_eq!(report.scaling.len(), 3);
        assert_eq!(report.figures.len(), 2);
        let text = report.to_string();
        assert!(text.contains("coverage"), "summary missing coverage: {text}");
        for fig in &report.figures {
            assert!(fig.to_csv().lines().count() > 1, "{} CSV empty", fig.id);
        }
    }

    #[test]
    fn full_sampling_collapses_onto_exact() {
        let report = run_sparse(&tiny());
        let full = report.rows.last().expect("rates are non-empty");
        assert_eq!(full.witnesses, tiny().nodes - 2);
        // The estimator and the exact kernel sum the same contributions
        // in different orders — equal up to float reassociation.
        assert!(full.mean_abs_err < 1e-9, "full sampling must be exact: {full:?}");
        assert_eq!(full.mean_ci_halfwidth, 0.0, "the FPC zeroes the CI at full sampling");
        assert_eq!(full.coverage, 1.0);
        // And against the sparsest rate, full sampling can only win.
        let sparse = report.rows.first().unwrap();
        assert!(full.mean_abs_err <= sparse.mean_abs_err);
        assert!(full.mean_ci_halfwidth <= sparse.mean_ci_halfwidth);
    }

    #[test]
    fn scaling_memory_is_sublinear_in_n_squared() {
        let report = run_sparse(&tiny());
        for w in report.scaling.windows(2) {
            assert!(w[1].nodes > w[0].nodes);
            let r0 = w[0].sparse_bytes as f64 / w[0].dense_bytes as f64;
            let r1 = w[1].sparse_bytes as f64 / w[1].dense_bytes as f64;
            assert!(r1 < r0, "sparse/dense ratio must shrink with n: {r0:.4} then {r1:.4}");
        }
        let top = report.scaling.last().unwrap();
        assert!(top.sparse_bytes < top.dense_bytes, "sparse must undercut dense: {top:?}");
    }

    #[test]
    fn report_is_deterministic() {
        // Everything except wall-clock build time is a pure function of
        // the options; the scaling figure's build-ms series is timing,
        // so only the accuracy figure and the byte columns are compared.
        let a = run_sparse(&tiny());
        let b = run_sparse(&tiny());
        assert_eq!(a.figures[0].to_csv(), b.figures[0].to_csv());
        for (x, y) in a.scaling.iter().zip(&b.scaling) {
            assert_eq!((x.nodes, x.edges, x.sparse_bytes), (y.nodes, y.edges, y.sparse_bytes));
        }
    }
}
