//! Section 5 experiments: the TIV alert mechanism and its applications
//! (Figures 19–25).

use crate::figure::{Figure, Series};
use crate::lab::Lab;
use crate::penalty::{meridian_penalty_cdf, predictor_penalty_cdf};
use crate::scale::ExperimentScale;
use delayspace::stats::Cdf;
use delayspace::synth::Dataset;
use meridian::{closest_neighbor, BuildOptions, MeridianConfig, MeridianOverlay, Termination};
use tivcore::alert::{accuracy_recall_sweep_threaded, ratio_severity_bins};
use tivcore::dynvivaldi::{self, DynVivaldiConfig, IterationRecord};
use tivcore::tivmeridian::{build_tiv_aware, tiv_aware_query, TivMeridianConfig};
use vivaldi::VivaldiConfig;

/// Figure 19: TIV severity of edges grouped by embedding prediction
/// ratio.
pub fn fig19(lab: &mut Lab) -> Figure {
    let space = lab.space(Dataset::Ds2);
    let emb = lab.embedding(Dataset::Ds2);
    let sev = lab.severity(Dataset::Ds2);
    let bins = ratio_severity_bins(&emb, space.matrix(), &sev, 0.1, 5.0);
    Figure::new(
        "fig19",
        "TIV severity for edges with different prediction ratios",
        "Euclidean distance / measured distance",
        "TIV severity (median, 10th–90th)",
    )
    .with_series(Series::from_binned("median TIV severity", &bins))
    .with_note(
        "shrunk edges (ratio « 1) carry the severe TIVs; beyond ratio 2 \
         severity is ≈ 0 — the basis of the alert mechanism"
            .to_string(),
    )
}

/// The threshold grid of the accuracy/recall sweep.
fn thresholds() -> Vec<f64> {
    (1..=20).map(|i| i as f64 * 0.05).collect()
}

/// Figures 20 and 21 share one sweep; this returns (fig20, fig21).
pub fn fig20_21(lab: &mut Lab) -> (Figure, Figure) {
    let space = lab.space(Dataset::Ds2);
    let emb = lab.embedding(Dataset::Ds2);
    let sev = lab.severity(Dataset::Ds2);
    let m = space.matrix();
    let ts = thresholds();
    let mut acc = Figure::new(
        "fig20",
        "Accuracy of TIV alert mechanism",
        "alert ratio threshold",
        "accuracy",
    );
    let mut rec = Figure::new(
        "fig21",
        "Recall rate of TIV alert mechanism",
        "alert ratio threshold",
        "recall",
    );
    for worst in [0.01, 0.05, 0.10, 0.20] {
        let sweep = accuracy_recall_sweep_threaded(&emb, m, &sev, worst, &ts, lab.threads());
        let label = format!("worst {:.0}%", worst * 100.0);
        acc.series.push(Series::new(
            label.clone(),
            sweep.iter().map(|q| (q.threshold, q.accuracy)).collect(),
        ));
        rec.series
            .push(Series::new(label, sweep.iter().map(|q| (q.threshold, q.recall)).collect()));
        // Headline numbers the paper quotes.
        if (worst - 0.01).abs() < 1e-9 {
            if let Some(q) = sweep.iter().find(|q| (q.threshold - 0.10).abs() < 1e-9) {
                acc.notes.push(format!(
                    "threshold 0.1 on worst 1%: accuracy {:.2} (paper: 0.92)",
                    q.accuracy
                ));
            }
        }
        if (worst - 0.20).abs() < 1e-9 {
            if let Some(q) = sweep.iter().find(|q| (q.threshold - 0.60).abs() < 1e-9) {
                acc.notes.push(format!(
                    "threshold 0.6 alerts {:.1}% of edges; {:.0}% of them are in the \
                     worst 20% (paper: ~4% alerted, 65% in worst 20%)",
                    q.alerted_frac * 100.0,
                    q.accuracy * 100.0
                ));
            }
        }
    }
    rec.notes.push(
        "tight thresholds: high accuracy, low recall; relaxing trades one \
         for the other (Section 5.1)"
            .to_string(),
    );
    (acc, rec)
}

/// The dynamic-neighbor iterations the paper plots (plus baseline 0).
const DYN_ITERS: [usize; 4] = [1, 2, 5, 10];

fn dyn_config(scale: ExperimentScale) -> DynVivaldiConfig {
    match scale {
        ExperimentScale::Tiny => DynVivaldiConfig {
            vivaldi: VivaldiConfig { neighbors: 12, ..VivaldiConfig::default() },
            rounds_per_iter: 60,
            sample_extra: 12,
        },
        _ => DynVivaldiConfig::default(),
    }
}

/// Runs dynamic-neighbor Vivaldi once and returns the records for
/// iterations {0} ∪ DYN_ITERS.
fn dyn_records(lab: &mut Lab) -> Vec<IterationRecord> {
    let space = lab.space(Dataset::Ds2);
    let cfg = dyn_config(lab.scale());
    let max_iter = *DYN_ITERS.last().unwrap();
    dynvivaldi::run(space.matrix(), &cfg, max_iter, lab.seed())
}

/// Figure 22: TIV severity CDF of Vivaldi neighbor edges across
/// dynamic-neighbor iterations.
pub fn fig22(lab: &mut Lab) -> Figure {
    let sev = lab.severity(Dataset::Ds2);
    let records = dyn_records(lab);
    let mut fig = Figure::new(
        "fig22",
        "TIV severity of Vivaldi neighbor edges",
        "TIV severity",
        "cumulative distribution",
    );
    for &iter in std::iter::once(&0).chain(DYN_ITERS.iter()) {
        let rec = &records[iter];
        let cdf =
            Cdf::from_samples(rec.neighbor_edges.iter().filter_map(|&(i, j)| sev.severity(i, j)));
        let label = if iter == 0 {
            "Vivaldi-original".to_string()
        } else {
            format!("dyn-neigh-iter{iter}")
        };
        fig.notes.push(format!("{label}: mean neighbor-edge severity {:.4}", cdf.mean()));
        fig.series.push(Series::from_cdf(label, &cdf, 100));
    }
    fig.notes.push(
        "severity of the spring set shrinks iteration over iteration — the \
         alert mechanism is purging TIV edges (paper Figure 22)"
            .to_string(),
    );
    fig
}

/// Figure 23: neighbor selection penalty of dynamic-neighbor Vivaldi.
pub fn fig23(lab: &mut Lab) -> Figure {
    let space = lab.space(Dataset::Ds2);
    let m = space.matrix();
    let records = dyn_records(lab);
    let mut fig = Figure::new(
        "fig23",
        "Neighbor selection performance of dynamic neighbor Vivaldi",
        "percentage penalty",
        "cumulative distribution",
    );
    for &iter in std::iter::once(&0).chain(DYN_ITERS.iter()) {
        let emb = records[iter].embedding.clone();
        let cdf = predictor_penalty_cdf(
            m,
            |client, cands| emb.select_nearest(client, cands),
            lab.scale().candidates(),
            lab.scale().runs(),
            lab.seed(),
        );
        let label = if iter == 0 {
            "Vivaldi-original".to_string()
        } else {
            format!("dyn-neigh-iter{iter}")
        };
        fig.notes.push(format!("{label}: median penalty {:.1}%", cdf.median()));
        fig.series.push(Series::from_cdf(label, &cdf, 120));
    }
    fig
}

/// Figure 24: TIV-aware Meridian in the normal setting (half the nodes
/// are Meridian nodes, k = 16, β = 0.5).
pub fn fig24(lab: &mut Lab) -> Figure {
    let space = lab.space(Dataset::Ds2);
    let emb = lab.embedding(Dataset::Ds2);
    let m = space.matrix();
    let members = lab.scale().meridian_members(Dataset::Ds2);
    let runs = lab.scale().runs();
    let cfg = MeridianConfig::default();
    let tiv_cfg = TivMeridianConfig { base: cfg, ..Default::default() };

    let original = meridian_penalty_cdf(
        m,
        |net, mset, bseed| MeridianOverlay::build(cfg, mset, net, bseed, &BuildOptions::default()),
        |ov, net, s, t| closest_neighbor(ov, net, s, t, Termination::Beta),
        members,
        runs,
        lab.seed(),
    );
    let aware = meridian_penalty_cdf(
        m,
        |net, mset, bseed| build_tiv_aware(&tiv_cfg, mset, &emb, net, bseed, None),
        |ov, net, s, t| tiv_aware_query(ov, &emb, net, s, t, &tiv_cfg),
        members,
        runs,
        lab.seed(),
    );
    let overhead = (aware.probes_per_query / original.probes_per_query.max(1e-9) - 1.0) * 100.0;

    Figure::new(
        "fig24",
        "Neighbor selection result of Meridian using TIV alert (normal setting)",
        "percentage penalty",
        "cumulative distribution",
    )
    .with_series(Series::from_cdf("Meridian-original", &original.penalties, 120))
    .with_series(Series::from_cdf("Meridian-TIV-alert", &aware.penalties, 120))
    .with_note(format!(
        "mean penalty: original {:.1}% vs TIV-alert {:.1}% (p90 {:.1}% vs {:.1}%); \
         exact fraction {:.3} → {:.3}",
        original.penalties.mean(),
        aware.penalties.mean(),
        original.penalties.quantile(0.9),
        aware.penalties.quantile(0.9),
        original.exact_fraction,
        aware.exact_fraction
    ))
    .with_note(format!("on-demand probing overhead: {overhead:+.1}% (paper: about +6%)"))
}

/// Figure 25: TIV-aware Meridian in the small all-members setting,
/// compared against the idealized no-termination run.
pub fn fig25(lab: &mut Lab) -> Figure {
    let space = lab.space(Dataset::Ds2);
    let emb = lab.embedding(Dataset::Ds2);
    let m = space.matrix();
    let members = lab.scale().meridian_small_members();
    let runs = lab.scale().runs();
    let cfg = MeridianConfig { k: members, ..MeridianConfig::default() };
    let tiv_cfg = TivMeridianConfig { base: cfg, ..Default::default() };

    let original = meridian_penalty_cdf(
        m,
        |net, mset, bseed| MeridianOverlay::build(cfg, mset, net, bseed, &BuildOptions::default()),
        |ov, net, s, t| closest_neighbor(ov, net, s, t, Termination::Beta),
        members,
        runs,
        lab.seed(),
    );
    let aware = meridian_penalty_cdf(
        m,
        |net, mset, bseed| build_tiv_aware(&tiv_cfg, mset, &emb, net, bseed, None),
        |ov, net, s, t| tiv_aware_query(ov, &emb, net, s, t, &tiv_cfg),
        members,
        runs,
        lab.seed(),
    );
    let no_term = meridian_penalty_cdf(
        m,
        |net, mset, bseed| MeridianOverlay::build(cfg, mset, net, bseed, &BuildOptions::default()),
        |ov, net, s, t| closest_neighbor(ov, net, s, t, Termination::None),
        members,
        runs,
        lab.seed(),
    );
    let overhead = (aware.probes_per_query / original.probes_per_query.max(1e-9) - 1.0) * 100.0;

    Figure::new(
        "fig25",
        "Neighbor selection result of Meridian using TIV alert (all-members setting)",
        "percentage penalty",
        "cumulative distribution",
    )
    .with_series(Series::from_cdf("Meridian-original", &original.penalties, 120))
    .with_series(Series::from_cdf("Meridian-TIV-alert", &aware.penalties, 120))
    .with_series(Series::from_cdf("Meridian-no-termination", &no_term.penalties, 120))
    .with_note(format!(
        "mean penalty: original {:.1}%, TIV-alert {:.1}%, no-termination {:.1}%; \
         exact fraction {:.3} / {:.3} / {:.3}",
        original.penalties.mean(),
        aware.penalties.mean(),
        no_term.penalties.mean(),
        original.exact_fraction,
        aware.exact_fraction,
        no_term.exact_fraction
    ))
    .with_note(format!(
        "on-demand probing overhead of TIV-alert: {overhead:+.1}% (paper: about +5%)"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lab() -> Lab {
        Lab::new(ExperimentScale::Tiny, 42)
    }

    #[test]
    fn fig19_trend_negative() {
        let fig = fig19(&mut lab());
        let s = &fig.series[0];
        assert!(!s.points.is_empty());
        // Severity at low ratio >= severity at ratio ≈ 1.5.
        let lo = s.points.first().unwrap().1;
        let hi = s.y_near(1.5).unwrap();
        assert!(lo >= hi, "no shrink trend: {lo} vs {hi}");
    }

    #[test]
    fn fig20_21_tradeoff() {
        let (acc, rec) = fig20_21(&mut lab());
        assert_eq!(acc.series.len(), 4);
        assert_eq!(rec.series.len(), 4);
        // Recall is non-decreasing in the threshold.
        for s in &rec.series {
            for w in s.points.windows(2) {
                assert!(w[1].1 >= w[0].1 - 1e-9, "recall not monotone in {}", s.label);
            }
        }
    }

    #[test]
    fn fig22_severity_decreases() {
        let fig = fig22(&mut lab());
        assert_eq!(fig.series.len(), 5);
    }

    #[test]
    fn fig23_has_all_iterations() {
        let fig = fig23(&mut lab());
        assert_eq!(fig.series.len(), 5);
    }

    #[test]
    fn fig24_reports_overhead() {
        let fig = fig24(&mut lab());
        assert_eq!(fig.series.len(), 2);
        assert!(fig.notes.iter().any(|n| n.contains("overhead")));
    }

    #[test]
    fn fig25_three_variants() {
        let fig = fig25(&mut lab());
        assert_eq!(fig.series.len(), 3);
    }
}
