//! The `repro churn` experiment: drive the incremental epoch pipeline
//! against a deterministically churning delay space and report
//! staleness, freshness and rebuild latency.
//!
//! The pipeline under test is the full incremental stack: a
//! [`simnet::churn::ChurnProcess`] drifts the true delays (diurnal
//! drift, congestion spikes, node churn) and emits each tick's
//! observation stream; a [`tivserve::flux::FluxBuilder`] folds the
//! stream in, tracking dirty rows; every few ticks it builds the next
//! epoch — repairing only the dirty rows of the exact severity matrix
//! and detour table, or falling back to a full rebuild when churn
//! spikes — and publishes it into a [`TivServe`]. The experiment
//! measures what the paper's deployment sections care about:
//!
//! * **staleness** — mean relative error between the *served* epoch's
//!   delays and the world's current true delays, per tick;
//! * **freshness** — the fraction of edges observed within the last
//!   epoch window, and the mean age of each edge's last observation;
//! * **rebuild latency** — wall milliseconds per epoch build, split by
//!   incremental vs full, with the dirty-row fraction that drove the
//!   policy's choice.

use crate::figure::{Figure, Series};
use delayspace::matrix::DelayMatrix;
use delayspace::synth::{Dataset, InternetDelaySpace};
use simnet::churn::{ChurnConfig, ChurnProcess};
use std::fmt;
use tivflux::{BuildKind, RebuildPolicy};
use tivserve::epoch::{EpochConfig, Observation};
use tivserve::flux::{FluxBuilder, FluxConfig};
use tivserve::service::{ServeConfig, TivServe};

/// Everything the `churn` subcommand can tune.
#[derive(Clone, Copy, Debug)]
pub struct ChurnOptions {
    /// Nodes in the synthetic DS²-style delay space.
    pub nodes: usize,
    /// Ticks of churned world time to simulate.
    pub ticks: usize,
    /// Ticks between epoch builds (the publish cadence).
    pub epoch_ticks: usize,
    /// Observations sampled per tick.
    pub obs_per_tick: usize,
    /// Per-node churn-reset probability per tick.
    pub churn_prob: f64,
    /// Expected congestion spikes per tick.
    pub spike_rate: f64,
    /// Diurnal drift amplitude.
    pub diurnal_amp: f64,
    /// Dirty-row fraction at which the builder falls back to a full
    /// rebuild.
    pub full_rebuild_fraction: f64,
    /// Relays kept per pair in the detour table.
    pub detour_k: usize,
    /// Worker threads (0 = auto, `tivpar::resolve_threads`).
    pub threads: usize,
    /// Master seed (space, embedding, churn process).
    pub seed: u64,
}

impl Default for ChurnOptions {
    fn default() -> Self {
        // Every observed edge dirties *both* endpoint rows (the matrix
        // is symmetric), so the steady-state dirty fraction is roughly
        // `2 · obs · epoch_ticks / nodes`. The defaults keep that
        // comfortably under the 25% fallback threshold — steady epochs
        // repair incrementally — while a node-churn reset's
        // re-measurement burst (64 edges ≈ 65 dirty rows) punches
        // through it, so a default run exercises both paths.
        ChurnOptions {
            nodes: 256,
            ticks: 48,
            epoch_ticks: 2,
            obs_per_tick: 12,
            churn_prob: 0.002,
            spike_rate: 2.0,
            diurnal_amp: 0.15,
            full_rebuild_fraction: 0.25,
            detour_k: 1,
            threads: 0,
            seed: 42,
        }
    }
}

impl ChurnOptions {
    /// The churn-process shape these options imply.
    pub fn churn_config(&self) -> ChurnConfig {
        ChurnConfig {
            diurnal_amp: self.diurnal_amp,
            spike_rate: self.spike_rate,
            churn_prob: self.churn_prob,
            obs_per_tick: self.obs_per_tick,
            seed: self.seed,
            ..ChurnConfig::default()
        }
    }

    /// The incremental-builder configuration these options imply.
    pub fn flux_config(&self) -> FluxConfig {
        FluxConfig {
            epoch: EpochConfig { seed: self.seed, ..EpochConfig::default() },
            detour_k: self.detour_k,
            policy: RebuildPolicy { full_rebuild_fraction: self.full_rebuild_fraction },
            threads: self.threads,
            ..FluxConfig::default()
        }
    }
}

/// One epoch build's record.
#[derive(Clone, Copy, Debug)]
pub struct EpochRecord {
    /// Epoch number.
    pub epoch: u64,
    /// Tick the build ran at.
    pub tick: u64,
    /// Repair or full rebuild.
    pub kind: BuildKind,
    /// Dirty rows going into the build.
    pub dirty_rows: usize,
    /// Dirty-row fraction.
    pub dirty_fraction: f64,
    /// Wall milliseconds of build + publish.
    pub build_ms: f64,
}

/// The outcome `repro churn` prints and writes.
#[derive(Clone, Debug)]
pub struct ChurnReport {
    /// The options the run used.
    pub opts: ChurnOptions,
    /// Per-epoch build records, in order.
    pub epochs: Vec<EpochRecord>,
    /// Mean served staleness (relative error) over all ticks.
    pub mean_staleness: f64,
    /// Served staleness at the final tick.
    pub final_staleness: f64,
    /// Fraction of edges observed within the final epoch window.
    pub final_fresh_fraction: f64,
    /// Mean age (ticks) of each edge's last observation, final tick.
    pub final_mean_age: f64,
    /// The figures (`churn-staleness`, `churn-rebuild`), ready for CSV
    /// export.
    pub figures: Vec<Figure>,
}

impl ChurnReport {
    /// Build records of one kind.
    pub fn builds_of(&self, kind: BuildKind) -> Vec<&EpochRecord> {
        self.epochs.iter().filter(|e| e.kind == kind).collect()
    }

    /// Mean build latency of one kind, ms (`None` when no such build
    /// ran).
    pub fn mean_build_ms(&self, kind: BuildKind) -> Option<f64> {
        let builds = self.builds_of(kind);
        if builds.is_empty() {
            return None;
        }
        Some(builds.iter().map(|e| e.build_ms).sum::<f64>() / builds.len() as f64)
    }
}

impl fmt::Display for ChurnReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = &self.opts;
        writeln!(
            f,
            "tivflux churn: {} nodes, {} ticks (epoch every {}), {} obs/tick, seed {}",
            o.nodes, o.ticks, o.epoch_ticks, o.obs_per_tick, o.seed
        )?;
        let incr = self.builds_of(BuildKind::Incremental).len();
        let full = self.builds_of(BuildKind::Full).len();
        writeln!(
            f,
            "  epochs: {} built ({incr} incremental, {full} full; fallback at {:.0}% dirty)",
            self.epochs.len(),
            o.full_rebuild_fraction * 100.0
        )?;
        if let Some(ms) = self.mean_build_ms(BuildKind::Incremental) {
            writeln!(f, "  incremental build: {ms:.1} ms mean")?;
        }
        if let Some(ms) = self.mean_build_ms(BuildKind::Full) {
            writeln!(f, "  full rebuild:      {ms:.1} ms mean")?;
        }
        writeln!(
            f,
            "  staleness: {:.2}% mean, {:.2}% final (served vs true delays)",
            self.mean_staleness * 100.0,
            self.final_staleness * 100.0
        )?;
        writeln!(
            f,
            "  freshness: {:.1}% of edges observed within the last epoch window, \
             mean observation age {:.1} ticks",
            self.final_fresh_fraction * 100.0,
            self.final_mean_age
        )?;
        for fig in &self.figures {
            write!(f, "{}", fig.summary())?;
        }
        Ok(())
    }
}

/// Mean relative error between the served snapshot's matrix and the
/// churn process's current true delays, over all measured edges.
fn staleness(served: &DelayMatrix, world: &ChurnProcess) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for (i, j, served_ms) in served.edges() {
        if let Some(truth) = world.true_delay(i, j) {
            if truth > 0.0 {
                total += (served_ms - truth).abs() / truth;
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Runs the full churn experiment.
pub fn run_churn(opts: &ChurnOptions) -> ChurnReport {
    assert!(opts.epoch_ticks >= 1, "epochs need at least one tick");
    assert!(opts.ticks >= 1, "nothing to simulate without ticks");
    let matrix = InternetDelaySpace::preset(Dataset::Ds2)
        .with_nodes(opts.nodes)
        .build(opts.seed)
        .into_matrix();
    let n = matrix.len();
    let mut world = ChurnProcess::new(&matrix, opts.churn_config());
    let (mut builder, snapshot) = FluxBuilder::bootstrap(matrix, opts.flux_config());
    let service = TivServe::new(ServeConfig::default(), snapshot);

    // Last tick each unordered edge was observed (0 = never).
    let mut last_obs = vec![0u64; n * n];
    let mut staleness_curve = Vec::with_capacity(opts.ticks);
    let mut fresh_curve = Vec::with_capacity(opts.ticks);
    let mut epochs = Vec::new();

    for t in 1..=opts.ticks {
        let tick = world.advance();
        for s in &tick.samples {
            builder.ingest(Observation { src: s.a, dst: s.b, rtt_ms: s.rtt_ms });
            last_obs[s.a * n + s.b] = tick.tick;
            last_obs[s.b * n + s.a] = tick.tick;
        }
        if t % opts.epoch_ticks == 0 {
            let started = std::time::Instant::now();
            let snap = builder.build();
            service.publish(snap);
            let build_ms = started.elapsed().as_secs_f64() * 1e3;
            let o = builder.last_outcome().expect("build just ran");
            epochs.push(EpochRecord {
                epoch: o.epoch,
                tick: tick.tick,
                kind: o.kind,
                dirty_rows: o.dirty_rows,
                dirty_fraction: o.dirty_fraction,
                build_ms,
            });
        }
        let snap = service.snapshot();
        staleness_curve.push((tick.tick as f64, staleness(snap.matrix(), &world)));
        // Freshness of the observation stream at this tick.
        let (mut fresh, mut age_total, mut edges) = (0usize, 0.0f64, 0usize);
        for (i, j, _) in snap.matrix().edges() {
            let seen = last_obs[i * n + j];
            let age = tick.tick - seen; // never-seen edges carry full age
            if seen > 0 && age < opts.epoch_ticks as u64 {
                fresh += 1;
            }
            age_total += age as f64;
            edges += 1;
        }
        fresh_curve.push((tick.tick as f64, fresh as f64 / edges.max(1) as f64));
        if t == opts.ticks {
            let final_mean_age = age_total / edges.max(1) as f64;
            let staleness_fig = Figure::new(
                "churn-staleness",
                "Served staleness under churn (DS2)",
                "tick",
                "mean relative error vs true delays",
            )
            .with_series(Series::new("served staleness", staleness_curve.clone()))
            .with_series(Series::new("fresh-edge fraction", fresh_curve.clone()))
            .with_note(format!(
                "epoch every {} ticks; {} observations/tick over {} edges",
                opts.epoch_ticks, opts.obs_per_tick, edges
            ));
            let rebuild_fig = Figure::new(
                "churn-rebuild",
                "Epoch build latency under churn (DS2)",
                "epoch",
                "build latency (ms)",
            )
            .with_series(Series::new(
                "incremental repair",
                epochs
                    .iter()
                    .filter(|e| e.kind == BuildKind::Incremental)
                    .map(|e| (e.epoch as f64, e.build_ms))
                    .collect(),
            ))
            .with_series(Series::new(
                "full rebuild",
                epochs
                    .iter()
                    .filter(|e| e.kind == BuildKind::Full)
                    .map(|e| (e.epoch as f64, e.build_ms))
                    .collect(),
            ))
            .with_note(format!(
                "fallback past {:.0}% dirty rows; dirty fractions per epoch: {}",
                opts.full_rebuild_fraction * 100.0,
                epochs
                    .iter()
                    .map(|e| format!("{:.0}%", e.dirty_fraction * 100.0))
                    .collect::<Vec<_>>()
                    .join(" ")
            ));
            let mean_staleness =
                staleness_curve.iter().map(|&(_, s)| s).sum::<f64>() / staleness_curve.len() as f64;
            return ChurnReport {
                opts: *opts,
                epochs,
                mean_staleness,
                final_staleness: staleness_curve.last().map_or(0.0, |&(_, s)| s),
                final_fresh_fraction: fresh_curve.last().map_or(0.0, |&(_, s)| s),
                final_mean_age,
                figures: vec![staleness_fig, rebuild_fig],
            };
        }
    }
    unreachable!("loop returns on its final tick");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ChurnOptions {
        ChurnOptions {
            nodes: 60,
            ticks: 8,
            epoch_ticks: 2,
            obs_per_tick: 120,
            threads: 1,
            ..ChurnOptions::default()
        }
    }

    #[test]
    fn run_churn_builds_epochs_and_reports() {
        let report = run_churn(&tiny());
        assert_eq!(report.epochs.len(), 4, "8 ticks at 2 per epoch");
        assert!(report.epochs.iter().all(|e| e.build_ms >= 0.0));
        assert!(report.mean_staleness >= 0.0 && report.mean_staleness < 1.0);
        assert!(report.final_fresh_fraction > 0.0, "some edges must have been observed");
        assert_eq!(report.figures.len(), 2);
        assert!(!report.figures[0].series[0].points.is_empty());
        let text = report.to_string();
        assert!(text.contains("staleness"), "summary missing staleness: {text}");
        for fig in &report.figures {
            assert!(fig.to_csv().lines().count() > 1, "{} CSV empty", fig.id);
        }
    }

    #[test]
    fn observing_keeps_staleness_bounded() {
        // With a heavy observation stream, the served state must track
        // the drifting world far better than a frozen epoch-0 snapshot
        // would.
        let opts = ChurnOptions {
            nodes: 50,
            ticks: 12,
            epoch_ticks: 2,
            obs_per_tick: 2_000, // ~1.6x the edge count per tick
            churn_prob: 0.0,
            spike_rate: 0.0,
            threads: 1,
            ..ChurnOptions::default()
        };
        let tracked = run_churn(&opts);
        let frozen = run_churn(&ChurnOptions { obs_per_tick: 0, ..opts });
        assert!(
            tracked.final_staleness < frozen.final_staleness,
            "observations must reduce staleness: {:.3} !< {:.3}",
            tracked.final_staleness,
            frozen.final_staleness
        );
    }

    #[test]
    fn churn_burst_triggers_the_full_rebuild_fallback() {
        // Reset every node every tick: the dirty fraction saturates and
        // the policy must fall back to full rebuilds.
        let opts = ChurnOptions {
            nodes: 40,
            ticks: 2,
            epoch_ticks: 1,
            obs_per_tick: 400,
            churn_prob: 1.0,
            threads: 1,
            ..ChurnOptions::default()
        };
        let report = run_churn(&opts);
        assert!(
            report.builds_of(BuildKind::Full).len() == report.epochs.len(),
            "saturated dirtiness should force full rebuilds: {:?}",
            report.epochs
        );
        // And with no churn and a sparse observation stream (few rows
        // touched per epoch), every build stays incremental.
        let calm =
            run_churn(&ChurnOptions { churn_prob: 0.0, spike_rate: 0.0, obs_per_tick: 3, ..opts });
        assert!(
            calm.builds_of(BuildKind::Incremental).len() == calm.epochs.len(),
            "sparse dirtiness should stay incremental: {:?}",
            calm.epochs
        );
    }

    #[test]
    fn report_is_deterministic() {
        // Everything except wall-clock build latency is a pure function
        // of the options (the rebuild figure's y-axis is timing, so
        // only its x structure and the staleness figure are compared).
        let a = run_churn(&tiny());
        let b = run_churn(&tiny());
        assert_eq!(a.figures[0].to_csv(), b.figures[0].to_csv());
        assert_eq!(a.epochs.len(), b.epochs.len());
        assert_eq!(a.mean_staleness.to_bits(), b.mean_staleness.to_bits());
        for (x, y) in a.epochs.iter().zip(&b.epochs) {
            assert_eq!((x.kind, x.dirty_rows, x.tick), (y.kind, y.dirty_rows, y.tick));
        }
    }
}
