//! Section 3 experiments: how TIVs break Vivaldi and Meridian
//! (Figures 10–14).

use crate::figure::{Figure, Series};
use crate::lab::Lab;
use crate::penalty::meridian_penalty_cdf;
use crate::scale::ExperimentScale;
use delayspace::matrix::DelayMatrix;
use delayspace::synth::Dataset;
use meridian::{
    closest_neighbor, misplacement_by_delay, BuildOptions, MeridianConfig, MeridianOverlay,
    Termination,
};
use simnet::net::{JitterModel, Network};
use vivaldi::{EdgeTrace, OscillationTracker, VivaldiConfig, VivaldiSystem};

/// The 3-node TIV network of Section 3.2.1: d(A,B) = d(B,C) = 5 ms,
/// d(C,A) = 100 ms.
pub fn tiv_triangle() -> DelayMatrix {
    let mut m = DelayMatrix::new(3);
    m.set(0, 1, 5.0);
    m.set(1, 2, 5.0);
    m.set(2, 0, 100.0);
    m
}

/// Figure 10: Vivaldi error trace on the 3-node TIV network over 100 s.
pub fn fig10(lab: &mut Lab) -> Figure {
    let m = tiv_triangle();
    let rounds = 100;
    let mut sys = VivaldiSystem::new(
        VivaldiConfig { neighbors: 2, ..VivaldiConfig::default() },
        3,
        lab.seed(),
    );
    let mut net = Network::new(&m, JitterModel::None, lab.seed());
    // Per-step sampling: at the TIV equilibrium the per-round snapshots
    // form a limit cycle whose swing only shows between steps.
    let mut trace = EdgeTrace::new(vec![(0, 1), (1, 2), (2, 0)]);
    sys.run_steps_observed(&mut net, rounds, |_, s| trace.record(s));
    let steps_per_round = 3.0;

    let mut fig = Figure::new(
        "fig10",
        "Vivaldi error trace for a simple 3-node network with TIV",
        "simulation time (s)",
        "error = predicted − measured (ms)",
    );
    for (e, label) in [(0, "edge A-B"), (1, "edge B-C"), (2, "edge C-A")] {
        let errs = trace.errors(e, &m);
        fig.series.push(Series::new(
            label,
            errs.iter()
                .enumerate()
                .map(|(t, &v)| ((t as f64 + 1.0) / steps_per_round, v))
                .collect(),
        ));
    }
    // Endless oscillation: late-window errors keep swinging between
    // steps, and residuals never reach zero.
    let ca = trace.errors(2, &m);
    let late = &ca[ca.len() - 60..];
    let swing = late.iter().cloned().fold(f64::MIN, f64::max)
        - late.iter().cloned().fold(f64::MAX, f64::min);
    let resid = late.iter().map(|e| e.abs()).fold(f64::MAX, f64::min);
    fig.notes.push(format!(
        "late-window (last 20 s) per-step swing of edge C-A: {swing:.1} ms, \
         residual error never below {resid:.1} ms — no TIV-consistent \
         placement exists, as in the paper"
    ));
    fig
}

/// Figure 11: distribution of per-edge oscillation range versus edge
/// delay on DS² over a 500 s run.
pub fn fig11(lab: &mut Lab) -> Figure {
    let space = lab.space(Dataset::Ds2);
    let m = space.matrix();
    let rounds = lab.scale().oscillation_rounds();
    let mut sys = VivaldiSystem::new(VivaldiConfig::default(), m.len(), lab.seed());
    let mut net = Network::new(m, JitterModel::None, lab.seed());
    // Warm up to steady state first (the paper measures oscillation of
    // the converged system).
    sys.run_rounds(&mut net, lab.scale().embed_rounds());
    let mut osc = OscillationTracker::sampled(m, 40_000, lab.seed());
    let stats = sys.run_rounds_observed(&mut net, rounds, |_, s| osc.record(s));
    let bins = osc.by_delay_bins(m, 10.0, 1000.0);

    let movement = stats.movement_percentiles();
    let mut fig = Figure::new(
        "fig11",
        "Distribution of the oscillation range of all the edges",
        "delay (ms)",
        "oscillation range (ms), median with 10th–90th",
    )
    .with_series(Series::from_binned("median oscillation range", &bins));
    if let Some(p) = movement {
        fig.notes.push(format!(
            "movement speed: median {:.2} ms/step, p90 {:.2} ms/step \
             (paper: 1.61 / 6.18 ms per step)",
            p.p50, p.p90
        ));
    }
    // Short edges oscillate too (the paper: a 10 ms edge can vary by
    // 175 ms).
    if let Some(short) = bins.bins.iter().find(|b| b.stats.is_some()) {
        let s = short.stats.unwrap();
        fig.notes.push(format!(
            "shortest populated bin ({:.0}–{:.0} ms): median range {:.1} ms, p90 {:.1} ms",
            short.lo, short.hi, s.p50, s.p90
        ));
    }
    fig
}

/// Figure 12: the worked Meridian failure example. Reproduces the exact
/// 4-node topology of the paper's figure and demonstrates that the
/// recursive query misses the true closest node N.
pub fn fig12(lab: &mut Lab) -> Figure {
    // Ids: A=0, B=1, N=2, T=3 — delays from the figure.
    let mut m = DelayMatrix::new(4);
    m.set(0, 3, 12.0); // A-T
    m.set(0, 1, 4.0); // A-B
    m.set(0, 2, 25.0); // A-N
    m.set(1, 3, 2.0); // B-T
    m.set(1, 2, 11.0); // B-N
    m.set(2, 3, 1.0); // N-T
    let mut net = Network::new(&m, JitterModel::None, lab.seed());
    let overlay = MeridianOverlay::build(
        MeridianConfig::default(),
        vec![0, 1, 2],
        &mut net,
        lab.seed(),
        &BuildOptions::default(),
    );
    let res = closest_neighbor(&overlay, &mut net, 0, 3, Termination::Beta)
        .expect("entry probe measurable");

    let edges =
        [("A-T", 12.0), ("A-B", 4.0), ("A-N", 25.0), ("B-T", 2.0), ("B-N", 11.0), ("N-T", 1.0)];
    let mut fig = Figure::new(
        "fig12",
        "Worked example: TIV-induced Meridian failure",
        "edge index",
        "delay (ms)",
    )
    .with_series(Series::new(
        "topology delays",
        edges.iter().enumerate().map(|(i, &(_, d))| (i as f64, d)).collect(),
    ));
    let names = ["A", "B", "N", "T"];
    fig.notes.push(format!(
        "query from A for target T selected {} at {} ms; true closest is N at 1 ms — {}",
        names[res.selected],
        res.selected_delay,
        if res.selected == 2 { "unexpectedly found" } else { "missed due to TIV, as in the paper" }
    ));
    fig
}

/// Figure 13: percentage of Meridian ring members misplaced versus pair
/// delay, for β ∈ {0.1, 0.5, 0.9}.
pub fn fig13(lab: &mut Lab) -> Figure {
    let space = lab.space(Dataset::Ds2);
    let m = space.matrix();
    let samples = match lab.scale() {
        ExperimentScale::Tiny => 2_000,
        ExperimentScale::Small => 20_000,
        ExperimentScale::Paper => 60_000,
    };
    let mut fig = Figure::new(
        "fig13",
        "Percentage of Meridian ring members misplaced",
        "delay (ms)",
        "fraction of neighborhood misplaced",
    );
    for beta in [0.1, 0.5, 0.9] {
        let bins = misplacement_by_delay(m, beta, samples, lab.seed(), 50.0, 1000.0);
        fig.series.push(Series::from_binned(format!("beta = {beta}"), &bins));
    }
    fig.notes.push(
        "larger beta tolerates more TIV but costs probes; beta=0.5 leaves \
         frequent placement errors (paper: 10–30% below 400 ms, worse beyond)"
            .to_string(),
    );
    fig
}

/// Shared Meridian-experiment configuration for the idealized setting
/// (Figures 14 and 25): a small overlay where every node rings every
/// other member (k = members), termination disabled when requested.
fn all_members_config(members: usize) -> MeridianConfig {
    MeridianConfig { k: members, ..MeridianConfig::default() }
}

/// Figure 14: Meridian neighbor-selection penalty under idealized
/// settings on an artificial Euclidean matrix versus DS².
pub fn fig14(lab: &mut Lab) -> Figure {
    let members = lab.scale().meridian_small_members();
    let runs = lab.scale().runs();
    let seed = lab.seed();
    let mut fig = Figure::new(
        "fig14",
        "Neighbor selection performance of Meridian with ideal settings",
        "percentage penalty",
        "cumulative distribution",
    );
    for ds in [Dataset::Euclidean, Dataset::Ds2] {
        let space = lab.space(ds);
        let m = space.matrix();
        let cfg = all_members_config(members);
        let out = meridian_penalty_cdf(
            m,
            |net, mset, bseed| {
                MeridianOverlay::build(cfg, mset, net, bseed, &BuildOptions::default())
            },
            |ov, net, start, target| closest_neighbor(ov, net, start, target, Termination::None),
            members,
            runs,
            seed,
        );
        fig.notes.push(format!(
            "{}: exact-neighbor fraction {:.3}, mean penalty {:.1}%, p99 {:.1}% \
             (paper: near-perfect on Euclidean, ~13% misses on DS²)",
            ds.name(),
            out.exact_fraction,
            out.penalties.mean(),
            out.penalties.quantile(0.99)
        ));
        fig.series.push(Series::from_cdf(
            format!("Meridian-{}-data", ds.name()),
            &out.penalties,
            120,
        ));
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lab() -> Lab {
        Lab::new(ExperimentScale::Tiny, 42)
    }

    #[test]
    fn fig10_shows_persistent_error() {
        let fig = fig10(&mut lab());
        assert_eq!(fig.series.len(), 3);
        // The long edge C-A must at some point be far under-predicted.
        let ca = &fig.series[2];
        assert!(ca.points.iter().any(|&(_, e)| e < -20.0));
    }

    #[test]
    fn fig11_short_edges_oscillate() {
        let fig = fig11(&mut lab());
        assert_eq!(fig.series.len(), 1);
        assert!(!fig.series[0].points.is_empty());
        // Some oscillation exists.
        assert!(fig.series[0].points.iter().any(|&(_, r)| r > 0.5));
    }

    #[test]
    fn fig12_misses_true_closest() {
        let fig = fig12(&mut lab());
        assert!(fig.notes[0].contains("missed due to TIV"));
    }

    #[test]
    fn fig13_has_three_beta_series() {
        let fig = fig13(&mut lab());
        assert_eq!(fig.series.len(), 3);
        // Fractions live in [0, 1].
        for s in &fig.series {
            assert!(s.points.iter().all(|&(_, y)| (0.0..=1.0).contains(&y)));
        }
    }

    #[test]
    fn fig14_euclidean_beats_ds2() {
        let fig = fig14(&mut lab());
        assert_eq!(fig.series.len(), 2);
        // Euclidean should reach CDF=1 at a smaller penalty than DS²:
        // compare the maximum penalties.
        let max_eu = fig.series[0].points.iter().map(|p| p.0).fold(f64::MIN, f64::max);
        let max_ds = fig.series[1].points.iter().map(|p| p.0).fold(f64::MIN, f64::max);
        assert!(
            max_eu <= max_ds,
            "Euclidean worst penalty {max_eu} should not exceed DS² {max_ds}"
        );
    }
}
