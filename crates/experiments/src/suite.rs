//! The experiment registry: every reproducible figure by id.

use crate::figure::Figure;
use crate::lab::Lab;
use crate::scale::ExperimentScale;
use crate::{sec2, sec3, sec4, sec5};
use delayspace::synth::Dataset;

/// All experiment ids, in paper order.
pub const ALL_IDS: [&str; 25] = [
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
    "fig22", "fig23", "fig24", "fig25",
];

/// Output of one experiment: the figure plus optional side artifacts
/// (file extension, contents).
pub struct ExperimentOutput {
    /// The regenerated figure.
    pub figure: Figure,
    /// Extra artifacts to write next to the CSV, e.g. the Figure 3 PGM.
    pub artifacts: Vec<(String, String)>,
}

impl From<Figure> for ExperimentOutput {
    fn from(figure: Figure) -> Self {
        ExperimentOutput { figure, artifacts: Vec::new() }
    }
}

/// Runs one experiment by id. Returns `None` for unknown ids.
///
/// Figures 20/21 share one sweep; requesting either recomputes the pair
/// and returns the requested one (the `Lab` cache keeps this cheap).
pub fn run(id: &str, lab: &mut Lab) -> Option<ExperimentOutput> {
    let out: ExperimentOutput = match id {
        "fig1" => sec2::fig1(lab).into(),
        "fig2" => sec2::fig2(lab).into(),
        "fig3" => {
            let o = sec2::fig3(lab);
            ExperimentOutput { figure: o.figure, artifacts: vec![("pgm".to_string(), o.pgm)] }
        }
        "fig4" => sec2::fig_severity_vs_delay(lab, Dataset::Ds2).into(),
        "fig5" => sec2::fig_severity_vs_delay(lab, Dataset::P2pSim).into(),
        "fig6" => sec2::fig_severity_vs_delay(lab, Dataset::Meridian).into(),
        "fig7" => sec2::fig_severity_vs_delay(lab, Dataset::PlanetLab).into(),
        "fig8" => sec2::fig8(lab).into(),
        "fig9" => sec2::fig9(lab).into(),
        "fig10" => sec3::fig10(lab).into(),
        "fig11" => sec3::fig11(lab).into(),
        "fig12" => sec3::fig12(lab).into(),
        "fig13" => sec3::fig13(lab).into(),
        "fig14" => sec3::fig14(lab).into(),
        "fig15" => sec4::fig15(lab).into(),
        "fig16" => sec4::fig16(lab).into(),
        "fig17" => sec4::fig17(lab).into(),
        "fig18" => sec4::fig18(lab).into(),
        "fig19" => sec5::fig19(lab).into(),
        "fig20" => sec5::fig20_21(lab).0.into(),
        "fig21" => sec5::fig20_21(lab).1.into(),
        "fig22" => sec5::fig22(lab).into(),
        "fig23" => sec5::fig23(lab).into(),
        "fig24" => sec5::fig24(lab).into(),
        "fig25" => sec5::fig25(lab).into(),
        "ablation-filter" => crate::ablations::filter_fraction_sweep(lab).into(),
        "ablation-dims" => crate::ablations::dimensionality_sweep(lab).into(),
        "ablation-beta" => crate::ablations::beta_sweep(lab).into(),
        "ablation-tivmeridian" => crate::ablations::tiv_meridian_decomposition(lab).into(),
        "ablation-coords" => crate::ablations::coordinate_system_shootout(lab).into(),
        _ => return None,
    };
    Some(out)
}

/// The outcome of one experiment inside a [`run_many`] fan-out.
pub struct RunOutcome {
    /// The experiment id that was requested.
    pub id: String,
    /// The experiment output; `None` for unknown ids.
    pub output: Option<ExperimentOutput>,
    /// Wall-clock seconds this experiment took inside its worker.
    pub seconds: f64,
}

/// Runs a batch of experiments fanned out over up to `threads` workers
/// ([`tivpar::resolve_threads`] semantics), returning outcomes in input
/// order.
///
/// The batch is split into contiguous chunks, one per worker; each
/// worker owns a private [`Lab`] so the expensive per-dataset artifacts
/// (delay space, severity matrix, embedding) are still shared by every
/// experiment in its chunk. Every figure is a pure function of
/// `(scale, seed)`, so the results are identical to a serial
/// `suite::run` loop at any thread count — only the wall-clock changes.
///
/// The resolved thread budget is *divided*, not stacked: with `w`
/// fan-out workers, each worker's lab gets a `budget / w` kernel
/// allowance, so `run_many` never oversubscribes the machine by
/// multiplying experiment-level and kernel-level parallelism.
pub fn run_many(
    ids: &[String],
    scale: ExperimentScale,
    seed: u64,
    threads: usize,
) -> Vec<RunOutcome> {
    let budget = tivpar::resolve_threads(threads);
    let workers = budget.min(ids.len().max(1));
    let inner = (budget / workers.max(1)).max(1);
    tivpar::par_map_chunks(ids.len(), workers, |range| {
        let mut lab = Lab::with_threads(scale, seed, inner);
        ids[range]
            .iter()
            .map(|id| {
                let started = std::time::Instant::now();
                let output = run(id, &mut lab);
                RunOutcome { id: id.clone(), output, seconds: started.elapsed().as_secs_f64() }
            })
            .collect()
    })
}

/// Ablation experiment ids (DESIGN.md §5), runnable like figure ids.
pub const ABLATION_IDS: [&str; 5] = [
    "ablation-filter",
    "ablation-dims",
    "ablation-beta",
    "ablation-tivmeridian",
    "ablation-coords",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExperimentScale;

    #[test]
    fn unknown_id_is_none() {
        let mut lab = Lab::new(ExperimentScale::Tiny, 1);
        assert!(run("fig99", &mut lab).is_none());
    }

    #[test]
    fn ids_are_unique_and_ordered() {
        let mut seen = std::collections::HashSet::new();
        for id in ALL_IDS {
            assert!(seen.insert(id), "duplicate id {id}");
        }
        assert_eq!(ALL_IDS.len(), 25);
    }

    // A smoke test over the cheap experiments; the expensive ones are
    // covered in their own modules and in the integration suite.
    #[test]
    fn run_small_subset() {
        let mut lab = Lab::new(ExperimentScale::Tiny, 3);
        for id in ["fig1", "fig2", "fig12"] {
            let out = run(id, &mut lab).unwrap();
            assert_eq!(out.figure.id, id);
            assert!(!out.figure.series.is_empty());
        }
    }

    #[test]
    fn run_many_matches_serial_run() {
        let ids: Vec<String> = ["fig1", "fig12", "fig99"].iter().map(|s| s.to_string()).collect();
        let fanned = run_many(&ids, ExperimentScale::Tiny, 3, 3);
        assert_eq!(fanned.len(), ids.len());
        let mut lab = Lab::new(ExperimentScale::Tiny, 3);
        for (outcome, id) in fanned.iter().zip(&ids) {
            assert_eq!(&outcome.id, id);
            match (&outcome.output, run(id, &mut lab)) {
                (Some(got), Some(want)) => {
                    assert_eq!(got.figure.to_csv(), want.figure.to_csv(), "{id} diverged")
                }
                (None, None) => assert_eq!(id, "fig99"),
                _ => panic!("fan-out and serial disagree on {id}"),
            }
        }
    }
}
