//! The `repro serve` experiment: drive the sharded estimation service
//! against a synthetic DS²-style delay space with a closed-loop,
//! Zipf-skewed workload, and report throughput and latency.
//!
//! The heavy lifting lives in [`tivserve`]; this module is the glue
//! that the `repro` binary's `serve` subcommand (and the `serve` bench
//! and the cross-shard equivalence tests) share, so the CLI, the bench
//! and the tests all exercise exactly the same construction path.

use delayspace::matrix::DelayMatrix;
use delayspace::synth::{Dataset, InternetDelaySpace};
use std::fmt;
use std::sync::Arc;
use tivserve::epoch::{spawn, EpochBuilder, EpochConfig};
use tivserve::loadgen::{self, ClosedLoopReport, ObservePath, WorkloadConfig};
use tivserve::service::{ServeConfig, TivServe};
use tivserve::snapshot::EstimateConfig;

/// Everything the `serve` subcommand can tune.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Nodes in the synthetic DS²-style delay space.
    pub nodes: usize,
    /// Service shards.
    pub shards: usize,
    /// Total edge queries of the closed-loop run.
    pub queries: usize,
    /// Operations per batch.
    pub batch: usize,
    /// Zipf exponent of source-node popularity.
    pub zipf_s: f64,
    /// Fraction of operations that are RTT observations, in `[0, 1)`.
    pub observe_frac: f64,
    /// Observations folded in before the epoch builder publishes the
    /// next snapshot (0 disables the background builder).
    pub epoch_every: usize,
    /// Per-shard LRU cache capacity (edges).
    pub cache_capacity: usize,
    /// Witnesses sampled per severity estimate.
    pub witnesses: usize,
    /// Batches below this many queries run inline instead of fanning
    /// out across shard threads (0 forces the fan-out path — the
    /// equivalence tests use this to exercise the sharded code).
    pub parallel_threshold: usize,
    /// Master seed (space, embedding, workload).
    pub seed: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            nodes: 1024,
            shards: 4,
            queries: 10_000,
            batch: 64,
            zipf_s: 0.9,
            observe_frac: 0.1,
            epoch_every: 500,
            cache_capacity: 65_536,
            witnesses: 16,
            parallel_threshold: 256,
            seed: 42,
        }
    }
}

impl ServeOptions {
    /// The epoch-builder configuration these options imply.
    pub fn epoch_config(&self) -> EpochConfig {
        EpochConfig { seed: self.seed, ..EpochConfig::default() }
    }

    /// The service configuration these options imply.
    pub fn serve_config(&self, shards: usize) -> ServeConfig {
        ServeConfig {
            shards,
            cache_capacity: self.cache_capacity,
            parallel_threshold: self.parallel_threshold,
            estimate: EstimateConfig {
                severity_witnesses: self.witnesses,
                seed: self.seed,
                ..EstimateConfig::default()
            },
        }
    }

    /// The workload these options imply.
    pub fn workload(&self) -> WorkloadConfig {
        WorkloadConfig {
            queries: self.queries,
            batch: self.batch,
            zipf_s: self.zipf_s,
            observe_frac: self.observe_frac,
            jitter_sigma: 0.05,
            seed: self.seed,
        }
    }
}

/// Builds the synthetic delay space, bootstraps the epoch builder, and
/// starts a service with `shards` shards. The matrix is returned so
/// callers can generate workloads against it. Pure in `(opts, shards)`
/// — the equivalence tests rely on services built here differing only
/// in shard count.
pub fn build_service(opts: &ServeOptions, shards: usize) -> (TivServe, EpochBuilder, DelayMatrix) {
    let matrix = InternetDelaySpace::preset(Dataset::Ds2)
        .with_nodes(opts.nodes)
        .build(opts.seed)
        .into_matrix();
    let (builder, snapshot) = EpochBuilder::bootstrap(matrix.clone(), opts.epoch_config());
    let service = TivServe::new(opts.serve_config(shards), snapshot);
    (service, builder, matrix)
}

/// The outcome `repro serve` prints.
#[derive(Clone, Copy, Debug)]
pub struct ServeSummary {
    /// The options the run used.
    pub opts: ServeOptions,
    /// The measured closed-loop report.
    pub report: ClosedLoopReport,
}

impl fmt::Display for ServeSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = &self.opts;
        let r = &self.report.load;
        writeln!(
            f,
            "tivserve: {} nodes, {} shards, seed {} — final epoch {}",
            o.nodes, o.shards, o.seed, self.report.final_epoch
        )?;
        writeln!(
            f,
            "  workload: {} queries in {} batches (≤{}/batch, zipf {}), \
             {} observations streamed ({} delivered, {} undelivered)",
            r.queries,
            r.batches,
            o.batch,
            o.zipf_s,
            r.observations,
            r.observations_delivered(),
            r.observations_undelivered
        )?;
        writeln!(
            f,
            "  throughput {:.0} queries/s  batch latency p50 {:.0} us  p99 {:.0} us",
            r.qps, r.p50_us, r.p99_us
        )?;
        let c = &self.report.cache;
        write!(
            f,
            "  cache: {:.1}% hit ({} hits / {} misses, {} evictions, {} resident)",
            c.hit_rate() * 100.0,
            c.hits,
            c.misses,
            c.evictions,
            c.len
        )
    }
}

/// Runs the full closed-loop serve experiment: build, (optionally)
/// spawn the background epoch builder, play the workload, join.
pub fn run_serve(opts: &ServeOptions) -> ServeSummary {
    let (service, builder, matrix) = build_service(opts, opts.shards);
    let service = Arc::new(service);
    let batches = loadgen::generate(&opts.workload(), &matrix);
    let (report, _answers) = if opts.epoch_every > 0 && opts.observe_frac > 0.0 {
        let stream = spawn(Arc::clone(&service), builder, opts.epoch_every);
        let tx = stream.sender();
        let out = loadgen::run_closed_loop(&service, &batches, ObservePath::Channel(&tx));
        drop(tx);
        stream.join();
        out
    } else {
        loadgen::run_closed_loop(&service, &batches, ObservePath::Drop)
    };
    // Report the service's final published epoch (the loop may have
    // finished before the builder drained the tail observations).
    let mut report = report;
    report.final_epoch = service.epoch();
    ServeSummary { opts: *opts, report }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServeOptions {
        ServeOptions {
            nodes: 60,
            shards: 2,
            queries: 400,
            batch: 50,
            epoch_every: 60,
            ..ServeOptions::default()
        }
    }

    #[test]
    fn run_serve_completes_and_publishes_epochs() {
        let summary = run_serve(&tiny());
        assert_eq!(summary.report.load.queries, 400);
        assert!(summary.report.load.qps > 0.0);
        assert!(
            summary.report.final_epoch >= 1,
            "with observations streaming, at least one epoch should publish"
        );
        let text = summary.to_string();
        assert!(text.contains("throughput"), "summary missing throughput: {text}");
        // The observation accounting is part of the printed contract:
        // with a live background builder nothing goes undelivered.
        assert_eq!(summary.report.load.observations_undelivered, 0);
        assert_eq!(
            summary.report.load.observations,
            summary.report.load.observations_delivered()
                + summary.report.load.observations_undelivered
        );
        assert!(
            text.contains(&format!(
                "({} delivered, 0 undelivered)",
                summary.report.load.observations_delivered()
            )),
            "summary missing observation accounting: {text}"
        );
    }

    #[test]
    fn read_only_run_stays_on_epoch_zero() {
        let opts = ServeOptions { observe_frac: 0.0, epoch_every: 0, ..tiny() };
        let summary = run_serve(&opts);
        assert_eq!(summary.report.final_epoch, 0);
        assert_eq!(summary.report.load.observations, 0);
    }

    #[test]
    fn build_service_is_shard_agnostic_in_state() {
        let opts = tiny();
        let (s1, _, m1) = build_service(&opts, 1);
        let (s4, _, m4) = build_service(&opts, 4);
        assert_eq!(m1, m4);
        assert_eq!(s1.snapshot().epoch(), s4.snapshot().epoch());
        // Same frozen coordinates regardless of shard count.
        assert_eq!(
            s1.snapshot().embedding().predicted(0, 1).to_bits(),
            s4.snapshot().embedding().predicted(0, 1).to_bits()
        );
    }
}
