//! # `experiments` — the figure-regeneration harness
//!
//! One function per figure of the IMC'07 TIV paper, each returning a
//! [`figure::Figure`] with the same series the paper plots, plus notes
//! comparing measured headline numbers against the paper's. The
//! [`suite`] module enumerates all experiments for the `repro` binary
//! (`cargo run -p tiv-experiments --bin repro -- all`).
//!
//! | module | paper section | figures |
//! |---|---|---|
//! | [`sec2`] | §2 TIV analysis | 1–9 |
//! | [`sec3`] | §3 impact on Vivaldi/Meridian | 10–14 |
//! | [`sec4`] | §4 strawman solutions | 15–18 |
//! | [`sec5`] | §5 TIV alert mechanism | 19–25 |
//!
//! Supporting modules: [`lab`] caches the expensive per-dataset
//! artifacts (space, severity, embedding) behind every figure;
//! [`scale`] sizes every experiment (`Tiny`/`Small`/`Paper`);
//! [`figure`] is the series/CSV output type; [`report`] renders the
//! headline-number comparison; [`penalty`] and [`ablations`] hold the
//! shared penalty metrics and the beyond-the-paper sweeps; [`serve`]
//! drives the sharded `tivserve` estimation service (the `repro serve`
//! subcommand); [`route`] runs the TIV-exploiting one-hop detour
//! search (the `repro route` subcommand); [`churn`] drives the
//! incremental epoch pipeline against a churning delay space (the
//! `repro churn` subcommand); [`gate`] drives a multi-replica
//! `tivgate` wire deployment with an open-loop socket workload (the
//! `repro gate` subcommand); [`chaos`] injects deterministic faults
//! into a live deployment and runs the TIV-aware application workloads
//! against it (the `repro chaos` subcommand); [`sparse`] sweeps
//! sampled-severity
//! accuracy against the exact kernel and sparse-store memory against
//! the dense matrix (the `repro sparse` subcommand).
//!
//! Batches fan out over worker threads with [`suite::run_many`] (the
//! `repro` binary's `--threads` flag); every figure is a pure function
//! of `(scale, seed)`, so fan-out never changes a result.
//!
//! ```
//! use experiments::lab::Lab;
//! use experiments::scale::ExperimentScale;
//!
//! let mut lab = Lab::new(ExperimentScale::Tiny, 7);
//! let fig = experiments::sec2::fig2(&mut lab);
//! assert_eq!(fig.series.len(), 4); // one CDF per data set
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ablations;
pub mod chaos;
pub mod churn;
pub mod figure;
pub mod gate;
pub mod lab;
pub mod penalty;
pub mod report;
pub mod route;
pub mod scale;
pub mod sec2;
pub mod sec3;
pub mod sec4;
pub mod sec5;
pub mod serve;
pub mod sparse;
pub mod suite;

pub use figure::{Figure, Series};
pub use lab::Lab;
pub use scale::ExperimentScale;
