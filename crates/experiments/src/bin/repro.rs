//! `repro` — regenerate the paper's figures, or serve them.
//!
//! ```text
//! repro <figN | all> [--full] [--seed S] [--out DIR] [--threads N]
//! repro serve [--nodes N] [--shards S] [--queries Q] [--batch B]
//!             [--zipf Z] [--observe F] [--epoch-every K]
//!             [--cache C] [--witnesses W] [--seed S]
//! repro route [--nodes N] [--k K] [--threads T] [--seed S] [--out DIR]
//! repro churn [--nodes N] [--ticks T] [--epoch-ticks E] [--obs O]
//!             [--churn-prob P] [--spike-rate R] [--diurnal-amp A]
//!             [--threshold F] [--k K] [--threads T] [--seed S]
//!             [--out DIR]
//! repro gate [--nodes N] [--replicas R] [--queries Q] [--batch B]
//!            [--zipf Z] [--observe F] [--epoch-every K]
//!            [--target-qps T] [--seed S]
//! repro chaos [--nodes N] [--replicas R] [--queries Q] [--batch B]
//!             [--observe F] [--publish-every K] [--target-qps T]
//!             [--seed S] [--no-faults] [--no-apps]
//! repro sparse [--nodes N] [--pairs P] [--scale-nodes M]
//!              [--degree D] [--threads T] [--seed S] [--out DIR]
//! ```
//!
//! * `figN` — one experiment id (fig1 … fig25), or `all`.
//! * `--full` — run at the paper's data-set sizes (DS² = 4000 nodes;
//!   the severity pass is O(n³), expect minutes).
//! * `--seed S` — master seed (default 42).
//! * `--out DIR` — write `figN.csv` (and side artifacts such as the
//!   Figure 3 PGM) into DIR; otherwise only the console summary is
//!   printed.
//! * `--threads N` — fan experiments out over N workers (default 0 =
//!   auto: the `TIV_THREADS` environment variable, else the machine's
//!   available parallelism). Results are identical at any thread
//!   count; `--threads 1` keeps the classic serial loop with one
//!   shared artifact cache.
//!
//! `repro serve` runs the sharded `tivserve` estimation service
//! against a synthetic DS²-style space under a Zipf-skewed closed-loop
//! workload and prints throughput, batch-latency percentiles and cache
//! behaviour. Batched answers are bit-identical at every `--shards`
//! value; see `experiments::serve` for the flag semantics.
//!
//! `repro route` runs the TIV-exploiting one-hop detour search over a
//! DS²-style space and prints the detour-gain summary; with `--out` it
//! writes the `route-savings` and `route-vs-severity` figure CSVs. See
//! `experiments::route`.
//!
//! `repro churn` drives the incremental epoch pipeline (`tivflux` +
//! `tivserve::flux`) against a deterministically churning delay space
//! and prints staleness/freshness and rebuild-latency figures; with
//! `--out` it writes the `churn-staleness` and `churn-rebuild` CSVs.
//! See `experiments::churn`.
//!
//! `repro gate` spawns a multi-replica `tivgate` wire deployment (real
//! TCP sockets, consistent-hash dispatch) and plays an open-loop
//! socket workload against it, printing aggregate qps, p50/p99/p999
//! batch latency, schedule health, and observation-delivery
//! accounting. See `experiments::gate`.
//!
//! `repro chaos` drives the deterministic fault-injection harness
//! (`tivchaos`) against a live multi-replica deployment — crash and
//! restart mid-epoch, withheld publishes — under open-loop load,
//! checks availability/staleness SLOs and bit-exact recovery, then
//! runs the TIV-aware application workloads (server selection, overlay
//! multicast) live against the same stack. Exits non-zero if any SLO
//! is violated. See `experiments::chaos`.
//!
//! `repro sparse` sweeps the sampled-severity estimator against the
//! exact kernel on a dense ground truth (mean error, 95% CI width and
//! coverage per sampling rate) and builds sparse stores at growing n
//! to show their memory staying sublinear in n²; with `--out` it
//! writes the `sparse-accuracy` and `sparse-scaling` CSVs. See
//! `experiments::sparse`.

use experiments::chaos::{run_chaos_experiment, ChaosOptions};
use experiments::churn::{run_churn, ChurnOptions};
use experiments::gate::{run_gate, GateOptions};
use experiments::lab::Lab;
use experiments::route::{run_route, RouteOptions};
use experiments::scale::ExperimentScale;
use experiments::serve::{run_serve, ServeOptions};
use experiments::sparse::{run_sparse, SparseOptions};
use experiments::suite;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    ids: Vec<String>,
    scale: ExperimentScale,
    seed: u64,
    out: Option<PathBuf>,
    report: Option<PathBuf>,
    threads: usize,
}

/// Parses the flags of the `serve` subcommand into [`ServeOptions`].
fn parse_serve_args(argv: impl Iterator<Item = String>) -> Result<ServeOptions, String> {
    fn value<T: std::str::FromStr>(
        argv: &mut impl Iterator<Item = String>,
        flag: &str,
    ) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        let v = argv.next().ok_or(format!("{flag} needs a value"))?;
        v.parse().map_err(|e| format!("bad {flag} value: {e}"))
    }
    let mut opts = ServeOptions::default();
    let mut argv = argv;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--nodes" => opts.nodes = value(&mut argv, "--nodes")?,
            "--shards" => opts.shards = value(&mut argv, "--shards")?,
            "--queries" => opts.queries = value(&mut argv, "--queries")?,
            "--batch" => opts.batch = value(&mut argv, "--batch")?,
            "--zipf" => opts.zipf_s = value(&mut argv, "--zipf")?,
            "--observe" => opts.observe_frac = value(&mut argv, "--observe")?,
            "--epoch-every" => opts.epoch_every = value(&mut argv, "--epoch-every")?,
            "--cache" => opts.cache_capacity = value(&mut argv, "--cache")?,
            "--witnesses" => opts.witnesses = value(&mut argv, "--witnesses")?,
            "--seed" => opts.seed = value(&mut argv, "--seed")?,
            other => {
                return Err(format!(
                    "unknown serve argument: {other}\n\
                     usage: repro serve [--nodes N] [--shards S] [--queries Q] [--batch B] \
                     [--zipf Z] [--observe F] [--epoch-every K] [--cache C] [--witnesses W] \
                     [--seed S]"
                ))
            }
        }
    }
    if opts.nodes < 2 {
        return Err("--nodes must be at least 2".to_string());
    }
    if opts.shards < 1 {
        return Err("--shards must be at least 1".to_string());
    }
    if !(0.0..1.0).contains(&opts.observe_frac) {
        return Err("--observe must be in [0, 1)".to_string());
    }
    if opts.batch < 1 {
        return Err("--batch must be at least 1".to_string());
    }
    if !opts.zipf_s.is_finite() || opts.zipf_s < 0.0 {
        return Err("--zipf must be a finite non-negative exponent".to_string());
    }
    Ok(opts)
}

/// Parses the flags of the `route` subcommand into [`RouteOptions`]
/// plus the optional output directory.
fn parse_route_args(
    argv: impl Iterator<Item = String>,
) -> Result<(RouteOptions, Option<PathBuf>), String> {
    fn value<T: std::str::FromStr>(
        argv: &mut impl Iterator<Item = String>,
        flag: &str,
    ) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        let v = argv.next().ok_or(format!("{flag} needs a value"))?;
        v.parse().map_err(|e| format!("bad {flag} value: {e}"))
    }
    let mut opts = RouteOptions::default();
    let mut out = None;
    let mut argv = argv;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--nodes" => opts.nodes = value(&mut argv, "--nodes")?,
            "--k" => opts.k = value(&mut argv, "--k")?,
            "--threads" => opts.threads = value(&mut argv, "--threads")?,
            "--seed" => opts.seed = value(&mut argv, "--seed")?,
            "--out" => {
                let v = argv.next().ok_or("--out needs a directory")?;
                out = Some(PathBuf::from(v));
            }
            other => {
                return Err(format!(
                    "unknown route argument: {other}\n\
                     usage: repro route [--nodes N] [--k K] [--threads T] [--seed S] [--out DIR]"
                ))
            }
        }
    }
    if opts.nodes < 3 {
        return Err("--nodes must be at least 3 (a detour needs a relay)".to_string());
    }
    if opts.k < 1 {
        return Err("--k must be at least 1".to_string());
    }
    Ok((opts, out))
}

/// Parses the flags of the `churn` subcommand into [`ChurnOptions`]
/// plus the optional output directory.
fn parse_churn_args(
    argv: impl Iterator<Item = String>,
) -> Result<(ChurnOptions, Option<PathBuf>), String> {
    fn value<T: std::str::FromStr>(
        argv: &mut impl Iterator<Item = String>,
        flag: &str,
    ) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        let v = argv.next().ok_or(format!("{flag} needs a value"))?;
        v.parse().map_err(|e| format!("bad {flag} value: {e}"))
    }
    let mut opts = ChurnOptions::default();
    let mut out = None;
    let mut argv = argv;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--nodes" => opts.nodes = value(&mut argv, "--nodes")?,
            "--ticks" => opts.ticks = value(&mut argv, "--ticks")?,
            "--epoch-ticks" => opts.epoch_ticks = value(&mut argv, "--epoch-ticks")?,
            "--obs" => opts.obs_per_tick = value(&mut argv, "--obs")?,
            "--churn-prob" => opts.churn_prob = value(&mut argv, "--churn-prob")?,
            "--spike-rate" => opts.spike_rate = value(&mut argv, "--spike-rate")?,
            "--diurnal-amp" => opts.diurnal_amp = value(&mut argv, "--diurnal-amp")?,
            "--threshold" => opts.full_rebuild_fraction = value(&mut argv, "--threshold")?,
            "--k" => opts.detour_k = value(&mut argv, "--k")?,
            "--threads" => opts.threads = value(&mut argv, "--threads")?,
            "--seed" => opts.seed = value(&mut argv, "--seed")?,
            "--out" => {
                let v = argv.next().ok_or("--out needs a directory")?;
                out = Some(PathBuf::from(v));
            }
            other => {
                return Err(format!(
                    "unknown churn argument: {other}\n\
                     usage: repro churn [--nodes N] [--ticks T] [--epoch-ticks E] [--obs O] \
                     [--churn-prob P] [--spike-rate R] [--diurnal-amp A] [--threshold F] \
                     [--k K] [--threads T] [--seed S] [--out DIR]"
                ))
            }
        }
    }
    if opts.nodes < 3 {
        return Err("--nodes must be at least 3".to_string());
    }
    if opts.ticks < 1 || opts.epoch_ticks < 1 {
        return Err("--ticks and --epoch-ticks must be at least 1".to_string());
    }
    if !(0.0..=1.0).contains(&opts.churn_prob) {
        return Err("--churn-prob must be in [0, 1]".to_string());
    }
    if !(0.0..1.0).contains(&opts.diurnal_amp) {
        return Err("--diurnal-amp must be in [0, 1)".to_string());
    }
    if !opts.spike_rate.is_finite() || opts.spike_rate < 0.0 {
        return Err("--spike-rate must be a finite non-negative rate".to_string());
    }
    if opts.detour_k < 1 {
        return Err("--k must be at least 1".to_string());
    }
    if !opts.full_rebuild_fraction.is_finite() || opts.full_rebuild_fraction < 0.0 {
        return Err("--threshold must be a finite non-negative fraction".to_string());
    }
    Ok((opts, out))
}

/// Parses the flags of the `sparse` subcommand into [`SparseOptions`]
/// plus the optional output directory.
fn parse_sparse_args(
    argv: impl Iterator<Item = String>,
) -> Result<(SparseOptions, Option<PathBuf>), String> {
    fn value<T: std::str::FromStr>(
        argv: &mut impl Iterator<Item = String>,
        flag: &str,
    ) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        let v = argv.next().ok_or(format!("{flag} needs a value"))?;
        v.parse().map_err(|e| format!("bad {flag} value: {e}"))
    }
    let mut opts = SparseOptions::default();
    let mut out = None;
    let mut argv = argv;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--nodes" => opts.nodes = value(&mut argv, "--nodes")?,
            "--pairs" => opts.pairs = value(&mut argv, "--pairs")?,
            "--scale-nodes" => opts.scale_nodes = value(&mut argv, "--scale-nodes")?,
            "--degree" => opts.degree = value(&mut argv, "--degree")?,
            "--threads" => opts.threads = value(&mut argv, "--threads")?,
            "--seed" => opts.seed = value(&mut argv, "--seed")?,
            "--out" => {
                let v = argv.next().ok_or("--out needs a directory")?;
                out = Some(PathBuf::from(v));
            }
            other => {
                return Err(format!(
                    "unknown sparse argument: {other}\n\
                     usage: repro sparse [--nodes N] [--pairs P] [--scale-nodes M] \
                     [--degree D] [--threads T] [--seed S] [--out DIR]"
                ))
            }
        }
    }
    if opts.nodes < 4 {
        return Err("--nodes must be at least 4".to_string());
    }
    if opts.pairs < 1 {
        return Err("--pairs must be at least 1".to_string());
    }
    if opts.scale_nodes < 8 {
        return Err("--scale-nodes must be at least 8".to_string());
    }
    if opts.degree < 1 {
        return Err("--degree must be at least 1".to_string());
    }
    Ok((opts, out))
}

/// Parses the flags of the `chaos` subcommand into [`ChaosOptions`].
fn parse_chaos_args(argv: impl Iterator<Item = String>) -> Result<ChaosOptions, String> {
    fn value<T: std::str::FromStr>(
        argv: &mut impl Iterator<Item = String>,
        flag: &str,
    ) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        let v = argv.next().ok_or(format!("{flag} needs a value"))?;
        v.parse().map_err(|e| format!("bad {flag} value: {e}"))
    }
    let mut opts = ChaosOptions::default();
    let mut argv = argv;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--nodes" => opts.nodes = value(&mut argv, "--nodes")?,
            "--replicas" => opts.replicas = value(&mut argv, "--replicas")?,
            "--queries" => opts.queries = value(&mut argv, "--queries")?,
            "--batch" => opts.batch = value(&mut argv, "--batch")?,
            "--observe" => opts.observe_frac = value(&mut argv, "--observe")?,
            "--publish-every" => opts.publish_every = value(&mut argv, "--publish-every")?,
            "--target-qps" => opts.target_qps = value(&mut argv, "--target-qps")?,
            "--seed" => opts.seed = value(&mut argv, "--seed")?,
            "--no-faults" => opts.no_faults = true,
            "--no-apps" => opts.no_apps = true,
            other => {
                return Err(format!(
                    "unknown chaos argument: {other}\n\
                     usage: repro chaos [--nodes N] [--replicas R] [--queries Q] [--batch B] \
                     [--observe F] [--publish-every K] [--target-qps T] [--seed S] \
                     [--no-faults] [--no-apps]"
                ))
            }
        }
    }
    if opts.nodes < 8 {
        return Err("--nodes must be at least 8".to_string());
    }
    if opts.replicas < 1 {
        return Err("--replicas must be at least 1".to_string());
    }
    if opts.batch < 1 {
        return Err("--batch must be at least 1".to_string());
    }
    if opts.queries / opts.batch < 8 {
        return Err("--queries must cover at least 8 batches".to_string());
    }
    if !(0.0..1.0).contains(&opts.observe_frac) {
        return Err("--observe must be in [0, 1)".to_string());
    }
    if !opts.target_qps.is_finite() || opts.target_qps < 0.0 {
        return Err("--target-qps must be a finite non-negative rate (0 = unpaced)".to_string());
    }
    Ok(opts)
}

/// Runs the `chaos` subcommand end to end.
fn run_chaos_command(argv: impl Iterator<Item = String>) -> ExitCode {
    let opts = match parse_chaos_args(argv) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match run_chaos_experiment(&opts) {
        Ok(summary) => {
            println!("{summary}");
            if summary.report.slo_ok() {
                ExitCode::SUCCESS
            } else {
                eprintln!("chaos run violated its SLOs");
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("chaos run failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses the flags of the `gate` subcommand into [`GateOptions`].
fn parse_gate_args(argv: impl Iterator<Item = String>) -> Result<GateOptions, String> {
    fn value<T: std::str::FromStr>(
        argv: &mut impl Iterator<Item = String>,
        flag: &str,
    ) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        let v = argv.next().ok_or(format!("{flag} needs a value"))?;
        v.parse().map_err(|e| format!("bad {flag} value: {e}"))
    }
    let mut opts = GateOptions::default();
    let mut argv = argv;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--nodes" => opts.nodes = value(&mut argv, "--nodes")?,
            "--replicas" => opts.replicas = value(&mut argv, "--replicas")?,
            "--queries" => opts.queries = value(&mut argv, "--queries")?,
            "--batch" => opts.batch = value(&mut argv, "--batch")?,
            "--zipf" => opts.zipf_s = value(&mut argv, "--zipf")?,
            "--observe" => opts.observe_frac = value(&mut argv, "--observe")?,
            "--epoch-every" => opts.epoch_every = value(&mut argv, "--epoch-every")?,
            "--target-qps" => opts.target_qps = value(&mut argv, "--target-qps")?,
            "--seed" => opts.seed = value(&mut argv, "--seed")?,
            other => {
                return Err(format!(
                    "unknown gate argument: {other}\n\
                     usage: repro gate [--nodes N] [--replicas R] [--queries Q] [--batch B] \
                     [--zipf Z] [--observe F] [--epoch-every K] [--target-qps T] [--seed S]"
                ))
            }
        }
    }
    if opts.nodes < 2 {
        return Err("--nodes must be at least 2".to_string());
    }
    if opts.replicas < 1 {
        return Err("--replicas must be at least 1".to_string());
    }
    if !(0.0..1.0).contains(&opts.observe_frac) {
        return Err("--observe must be in [0, 1)".to_string());
    }
    if opts.batch < 1 {
        return Err("--batch must be at least 1".to_string());
    }
    if !opts.zipf_s.is_finite() || opts.zipf_s < 0.0 {
        return Err("--zipf must be a finite non-negative exponent".to_string());
    }
    if !opts.target_qps.is_finite() || opts.target_qps < 0.0 {
        return Err("--target-qps must be a finite non-negative rate (0 = unpaced)".to_string());
    }
    Ok(opts)
}

/// Runs the `gate` subcommand end to end.
fn run_gate_command(argv: impl Iterator<Item = String>) -> ExitCode {
    let opts = match parse_gate_args(argv) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match run_gate(&opts) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("gate run failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the `churn` subcommand end to end.
fn run_churn_command(argv: impl Iterator<Item = String>) -> ExitCode {
    let (opts, out) = match parse_churn_args(argv) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let report = run_churn(&opts);
    print!("{report}");
    if let Some(dir) = out {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        for fig in &report.figures {
            let path = dir.join(format!("{}.csv", fig.id));
            if let Err(e) = std::fs::write(&path, fig.to_csv()) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("figure written to {}", path.display());
        }
    }
    ExitCode::SUCCESS
}

/// Runs the `sparse` subcommand end to end.
fn run_sparse_command(argv: impl Iterator<Item = String>) -> ExitCode {
    let (opts, out) = match parse_sparse_args(argv) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let report = run_sparse(&opts);
    print!("{report}");
    if let Some(dir) = out {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        for fig in &report.figures {
            let path = dir.join(format!("{}.csv", fig.id));
            if let Err(e) = std::fs::write(&path, fig.to_csv()) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("figure written to {}", path.display());
        }
    }
    ExitCode::SUCCESS
}

/// Runs the `route` subcommand end to end.
fn run_route_command(argv: impl Iterator<Item = String>) -> ExitCode {
    let (opts, out) = match parse_route_args(argv) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let report = run_route(&opts);
    print!("{report}");
    if let Some(dir) = out {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        for fig in &report.figures {
            let path = dir.join(format!("{}.csv", fig.id));
            if let Err(e) = std::fs::write(&path, fig.to_csv()) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("figure written to {}", path.display());
        }
    }
    ExitCode::SUCCESS
}

fn parse_args() -> Result<Args, String> {
    let mut ids = Vec::new();
    let mut scale = ExperimentScale::Small;
    let mut seed = 42u64;
    let mut out = None;
    let mut report = None;
    let mut threads = 0usize;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--full" => scale = ExperimentScale::Paper,
            "--tiny" => scale = ExperimentScale::Tiny,
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|e| format!("bad seed: {e}"))?;
            }
            "--threads" => {
                let v = argv.next().ok_or("--threads needs a value")?;
                threads = v.parse().map_err(|e| format!("bad thread count: {e}"))?;
            }
            "--out" => {
                let v = argv.next().ok_or("--out needs a directory")?;
                out = Some(PathBuf::from(v));
            }
            "--report" => {
                let v = argv.next().ok_or("--report needs a file path")?;
                report = Some(PathBuf::from(v));
            }
            "all" => ids.extend(suite::ALL_IDS.iter().map(|s| s.to_string())),
            "ablations" => ids.extend(suite::ABLATION_IDS.iter().map(|s| s.to_string())),
            id if id.starts_with("fig") || id.starts_with("ablation-") => ids.push(id.to_string()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if ids.is_empty() && report.is_none() {
        return Err(format!(
            "usage: repro <figN | all | ablations> [--full] [--seed S] [--out DIR] \
             [--report FILE] [--threads N]\n\
             \x20      repro serve [--nodes N] [--shards S] [--queries Q] ... \
             (run the estimation service)\n\
             \x20      repro route [--nodes N] [--k K] [--threads T] [--seed S] [--out DIR] \
             (run the detour search)\n\
             \x20      repro churn [--nodes N] [--ticks T] [--epoch-ticks E] [--obs O] ... \
             (run the incremental epoch pipeline under churn)\n\
             \x20      repro gate [--nodes N] [--replicas R] [--queries Q] [--target-qps T] ... \
             (run the wire-protocol replica set)\n\
             \x20      repro chaos [--nodes N] [--replicas R] [--no-faults] [--no-apps] ... \
             (inject faults into a live deployment and verify recovery)\n\
             \x20      repro sparse [--nodes N] [--pairs P] [--scale-nodes M] [--degree D] ... \
             (sweep sampled-severity accuracy and sparse-store scaling)\n\
             figures: {}\n\
             ablations: {}",
            suite::ALL_IDS.join(" "),
            suite::ABLATION_IDS.join(" ")
        ));
    }
    Ok(Args { ids, scale, seed, out, report, threads })
}

/// Prints one experiment outcome and writes its artifacts.
fn emit(
    id: &str,
    output: Option<experiments::suite::ExperimentOutput>,
    seconds: f64,
    args: &Args,
    failed: &mut bool,
) {
    let Some(out) = output else {
        eprintln!("unknown experiment id: {id}");
        *failed = true;
        return;
    };
    print!("{}", out.figure.summary());
    println!("    ({seconds:.1}s)");
    if let Some(dir) = &args.out {
        let csv = dir.join(format!("{id}.csv"));
        if let Err(e) = std::fs::write(&csv, out.figure.to_csv()) {
            eprintln!("cannot write {}: {e}", csv.display());
            *failed = true;
        }
        for (ext, contents) in &out.artifacts {
            let path = dir.join(format!("{id}.{ext}"));
            if let Err(e) = std::fs::write(&path, contents) {
                eprintln!("cannot write {}: {e}", path.display());
                *failed = true;
            }
        }
    }
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1).peekable();
    match argv.peek().map(String::as_str) {
        Some("serve") => {
            argv.next();
            return match parse_serve_args(argv) {
                Ok(opts) => {
                    println!("{}", run_serve(&opts));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            };
        }
        Some("route") => {
            argv.next();
            return run_route_command(argv);
        }
        Some("churn") => {
            argv.next();
            return run_churn_command(argv);
        }
        Some("gate") => {
            argv.next();
            return run_gate_command(argv);
        }
        Some("chaos") => {
            argv.next();
            return run_chaos_command(argv);
        }
        Some("sparse") => {
            argv.next();
            return run_sparse_command(argv);
        }
        _ => {}
    }
    drop(argv);
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = &args.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let workers = tivpar::resolve_threads(args.threads).min(args.ids.len().max(1));
    // The full budget flows into this lab's kernels (serial path and
    // --report); the fan-out path hands the unclamped budget to
    // run_many, which splits it between workers and their kernels.
    let mut lab = Lab::with_threads(args.scale, args.seed, args.threads);
    let mut failed = false;
    if workers > 1 {
        // Fan out; outcomes (and prints) arrive in input order once the
        // batch completes.
        println!("running {} experiments on {workers} workers", args.ids.len());
        for outcome in suite::run_many(&args.ids, args.scale, args.seed, args.threads) {
            emit(&outcome.id, outcome.output, outcome.seconds, &args, &mut failed);
        }
    } else {
        // Serial: stream each figure as it finishes, sharing one
        // artifact cache that --report below can reuse.
        for id in &args.ids {
            let started = std::time::Instant::now();
            let output = suite::run(id, &mut lab);
            emit(id, output, started.elapsed().as_secs_f64(), &args, &mut failed);
        }
    }
    if let Some(path) = &args.report {
        // The fan-out workers own their labs, so a parallel run leaves
        // this shared cache cold and the report recomputes what it
        // needs; say so rather than looking hung.
        if workers > 1 && !args.ids.is_empty() {
            println!("generating report (fresh artifact cache; --threads 1 would reuse the run's)");
        }
        let report = experiments::report::generate(&mut lab);
        if let Err(e) = std::fs::write(path, report) {
            eprintln!("cannot write {}: {e}", path.display());
            failed = true;
        } else {
            println!("report written to {}", path.display());
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
