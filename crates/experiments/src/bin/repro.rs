//! `repro` — regenerate the paper's figures.
//!
//! ```text
//! repro <figN | all> [--full] [--seed S] [--out DIR]
//! ```
//!
//! * `figN` — one experiment id (fig1 … fig25), or `all`.
//! * `--full` — run at the paper's data-set sizes (DS² = 4000 nodes;
//!   the severity pass is O(n³), expect minutes).
//! * `--seed S` — master seed (default 42).
//! * `--out DIR` — write `figN.csv` (and side artifacts such as the
//!   Figure 3 PGM) into DIR; otherwise only the console summary is
//!   printed.

use experiments::lab::Lab;
use experiments::scale::ExperimentScale;
use experiments::suite;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    ids: Vec<String>,
    scale: ExperimentScale,
    seed: u64,
    out: Option<PathBuf>,
    report: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut ids = Vec::new();
    let mut scale = ExperimentScale::Small;
    let mut seed = 42u64;
    let mut out = None;
    let mut report = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--full" => scale = ExperimentScale::Paper,
            "--tiny" => scale = ExperimentScale::Tiny,
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|e| format!("bad seed: {e}"))?;
            }
            "--out" => {
                let v = argv.next().ok_or("--out needs a directory")?;
                out = Some(PathBuf::from(v));
            }
            "--report" => {
                let v = argv.next().ok_or("--report needs a file path")?;
                report = Some(PathBuf::from(v));
            }
            "all" => ids.extend(suite::ALL_IDS.iter().map(|s| s.to_string())),
            "ablations" => ids.extend(suite::ABLATION_IDS.iter().map(|s| s.to_string())),
            id if id.starts_with("fig") || id.starts_with("ablation-") => ids.push(id.to_string()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if ids.is_empty() && report.is_none() {
        return Err(format!(
            "usage: repro <figN | all | ablations> [--full] [--seed S] [--out DIR] \
             [--report FILE]\n\
             figures: {}\n\
             ablations: {}",
            suite::ALL_IDS.join(" "),
            suite::ABLATION_IDS.join(" ")
        ));
    }
    Ok(Args { ids, scale, seed, out, report })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = &args.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let mut lab = Lab::new(args.scale, args.seed);
    let mut failed = false;
    for id in &args.ids {
        let started = std::time::Instant::now();
        let Some(out) = suite::run(id, &mut lab) else {
            eprintln!("unknown experiment id: {id}");
            failed = true;
            continue;
        };
        print!("{}", out.figure.summary());
        println!("    ({:.1}s)", started.elapsed().as_secs_f64());
        if let Some(dir) = &args.out {
            let csv = dir.join(format!("{id}.csv"));
            if let Err(e) = std::fs::write(&csv, out.figure.to_csv()) {
                eprintln!("cannot write {}: {e}", csv.display());
                failed = true;
            }
            for (ext, contents) in &out.artifacts {
                let path = dir.join(format!("{id}.{ext}"));
                if let Err(e) = std::fs::write(&path, contents) {
                    eprintln!("cannot write {}: {e}", path.display());
                    failed = true;
                }
            }
        }
    }
    if let Some(path) = &args.report {
        let report = experiments::report::generate(&mut lab);
        if let Err(e) = std::fs::write(path, report) {
            eprintln!("cannot write {}: {e}", path.display());
            failed = true;
        } else {
            println!("report written to {}", path.display());
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
