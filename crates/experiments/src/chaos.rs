//! The `repro chaos` experiment: scripted faults against a live
//! multi-replica deployment, plus the paper's applications served from
//! it.
//!
//! The heavy lifting lives in [`tivchaos`]; this module is the glue
//! the `repro` binary's `chaos` subcommand, the `chaos` bench and the
//! `chaos_equivalence` tests share, so the CLI, the bench and the
//! tests all exercise exactly the same construction path — the same
//! contract `repro serve` and `repro gate` already keep.

use std::fmt;
use std::io;
use tivchaos::{run_chaos, run_overlay_multicast, run_server_selection};
use tivchaos::{AppConfig, AppReport, ChaosConfig, ChaosReport, FaultPlan, SloSpec};

/// Everything the `chaos` subcommand can tune.
#[derive(Clone, Copy, Debug)]
pub struct ChaosOptions {
    /// Nodes in the synthetic DS²-style delay space.
    pub nodes: usize,
    /// Deployment replicas.
    pub replicas: usize,
    /// Total edge queries of the fault-injected workload.
    pub queries: usize,
    /// Queries per batch.
    pub batch: usize,
    /// Fraction of operations that are RTT observations, in `[0, 1)`.
    pub observe_frac: f64,
    /// Batches between forced epoch publishes.
    pub publish_every: usize,
    /// Target query arrival rate, queries/second (0 = unpaced).
    pub target_qps: f64,
    /// Skip the fault plan (measure a healthy baseline instead).
    pub no_faults: bool,
    /// Skip the application workloads (harness only).
    pub no_apps: bool,
    /// Master seed (space, embedding, workload).
    pub seed: u64,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            nodes: 192,
            replicas: 3,
            queries: 6_000,
            batch: 64,
            observe_frac: 0.1,
            publish_every: 8,
            target_qps: 0.0,
            no_faults: false,
            no_apps: false,
            seed: 42,
        }
    }
}

impl ChaosOptions {
    /// The harness configuration these options imply.
    pub fn chaos_config(&self) -> ChaosConfig {
        ChaosConfig {
            nodes: self.nodes,
            replicas: self.replicas,
            queries: self.queries,
            batch: self.batch,
            observe_frac: self.observe_frac,
            publish_every_batches: self.publish_every,
            target_qps: self.target_qps,
            seed: self.seed,
            slo: SloSpec::default(),
        }
    }

    /// The fault plan these options imply.
    pub fn plan(&self) -> FaultPlan {
        if self.no_faults {
            FaultPlan::none()
        } else {
            FaultPlan::standard(self.replicas, self.queries / self.batch.max(1))
        }
    }

    /// The application-workload configuration these options imply
    /// (smaller than the harness space: every client queries the whole
    /// candidate fleet).
    pub fn app_config(&self) -> AppConfig {
        AppConfig {
            nodes: self.nodes.min(240),
            replicas: self.replicas,
            seed: self.seed,
            ..AppConfig::default()
        }
    }
}

/// The outcome `repro chaos` prints.
#[derive(Clone, Debug)]
pub struct ChaosSummary {
    /// The options the run used.
    pub opts: ChaosOptions,
    /// The fault plan that was injected.
    pub plan: FaultPlan,
    /// The harness report (availability, staleness, recovery).
    pub report: ChaosReport,
    /// The live application workloads, when not skipped.
    pub apps: Vec<AppReport>,
}

impl fmt::Display for ChaosSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = &self.opts;
        writeln!(
            f,
            "tivchaos: {} nodes, {} replicas, seed {} — plan: {}",
            o.nodes, o.replicas, o.seed, self.plan
        )?;
        writeln!(f, "{}", self.report)?;
        for app in &self.apps {
            writeln!(f, "{app}")?;
        }
        write!(
            f,
            "SLOs: {}",
            if self.report.slo_ok() { "all held" } else { "VIOLATED (see above)" }
        )
    }
}

/// Runs the full chaos experiment: the fault-injected harness run,
/// then the live application workloads.
pub fn run_chaos_experiment(opts: &ChaosOptions) -> io::Result<ChaosSummary> {
    let plan = opts.plan();
    let report = run_chaos(&opts.chaos_config(), &plan)?;
    let mut apps = Vec::new();
    if !opts.no_apps {
        let app_cfg = opts.app_config();
        apps.push(run_server_selection(&app_cfg)?);
        apps.push(run_overlay_multicast(&app_cfg)?);
    }
    Ok(ChaosSummary { opts: *opts, plan, report, apps })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ChaosOptions {
        ChaosOptions {
            nodes: 48,
            replicas: 2,
            queries: 1_000,
            batch: 50,
            publish_every: 4,
            no_apps: true,
            ..ChaosOptions::default()
        }
    }

    #[test]
    fn chaos_experiment_reports_and_holds_slos() {
        let summary = run_chaos_experiment(&tiny()).expect("chaos run");
        assert!(summary.report.slo_ok(), "default plan violates SLOs: {summary}");
        assert!(summary.report.unavailable_batches > 0, "the crash window must cost batches");
        assert!(summary.report.recovered_bitexact);
        let text = summary.to_string();
        assert!(text.contains("availability"), "summary missing SLOs: {text}");
        assert!(text.contains("bit-exact"), "summary missing recovery: {text}");
    }

    #[test]
    fn faultless_baseline_is_clean() {
        let opts = ChaosOptions { no_faults: true, ..tiny() };
        let summary = run_chaos_experiment(&opts).expect("chaos run");
        assert_eq!(summary.report.unavailable_batches, 0);
        assert_eq!(summary.report.max_staleness_epochs, 0);
        assert!(summary.plan.events.is_empty());
    }

    #[test]
    fn app_workloads_ride_along_when_enabled() {
        let opts = ChaosOptions {
            nodes: 64,
            replicas: 2,
            queries: 400,
            batch: 50,
            publish_every: 4,
            no_apps: false,
            ..ChaosOptions::default()
        };
        let summary = run_chaos_experiment(&opts).expect("chaos run");
        assert_eq!(summary.apps.len(), 2);
        for app in &summary.apps {
            assert!(app.decisions > 0);
            assert!(app.oblivious_ms.is_finite() && app.aware_ms.is_finite());
            assert!(app.savings.samples > 0, "savings must be attributed");
        }
    }
}
