//! Ablations of the design choices called out in DESIGN.md §5.
//!
//! The paper fixes several knobs (filter fraction 20%, 5-D embedding,
//! β = 0.5, 32+32 dynamic-neighbor pool, dual-ring placement). These
//! sweeps quantify how sensitive the headline results are to each
//! choice; `repro ablations` prints them and `cargo bench -p tiv-bench
//! --bench ablations` measures their cost.

use crate::figure::{Figure, Series};
use crate::lab::Lab;
use crate::penalty::{meridian_penalty_cdf, predictor_penalty_cdf};
use delayspace::rng;
use delayspace::synth::Dataset;
use meridian::{closest_neighbor, BuildOptions, MeridianConfig, MeridianOverlay, Termination};
use simnet::net::{JitterModel, Network};
use tivcore::filter::EdgeMask;
use tivcore::tivmeridian::{build_tiv_aware, tiv_aware_query, TivMeridianConfig};
use vivaldi::{VivaldiConfig, VivaldiSystem};

/// Ablation A1: severity-filter fraction sweep (Section 4.3 fixes 20%).
///
/// Sweeps the fraction of worst-severity edges removed before Vivaldi
/// neighbor selection and reports the median penalty per fraction.
pub fn filter_fraction_sweep(lab: &mut Lab) -> Figure {
    let space = lab.space(Dataset::Ds2);
    let sev = lab.severity(Dataset::Ds2);
    let m = space.matrix();
    let mut points = Vec::new();
    for frac in [0.0, 0.05, 0.10, 0.20, 0.40] {
        let mask = EdgeMask::worst_severity(m, &sev, frac);
        let cfg = VivaldiConfig::default();
        let mut sys = VivaldiSystem::new(cfg, m.len(), lab.seed());
        let mut r = rng::sub_rng(lab.seed(), "ablation/filter");
        for i in 0..m.len() {
            let allowed: Vec<usize> =
                (0..m.len()).filter(|&j| j != i && mask.allows(i, j)).collect();
            if allowed.is_empty() {
                continue;
            }
            let k = cfg.neighbors.min(allowed.len());
            let picks = rng::sample_indices(&mut r, allowed.len(), k)
                .into_iter()
                .map(|x| allowed[x])
                .collect();
            sys.set_neighbors(i, picks);
        }
        let mut net = Network::new(m, JitterModel::None, lab.seed());
        sys.run_rounds(&mut net, lab.scale().embed_rounds());
        let emb = sys.embedding();
        let cdf = predictor_penalty_cdf(
            m,
            |client, cands| emb.select_nearest(client, cands),
            lab.scale().candidates(),
            lab.scale().runs().min(2),
            lab.seed(),
        );
        points.push((frac * 100.0, cdf.median()));
    }
    Figure::new(
        "ablation-filter",
        "Severity-filter fraction vs Vivaldi selection penalty",
        "fraction of worst edges removed (%)",
        "median percentage penalty",
    )
    .with_series(Series::new("median penalty", points))
    .with_note("paper fixes 20%; the sweep shows removal never fixes Vivaldi".to_string())
}

/// Ablation A2: Vivaldi embedding dimensionality (paper fixes 5-D).
pub fn dimensionality_sweep(lab: &mut Lab) -> Figure {
    let space = lab.space(Dataset::Ds2);
    let m = space.matrix();
    let mut err_pts = Vec::new();
    let mut pen_pts = Vec::new();
    for dims in [2usize, 3, 5, 7, 9] {
        let cfg = VivaldiConfig { dims, ..VivaldiConfig::default() };
        let mut sys = VivaldiSystem::new(cfg, m.len(), lab.seed());
        let mut net = Network::new(m, JitterModel::None, lab.seed());
        sys.run_rounds(&mut net, lab.scale().embed_rounds());
        let emb = sys.embedding();
        err_pts.push((dims as f64, emb.abs_error_cdf(m).median()));
        let cdf = predictor_penalty_cdf(
            m,
            |client, cands| emb.select_nearest(client, cands),
            lab.scale().candidates(),
            lab.scale().runs().min(2),
            lab.seed(),
        );
        pen_pts.push((dims as f64, cdf.median()));
    }
    Figure::new(
        "ablation-dims",
        "Embedding dimensionality vs accuracy and selection penalty",
        "dimensions",
        "ms / percentage penalty",
    )
    .with_series(Series::new("median |error| (ms)", err_pts))
    .with_series(Series::new("median penalty (%)", pen_pts))
    .with_note(
        "extra dimensions cannot absorb TIVs — the residual is non-metric, \
         not higher-dimensional"
            .to_string(),
    )
}

/// Ablation A3: Meridian β sweep beyond Figure 13 — penalty and probe
/// cost at β ∈ {0.1, 0.3, 0.5, 0.7, 0.9}.
pub fn beta_sweep(lab: &mut Lab) -> Figure {
    let space = lab.space(Dataset::Ds2);
    let m = space.matrix();
    let members = lab.scale().meridian_members(Dataset::Ds2);
    let mut pen = Vec::new();
    let mut probes = Vec::new();
    for beta in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let cfg = MeridianConfig { beta, ..MeridianConfig::default() };
        let out = meridian_penalty_cdf(
            m,
            |net, mset, bseed| {
                MeridianOverlay::build(cfg, mset, net, bseed, &BuildOptions::default())
            },
            |ov, net, s, t| closest_neighbor(ov, net, s, t, Termination::Beta),
            members,
            lab.scale().runs().min(2),
            lab.seed(),
        );
        pen.push((beta, out.penalties.mean()));
        probes.push((beta, out.probes_per_query));
    }
    Figure::new(
        "ablation-beta",
        "Meridian acceptance threshold: selection quality vs probing cost",
        "beta",
        "mean penalty (%) / probes per query",
    )
    .with_series(Series::new("mean penalty (%)", pen))
    .with_series(Series::new("probes per query", probes))
    .with_note("larger beta masks TIV misplacement but pays probes (Section 3.2.2)".to_string())
}

/// Ablation A4: TIV-aware Meridian mechanism decomposition — dual
/// placement only, restart only, both (Section 5.3 deploys both).
pub fn tiv_meridian_decomposition(lab: &mut Lab) -> Figure {
    let space = lab.space(Dataset::Ds2);
    let emb = lab.embedding(Dataset::Ds2);
    let m = space.matrix();
    let members = lab.scale().meridian_members(Dataset::Ds2);
    let runs = lab.scale().runs().min(2);
    let cfg = TivMeridianConfig::default();
    let base = cfg.base;

    let mut fig = Figure::new(
        "ablation-tivmeridian",
        "TIV-aware Meridian: which half of the mechanism helps?",
        "variant index",
        "mean percentage penalty",
    );
    let mut points = Vec::new();
    let variants: [(&str, bool, bool); 4] = [
        ("plain", false, false),
        ("dual-placement only", true, false),
        ("restart only", false, true),
        ("both (paper)", true, true),
    ];
    for (idx, &(label, dual, restart)) in variants.iter().enumerate() {
        let out = meridian_penalty_cdf(
            m,
            |net, mset, bseed| {
                if dual {
                    build_tiv_aware(&cfg, mset, &emb, net, bseed, None)
                } else {
                    MeridianOverlay::build(base, mset, net, bseed, &BuildOptions::default())
                }
            },
            |ov, net, s, t| {
                if restart {
                    tiv_aware_query(ov, &emb, net, s, t, &cfg)
                } else {
                    closest_neighbor(ov, net, s, t, Termination::Beta)
                }
            },
            members,
            runs,
            lab.seed(),
        );
        points.push((idx as f64, out.penalties.mean()));
        fig.notes.push(format!(
            "{label}: mean penalty {:.2}%, exact {:.3}, probes/query {:.1}",
            out.penalties.mean(),
            out.exact_fraction,
            out.probes_per_query
        ));
    }
    fig.series.push(Series::new("mean penalty", points));
    fig
}

/// Ablation A5: one selection task, every coordinate/prediction system
/// in the workspace — Vivaldi, Vivaldi+height, GNP, LAT, landmark IDES,
/// and the measured-delay oracle. All metric systems share the TI
/// assumption, so all pay the TIV tax; the column worth reading is the
/// gap to the oracle.
pub fn coordinate_system_shootout(lab: &mut Lab) -> Figure {
    use ides::IdesModel;
    use vivaldi::{GnpConfig, GnpModel, LatModel};
    let space = lab.space(Dataset::Ds2);
    let m = space.matrix();
    let candidates = lab.scale().candidates();
    let runs = lab.scale().runs().min(2);
    let seed = lab.seed();

    let mut fig = Figure::new(
        "ablation-coords",
        "Every delay predictor on the same neighbor-selection task",
        "system index",
        "median percentage penalty",
    );
    let mut points: Vec<(f64, f64)> = Vec::new();
    // Each predictor is scored on the selection penalty *and* on the
    // application-oriented metrics of Lua et al. [13]: median relative
    // error (the aggregate-accuracy number papers usually report),
    // relative rank loss, and closest-neighbor loss. The interesting
    // column pairings are rel-err vs cn-loss: aggregate accuracy does
    // not order systems the way selection quality does.
    let push = |fig: &mut Figure,
                points: &mut Vec<(f64, f64)>,
                label: &str,
                predict: &dyn Fn(usize, usize) -> f64,
                select: &mut dyn FnMut(usize, &[usize]) -> Option<usize>| {
        let cdf = predictor_penalty_cdf(m, select, candidates, runs, seed);
        let met = tivcore::metrics::evaluate(m, predict, 2_000, seed);
        fig.notes.push(format!(
            "{label}: median penalty {:.1}%, rel-err {:.2}, rank-loss {:.3}, cn-loss {:.3}",
            cdf.median(),
            met.median_rel_error,
            met.rank_loss,
            met.cn_loss
        ));
        points.push((points.len() as f64, cdf.median()));
    };

    let emb = lab.embedding(Dataset::Ds2);
    let emb2 = emb.clone();
    push(
        &mut fig,
        &mut points,
        "Vivaldi (5-D)",
        &move |i, j| emb2.predicted(i, j),
        &mut |c, cands| emb.select_nearest(c, cands),
    );

    let height_emb = {
        let cfg = VivaldiConfig { use_height: true, ..VivaldiConfig::default() };
        let mut sys = VivaldiSystem::new(cfg, m.len(), seed);
        let mut net = Network::new(m, JitterModel::None, seed);
        sys.run_rounds(&mut net, lab.scale().embed_rounds());
        sys.embedding()
    };
    let height_emb2 = height_emb.clone();
    push(
        &mut fig,
        &mut points,
        "Vivaldi (5-D + height)",
        &move |i, j| height_emb2.predicted(i, j),
        &mut |c, cands| height_emb.select_nearest(c, cands),
    );

    let gnp = GnpModel::fit(m, &GnpConfig::default(), seed);
    let gnp2 = gnp.clone();
    push(
        &mut fig,
        &mut points,
        "GNP (15 landmarks)",
        &move |i, j| gnp2.predicted(i, j),
        &mut |c, cands| gnp.select_nearest(c, cands),
    );

    let lat = LatModel::fit((*emb).clone(), m, 32, seed);
    let lat2 = lat.clone();
    push(
        &mut fig,
        &mut points,
        "Vivaldi + LAT",
        &move |i, j| lat2.predicted(i, j),
        &mut |c, cands| lat.select_nearest(c, cands),
    );

    let ides = IdesModel::fit_landmarks(m, 10, 20, seed);
    let ides2 = ides.clone();
    push(
        &mut fig,
        &mut points,
        "IDES (20 landmarks)",
        &move |i, j| ides2.predicted(i, j),
        &mut |c, cands| ides.select_nearest(c, cands),
    );

    push(
        &mut fig,
        &mut points,
        "oracle (measured delays)",
        &|i, j| m.get(i, j).unwrap_or(f64::MAX),
        &mut |c, cands| m.nearest_among(c, cands.iter()).map(|(x, _)| x),
    );

    fig.series.push(Series::new("median penalty", points));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExperimentScale;

    fn lab() -> Lab {
        Lab::new(ExperimentScale::Tiny, 42)
    }

    #[test]
    fn filter_sweep_covers_fractions() {
        let fig = filter_fraction_sweep(&mut lab());
        assert_eq!(fig.series[0].points.len(), 5);
        assert_eq!(fig.series[0].points[0].0, 0.0);
    }

    #[test]
    fn dims_sweep_has_two_series() {
        let fig = dimensionality_sweep(&mut lab());
        assert_eq!(fig.series.len(), 2);
        assert_eq!(fig.series[0].points.len(), 5);
    }

    #[test]
    fn beta_sweep_probe_cost_increases() {
        let fig = beta_sweep(&mut lab());
        let probes = &fig.series[1].points;
        assert!(
            probes.last().unwrap().1 > probes.first().unwrap().1,
            "larger beta must probe more: {probes:?}"
        );
    }

    #[test]
    fn decomposition_has_four_variants() {
        let fig = tiv_meridian_decomposition(&mut lab());
        assert_eq!(fig.series[0].points.len(), 4);
        assert_eq!(fig.notes.len(), 4);
    }

    #[test]
    fn shootout_includes_oracle_as_lower_bound() {
        let fig = coordinate_system_shootout(&mut lab());
        assert_eq!(fig.series[0].points.len(), 6);
        // The oracle (last entry) has penalty 0 and is minimal.
        let pens: Vec<f64> = fig.series[0].points.iter().map(|p| p.1).collect();
        let oracle = *pens.last().unwrap();
        assert_eq!(oracle, 0.0);
        assert!(pens.iter().all(|&p| p >= oracle));
    }
}
