//! The closest-neighbor selection experiment (Section 4.1).
//!
//! The paper's common protocol: pick a random subset of nodes as
//! *candidates* (200 at paper scale), let every remaining node act as a
//! *client*, have the system under test select the candidate it believes
//! is closest, and record the **percentage penalty**
//!
//! ```text
//! penalty = (delay_to_selected − delay_to_optimal) · 100 / delay_to_optimal
//! ```
//!
//! repeated over 5 candidate subsets, with results cumulative over the
//! runs. Figures 14–18 and 23–25 are all CDFs of this quantity.

use delayspace::matrix::{DelayMatrix, NodeId};
use delayspace::rng;
use delayspace::stats::Cdf;
use meridian::{MeridianOverlay, QueryResult};
use simnet::net::Network;

/// Percentage penalty of selecting `selected` for `client` against the
/// optimal candidate. `None` when the optimum is undefined (no
/// measurable candidate) or the selected delay is unmeasured.
pub fn percentage_penalty(
    m: &DelayMatrix,
    client: NodeId,
    selected: NodeId,
    candidates: &[NodeId],
) -> Option<f64> {
    let (_, d_opt) = m.nearest_among(client, candidates.iter())?;
    let d_sel = m.get(client, selected)?;
    if d_opt <= 0.0 {
        return None;
    }
    Some((d_sel - d_opt) * 100.0 / d_opt)
}

/// Runs the predictor-style penalty experiment (Vivaldi, LAT, IDES —
/// anything that ranks candidates by a predicted delay).
///
/// `select(client, candidates)` returns the candidate the system picks.
/// Returns the cumulative penalty CDF over `runs` candidate subsets of
/// size `candidates_per_run`.
pub fn predictor_penalty_cdf(
    m: &DelayMatrix,
    mut select: impl FnMut(NodeId, &[NodeId]) -> Option<NodeId>,
    candidates_per_run: usize,
    runs: usize,
    seed: u64,
) -> Cdf {
    let n = m.len();
    assert!(candidates_per_run < n, "candidate set must leave clients");
    let mut r = rng::sub_rng(seed, "penalty/candidates");
    let mut penalties = Vec::new();
    for _ in 0..runs {
        let candidates = rng::sample_indices(&mut r, n, candidates_per_run);
        let is_candidate = {
            let mut flag = vec![false; n];
            for &c in &candidates {
                flag[c] = true;
            }
            flag
        };
        for (client, &taken) in is_candidate.iter().enumerate() {
            if taken {
                continue;
            }
            let Some(sel) = select(client, &candidates) else { continue };
            if let Some(p) = percentage_penalty(m, client, sel, &candidates) {
                penalties.push(p);
            }
        }
    }
    Cdf::from_samples(penalties)
}

/// Outcome of a Meridian-style penalty experiment: the penalty CDF plus
/// probe accounting (the paper reports improvements alongside their
/// probing-overhead cost).
#[derive(Clone, Debug)]
pub struct MeridianPenalty {
    /// Cumulative percentage-penalty CDF over all runs.
    pub penalties: Cdf,
    /// Mean on-demand probes per query.
    pub probes_per_query: f64,
    /// Fraction of queries that returned the true closest member.
    pub exact_fraction: f64,
}

/// Runs the Meridian-style penalty experiment.
///
/// Per run: `build` constructs an overlay over a random member subset of
/// size `members_per_run`; every non-member is a client issuing one
/// query via `query` from a random entry member; penalties are measured
/// against the optimal *member*.
#[allow(clippy::too_many_arguments)]
pub fn meridian_penalty_cdf<'m>(
    m: &'m DelayMatrix,
    mut build: impl FnMut(&mut Network<'m>, Vec<NodeId>, u64) -> MeridianOverlay,
    mut query: impl FnMut(&MeridianOverlay, &mut Network<'m>, NodeId, NodeId) -> Option<QueryResult>,
    members_per_run: usize,
    runs: usize,
    seed: u64,
) -> MeridianPenalty {
    let n = m.len();
    assert!(members_per_run >= 2 && members_per_run < n, "bad member count");
    let mut r = rng::sub_rng(seed, "penalty/meridian");
    use rand::Rng;
    let mut penalties = Vec::new();
    let mut query_probes = 0u64;
    let mut queries = 0u64;
    let mut exact = 0u64;
    for run in 0..runs {
        let members = rng::sample_indices(&mut r, n, members_per_run);
        let mut net = Network::new(m, simnet::net::JitterModel::None, seed ^ (run as u64) << 32);
        let overlay = build(&mut net, members.clone(), seed.wrapping_add(run as u64));
        // Separate construction cost from on-demand query cost.
        net.stats_mut().reset();
        let is_member = {
            let mut flag = vec![false; n];
            for &c in &members {
                flag[c] = true;
            }
            flag
        };
        for (client, &taken) in is_member.iter().enumerate() {
            if taken {
                continue;
            }
            let start = members[r.gen_range(0..members.len())];
            let Some(res) = query(&overlay, &mut net, start, client) else { continue };
            queries += 1;
            query_probes += res.target_probes;
            if let Some(p) = percentage_penalty(m, client, res.selected, &members) {
                if p <= 0.0 {
                    exact += 1;
                }
                penalties.push(p);
            }
        }
    }
    MeridianPenalty {
        penalties: Cdf::from_samples(penalties),
        probes_per_query: if queries > 0 { query_probes as f64 / queries as f64 } else { 0.0 },
        exact_fraction: if queries > 0 { exact as f64 / queries as f64 } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayspace::synth::{Dataset, InternetDelaySpace};
    use meridian::{BuildOptions, MeridianConfig, Termination};

    #[test]
    fn penalty_zero_for_optimal_choice() {
        let m = DelayMatrix::from_complete_fn(10, |i, j| 10.0 * i.abs_diff(j) as f64);
        let cands = [2usize, 5, 9];
        // Client 0: optimal candidate is 2.
        assert_eq!(percentage_penalty(&m, 0, 2, &cands), Some(0.0));
        // Picking 5 instead: (50-20)/20*100 = 150%.
        assert_eq!(percentage_penalty(&m, 0, 5, &cands), Some(150.0));
    }

    #[test]
    fn penalty_none_without_measurable_candidates() {
        let mut m = DelayMatrix::new(4);
        m.set(0, 1, 5.0);
        assert_eq!(percentage_penalty(&m, 0, 2, &[2, 3]), None);
    }

    #[test]
    fn oracle_predictor_has_zero_penalty() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(80).build(3);
        let m = s.matrix();
        let cdf = predictor_penalty_cdf(
            m,
            |client, cands| m.nearest_among(client, cands.iter()).map(|(c, _)| c),
            20,
            2,
            1,
        );
        assert!(cdf.len() > 50);
        assert_eq!(cdf.quantile(1.0), 0.0);
    }

    #[test]
    fn random_predictor_has_positive_penalty() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(80).build(3);
        let m = s.matrix();
        let cdf = predictor_penalty_cdf(m, |_, cands| cands.first().copied(), 20, 2, 1);
        assert!(cdf.median() > 0.0, "first-candidate picker should pay a penalty");
    }

    #[test]
    fn meridian_penalty_runs_and_accounts_probes() {
        let s = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(60).build(5);
        let m = s.matrix();
        let out = meridian_penalty_cdf(
            m,
            |net, members, bseed| {
                MeridianOverlay::build(
                    MeridianConfig::default(),
                    members,
                    net,
                    bseed,
                    &BuildOptions::default(),
                )
            },
            |ov, net, start, target| {
                meridian::closest_neighbor(ov, net, start, target, Termination::Beta)
            },
            30,
            2,
            7,
        );
        assert!(out.penalties.len() > 30);
        assert!(out.probes_per_query > 1.0, "queries must at least probe the entry");
        assert!(out.exact_fraction > 0.0);
        // Penalties are never negative (optimum is a lower bound).
        assert!(out.penalties.quantile(0.0) >= 0.0);
    }

    #[test]
    #[should_panic(expected = "candidate set must leave clients")]
    fn all_candidates_rejected() {
        let m = DelayMatrix::from_complete_fn(5, |_, _| 1.0);
        predictor_penalty_cdf(&m, |_, _| None, 5, 1, 1);
    }
}
