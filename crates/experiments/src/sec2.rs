//! Section 2 experiments: TIV characteristics of Internet delays
//! (Figures 1–9).

use crate::figure::{Figure, Series};
use crate::lab::Lab;
use crate::scale::ExperimentScale;
use delayspace::apsp::ShortestPaths;
use delayspace::cluster::{ClusterConfig, Clustering};
use delayspace::stats::{BinnedStats, Cdf};
use delayspace::synth::Dataset;
use std::fmt::Write as _;
use tivcore::severity::{proximity_experiment, triangulation_ratios};

/// Delay-bin width (ms) for severity-vs-length plots at a given scale.
fn bin_ms(scale: ExperimentScale) -> f64 {
    match scale {
        ExperimentScale::Tiny => 50.0,
        _ => 10.0,
    }
}

/// Figure 1: the severity metric illustrated — cumulative distribution
/// of triangulation ratios for one (severely violating) edge. The
/// severity is proportional to the area above ratio = 1.
pub fn fig1(lab: &mut Lab) -> Figure {
    let space = lab.space(Dataset::Ds2);
    let sev = lab.severity(Dataset::Ds2);
    let m = space.matrix();
    // The most severe edge stands in for the paper's hypothetical edge.
    let (a, c) = sev.worst_edges(m, 1.0 / m.edges().count().max(1) as f64)[0];
    let ratios = triangulation_ratios(m, a, c);
    let cdf = Cdf::from_samples(ratios.iter().copied());
    let frac_violating = 1.0 - cdf.eval(1.0);
    Figure::new(
        "fig1",
        "Illustration of the TIV severity metric",
        "triangulation ratio d(A,C)/(d(A,B)+d(B,C))",
        "cumulative distribution",
    )
    .with_series(Series::from_cdf(format!("edge ({a},{c})"), &cdf, 120))
    .with_note(format!(
        "severity({a},{c}) = {:.3}; fraction of witnesses violating (ratio > 1): {:.3}",
        sev.severity(a, c).unwrap_or(0.0),
        frac_violating
    ))
}

/// Figure 2: CDF of TIV severity across the four data sets.
pub fn fig2(lab: &mut Lab) -> Figure {
    let mut fig = Figure::new(
        "fig2",
        "Cumulative distribution of TIV severity",
        "TIV severity",
        "cumulative distribution",
    );
    for ds in Dataset::measured() {
        let space = lab.space(ds);
        let sev = lab.severity(ds);
        let cdf = sev.cdf(space.matrix());
        fig.notes.push(format!(
            "{}: median {:.4}, p90 {:.4}, max {:.3} — long tail expected",
            ds.name(),
            cdf.median(),
            cdf.quantile(0.9),
            cdf.quantile(1.0)
        ));
        fig.series.push(Series::from_cdf(ds.name(), &cdf, 150));
    }
    fig
}

/// Output of the Figure 3 experiment: the figure (within/cross severity
/// summaries) plus a PGM rendering of the cluster-ordered severity
/// matrix (white = most severe, as in the paper).
pub struct Fig3Output {
    /// Summary figure.
    pub figure: Figure,
    /// P2 (ASCII) PGM image of the cluster-ordered severity matrix.
    pub pgm: String,
}

/// Figure 3: TIV severity by cluster.
pub fn fig3(lab: &mut Lab) -> Fig3Output {
    let space = lab.space(Dataset::Ds2);
    let sev = lab.severity(Dataset::Ds2);
    let m = space.matrix();
    let clustering = Clustering::compute(m, &ClusterConfig::default());
    let order = clustering.grouped_order();

    // Severity CDFs for within- vs cross-cluster edges.
    let mut within = Vec::new();
    let mut cross = Vec::new();
    for (i, j, s) in sev.edges(m) {
        if clustering.same_cluster(i, j) {
            within.push(s);
        } else {
            cross.push(s);
        }
    }
    let counts = sev.cluster_violation_counts(m, &clustering);
    let figure = Figure::new(
        "fig3",
        "TIV severity by cluster (white = most severe)",
        "TIV severity",
        "cumulative distribution",
    )
    .with_series(Series::from_cdf("within-cluster edges", &Cdf::from_samples(within), 120))
    .with_series(Series::from_cdf("cross-cluster edges", &Cdf::from_samples(cross), 120))
    .with_note(format!(
        "clusters found: {}; mean #TIVs within {:.1} vs across {:.1} (paper: 80 vs 206)",
        clustering.num_clusters(),
        counts.mean_within,
        counts.mean_across
    ));

    // PGM: nodes reordered by cluster, pixel = severity scaled to 0–255.
    let n = order.len();
    let max_sev = sev.edges(m).map(|(_, _, s)| s).fold(0.0f64, f64::max).max(1e-9);
    let mut pgm = String::with_capacity(n * n * 4 + 64);
    let _ = writeln!(pgm, "P2\n{n} {n}\n255");
    for &i in &order {
        for (col, &j) in order.iter().enumerate() {
            let v = if i == j { 0.0 } else { sev.severity(i, j).unwrap_or(0.0) };
            let px = ((v / max_sev).sqrt() * 255.0).round() as u32; // sqrt for contrast
            let _ = write!(pgm, "{px}");
            pgm.push(if col + 1 == n { '\n' } else { ' ' });
        }
    }
    Fig3Output { figure, pgm }
}

/// Figures 4–7: TIV severity versus edge delay for one data set
/// (fig4 = DS², fig5 = p2psim, fig6 = Meridian, fig7 = PlanetLab).
pub fn fig_severity_vs_delay(lab: &mut Lab, ds: Dataset) -> Figure {
    let id = match ds {
        Dataset::Ds2 => "fig4",
        Dataset::P2pSim => "fig5",
        Dataset::Meridian => "fig6",
        Dataset::PlanetLab => "fig7",
        Dataset::Euclidean => "fig4-euclidean",
    };
    let space = lab.space(ds);
    let sev = lab.severity(ds);
    let m = space.matrix();
    let bins = sev.by_delay_bins(m, bin_ms(lab.scale()), 1000.0);
    let peak = bins.peak().map(|b| b.mid()).unwrap_or(0.0);
    Figure::new(
        id,
        format!("Relation between delay and TIV severity for {} data", ds.name()),
        "delay (ms)",
        "TIV severity (median, 10th–90th)",
    )
    .with_series(Series::from_binned("median TIV severity", &bins))
    .with_note(format!(
        "peak median severity at ≈ {peak:.0} ms; paper observes a peak near 500–600 ms \
         for DS² and irregular severity at all lengths"
    ))
}

/// Figure 8: fraction of within-cluster edges and shortest-path length
/// versus edge delay (DS²).
pub fn fig8(lab: &mut Lab) -> Figure {
    let space = lab.space(Dataset::Ds2);
    let m = space.matrix();
    let clustering = Clustering::compute(m, &ClusterConfig::default());
    let bw = bin_ms(lab.scale()).max(20.0);

    // Top panel: fraction of edges that stay within one cluster, by bin
    // (mean of a 0/1 indicator per bin).
    let nbins = (1000.0 / bw).ceil() as usize;
    let mut hits = vec![0usize; nbins];
    let mut totals = vec![0usize; nbins];
    for (i, j, d) in m.edges() {
        let idx = (d / bw) as usize;
        if idx < nbins {
            totals[idx] += 1;
            if clustering.same_cluster(i, j) {
                hits[idx] += 1;
            }
        }
    }
    let within_series = Series::new(
        "fraction within cluster (mean)",
        (0..nbins)
            .filter(|&b| totals[b] > 0)
            .map(|b| ((b as f64 + 0.5) * bw, hits[b] as f64 / totals[b] as f64))
            .collect(),
    );

    // Bottom panel: shortest-path length of each edge, by edge delay.
    let sp = ShortestPaths::compute(m, lab.threads());
    let sp_bins = BinnedStats::build(sp.inflation_ratios(m).map(|(_, _, d, s)| (d, s)), bw, 1000.0);
    let sp_series = Series::from_binned("shortest path length (ms)", &sp_bins);

    // Where does the shortest path "jump"? Find the largest increase in
    // the median between adjacent non-empty bins past 300 ms.
    let med = sp_bins.median_series();
    let jump = med
        .windows(2)
        .filter(|w| w[0].0 >= 300.0)
        .max_by(|a, b| (a[1].1 - a[0].1).total_cmp(&(b[1].1 - b[0].1)))
        .map(|w| w[1].0)
        .unwrap_or(0.0);

    Figure::new(
        "fig8",
        "Shortest path length for edges of DS² data at different delays",
        "delay (ms)",
        "fraction within cluster / shortest path (ms)",
    )
    .with_series(within_series)
    .with_series(sp_series)
    .with_note(format!(
        "largest shortest-path jump past 300 ms occurs near {jump:.0} ms \
         (paper: jump past ≈ 550 ms separates inflated from genuinely far edges)"
    ))
}

/// Figure 9: proximity property of TIVs — severity differences of
/// nearest-pair versus random-pair edges, all four data sets.
pub fn fig9(lab: &mut Lab) -> Figure {
    let samples = lab.scale().proximity_samples();
    let mut fig = Figure::new(
        "fig9",
        "Proximity property of TIVs",
        "TIV severity difference",
        "cumulative distribution",
    );
    for ds in Dataset::measured() {
        let space = lab.space(ds);
        let sev = lab.severity(ds);
        let prox = proximity_experiment(space.matrix(), &sev, samples, lab.seed());
        fig.notes.push(format!(
            "{}: nearest-pair median diff {:.4} vs random-pair {:.4} — only slightly more similar",
            ds.name(),
            prox.nearest_pair_diffs.median(),
            prox.random_pair_diffs.median()
        ));
        fig.series.push(Series::from_cdf(
            format!("{}-nearest-pair", ds.name()),
            &prox.nearest_pair_diffs,
            100,
        ));
        fig.series.push(Series::from_cdf(
            format!("{}-random-pair", ds.name()),
            &prox.random_pair_diffs,
            100,
        ));
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lab() -> Lab {
        Lab::new(ExperimentScale::Tiny, 42)
    }

    #[test]
    fn fig1_has_ratio_cdf() {
        let fig = fig1(&mut lab());
        assert_eq!(fig.series.len(), 1);
        assert!(!fig.series[0].points.is_empty());
        // Ratios of a severe edge reach beyond 1.
        assert!(fig.series[0].points.iter().any(|&(x, _)| x > 1.0));
    }

    #[test]
    fn fig2_has_four_long_tailed_cdfs() {
        let fig = fig2(&mut lab());
        assert_eq!(fig.series.len(), 4);
        for s in &fig.series {
            let max = s.points.iter().map(|p| p.0).fold(f64::MIN, f64::max);
            let med = s.y_near(0.0).unwrap_or(0.0);
            assert!(max > 0.0, "{} has no violations at all", s.label);
            // Most mass near zero: CDF at tiny severity is already large.
            assert!(med >= 0.0);
        }
    }

    #[test]
    fn fig3_pgm_is_well_formed() {
        let out = fig3(&mut lab());
        let mut lines = out.pgm.lines();
        assert_eq!(lines.next(), Some("P2"));
        let dims = lines.next().unwrap();
        let n: usize = dims.split_whitespace().next().unwrap().parse().unwrap();
        assert_eq!(n, 150);
        assert_eq!(lines.next(), Some("255"));
        assert!(!out.figure.series.is_empty());
    }

    #[test]
    fn fig4_to_7_produce_binned_series() {
        let mut l = lab();
        for ds in Dataset::measured() {
            let fig = fig_severity_vs_delay(&mut l, ds);
            assert_eq!(fig.series.len(), 1);
            assert!(fig.series[0].bars.is_some());
            assert!(!fig.series[0].points.is_empty(), "{}: empty", fig.id);
        }
    }

    #[test]
    fn fig8_has_two_series() {
        let fig = fig8(&mut lab());
        assert_eq!(fig.series.len(), 2);
        // Within-cluster fraction decreases with delay overall.
        let w = &fig.series[0];
        let first = w.points.first().unwrap().1;
        let last = w.points.last().unwrap().1;
        assert!(first >= last, "within-cluster fraction should fall: {first} → {last}");
    }

    #[test]
    fn fig9_nearest_not_dramatically_better() {
        let fig = fig9(&mut lab());
        assert_eq!(fig.series.len(), 8);
    }
}
