//! Section 4 experiments: strawman solutions (Figures 15–18).

use crate::figure::{Figure, Series};
use crate::lab::Lab;
use crate::penalty::{meridian_penalty_cdf, predictor_penalty_cdf};
use delayspace::rng;
use delayspace::stats::Cdf;
use delayspace::synth::Dataset;
use ides::IdesModel;
use meridian::{closest_neighbor, BuildOptions, MeridianConfig, MeridianOverlay, Termination};
use simnet::net::{JitterModel, Network};
use tivcore::filter::EdgeMask;
use vivaldi::{LatModel, VivaldiConfig, VivaldiSystem};

/// Fraction of worst-severity edges removed by the naive filter
/// (Section 4.3 uses 20%).
pub const FILTER_FRACTION: f64 = 0.20;

/// Penalty CDF of plain Vivaldi on DS² (the "Vivaldi-original" baseline
/// reused by Figures 15, 16, 17 and 23).
pub fn vivaldi_baseline(lab: &mut Lab) -> Cdf {
    let space = lab.space(Dataset::Ds2);
    let emb = lab.embedding(Dataset::Ds2);
    predictor_penalty_cdf(
        space.matrix(),
        |client, cands| emb.select_nearest(client, cands),
        lab.scale().candidates(),
        lab.scale().runs(),
        lab.seed(),
    )
}

/// Figure 15: IDES versus original Vivaldi.
///
/// IDES is fit in its deployable landmark configuration (20 landmarks
/// in \[16\]; we scale with the candidate count) — the full-matrix
/// factorization would be an oracle no system can run.
pub fn fig15(lab: &mut Lab) -> Figure {
    let space = lab.space(Dataset::Ds2);
    let m = space.matrix();
    // 20 landmarks, the IDES paper's deployment size, at every scale.
    let landmarks = 20;
    let model = IdesModel::fit_landmarks(m, 10, landmarks, lab.seed());
    let ides_cdf = predictor_penalty_cdf(
        m,
        |client, cands| model.select_nearest(client, cands),
        lab.scale().candidates(),
        lab.scale().runs(),
        lab.seed(),
    );
    let viv_cdf = vivaldi_baseline(lab);
    Figure::new(
        "fig15",
        "Neighbor selection performance for IDES",
        "percentage penalty",
        "cumulative distribution",
    )
    .with_series(Series::from_cdf("IDES", &ides_cdf, 120))
    .with_series(Series::from_cdf("Vivaldi-original", &viv_cdf, 120))
    .with_note(format!(
        "median penalty: IDES ({landmarks} landmarks) {:.1}% vs Vivaldi {:.1}% — \
         paper finds IDES *worse* for neighbor selection despite better \
         aggregate accuracy",
        ides_cdf.median(),
        viv_cdf.median()
    ))
}

/// Figure 16: Vivaldi with the localized adjustment term (LAT) versus
/// original Vivaldi.
pub fn fig16(lab: &mut Lab) -> Figure {
    let space = lab.space(Dataset::Ds2);
    let emb = lab.embedding(Dataset::Ds2);
    let m = space.matrix();
    let lat = LatModel::fit((*emb).clone(), m, 32, lab.seed());
    let lat_cdf = predictor_penalty_cdf(
        m,
        |client, cands| lat.select_nearest(client, cands),
        lab.scale().candidates(),
        lab.scale().runs(),
        lab.seed(),
    );
    let viv_cdf = vivaldi_baseline(lab);
    Figure::new(
        "fig16",
        "Neighbor selection performance for Vivaldi-LAT",
        "percentage penalty",
        "cumulative distribution",
    )
    .with_series(Series::from_cdf("Vivaldi-with-LAT", &lat_cdf, 120))
    .with_series(Series::from_cdf("Vivaldi-original", &viv_cdf, 120))
    .with_note(format!(
        "median penalty: LAT {:.1}% vs original {:.1}% — paper: only slightly better",
        lat_cdf.median(),
        viv_cdf.median()
    ))
}

/// Runs Vivaldi with probing neighbors restricted to an edge mask and
/// returns the resulting penalty CDF.
fn vivaldi_with_mask(lab: &mut Lab, mask: &EdgeMask) -> Cdf {
    let space = lab.space(Dataset::Ds2);
    let m = space.matrix();
    let cfg = VivaldiConfig::default();
    let mut sys = VivaldiSystem::new(cfg, m.len(), lab.seed());
    let mut r = rng::sub_rng(lab.seed(), "fig17/neighbors");
    // Re-draw each node's neighbor set from the allowed edges only.
    for i in 0..m.len() {
        let allowed: Vec<usize> = (0..m.len()).filter(|&j| j != i && mask.allows(i, j)).collect();
        if allowed.is_empty() {
            continue; // isolated by the filter; keeps random neighbors
        }
        let k = cfg.neighbors.min(allowed.len());
        let picks =
            rng::sample_indices(&mut r, allowed.len(), k).into_iter().map(|x| allowed[x]).collect();
        sys.set_neighbors(i, picks);
    }
    let mut net = Network::new(m, JitterModel::None, lab.seed());
    sys.run_rounds(&mut net, lab.scale().embed_rounds());
    let emb = sys.embedding();
    predictor_penalty_cdf(
        m,
        |client, cands| emb.select_nearest(client, cands),
        lab.scale().candidates(),
        lab.scale().runs(),
        lab.seed(),
    )
}

/// Figure 17: Vivaldi with the global TIV-severity filter versus
/// original Vivaldi.
pub fn fig17(lab: &mut Lab) -> Figure {
    let space = lab.space(Dataset::Ds2);
    let sev = lab.severity(Dataset::Ds2);
    let mask = EdgeMask::worst_severity(space.matrix(), &sev, FILTER_FRACTION);
    let filt_cdf = vivaldi_with_mask(lab, &mask);
    let viv_cdf = vivaldi_baseline(lab);
    Figure::new(
        "fig17",
        "Neighbor selection performance for Vivaldi with TIV severity filter",
        "percentage penalty",
        "cumulative distribution",
    )
    .with_series(Series::from_cdf("Vivaldi-original", &viv_cdf, 120))
    .with_series(Series::from_cdf("Vivaldi-TIV-severity-filter", &filt_cdf, 120))
    .with_note(format!(
        "median penalty: filtered {:.1}% vs original {:.1}% — paper: only a \
         marginal improvement; TIV is too widespread for outlier removal",
        filt_cdf.median(),
        viv_cdf.median()
    ))
}

/// Figure 18: Meridian with the global TIV-severity filter versus
/// original Meridian (normal setting).
pub fn fig18(lab: &mut Lab) -> Figure {
    let space = lab.space(Dataset::Ds2);
    let sev = lab.severity(Dataset::Ds2);
    let m = space.matrix();
    let mask = EdgeMask::worst_severity(m, &sev, FILTER_FRACTION);
    let members = lab.scale().meridian_members(Dataset::Ds2);
    let runs = lab.scale().runs();
    let cfg = MeridianConfig::default();

    let original = meridian_penalty_cdf(
        m,
        |net, mset, bseed| MeridianOverlay::build(cfg, mset, net, bseed, &BuildOptions::default()),
        |ov, net, s, t| closest_neighbor(ov, net, s, t, Termination::Beta),
        members,
        runs,
        lab.seed(),
    );
    // Track ring under-population of the filtered overlays.
    let mut thin_rings = 0usize;
    let mut total_nodes = 0usize;
    let filter_fn = |a: usize, b: usize| mask.allows(a, b);
    let filtered = meridian_penalty_cdf(
        m,
        |net, mset, bseed| {
            let ov = MeridianOverlay::build(
                cfg,
                mset,
                net,
                bseed,
                &BuildOptions { edge_filter: Some(&filter_fn), ..Default::default() },
            );
            for node in ov.nodes() {
                thin_rings += node.underpopulated_rings(cfg.k / 2);
                total_nodes += 1;
            }
            ov
        },
        |ov, net, s, t| closest_neighbor(ov, net, s, t, Termination::Beta),
        members,
        runs,
        lab.seed(),
    );

    Figure::new(
        "fig18",
        "Neighbor selection performance for Meridian with TIV severity filter",
        "percentage penalty",
        "cumulative distribution",
    )
    .with_series(Series::from_cdf("Meridian-original", &original.penalties, 120))
    .with_series(Series::from_cdf("Meridian-TIV-severity-filter", &filtered.penalties, 120))
    .with_note(format!(
        "mean penalty: filtered {:.1}% vs original {:.1}% (p90 {:.1}% vs {:.1}%); \
         exact fraction {:.3} vs {:.3} — paper: the filter *degrades* Meridian \
         (removes edges queries need)",
        filtered.penalties.mean(),
        original.penalties.mean(),
        filtered.penalties.quantile(0.9),
        original.penalties.quantile(0.9),
        filtered.exact_fraction,
        original.exact_fraction
    ))
    .with_note(format!(
        "under-populated rings (< k/2 members) per filtered node: {:.2} \
         (paper: rings under-populated by up to 50%)",
        thin_rings as f64 / total_nodes.max(1) as f64
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExperimentScale;

    fn lab() -> Lab {
        Lab::new(ExperimentScale::Tiny, 42)
    }

    #[test]
    fn fig15_both_cdfs_present() {
        let fig = fig15(&mut lab());
        assert_eq!(fig.series.len(), 2);
        assert!(!fig.series[0].points.is_empty());
        assert!(!fig.series[1].points.is_empty());
    }

    #[test]
    fn fig16_lat_close_to_original() {
        let fig = fig16(&mut lab());
        assert_eq!(fig.series.len(), 2);
    }

    #[test]
    fn fig17_filter_changes_little() {
        let fig = fig17(&mut lab());
        assert_eq!(fig.series.len(), 2);
    }

    #[test]
    fn fig18_reports_underpopulation() {
        let fig = fig18(&mut lab());
        assert_eq!(fig.series.len(), 2);
        assert!(fig.notes.iter().any(|n| n.contains("under-populated")));
    }
}
