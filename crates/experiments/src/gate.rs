//! The `repro gate` experiment: drive a multi-replica `tivgate` wire
//! deployment with an open-loop socket workload and report aggregate
//! throughput, latency percentiles and observation accounting.
//!
//! This is the wire-serving sibling of [`crate::serve`]: the same
//! synthetic DS²-style space, the same Zipf workload generator, but the
//! queries travel through real TCP sockets to a multi-replica
//! [`Deployment`], and the load is *open loop* — batches go out on a
//! schedule, so queueing delay shows up in the tail percentiles
//! instead of throttling the generator. The `gate` bench, the chaos
//! harness and the wire-equivalence tests share this construction
//! path.

use crate::serve::ServeOptions;
use delayspace::synth::{Dataset, InternetDelaySpace};
use std::fmt;
use std::io;
use tivgate::deploy::Deployment;
use tivgate::loadgen::{run_open_loop, GateLoadReport};
use tivserve::loadgen::{LoadSpec, ObservePath};

/// Everything the `gate` subcommand can tune.
#[derive(Clone, Copy, Debug)]
pub struct GateOptions {
    /// Nodes in the synthetic DS²-style delay space.
    pub nodes: usize,
    /// Gate replicas (each a full copy of the serving snapshot).
    pub replicas: usize,
    /// Total edge queries of the open-loop run.
    pub queries: usize,
    /// Operations per batch.
    pub batch: usize,
    /// Zipf exponent of source-node popularity.
    pub zipf_s: f64,
    /// Fraction of operations that are RTT observations, in `[0, 1)`.
    pub observe_frac: f64,
    /// Observations folded in before the epoch publisher pushes the
    /// next snapshot into every replica (0 disables the publisher).
    pub epoch_every: usize,
    /// Target query arrival rate, queries/second (0 = unpaced: send
    /// back-to-back for headline throughput).
    pub target_qps: f64,
    /// Master seed (space, embedding, workload).
    pub seed: u64,
}

impl Default for GateOptions {
    fn default() -> Self {
        GateOptions {
            nodes: 512,
            replicas: 2,
            queries: 10_000,
            batch: 64,
            zipf_s: 0.9,
            observe_frac: 0.1,
            epoch_every: 500,
            target_qps: 0.0,
            seed: 42,
        }
    }
}

impl GateOptions {
    /// The per-replica serve options these gate options imply. Shards
    /// stay at the serve default: replicas scale across processes'
    /// sockets, shards across a replica's cores.
    pub fn serve_options(&self) -> ServeOptions {
        ServeOptions {
            nodes: self.nodes,
            queries: self.queries,
            batch: self.batch,
            zipf_s: self.zipf_s,
            observe_frac: self.observe_frac,
            epoch_every: self.epoch_every,
            seed: self.seed,
            ..ServeOptions::default()
        }
    }
}

/// The outcome `repro gate` prints.
#[derive(Clone, Copy, Debug)]
pub struct GateSummary {
    /// The options the run used.
    pub opts: GateOptions,
    /// The measured open-loop wire report.
    pub report: GateLoadReport,
    /// Epoch every replica had published when the run finished.
    pub final_epoch: u64,
    /// Requests served across all replicas (loadgen batches plus any
    /// other traffic).
    pub requests_served: u64,
    /// Backpressure pauses across all replicas (0 unless a client
    /// outran its own reads).
    pub backpressure_pauses: u64,
}

impl fmt::Display for GateSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = &self.opts;
        writeln!(
            f,
            "tivgate: {} nodes, {} replicas, seed {} — final epoch {}",
            o.nodes, o.replicas, o.seed, self.final_epoch
        )?;
        writeln!(f, "{}", self.report)?;
        write!(
            f,
            "  gates: {} requests served, {} backpressure pauses",
            self.requests_served, self.backpressure_pauses
        )
    }
}

/// Runs the full open-loop gate experiment: build the snapshot, spawn
/// a multi-replica [`Deployment`] (real sockets, optionally with the
/// background epoch publisher attached), play the wire workload, and
/// shut down.
pub fn run_gate(opts: &GateOptions) -> io::Result<GateSummary> {
    let serve_opts = opts.serve_options();
    let matrix = InternetDelaySpace::preset(Dataset::Ds2)
        .with_nodes(opts.nodes)
        .build(opts.seed)
        .into_matrix();
    let (builder, snapshot) =
        tivserve::epoch::EpochBuilder::bootstrap(matrix.clone(), serve_opts.epoch_config());
    let spec = LoadSpec { workload: serve_opts.workload(), target_qps: opts.target_qps };
    let batches = spec.batches(&matrix);
    let with_publisher = opts.epoch_every > 0 && opts.observe_frac > 0.0;
    let deployment = Deployment::new(snapshot, serve_opts.serve_config(serve_opts.shards))
        .replicas(opts.replicas);
    let handle = if with_publisher {
        deployment.publisher(builder, opts.epoch_every).spawn()?
    } else {
        deployment.spawn()?
    };
    let report = if with_publisher {
        let feed = handle.feed().expect("publisher attached");
        let report = run_open_loop(&handle.addrs(), &batches, spec, ObservePath::Channel(&feed))?;
        // Flush the tail synchronously so the final epoch is already
        // settled (and deterministic) when the stats are read below.
        handle.publish_now();
        report
    } else {
        run_open_loop(&handle.addrs(), &batches, spec, ObservePath::Drop)?
    };
    let summary = GateSummary {
        opts: *opts,
        report,
        final_epoch: handle.latest_epoch(),
        requests_served: handle.requests_served(),
        backpressure_pauses: handle.backpressure_pauses(),
    };
    handle.shutdown()?;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> GateOptions {
        GateOptions {
            nodes: 48,
            replicas: 2,
            queries: 300,
            batch: 50,
            epoch_every: 40,
            ..GateOptions::default()
        }
    }

    #[test]
    fn run_gate_completes_over_the_wire_and_publishes_epochs() {
        let summary = run_gate(&tiny()).expect("gate run");
        assert_eq!(summary.report.load.queries, 300);
        assert_eq!(summary.report.error_frames, 0);
        assert!(summary.report.load.qps > 0.0);
        assert!(
            summary.final_epoch >= 1,
            "with observations streaming, at least one epoch should publish"
        );
        // Accounting identity, over the wire this time.
        assert_eq!(summary.report.load.observations_undelivered, 0);
        assert_eq!(
            summary.report.load.observations,
            summary.report.load.observations_delivered()
                + summary.report.load.observations_undelivered
        );
        let text = summary.to_string();
        assert!(text.contains("qps"), "summary missing throughput: {text}");
        assert!(text.contains("undelivered"), "summary missing accounting: {text}");
    }

    #[test]
    fn read_only_gate_run_stays_on_epoch_zero() {
        let opts = GateOptions { observe_frac: 0.0, epoch_every: 0, ..tiny() };
        let summary = run_gate(&opts).expect("gate run");
        assert_eq!(summary.final_epoch, 0);
        assert_eq!(summary.report.load.observations, 0);
        assert_eq!(summary.report.load.queries, 300);
    }

    #[test]
    fn paced_gate_run_reports_schedule_health() {
        let opts = GateOptions {
            target_qps: 3000.0,
            observe_frac: 0.0,
            epoch_every: 0,
            queries: 150,
            ..tiny()
        };
        let summary = run_gate(&opts).expect("gate run");
        assert!(
            summary.report.load.elapsed_s >= 150.0 / 3000.0 * 0.5,
            "pacing was ignored: {}",
            summary.report
        );
    }
}
