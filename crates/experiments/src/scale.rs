//! Experiment scaling.
//!
//! The paper's experiments run on matrices of up to 4000 nodes with
//! O(n³) severity computations. Every experiment here takes an
//! [`ExperimentScale`] so the full figure suite can run in seconds
//! (`Small`, the default for `repro` and CI) or at the paper's sizes
//! (`Paper`, `repro --full`).

use delayspace::synth::Dataset;

/// How large to run an experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExperimentScale {
    /// Tiny instances for unit/integration tests (~150 nodes).
    Tiny,
    /// Default: large enough for stable distributions, small enough for
    /// a full `repro all` in minutes.
    Small,
    /// The measured data sets' real sizes (DS² = 4000 nodes, …).
    Paper,
}

impl ExperimentScale {
    /// Node count for a data set at this scale.
    pub fn nodes(self, ds: Dataset) -> usize {
        match self {
            ExperimentScale::Tiny => match ds {
                Dataset::PlanetLab => 120,
                _ => 150,
            },
            ExperimentScale::Small => match ds {
                Dataset::Ds2 | Dataset::Euclidean => 800,
                Dataset::Meridian => 650,
                Dataset::P2pSim => 600,
                Dataset::PlanetLab => 229,
            },
            ExperimentScale::Paper => ds.paper_nodes(),
        }
    }

    /// Closest-neighbor candidate-set size (paper: 200).
    pub fn candidates(self) -> usize {
        match self {
            ExperimentScale::Tiny => 40,
            ExperimentScale::Small => 100,
            ExperimentScale::Paper => 200,
        }
    }

    /// Number of repeated runs with fresh candidate subsets (paper: 5).
    pub fn runs(self) -> usize {
        match self {
            ExperimentScale::Tiny => 2,
            _ => 5,
        }
    }

    /// Meridian overlay size for the "normal" setting (paper: 2000 of
    /// 4000 nodes — half the population).
    pub fn meridian_members(self, ds: Dataset) -> usize {
        self.nodes(ds) / 2
    }

    /// Meridian overlay size for the idealized all-members setting
    /// (paper: 200).
    pub fn meridian_small_members(self) -> usize {
        match self {
            ExperimentScale::Tiny => 40,
            ExperimentScale::Small => 100,
            ExperimentScale::Paper => 200,
        }
    }

    /// Vivaldi embedding rounds before a snapshot is considered steady.
    /// The paper runs "100 seconds of simulation time"; our rounds probe
    /// one neighbor per node per second, so we run longer to reach the
    /// same steady state the paper's (faster-probing) runs reach.
    pub fn embed_rounds(self) -> usize {
        match self {
            ExperimentScale::Tiny => 80,
            _ => 300,
        }
    }

    /// Rounds of the Figure 11 oscillation run (paper: 500 s).
    pub fn oscillation_rounds(self) -> usize {
        match self {
            ExperimentScale::Tiny => 120,
            _ => 500,
        }
    }

    /// Number of sampled edges in the proximity experiment (paper:
    /// 10 000).
    pub fn proximity_samples(self) -> usize {
        match self {
            ExperimentScale::Tiny => 1_000,
            ExperimentScale::Small => 5_000,
            ExperimentScale::Paper => 10_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_measured_sizes() {
        assert_eq!(ExperimentScale::Paper.nodes(Dataset::Ds2), 4000);
        assert_eq!(ExperimentScale::Paper.nodes(Dataset::PlanetLab), 229);
        assert_eq!(ExperimentScale::Paper.candidates(), 200);
        assert_eq!(ExperimentScale::Paper.runs(), 5);
        assert_eq!(ExperimentScale::Paper.meridian_members(Dataset::Ds2), 2000);
        assert_eq!(ExperimentScale::Paper.meridian_small_members(), 200);
    }

    #[test]
    fn small_scale_is_smaller() {
        for ds in Dataset::measured() {
            assert!(ExperimentScale::Small.nodes(ds) <= ExperimentScale::Paper.nodes(ds));
            assert!(ExperimentScale::Tiny.nodes(ds) <= ExperimentScale::Small.nodes(ds));
        }
    }
}
