//! The experiment laboratory: cached per-dataset artifacts.
//!
//! Many figures share expensive intermediates — the synthetic delay
//! space, its O(n³) severity matrix, a steady-state Vivaldi embedding.
//! [`Lab`] computes each lazily, once, keyed by data set, so `repro all`
//! does not recompute severity 15 times.

use crate::scale::ExperimentScale;
use delayspace::synth::{Dataset, InternetDelaySpace};
use simnet::net::{JitterModel, Network};
use std::collections::HashMap;
use std::sync::Arc;
use tivcore::severity::Severity;
use vivaldi::{Embedding, VivaldiConfig, VivaldiSystem};

/// Lazily cached per-dataset artifacts for one (scale, seed) setting.
pub struct Lab {
    scale: ExperimentScale,
    seed: u64,
    threads: usize,
    spaces: HashMap<Dataset, Arc<InternetDelaySpace>>,
    severities: HashMap<Dataset, Arc<Severity>>,
    embeddings: HashMap<Dataset, Arc<Embedding>>,
}

impl Lab {
    /// A lab at the given scale and master seed, with automatic kernel
    /// parallelism ([`Lab::with_threads`] with `threads == 0`).
    pub fn new(scale: ExperimentScale, seed: u64) -> Self {
        Lab::with_threads(scale, seed, 0)
    }

    /// A lab whose O(n³) kernels (severity, APSP, alert sweeps) run on
    /// up to `threads` workers ([`tivpar::resolve_threads`] semantics).
    ///
    /// When several labs run concurrently — `suite::run_many` gives
    /// each fan-out worker its own — pass each a slice of the machine
    /// rather than letting every kernel auto-resolve to all cores and
    /// oversubscribe multiplicatively. The thread budget never changes
    /// results, only wall-clock.
    pub fn with_threads(scale: ExperimentScale, seed: u64, threads: usize) -> Self {
        Lab {
            scale,
            seed,
            threads,
            spaces: HashMap::new(),
            severities: HashMap::new(),
            embeddings: HashMap::new(),
        }
    }

    /// The experiment scale.
    pub fn scale(&self) -> ExperimentScale {
        self.scale
    }

    /// The worker budget for this lab's compute kernels (0 = auto).
    /// Figure code should pass this to any kernel it invokes directly.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The synthetic delay space for `ds` (generated on first use).
    pub fn space(&mut self, ds: Dataset) -> Arc<InternetDelaySpace> {
        let (scale, seed) = (self.scale, self.seed);
        self.spaces
            .entry(ds)
            .or_insert_with(|| {
                Arc::new(
                    InternetDelaySpace::preset(ds)
                        .with_nodes(scale.nodes(ds))
                        .build(seed ^ dataset_salt(ds)),
                )
            })
            .clone()
    }

    /// The severity matrix for `ds` (computed on first use; parallel).
    pub fn severity(&mut self, ds: Dataset) -> Arc<Severity> {
        if let Some(s) = self.severities.get(&ds) {
            return s.clone();
        }
        let space = self.space(ds);
        let sev = Arc::new(Severity::compute(space.matrix(), self.threads));
        self.severities.insert(ds, sev.clone());
        sev
    }

    /// A steady-state Vivaldi embedding of `ds` (the paper's standard
    /// setup: 5-D, 32 random neighbors, 100 rounds).
    pub fn embedding(&mut self, ds: Dataset) -> Arc<Embedding> {
        if let Some(e) = self.embeddings.get(&ds) {
            return e.clone();
        }
        let space = self.space(ds);
        let rounds = self.scale.embed_rounds();
        let seed = self.seed;
        let m = space.matrix();
        let mut sys = VivaldiSystem::new(VivaldiConfig::default(), m.len(), seed);
        let mut net = Network::new(m, JitterModel::None, seed);
        sys.run_rounds(&mut net, rounds);
        let emb = Arc::new(sys.embedding());
        self.embeddings.insert(ds, emb.clone());
        emb
    }
}

/// Decorrelates the generation seeds of different data sets.
fn dataset_salt(ds: Dataset) -> u64 {
    match ds {
        Dataset::Ds2 => 0x1111_2222,
        Dataset::Meridian => 0x3333_4444,
        Dataset::P2pSim => 0x5555_6666,
        Dataset::PlanetLab => 0x7777_8888,
        Dataset::Euclidean => 0x9999_aaaa,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_are_cached() {
        let mut lab = Lab::new(ExperimentScale::Tiny, 1);
        let a = lab.space(Dataset::Ds2);
        let b = lab.space(Dataset::Ds2);
        assert!(Arc::ptr_eq(&a, &b));
        let s1 = lab.severity(Dataset::Ds2);
        let s2 = lab.severity(Dataset::Ds2);
        assert!(Arc::ptr_eq(&s1, &s2));
        let e1 = lab.embedding(Dataset::Ds2);
        let e2 = lab.embedding(Dataset::Ds2);
        assert!(Arc::ptr_eq(&e1, &e2));
    }

    #[test]
    fn datasets_are_decorrelated() {
        let mut lab = Lab::new(ExperimentScale::Tiny, 1);
        let a = lab.space(Dataset::Ds2);
        let b = lab.space(Dataset::P2pSim);
        assert_ne!(a.matrix().get(0, 1), b.matrix().get(0, 1));
    }

    #[test]
    fn sizes_follow_scale() {
        let mut lab = Lab::new(ExperimentScale::Tiny, 2);
        assert_eq!(lab.space(Dataset::Ds2).matrix().len(), 150);
        assert_eq!(lab.embedding(Dataset::Ds2).len(), 150);
    }
}
