//! The `repro route` experiment: run the TIV-exploiting one-hop detour
//! search over a synthetic DS²-style delay space and report how much
//! latency the detours recover — the application payoff the paper
//! motivates (severe TIV edges are exactly the edges an overlay can
//! shortcut through a relay).
//!
//! The heavy lifting lives in [`tivroute`]; this module is the glue the
//! `repro` binary's `route` subcommand and the `route` bench share. It
//! produces two figures:
//!
//! * `route-savings` — the CDF of per-edge relative latency savings
//!   when every measured edge takes its best one-hop detour;
//! * `route-vs-severity` — median relative saving binned by the edge's
//!   TIV severity (with 10/90 bars), showing savings grow with
//!   severity.

use crate::figure::{Figure, Series};
use delayspace::synth::{Dataset, InternetDelaySpace};
use std::fmt;
use tivcore::severity::Severity;
use tivroute::{DetourStats, DetourTable};

/// Everything the `route` subcommand can tune.
#[derive(Clone, Copy, Debug)]
pub struct RouteOptions {
    /// Nodes in the synthetic DS²-style delay space (the detour and
    /// severity kernels are both O(n³)).
    pub nodes: usize,
    /// Relays kept per ordered pair (rank 0 is the one `route_batch`
    /// serves).
    pub k: usize,
    /// Worker threads (0 = auto, [`tivpar::resolve_threads`]).
    pub threads: usize,
    /// Master seed of the synthetic space.
    pub seed: u64,
    /// Severity bin width of the savings-vs-severity series.
    pub sev_bin: f64,
    /// Largest severity binned (edges beyond are dropped from that
    /// series only).
    pub sev_max: f64,
}

impl Default for RouteOptions {
    fn default() -> Self {
        RouteOptions { nodes: 400, k: 4, threads: 0, seed: 42, sev_bin: 0.05, sev_max: 2.0 }
    }
}

/// The outcome `repro route` prints and writes.
#[derive(Clone, Debug)]
pub struct RouteReport {
    /// The options the run used.
    pub opts: RouteOptions,
    /// The aggregated detour gains.
    pub stats: DetourStats,
    /// Median relative saving among beneficial edges only (the median
    /// over all edges is 0 whenever fewer than half the edges violate).
    pub median_beneficial_saving: f64,
    /// 90th-percentile relative saving over all measured edges.
    pub p90_saving: f64,
    /// The figures (`route-savings`, `route-vs-severity`), ready for
    /// CSV export.
    pub figures: Vec<Figure>,
}

impl fmt::Display for RouteReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = &self.stats;
        writeln!(
            f,
            "tivroute: {} nodes, k={}, seed {} — {} measured edges, {} routable",
            self.opts.nodes, self.opts.k, self.opts.seed, s.edges, s.routable
        )?;
        writeln!(
            f,
            "  beneficial detour on {:.1}% of edges (exactly the TIV-violating edges)",
            s.beneficial_fraction() * 100.0
        )?;
        writeln!(
            f,
            "  relative saving: median {:.1}% among beneficial edges, p90 {:.1}% overall",
            self.median_beneficial_saving * 100.0,
            self.p90_saving * 100.0
        )?;
        for fig in &self.figures {
            write!(f, "{}", fig.summary())?;
        }
        Ok(())
    }
}

/// Runs the full detour experiment: build the space, compute severity
/// and the k-best detour table (both parallel over rows, bit-identical
/// at every thread count), aggregate the gains, and shape the figures.
pub fn run_route(opts: &RouteOptions) -> RouteReport {
    let m = InternetDelaySpace::preset(Dataset::Ds2)
        .with_nodes(opts.nodes)
        .build(opts.seed)
        .into_matrix();
    let sev = Severity::compute(&m, opts.threads);
    let table = DetourTable::compute(&m, opts.k, opts.threads);
    let stats = DetourStats::compute(&table, &m, Some(&sev), opts.sev_bin, opts.sev_max);

    let beneficial: Vec<f64> =
        stats.rel_savings.samples().iter().copied().filter(|&v| v > 0.0).collect();
    let median_beneficial_saving = if beneficial.is_empty() {
        0.0
    } else {
        // samples() is sorted, and filtering keeps the order.
        beneficial[beneficial.len() / 2]
    };
    let p90_saving =
        if stats.rel_savings.is_empty() { 0.0 } else { stats.rel_savings.quantile(0.9) };

    let savings_fig = Figure::new(
        "route-savings",
        "Latency saved by the best one-hop detour (DS2)",
        "relative saving (fraction of direct delay)",
        "CDF over measured edges",
    )
    .with_series(Series::from_cdf("best 1-hop relay", &stats.rel_savings, 128))
    .with_note(format!(
        "beneficial detour on {:.1}% of edges; p90 relative saving {:.1}%",
        stats.beneficial_fraction() * 100.0,
        p90_saving * 100.0
    ));
    let severity_fig = Figure::new(
        "route-vs-severity",
        "Detour saving vs TIV severity (DS2)",
        "TIV severity of the direct edge",
        "relative saving (median, 10/90 bars)",
    )
    .with_series(Series::from_binned(
        "rel. saving by severity",
        stats.savings_vs_severity.as_ref().expect("severity supplied"),
    ))
    .with_note("severity > 0 iff a beneficial one-hop detour exists; savings grow with severity");

    RouteReport {
        opts: *opts,
        stats,
        median_beneficial_saving,
        p90_saving,
        figures: vec![savings_fig, severity_fig],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RouteOptions {
        RouteOptions { nodes: 80, ..RouteOptions::default() }
    }

    #[test]
    fn run_route_reports_gains_and_figures() {
        let report = run_route(&tiny());
        assert_eq!(report.stats.edges, report.stats.routable, "complete synthetic matrix");
        let frac = report.stats.beneficial_fraction();
        assert!(frac > 0.0 && frac < 1.0, "beneficial fraction {frac} implausible");
        assert!(report.median_beneficial_saving > 0.0);
        assert!(report.p90_saving >= 0.0);
        assert_eq!(report.figures.len(), 2);
        assert!(!report.figures[0].series[0].points.is_empty());
        assert!(!report.figures[1].series[0].points.is_empty());
        let text = report.to_string();
        assert!(text.contains("beneficial detour"), "summary missing headline: {text}");
        // CSV export is well-formed for both figures.
        for fig in &report.figures {
            assert!(fig.to_csv().lines().count() > 1, "{} CSV empty", fig.id);
        }
    }

    #[test]
    fn route_report_is_thread_count_invariant() {
        let a = run_route(&RouteOptions { threads: 1, ..tiny() });
        let b = run_route(&RouteOptions { threads: 4, ..tiny() });
        assert_eq!(a.figures[0].to_csv(), b.figures[0].to_csv());
        assert_eq!(a.figures[1].to_csv(), b.figures[1].to_csv());
        assert_eq!(a.stats.beneficial, b.stats.beneficial);
    }
}
