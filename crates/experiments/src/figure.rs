//! Figure output types: named series, rendered to CSV and to readable
//! console summaries.
//!
//! Every experiment returns a [`Figure`]: an id matching the paper's
//! figure number, axis labels, and one or more [`Series`]. The `repro`
//! binary writes the CSV (one file per figure, gnuplot/matplotlib
//! friendly) and prints the summary.

use delayspace::stats::{BinnedStats, Cdf};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One named data series: `(x, y)` points plus optional error bars.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in plotting order.
    pub points: Vec<(f64, f64)>,
    /// Optional `(y_low, y_high)` error bars, parallel to `points`.
    pub bars: Option<Vec<(f64, f64)>>,
}

impl Series {
    /// A plain series without error bars.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series { label: label.into(), points, bars: None }
    }

    /// A series from a CDF, downsampled to at most `k` points.
    pub fn from_cdf(label: impl Into<String>, cdf: &Cdf, k: usize) -> Self {
        Series::new(label, cdf.points(k))
    }

    /// A median series with 10th/90th percentile error bars from binned
    /// statistics.
    pub fn from_binned(label: impl Into<String>, b: &BinnedStats) -> Self {
        let mut points = Vec::new();
        let mut bars = Vec::new();
        for bin in &b.bins {
            if let Some(s) = bin.stats {
                points.push((bin.mid(), s.p50));
                bars.push((s.p10, s.p90));
            }
        }
        Series { label: label.into(), points, bars: Some(bars) }
    }

    /// The y-value at the x closest to `x`, if any points exist.
    pub fn y_near(&self, x: f64) -> Option<f64> {
        self.points.iter().min_by(|a, b| (a.0 - x).abs().total_cmp(&(b.0 - x).abs())).map(|p| p.1)
    }
}

/// A regenerated figure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Figure {
    /// Paper figure id, e.g. `"fig4"`.
    pub id: String,
    /// Human title (what the paper's caption says).
    pub title: String,
    /// x-axis label.
    pub xlabel: String,
    /// y-axis label.
    pub ylabel: String,
    /// The series.
    pub series: Vec<Series>,
    /// Free-form notes: measured headline numbers, paper comparisons.
    pub notes: Vec<String>,
}

impl Figure {
    /// Creates an empty figure shell.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        xlabel: impl Into<String>,
        ylabel: impl Into<String>,
    ) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            xlabel: xlabel.into(),
            ylabel: ylabel.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a series (builder style).
    pub fn with_series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Adds a note (builder style).
    pub fn with_note(mut self, n: impl Into<String>) -> Self {
        self.notes.push(n.into());
        self
    }

    /// Renders all series as one CSV: `series,x,y[,ylo,yhi]`.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("series,x,y,ylo,yhi\n");
        for s in &self.series {
            for (k, &(x, y)) in s.points.iter().enumerate() {
                let (lo, hi) = s
                    .bars
                    .as_ref()
                    .and_then(|b| b.get(k))
                    .map(|&(lo, hi)| (format!("{lo:.6}"), format!("{hi:.6}")))
                    .unwrap_or_default();
                let _ = writeln!(out, "{},{x:.6},{y:.6},{lo},{hi}", csv_escape(&s.label));
            }
        }
        out
    }

    /// A multi-line console summary: per-series point count, y range,
    /// and a few representative points, plus the notes.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "[{}] {}", self.id, self.title);
        let _ = writeln!(out, "    x: {}   y: {}", self.xlabel, self.ylabel);
        for s in &self.series {
            if s.points.is_empty() {
                let _ = writeln!(out, "    {}: (empty)", s.label);
                continue;
            }
            let ymin = s.points.iter().map(|p| p.1).fold(f64::MAX, f64::min);
            let ymax = s.points.iter().map(|p| p.1).fold(f64::MIN, f64::max);
            let _ = writeln!(
                out,
                "    {}: {} pts, y ∈ [{:.3}, {:.3}]",
                s.label,
                s.points.len(),
                ymin,
                ymax
            );
        }
        for n in &self.notes {
            let _ = writeln!(out, "    note: {n}");
        }
        out
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_contains_all_points() {
        let fig = Figure::new("figX", "t", "x", "y")
            .with_series(Series::new("a", vec![(1.0, 2.0), (3.0, 4.0)]))
            .with_series(Series::new("b,c", vec![(5.0, 6.0)]));
        let csv = fig.to_csv();
        assert_eq!(csv.lines().count(), 4); // header + 3 points
        assert!(csv.contains("a,1.000000,2.000000"));
        assert!(csv.contains("\"b,c\",5.000000"));
    }

    #[test]
    fn binned_series_carries_error_bars() {
        let b = BinnedStats::build((0..100).map(|i| (5.0, i as f64)), 10.0, 20.0);
        let s = Series::from_binned("sev", &b);
        assert_eq!(s.points.len(), 1);
        let bars = s.bars.unwrap();
        assert!(bars[0].0 <= s.points[0].1);
        assert!(bars[0].1 >= s.points[0].1);
    }

    #[test]
    fn cdf_series_is_monotone() {
        let cdf = Cdf::from_samples((0..500).map(|i| (i % 37) as f64));
        let s = Series::from_cdf("cdf", &cdf, 20);
        for w in s.points.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn y_near_picks_closest() {
        let s = Series::new("s", vec![(0.0, 1.0), (10.0, 2.0)]);
        assert_eq!(s.y_near(3.0), Some(1.0));
        assert_eq!(s.y_near(8.0), Some(2.0));
    }

    #[test]
    fn summary_mentions_series() {
        let fig = Figure::new("fig9", "Proximity", "diff", "CDF")
            .with_series(Series::new("nearest", vec![(0.0, 0.5)]))
            .with_note("paper: slight similarity only");
        let s = fig.summary();
        assert!(s.contains("fig9"));
        assert!(s.contains("nearest"));
        assert!(s.contains("slight similarity"));
    }
}
