//! Offline stand-in for the subset of `mio` 0.8 this workspace uses.
//!
//! The build environment cannot fetch crates.io, so the non-blocking
//! serving layer (`tivgate`) gets its readiness loop from this minimal
//! mio-style shim instead: [`Poll`] + [`Events`] + [`Token`] +
//! [`Interest`], and [`net::TcpListener`] / [`net::TcpStream`] wrappers
//! that are created non-blocking, exactly like mio's. The backend is
//! **level-triggered `epoll(7)`** via direct libc FFI (the std library
//! already links libc; no crate dependency is needed). Level-triggered
//! — mio itself is edge-triggered — because the consumer here drains
//! sockets until `WouldBlock` anyway and level semantics make a missed
//! wakeup structurally impossible, which is worth more to this
//! workspace than the syscall economy of edge triggering.
//!
//! Supported surface: `Poll::new` / `Poll::poll` (with optional
//! timeout), `Registry::{register, reregister, deregister}` over
//! anything `AsRawFd` (mio's `event::Source` is not reproduced — the
//! raw fd *is* the source identity here), `Interest::{READABLE,
//! WRITABLE}` composed with `|`, and event accessors
//! `token` / `is_readable` / `is_writable` / `is_error` /
//! `is_read_closed`.
//!
//! This is the one compat crate that needs `unsafe`: four FFI calls
//! (`epoll_create1`, `epoll_ctl`, `epoll_wait`, `close`), each wrapped
//! in a safe function that checks `errno` and owns the fd lifecycle.

#![deny(missing_docs)]
#![cfg(unix)]

use std::io;
use std::ops::BitOr;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

/// Associates a registered file descriptor with the events it produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Readiness interest: readable, writable, or both (`|`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest(u32);

impl Interest {
    /// Interest in read readiness.
    pub const READABLE: Interest = Interest(ffi::EPOLLIN);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(ffi::EPOLLOUT);

    /// True when this interest includes read readiness.
    pub fn is_readable(self) -> bool {
        self.0 & ffi::EPOLLIN != 0
    }

    /// True when this interest includes write readiness.
    pub fn is_writable(self) -> bool {
        self.0 & ffi::EPOLLOUT != 0
    }
}

impl BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

/// One readiness event delivered by [`Poll::poll`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    token: Token,
    flags: u32,
}

impl Event {
    /// The token the fd was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// True when the fd is ready for reading (or has an error/hangup —
    /// epoll reports those unconditionally, and a read is the way to
    /// observe them as `Err`/EOF).
    pub fn is_readable(&self) -> bool {
        self.flags & (ffi::EPOLLIN | ffi::EPOLLERR | ffi::EPOLLHUP) != 0
    }

    /// True when the fd is ready for writing (or errored).
    pub fn is_writable(&self) -> bool {
        self.flags & (ffi::EPOLLOUT | ffi::EPOLLERR | ffi::EPOLLHUP) != 0
    }

    /// True when the fd is in an error state.
    pub fn is_error(&self) -> bool {
        self.flags & ffi::EPOLLERR != 0
    }

    /// True when the peer closed its write half (or the connection hung
    /// up entirely): reads will drain buffered bytes and then see EOF.
    pub fn is_read_closed(&self) -> bool {
        self.flags & (ffi::EPOLLRDHUP | ffi::EPOLLHUP) != 0
    }
}

/// A buffer of events filled by [`Poll::poll`].
#[derive(Debug)]
pub struct Events {
    capacity: usize,
    events: Vec<Event>,
}

impl Events {
    /// An empty buffer that can hold up to `capacity` events per poll.
    ///
    /// # Panics
    /// Panics when `capacity` is zero (epoll rejects it).
    pub fn with_capacity(capacity: usize) -> Events {
        assert!(capacity > 0, "events buffer needs capacity");
        Events { capacity, events: Vec::with_capacity(capacity) }
    }

    /// Iterates the events of the last poll.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// True when the last poll returned no events (timeout).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

/// Handle for (de)registering fds with a [`Poll`]'s epoll instance.
///
/// Copies the epoll fd by value: it must not outlive the `Poll` it came
/// from (the server loop this shim serves holds both in one scope).
#[derive(Clone, Copy, Debug)]
pub struct Registry {
    epfd: RawFd,
}

impl Registry {
    /// Starts watching `source` for `interests`, tagged with `token`.
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        ffi::epoll_ctl(self.epfd, ffi::EPOLL_CTL_ADD, source.as_raw_fd(), interests.0, token.0)
    }

    /// Changes the interests/token of an already-registered `source`.
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        ffi::epoll_ctl(self.epfd, ffi::EPOLL_CTL_MOD, source.as_raw_fd(), interests.0, token.0)
    }

    /// Stops watching `source`.
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        ffi::epoll_ctl(self.epfd, ffi::EPOLL_CTL_DEL, source.as_raw_fd(), 0, 0)
    }
}

/// The readiness poller: an owned epoll instance.
#[derive(Debug)]
pub struct Poll {
    epfd: RawFd,
}

impl Poll {
    /// Creates a fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poll> {
        Ok(Poll { epfd: ffi::epoll_create1()? })
    }

    /// The registration handle.
    pub fn registry(&self) -> Registry {
        Registry { epfd: self.epfd }
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses (`None` blocks indefinitely), filling `events`. Spurious
    /// interruptions (`EINTR`) are retried internally.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        // epoll_wait takes whole milliseconds; round a short non-zero
        // timeout up so `Some(small)` cannot spin as a busy loop.
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis().min(i32::MAX as u128) as i32;
                if ms == 0 && !d.is_zero() {
                    1
                } else {
                    ms
                }
            }
        };
        events.events = ffi::epoll_wait(self.epfd, events.capacity, timeout_ms)?
            .into_iter()
            .map(|(flags, data)| Event { token: Token(data), flags })
            .collect();
        Ok(())
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        ffi::close(self.epfd);
    }
}

mod ffi {
    //! The four libc calls behind the shim, each wrapped safely. std
    //! already links libc, so plain `extern "C"` declarations resolve
    //! without any crate dependency.

    use std::ffi::c_int;
    use std::io;
    use std::os::fd::RawFd;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EINTR: i32 = 4;

    /// The kernel's `struct epoll_event`. On x86-64 Linux it is packed
    /// (12 bytes) for 32-bit compatibility; other architectures use
    /// natural alignment — both definitions below match their ABI.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    mod sys {
        use super::EpollEvent;
        use std::ffi::c_int;
        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
            pub fn close(fd: c_int) -> c_int;
        }
    }

    /// `epoll_create1(EPOLL_CLOEXEC)`, errno-checked.
    pub fn epoll_create1() -> io::Result<RawFd> {
        // SAFETY: no pointers involved; the return value is checked.
        let fd = unsafe { sys::epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    /// `epoll_ctl`, errno-checked. `interests`/`token` are ignored by
    /// the kernel for `EPOLL_CTL_DEL`.
    pub fn epoll_ctl(
        epfd: RawFd,
        op: c_int,
        fd: RawFd,
        interests: u32,
        token: usize,
    ) -> io::Result<()> {
        // Always watch for peer hangup: the consumer treats it as
        // readable-to-EOF, the classic level-triggered close detection.
        let mut ev = EpollEvent { events: interests | EPOLLRDHUP, data: token as u64 };
        // SAFETY: `ev` outlives the call; the kernel copies it out.
        let rc = unsafe { sys::epoll_ctl(epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// `epoll_wait`, errno-checked, `EINTR`-retried. Returns the raw
    /// `(events bitmask, data)` pairs.
    pub fn epoll_wait(
        epfd: RawFd,
        capacity: usize,
        timeout_ms: i32,
    ) -> io::Result<Vec<(u32, usize)>> {
        let mut buf = vec![EpollEvent { events: 0, data: 0 }; capacity];
        loop {
            // SAFETY: `buf` holds `capacity` writable entries and
            // outlives the call.
            let rc =
                unsafe { sys::epoll_wait(epfd, buf.as_mut_ptr(), capacity as c_int, timeout_ms) };
            if rc >= 0 {
                return Ok(buf[..rc as usize]
                    .iter()
                    .map(|e| {
                        // Copy out of the (possibly packed) struct
                        // before touching the fields.
                        let (events, data) = (e.events, e.data);
                        (events, data as usize)
                    })
                    .collect());
            }
            let err = io::Error::last_os_error();
            if err.raw_os_error() != Some(EINTR) {
                return Err(err);
            }
        }
    }

    /// `close`, best-effort (drop paths have nowhere to report).
    pub fn close(fd: RawFd) {
        // SAFETY: the fd is owned by the caller's `Poll` and closed
        // exactly once, on drop.
        let _ = unsafe { sys::close(fd) };
    }
}

pub mod net {
    //! Non-blocking TCP types, mirroring `mio::net`.

    use std::io;
    use std::net::{self, SocketAddr};
    use std::os::fd::{AsRawFd, RawFd};

    /// A non-blocking listener.
    #[derive(Debug)]
    pub struct TcpListener {
        inner: net::TcpListener,
    }

    impl TcpListener {
        /// Binds a listener and switches it non-blocking.
        pub fn bind(addr: SocketAddr) -> io::Result<TcpListener> {
            let inner = net::TcpListener::bind(addr)?;
            inner.set_nonblocking(true)?;
            Ok(TcpListener { inner })
        }

        /// Accepts one pending connection (already non-blocking), or
        /// `WouldBlock` when none is queued.
        pub fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
            let (stream, addr) = self.inner.accept()?;
            stream.set_nonblocking(true)?;
            Ok((TcpStream { inner: stream }, addr))
        }

        /// The bound local address (the way to learn an ephemeral port).
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }
    }

    impl AsRawFd for TcpListener {
        fn as_raw_fd(&self) -> RawFd {
            self.inner.as_raw_fd()
        }
    }

    /// A non-blocking stream. Reads and writes go through the standard
    /// [`io::Read`]/[`io::Write`] impls and return `WouldBlock` when the
    /// socket is not ready — the server loop's signal to wait for the
    /// next readiness event.
    #[derive(Debug)]
    pub struct TcpStream {
        inner: net::TcpStream,
    }

    impl TcpStream {
        /// Wraps an accepted or connected std stream, switching it
        /// non-blocking.
        pub fn from_std(inner: net::TcpStream) -> io::Result<TcpStream> {
            inner.set_nonblocking(true)?;
            Ok(TcpStream { inner })
        }

        /// The peer's address.
        pub fn peer_addr(&self) -> io::Result<SocketAddr> {
            self.inner.peer_addr()
        }

        /// Disables Nagle's algorithm (batch-oriented request/response
        /// protocols want their small frames on the wire immediately).
        pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
            self.inner.set_nodelay(nodelay)
        }
    }

    impl io::Read for TcpStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            (&self.inner).read(buf)
        }
    }

    impl io::Write for TcpStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            (&self.inner).write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            (&self.inner).flush()
        }
    }

    impl AsRawFd for TcpStream {
        fn as_raw_fd(&self) -> RawFd {
            self.inner.as_raw_fd()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::SocketAddr;
    use std::time::{Duration, Instant};

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().expect("loopback literal")
    }

    #[test]
    fn timeout_poll_returns_empty() {
        let mut poll = Poll::new().expect("epoll");
        let mut events = Events::with_capacity(8);
        let t0 = Instant::now();
        poll.poll(&mut events, Some(Duration::from_millis(20))).expect("poll");
        assert!(events.is_empty());
        assert!(t0.elapsed() >= Duration::from_millis(15), "timeout returned early");
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = net::TcpListener::bind(loopback()).expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut poll = Poll::new().expect("epoll");
        poll.registry().register(&listener, Token(7), Interest::READABLE).expect("register");
        // Nothing pending yet.
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(10))).expect("poll");
        assert!(events.is_empty());
        assert!(matches!(
            listener.accept().map(drop).unwrap_err().kind(),
            std::io::ErrorKind::WouldBlock
        ));
        // A connection arrives: readable with our token.
        let _client = std::net::TcpStream::connect(addr).expect("connect");
        poll.poll(&mut events, Some(Duration::from_secs(2))).expect("poll");
        let tokens: Vec<_> = events.iter().map(|e| e.token()).collect();
        assert_eq!(tokens, vec![Token(7)]);
        assert!(events.iter().all(|e| e.is_readable()));
        let (_stream, _) = listener.accept().expect("accept");
    }

    #[test]
    fn stream_readiness_tracks_data_and_eof() {
        let listener = net::TcpListener::bind(loopback()).expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        // Accept may need a beat on a loaded machine.
        let (mut served, _) = loop {
            match listener.accept() {
                Ok(pair) => break pair,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("accept failed: {e}"),
            }
        };
        let mut poll = Poll::new().expect("epoll");
        poll.registry()
            .register(&served, Token(1), Interest::READABLE | Interest::WRITABLE)
            .expect("register");
        // A fresh stream is writable immediately.
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(2))).expect("poll");
        assert!(events.iter().any(|e| e.is_writable()));
        assert!(!events.iter().any(|e| e.is_readable()), "no data sent yet");
        // Narrow to read interest, send data, observe readable.
        poll.registry().reregister(&served, Token(1), Interest::READABLE).expect("reregister");
        client.write_all(b"ping").expect("client write");
        poll.poll(&mut events, Some(Duration::from_secs(2))).expect("poll");
        assert!(events.iter().any(|e| e.is_readable() && e.token() == Token(1)));
        let mut buf = [0u8; 16];
        assert_eq!(served.read(&mut buf).expect("read"), 4);
        // Peer closes: read-closed readiness, then EOF on read.
        drop(client);
        poll.poll(&mut events, Some(Duration::from_secs(2))).expect("poll");
        assert!(events.iter().any(|e| e.is_read_closed()));
        assert_eq!(served.read(&mut buf).expect("read at eof"), 0);
        poll.registry().deregister(&served).expect("deregister");
        // Deregistered: quiet again.
        poll.poll(&mut events, Some(Duration::from_millis(10))).expect("poll");
        assert!(events.is_empty());
    }

    #[test]
    fn interest_composition() {
        let both = Interest::READABLE | Interest::WRITABLE;
        assert!(both.is_readable() && both.is_writable());
        assert!(!Interest::READABLE.is_writable());
        assert!(!Interest::WRITABLE.is_readable());
    }
}
