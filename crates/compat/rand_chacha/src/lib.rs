//! Offline stand-in for `rand_chacha`: a real ChaCha8 stream cipher used
//! as a deterministic random number generator.
//!
//! The workspace pins every experiment to a seed and requires the same
//! seed to reproduce the same stream on every platform, forever. ChaCha
//! is fully specified (RFC 7539 core with 8 rounds here), has no
//! data-dependent behavior, and passes statistical test batteries, so it
//! is a sound choice for that contract even as a from-scratch
//! implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A ChaCha stream cipher with 8 rounds, exposed as an RNG.
///
/// The key is the 32-byte seed, the nonce is zero, and the 64-bit block
/// counter provides 2^70 bytes of stream — far beyond any simulation
/// here.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// The input block: constants, key, counter, nonce.
    state: [u32; BLOCK_WORDS],
    /// The current keystream block.
    buf: [u32; BLOCK_WORDS],
    /// Next unread word index in `buf`; `BLOCK_WORDS` means exhausted.
    idx: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Runs the 8-round block function and refills the output buffer.
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..4 {
            // A double round: four column rounds, four diagonal rounds.
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (out, (y, x)) in self.buf.iter_mut().zip(w.iter().zip(self.state.iter())) {
            *out = y.wrapping_add(*x);
        }
        // 64-bit little-endian block counter in words 12–13.
        let counter = (self.state[12] as u64 | (self.state[13] as u64) << 32).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.idx >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (w, chunk) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *w = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter and nonce start at zero.
        ChaCha8Rng { state, buf: [0; BLOCK_WORDS], idx: BLOCK_WORDS }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_word().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(8);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniformity_smoke() {
        // Mean of 100k uniform [0,1) draws should be very close to 0.5.
        let mut r = ChaCha8Rng::seed_from_u64(42);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn fill_bytes_handles_odd_lengths() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
