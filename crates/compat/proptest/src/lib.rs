//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Each property runs 256 cases with inputs drawn from [`Strategy`]
//! generators seeded deterministically (same failures every run). There
//! is no shrinking — a failing case panics with the property name and
//! case number, and the inputs can be recovered by rerunning under a
//! debugger — which is an acceptable trade for a build environment with
//! no crates.io access.
//!
//! Supported surface: range strategies over ints and floats, tuples of
//! strategies, [`collection::vec`], [`Strategy::prop_map`], and the
//! [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//! [`prop_assume!`] macros.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::ops::Range;

/// Number of random cases run per property.
pub const CASES: usize = 256;

/// The RNG handed to strategies.
pub type TestRng = ChaCha8Rng;

/// Creates the deterministic RNG for a named property.
pub fn test_rng(name: &str) -> TestRng {
    // FNV-1a over the property name keeps distinct properties on
    // distinct, reproducible streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    ChaCha8Rng::seed_from_u64(h)
}

/// Outcome of one generated case.
pub enum CaseResult {
    /// The property held (or at least did not panic).
    Ok,
    /// A `prop_assume!` rejected the inputs; the case does not count.
    Reject,
}

/// A value generator.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// An admissible vector-length specification: a fixed length or a
    /// half-open range of lengths.
    #[derive(Clone, Debug)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// A strategy producing `Vec`s with lengths drawn from `size` and
    /// elements from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.0.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property-test module imports.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Per-property configuration (`#![proptest_config(..)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: usize,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: usize) -> Self {
        ProptestConfig { cases }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running [`CASES`] generated cases (or the count
/// from a leading `#![proptest_config(ProptestConfig::with_cases(n))]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $($crate::__proptest_one! { ($cfg).cases, $(#[$meta])* fn $name($($arg in $strat),+) $body })+
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $($crate::__proptest_one! { $crate::CASES, $(#[$meta])* fn $name($($arg in $strat),+) $body })+
    };
}

/// Implementation detail of [`proptest!`]: one generated `#[test]`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_one {
    ($cases:expr, $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+) $body:block) => {
        $(#[$meta])*
        fn $name() {
            let cases: usize = $cases;
            let mut rng = $crate::test_rng(stringify!($name));
            let mut case = 0usize;
            let mut attempts = 0usize;
            while case < cases {
                attempts += 1;
                assert!(
                    attempts <= 100 * cases,
                    "property {} rejected too many cases via prop_assume!",
                    stringify!($name),
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                // The immediately-called closure gives `prop_assume!` an
                // early-return scope without aborting the whole property.
                #[allow(clippy::redundant_closure_call)]
                let outcome = (move || -> $crate::CaseResult {
                    $body
                    $crate::CaseResult::Ok
                })();
                if let $crate::CaseResult::Ok = outcome {
                    case += 1;
                }
            }
        }
    };
}

/// Asserts inside a property body (panics with the condition text).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Rejects the current case when `cond` is false; the case is redrawn.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        // `if cond {} else { .. }` rather than `if !cond` so that float
        // comparisons in `cond` don't trip `neg_cmp_op_on_partial_ord`.
        if $cond {
        } else {
            return $crate::CaseResult::Reject;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (f64, f64)> {
        (0.0f64..10.0, 0.0f64..10.0)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 2.0f64..3.0, k in 1usize..5) {
            prop_assert!((2.0..3.0).contains(&x));
            prop_assert!((1..5).contains(&k));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0.0f64..1.0) {
            prop_assume!(x >= 0.5);
            prop_assert!(x >= 0.5);
        }

        #[test]
        fn vec_and_map_compose(
            v in crate::collection::vec(0i64..100, 0..20),
            p in arb_pair().prop_map(|(a, b)| a + b),
        ) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&x| (0..100).contains(&x)));
            prop_assert!((0.0..20.0).contains(&p));
        }
    }

    #[test]
    fn deterministic_streams() {
        use crate::Strategy;
        let mut a = crate::test_rng("p");
        let mut b = crate::test_rng("p");
        let s = 0.0f64..1.0;
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
