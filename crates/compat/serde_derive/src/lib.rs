//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace only *annotates* types with serde derives (for
//! downstream consumers); nothing in-tree serializes through the trait
//! machinery, and the build environment cannot fetch the real
//! `serde_derive`. These macros accept the same attribute grammar
//! (`#[serde(...)]` is tolerated) and expand to nothing, which keeps
//! every annotated type compiling without dragging in a parser.

use proc_macro::TokenStream;

/// Derives nothing; accepts `#[derive(Serialize)]` and `#[serde(...)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives nothing; accepts `#[derive(Deserialize)]` and `#[serde(...)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
