//! Slice helpers (`shuffle`, `choose`) — the used subset of
//! `rand::seq`.

use crate::{uniform_u64, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_u64(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_u64(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedableRng;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest.iter_mut() {
                *b = self.next_u64() as u8;
            }
        }
    }
    impl SeedableRng for Lcg {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Lcg(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Lcg::seed_from_u64(9);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn choose_covers_the_slice() {
        let mut r = Lcg::seed_from_u64(11);
        let v = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*v.choose(&mut r).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
