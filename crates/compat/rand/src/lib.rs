//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, dependency-free implementation of the traits and
//! methods the code actually calls: [`RngCore`], [`SeedableRng`]
//! (including the SplitMix64-based [`SeedableRng::seed_from_u64`]),
//! [`Rng::gen`], [`Rng::gen_range`] over integer and float ranges,
//! [`Rng::gen_bool`], and [`seq::SliceRandom`] (Fisher–Yates shuffle and
//! `choose`). The concrete generator lives in the sibling `rand_chacha`
//! stub.
//!
//! Sampling quality matters here — the workspace's statistical tests
//! assert distributional properties — so integer ranges use rejection
//! sampling (no modulo bias) and floats use the standard 53-bit
//! mantissa construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod seq;

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a 64-bit seed, expanding it to the full
    /// seed width with SplitMix64 so that nearby seeds yield unrelated
    /// states.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (out, b) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *out = b;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from an RNG's raw bit stream
/// (the stand-in for `rand`'s `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with the full 53-bit mantissa resolution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24-bit resolution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniformly samples from `0..span` without modulo bias (rejection
/// sampling on the top of the 64-bit range).
pub(crate) fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Accept v only below the largest multiple of `span` that fits in
    // 2^64, so every residue is equally likely.
    let rem = (u64::MAX % span).wrapping_add(1) % span;
    let zone = u64::MAX - rem;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Ranges a value of type `T` can be drawn from (the stand-in for
/// `rand`'s `SampleRange`).
pub trait SampleRange<T>: Sized {
    /// Draws one value uniformly from the range. Panics on an empty
    /// range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64(rng, span + 1);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::sample(rng);
                let v = self.start + u * (self.end - self.start);
                // Guard the (rounding-only) case v == end.
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`; floats land in `[0, 1)`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform value from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        <f64 as StandardSample>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixed-increment LCG, good enough to exercise the adapters.
    struct TestRng(u64);

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&v[..n]);
            }
        }
    }

    #[test]
    fn gen_range_int_stays_in_bounds() {
        let mut r = TestRng(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0..=5);
            assert!((0..=5).contains(&w));
        }
    }

    #[test]
    fn gen_range_float_stays_in_bounds() {
        let mut r = TestRng(2);
        for _ in 0..10_000 {
            let v: f64 = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_int_is_roughly_uniform() {
        let mut r = TestRng(3);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((0.08..0.12).contains(&frac), "bucket fraction {frac}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = TestRng(4);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((0.28..0.32).contains(&frac), "fraction {frac}");
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
        assert!(!(0..1000).any(|_| r.gen_bool(0.0)));
    }
}
