//! Offline stand-in for the `serde` facade.
//!
//! Provides the `Serialize` / `Deserialize` *names* — each both a marker
//! trait and a (no-op) derive macro, exactly the dual-namespace shape of
//! the real crate — so `use serde::{Serialize, Deserialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. No actual
//! serialization happens in-tree today; when the workspace later needs
//! real encoding it should either vendor serde properly or grow these
//! traits a minimal `to_writer` surface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
