//! Offline stand-in for `serde_json`: a self-contained JSON [`Value`]
//! tree with a spec-compliant writer.
//!
//! The real crate serializes any `serde::Serialize` type; this stub
//! (the build environment cannot fetch crates.io) only serializes
//! explicitly constructed [`Value`]s, which is all the workspace needs
//! for report/figure emission until serde is vendored for real.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number. Non-finite floats render as `null`, matching
    /// `serde_json`'s refusal to emit `NaN`/`inf`.
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object with sorted keys (deterministic output).
    Object(BTreeMap<String, Value>),
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(v as f64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) if n.is_finite() => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Number(_) => f.write_str("null"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Serializes a [`Value`] to a compact JSON string.
pub fn to_string(value: &Value) -> String {
    value.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let mut obj = BTreeMap::new();
        obj.insert("name".to_string(), Value::from("ds2"));
        obj.insert("nodes".to_string(), Value::from(400usize));
        obj.insert("frac".to_string(), Value::from(0.125));
        obj.insert("tags".to_string(), Value::from(vec!["a", "b\"c"]));
        let json = to_string(&Value::Object(obj));
        assert_eq!(json, r#"{"frac":0.125,"name":"ds2","nodes":400,"tags":["a","b\"c"]}"#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(to_string(&Value::Number(f64::NAN)), "null");
        assert_eq!(to_string(&Value::Number(f64::INFINITY)), "null");
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(to_string(&Value::from("a\nb\u{1}")), "\"a\\nb\\u0001\"");
    }
}
