//! Offline stand-in for `serde_json`: a self-contained JSON [`Value`]
//! tree with a spec-compliant writer and a [`from_str`] parser.
//!
//! The real crate serializes any `serde::Serialize` type; this stub
//! (the build environment cannot fetch crates.io) only serializes
//! explicitly constructed [`Value`]s, which is all the workspace needs
//! for report/figure emission until serde is vendored for real. The
//! parser covers the full JSON grammar into [`Value`] (objects, arrays,
//! strings with escapes, numbers, booleans, null) — enough for the
//! bench-regression checker to read the `BENCH_*.json` metric files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number. Non-finite floats render as `null`, matching
    /// `serde_json`'s refusal to emit `NaN`/`inf`.
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object with sorted keys (deterministic output).
    Object(BTreeMap<String, Value>),
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(v as f64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) if n.is_finite() => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Number(_) => f.write_str("null"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Serializes a [`Value`] to a compact JSON string.
pub fn to_string(value: &Value) -> String {
    value.to_string()
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    /// Human-readable cause.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for Error {}

/// Parses a JSON document into a [`Value`] (named after the real
/// crate's entry point; this stub always parses to `Value`).
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

/// Maximum nesting depth of arrays/objects (matches the real
/// serde_json's default recursion limit): the parser recurses per
/// level, so unbounded nesting would overflow the stack instead of
/// returning the `Err` the API promises.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> Error {
        Error { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::String),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than 128 levels"));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.enter()?;
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not reassembled; the
                            // replacement character is good enough for
                            // this stub's consumers (metric files are
                            // ASCII).
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error { message: format!("bad number '{text}'"), offset: start })
    }
}

/// Length in bytes of the UTF-8 sequence starting with `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let mut obj = BTreeMap::new();
        obj.insert("name".to_string(), Value::from("ds2"));
        obj.insert("nodes".to_string(), Value::from(400usize));
        obj.insert("frac".to_string(), Value::from(0.125));
        obj.insert("tags".to_string(), Value::from(vec!["a", "b\"c"]));
        let json = to_string(&Value::Object(obj));
        assert_eq!(json, r#"{"frac":0.125,"name":"ds2","nodes":400,"tags":["a","b\"c"]}"#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(to_string(&Value::Number(f64::NAN)), "null");
        assert_eq!(to_string(&Value::Number(f64::INFINITY)), "null");
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(to_string(&Value::from("a\nb\u{1}")), "\"a\\nb\\u0001\"");
    }

    #[test]
    fn parses_every_value_kind() {
        let v = from_str(
            r#"{ "a": [1, -2.5, 1e3], "b": {"nested": true}, "c": null, "s": "x\n\"y\" ü" }"#,
        )
        .unwrap();
        let Value::Object(map) = &v else { panic!("not an object: {v:?}") };
        assert_eq!(
            map["a"],
            Value::Array(vec![Value::Number(1.0), Value::Number(-2.5), Value::Number(1000.0)])
        );
        assert_eq!(
            map["b"],
            Value::Object(BTreeMap::from([("nested".to_string(), Value::Bool(true))]))
        );
        assert_eq!(map["c"], Value::Null);
        assert_eq!(map["s"], Value::from("x\n\"y\" ü"));
    }

    #[test]
    fn roundtrips_through_the_writer() {
        let mut obj = BTreeMap::new();
        obj.insert("scale/severity_400/1".to_string(), Value::Number(123456.789));
        obj.insert("serve/shards/4/throughput_qps".to_string(), Value::Number(52000.0));
        let original = Value::Object(obj);
        assert_eq!(from_str(&to_string(&original)).unwrap(), original);
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(from_str(r#""A\t""#).unwrap(), Value::from("A\t"));
        assert_eq!(from_str("[]").unwrap(), Value::Array(Vec::new()));
        assert_eq!(from_str("{}").unwrap(), Value::Object(BTreeMap::new()));
    }

    #[test]
    fn deep_nesting_errs_instead_of_overflowing() {
        // Within the cap: fine.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(from_str(&ok).is_ok());
        // Far past the cap: a clean Err, not a stack overflow.
        let deep = format!("{}1{}", "[".repeat(50_000), "]".repeat(50_000));
        let err = from_str(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn rejects_garbage_with_offsets() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{\"a\" 1}").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str("\"unterminated").is_err());
        let err = from_str("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }
}
