//! Offline stand-in for the subset of the `criterion` API the benchmark
//! suite uses.
//!
//! The build environment cannot fetch crates.io, so this crate provides
//! a small wall-clock harness with the same call surface: [`Criterion`]
//! with `warm_up_time` / `measurement_time` / `sample_size` builders,
//! `bench_function` and `benchmark_group`, [`BenchmarkGroup`] with
//! `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Methodology (deliberately simple): each benchmark is warmed up for
//! the configured duration, the per-iteration cost is calibrated, and
//! `sample_size` samples are then timed, each long enough that the
//! samples together fill the measurement window. The reported numbers
//! are the min / median / max of the per-iteration sample means. No
//! statistics beyond that — the workspace uses benches for scaling
//! curves and regression eyeballing, not for rigorous inference.
//!
//! Two extensions for the bench-regression CI:
//!
//! * **Smoke mode** (`cargo bench -- --test`, mirroring real
//!   criterion): each benchmark body runs exactly once, unmeasured, so
//!   CI can cheaply prove every target still executes.
//! * **Metric export**: every measured median is recorded (benches can
//!   add domain metrics like throughput via [`record_metric`]), and
//!   when the `TIV_BENCH_JSON` environment variable names a file,
//!   `criterion_main!` writes the collected `{name: value}` map there
//!   as JSON on exit — the `BENCH_*.json` artifacts the CI
//!   bench-smoke job uploads and regression-checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Environment variable naming the JSON file `criterion_main!` writes
/// the recorded metrics to (skipped when unset or in smoke mode).
pub const BENCH_JSON_ENV: &str = "TIV_BENCH_JSON";

/// The process-wide metric collector.
fn records() -> &'static Mutex<BTreeMap<String, f64>> {
    static RECORDS: OnceLock<Mutex<BTreeMap<String, f64>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// True when the harness was invoked in smoke mode (`-- --test`):
/// bodies run once, nothing is measured or recorded.
pub fn smoke_mode() -> bool {
    static SMOKE: OnceLock<bool> = OnceLock::new();
    *SMOKE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

/// Records a named metric for the JSON export. Benchmark timings are
/// recorded automatically (median ns/iter under the benchmark's name);
/// bench targets use this for domain metrics such as throughput
/// (suffix the name `_qps` so the regression checker knows higher is
/// better).
pub fn record_metric(name: impl Into<String>, value: f64) {
    records().lock().expect("metric collector poisoned").insert(name.into(), value);
}

/// Renders the collected metrics as a deterministic JSON object.
pub fn metrics_json() -> String {
    let map = records().lock().expect("metric collector poisoned");
    let mut out = String::from("{\n");
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        // Bench names are plain identifiers with '/', but escape the
        // JSON-significant characters anyway.
        let escaped: String = k
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                c => vec![c],
            })
            .collect();
        out.push_str(&format!("  \"{escaped}\": {v:.3}"));
    }
    out.push_str("\n}\n");
    out
}

/// Writes the metrics JSON to the `TIV_BENCH_JSON` file, if requested.
/// Called by `criterion_main!` after all groups ran; a no-op in smoke
/// mode (one unmeasured iteration produces no meaningful numbers).
pub fn flush_metrics() {
    if smoke_mode() {
        return;
    }
    if let Ok(path) = std::env::var(BENCH_JSON_ENV) {
        if path.is_empty() {
            return;
        }
        let json = metrics_json();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("cannot write {BENCH_JSON_ENV}={path}: {e}");
            std::process::exit(1);
        }
        println!("bench metrics written to {path}");
    }
}

/// The benchmark harness configuration and entry point.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Much shorter than real criterion's 3 s / 5 s: the suite has
        // dozens of benches and runs on CI-grade machines.
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the total measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, &id.into().0, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        let mut c = self.effective();
        run_one(&mut c, &full, &mut f);
        self
    }

    /// Runs a parameterised benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        let mut c = self.effective();
        run_one(&mut c, &full, &mut |b| f(b, input));
        self
    }

    /// Closes the group (output is flushed eagerly; kept for API parity).
    pub fn finish(self) {}

    fn effective(&self) -> Criterion {
        Criterion {
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
        }
    }
}

/// A benchmark identifier, possibly carrying a parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    /// Iterations to run per sample (calibrated by the harness).
    iters: u64,
    /// Mean per-iteration time of each sample.
    samples: Vec<Duration>,
    /// When calibrating, the measured cost of one iteration.
    calibration: Option<Duration>,
    calibrating: bool,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-iteration timing.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.calibrating {
            let start = Instant::now();
            std::hint::black_box(f());
            self.calibration = Some(start.elapsed());
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.samples.push(start.elapsed() / self.iters as u32);
    }
}

fn run_one(c: &mut Criterion, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    if smoke_mode() {
        // Smoke mode: prove the body executes, measure nothing.
        let mut b = Bencher { iters: 1, samples: Vec::new(), calibration: None, calibrating: true };
        f(&mut b);
        println!("bench: {name:<48} ok (smoke)");
        return;
    }
    // Calibrate: how long is one iteration?
    let mut b = Bencher { iters: 1, samples: Vec::new(), calibration: None, calibrating: true };
    let calib_start = Instant::now();
    f(&mut b);
    let once = b.calibration.unwrap_or_else(|| calib_start.elapsed()).max(Duration::from_nanos(1));

    // Warm up for the configured window.
    let warm_start = Instant::now();
    while warm_start.elapsed() < c.warm_up {
        let mut wb =
            Bencher { iters: 1, samples: Vec::new(), calibration: None, calibrating: true };
        f(&mut wb);
    }

    // Size samples so that sample_size of them fill the measurement
    // window, with at least one iteration each.
    let per_sample = c.measurement.as_secs_f64() / c.sample_size as f64;
    let iters = (per_sample / once.as_secs_f64()).clamp(1.0, 1e9) as u64;
    let mut b = Bencher { iters, samples: Vec::new(), calibration: None, calibrating: false };
    for _ in 0..c.sample_size {
        f(&mut b);
    }

    b.samples.sort();
    let (min, med, max) = match b.samples.as_slice() {
        [] => (once, once, once),
        s => (s[0], s[s.len() / 2], s[s.len() - 1]),
    };
    record_metric(name, med.as_nanos() as f64);
    println!(
        "bench: {name:<48} {:>12} /iter  [{} .. {}]  ({} samples x {iters} iters)",
        fmt_duration(med),
        fmt_duration(min),
        fmt_duration(max),
        b.samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
///
/// `--list` prints nothing and exits (well-formed empty answer for
/// target enumeration); `--test` runs every body once in smoke mode;
/// otherwise the full harness runs and, when `TIV_BENCH_JSON` is set,
/// the recorded metrics are written there on exit.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--list") {
                return;
            }
            $( $group(); )+
            $crate::flush_metrics();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3);
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| std::hint::black_box(2 + 2)));
        let mut g = c.benchmark_group("group");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                std::hint::black_box(x * 2)
            })
        });
        g.finish();
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("exact", 100).0, "exact/100");
        assert_eq!(BenchmarkId::from_parameter(64).0, "64");
    }

    #[test]
    fn metrics_are_recorded_and_rendered() {
        record_metric("unit/throughput_qps", 1234.5);
        record_metric("unit/needs \"escape\"", 1.0);
        let json = metrics_json();
        assert!(json.contains("\"unit/throughput_qps\": 1234.500"), "{json}");
        assert!(json.contains("\\\"escape\\\""), "{json}");
        // Benchmarks record their median automatically.
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(2);
        c.bench_function("unit/auto_recorded", |b| b.iter(|| std::hint::black_box(1 + 1)));
        assert!(metrics_json().contains("\"unit/auto_recorded\""));
    }
}
