//! Sans-IO per-connection state: byte buffers in, frames out.
//!
//! [`Connection`] never touches a socket. The server loop feeds it
//! whatever bytes `read` produced and drains whatever bytes it has
//! queued; everything in between — frame reassembly across arbitrary
//! read boundaries, write backlog with partial-write resume, the
//! close-after-flush handshake for fatal protocol errors — is plain
//! buffer arithmetic, which is why the partial-IO and malformed-frame
//! behaviour can be unit-tested byte by byte without a network.

use crate::proto::{self, FrameStep};

/// How many response bytes may queue on one connection before the
/// server stops decoding its requests (backpressure). Chosen as a
/// handful of max-size frames: enough to keep a fast client's pipeline
/// full, small enough that a stalled client cannot balloon memory.
pub const WRITE_BACKLOG_CAP: usize = 4 * proto::MAX_FRAME;

/// Reassembly + egress state for one client connection.
#[derive(Debug, Default)]
pub struct Connection {
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    close_after_flush: bool,
    /// True while the server has dropped read interest because
    /// `write_backlog()` crossed [`WRITE_BACKLOG_CAP`].
    pub paused: bool,
}

impl Connection {
    /// A fresh connection with empty buffers.
    pub fn new() -> Connection {
        Connection::default()
    }

    /// Appends bytes produced by a socket read.
    pub fn ingest(&mut self, data: &[u8]) {
        self.read_buf.extend_from_slice(data);
    }

    /// Pops the next complete frame body, `Ok(None)` when more bytes
    /// are needed, or `Err(declared length)` when the length prefix
    /// exceeds [`proto::MAX_FRAME`] and the stream can no longer be
    /// framed.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, u32> {
        match proto::next_frame(&self.read_buf) {
            FrameStep::Incomplete => Ok(None),
            FrameStep::TooLarge(len) => Err(len),
            FrameStep::Frame { body, consumed } => {
                self.read_buf.drain(..consumed);
                Ok(Some(body))
            }
        }
    }

    /// True when a complete frame is already buffered — the server's
    /// resume path checks this, because bytes parked here produce no
    /// readiness event (only the kernel buffer does).
    pub fn frame_buffered(&self) -> bool {
        matches!(proto::next_frame(&self.read_buf), FrameStep::Frame { .. })
    }

    /// Queues an encoded frame (length prefix included) for sending.
    pub fn queue(&mut self, wire: &[u8]) {
        self.write_buf.extend_from_slice(wire);
    }

    /// The bytes still to be written, starting at the resume point of
    /// the last partial write.
    pub fn unsent(&self) -> &[u8] {
        // `write_pos <= len` is an invariant of `advance`, but a wire
        // path never trades a guard for a panic.
        self.write_buf.get(self.write_pos..).unwrap_or(&[])
    }

    /// Records that `n` bytes of [`unsent`](Connection::unsent) reached
    /// the socket; compacts once everything queued has been sent.
    pub fn advance(&mut self, n: usize) {
        self.write_pos += n;
        debug_assert!(self.write_pos <= self.write_buf.len());
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        }
    }

    /// Bytes queued but not yet written.
    pub fn write_backlog(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// Bytes buffered awaiting a complete frame.
    pub fn read_backlog(&self) -> usize {
        self.read_buf.len()
    }

    /// True when there is something to write.
    pub fn wants_write(&self) -> bool {
        self.write_backlog() > 0
    }

    /// Marks the connection for closing once the write buffer drains
    /// (fatal protocol errors answer first, then hang up).
    pub fn close_when_flushed(&mut self) {
        self.close_after_flush = true;
    }

    /// True when the connection should close as soon as
    /// [`write_backlog`](Connection::write_backlog) reaches zero.
    pub fn closing(&self) -> bool {
        self.close_after_flush
    }

    /// True when the server should stop decoding this connection's
    /// requests until the client drains some responses.
    pub fn over_backlog(&self) -> bool {
        self.write_backlog() >= WRITE_BACKLOG_CAP
    }

    /// True when a paused connection has drained enough to resume
    /// decoding (half the cap: hysteresis, not flapping).
    pub fn under_resume_mark(&self) -> bool {
        self.write_backlog() < WRITE_BACKLOG_CAP / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{encode_request, Request};

    #[test]
    fn reassembles_frames_across_arbitrary_read_boundaries() {
        let a = encode_request(&Request::Ping { id: 1 });
        let b = encode_request(&Request::Estimate { id: 2, pairs: vec![(0, 1), (2, 3)] });
        let mut wire = a.clone();
        wire.extend_from_slice(&b);

        // Deliver one byte at a time; frames must pop exactly at their
        // boundaries.
        let mut conn = Connection::new();
        let mut got = Vec::new();
        for &byte in &wire {
            conn.ingest(&[byte]);
            while let Some(body) = conn.next_frame().expect("framing") {
                got.push(body);
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], a[4..].to_vec());
        assert_eq!(got[1], b[4..].to_vec());
        assert_eq!(conn.read_backlog(), 0);
    }

    #[test]
    fn burst_delivery_pops_all_frames() {
        let a = encode_request(&Request::Ping { id: 1 });
        let mut conn = Connection::new();
        let mut wire = Vec::new();
        for _ in 0..5 {
            wire.extend_from_slice(&a);
        }
        conn.ingest(&wire);
        let mut n = 0;
        while conn.next_frame().expect("framing").is_some() {
            n += 1;
        }
        assert_eq!(n, 5);
    }

    #[test]
    fn oversized_prefix_is_fatal_not_buffered() {
        let mut conn = Connection::new();
        conn.ingest(&((proto::MAX_FRAME as u32) + 5).to_le_bytes());
        assert_eq!(conn.next_frame(), Err(proto::MAX_FRAME as u32 + 5));
    }

    #[test]
    fn partial_writes_resume_where_they_stopped() {
        let mut conn = Connection::new();
        conn.queue(b"abcdef");
        conn.queue(b"ghij");
        assert_eq!(conn.write_backlog(), 10);
        assert_eq!(conn.unsent(), b"abcdefghij");
        conn.advance(3);
        assert_eq!(conn.unsent(), b"defghij");
        conn.advance(7);
        assert_eq!(conn.write_backlog(), 0);
        assert!(!conn.wants_write());
        // Buffer compacted: new writes start fresh.
        conn.queue(b"xy");
        assert_eq!(conn.unsent(), b"xy");
    }

    #[test]
    fn backpressure_marks_use_hysteresis() {
        let mut conn = Connection::new();
        assert!(!conn.over_backlog());
        conn.queue(&vec![0u8; WRITE_BACKLOG_CAP]);
        assert!(conn.over_backlog());
        assert!(!conn.under_resume_mark());
        conn.advance(WRITE_BACKLOG_CAP / 2);
        assert!(!conn.over_backlog());
        assert!(!conn.under_resume_mark(), "exactly half is still not under the mark");
        conn.advance(1);
        assert!(conn.under_resume_mark());
    }

    #[test]
    fn close_after_flush_is_sticky() {
        let mut conn = Connection::new();
        assert!(!conn.closing());
        conn.close_when_flushed();
        assert!(conn.closing());
        conn.queue(b"last words");
        assert!(conn.wants_write());
    }
}
