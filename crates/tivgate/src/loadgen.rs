//! Open-loop socket load generation against a replica set.
//!
//! This extends tivserve's Zipf workload generator
//! ([`tivserve::loadgen::generate`] produces the batches; the pure
//! replayability that the in-process equivalence tests rely on carries
//! over unchanged) from closed-loop in-process calls to **open-loop
//! wire traffic**: batches are sent at pre-scheduled arrival times
//! regardless of whether earlier answers have come back, the way real
//! client populations behave. Latency is measured from the *scheduled*
//! time, not the send time, so queueing delay — the thing closed-loop
//! generators structurally cannot see — shows up in the tail
//! percentiles, and a generator that falls behind its own schedule
//! reports that too ([`GateLoadReport::late_batches`],
//! [`GateLoadReport::max_lag_us`]) instead of silently measuring a
//! slower workload than asked for.
//!
//! One connection per replica; a writer paces sends on the ring
//! ([`HashRing`]) while one reader thread per replica drains responses,
//! so a replica stalling never blocks measurement of the others.

use crate::client::GateClient;
use crate::front::HashRing;
use crate::proto::{encode_request, Request, Response};
use std::fmt;
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};
use tivserve::loadgen::{ObservePath, QueryBatch};

/// Open-loop run parameters.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopConfig {
    /// Target query arrival rate, queries/second. `0.0` disables
    /// pacing: batches go out back-to-back (the max-throughput mode the
    /// benchmark uses for headline qps).
    pub target_qps: f64,
}

impl Default for OpenLoopConfig {
    fn default() -> OpenLoopConfig {
        OpenLoopConfig { target_qps: 0.0 }
    }
}

/// The measured outcome of an open-loop wire run.
#[derive(Clone, Copy, Debug)]
pub struct GateLoadReport {
    /// Replicas the traffic was spread over.
    pub replicas: usize,
    /// Queries answered.
    pub queries: usize,
    /// Batches issued.
    pub batches: usize,
    /// Observations the workload carried.
    pub observations: usize,
    /// Observations that could not be delivered to the epoch publisher
    /// (closed channel). Always 0 in a healthy run; see
    /// [`GateLoadReport::observations_delivered`] for the accounting
    /// identity.
    pub observations_undelivered: usize,
    /// Wall-clock seconds from first scheduled send to last response.
    pub elapsed_s: f64,
    /// Aggregate query throughput, queries/second.
    pub qps: f64,
    /// Median batch latency (scheduled send → last involved replica's
    /// answer), microseconds.
    pub p50_us: f64,
    /// 99th-percentile batch latency, microseconds.
    pub p99_us: f64,
    /// 99.9th-percentile batch latency, microseconds.
    pub p999_us: f64,
    /// Batches whose actual send started after their scheduled time
    /// (the generator itself was backpressured).
    pub late_batches: usize,
    /// Worst send lag behind schedule, microseconds.
    pub max_lag_us: f64,
    /// Error frames received instead of answers (0 in a healthy run).
    pub error_frames: usize,
}

impl GateLoadReport {
    /// Observations that reached the epoch publisher. Together with
    /// [`observations_undelivered`](GateLoadReport::observations_undelivered)
    /// this partitions `observations` exactly:
    /// `observations == delivered + undelivered` — the accounting the
    /// loadgen tests pin.
    pub fn observations_delivered(&self) -> usize {
        self.observations - self.observations_undelivered
    }
}

impl fmt::Display for GateLoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "gate load: {} queries in {} batches over {} replicas, {:.2}s",
            self.queries, self.batches, self.replicas, self.elapsed_s
        )?;
        writeln!(
            f,
            "  qps {:.0}  p50 {:.0}us  p99 {:.0}us  p999 {:.0}us",
            self.qps, self.p50_us, self.p99_us, self.p999_us
        )?;
        writeln!(
            f,
            "  late batches {}  max lag {:.0}us  error frames {}",
            self.late_batches, self.max_lag_us, self.error_frames
        )?;
        write!(
            f,
            "  observations {} = delivered {} + undelivered {}",
            self.observations,
            self.observations_delivered(),
            self.observations_undelivered
        )
    }
}

/// One pre-encoded send: which replica, which batch, the wire bytes,
/// and how many answers it will produce.
struct PlannedSend {
    replica: usize,
    frame: Vec<u8>,
}

/// Plays `batches` against the replicas at `addrs`, open loop.
///
/// Observations ride along exactly as in the closed-loop generator:
/// delivered to `observe` at their batch's send point, with failures
/// counted, never silently dropped.
pub fn run_open_loop(
    addrs: &[SocketAddr],
    batches: &[QueryBatch],
    cfg: OpenLoopConfig,
    observe: ObservePath<'_>,
) -> io::Result<GateLoadReport> {
    assert!(!addrs.is_empty(), "open loop needs at least one replica");
    let ring = HashRing::new(addrs.len());

    // Pre-encode every frame and pre-compute the schedule so the timed
    // loop does nothing but pacing and writes.
    let mut plans: Vec<Vec<PlannedSend>> = Vec::with_capacity(batches.len());
    let mut schedule_s: Vec<f64> = Vec::with_capacity(batches.len());
    let mut expected_per_replica = vec![0usize; addrs.len()];
    let mut queries = 0usize;
    let mut cum_queries = 0usize;
    for (bi, batch) in batches.iter().enumerate() {
        schedule_s.push(if cfg.target_qps > 0.0 {
            cum_queries as f64 / cfg.target_qps
        } else {
            0.0
        });
        cum_queries += batch.pairs.len();
        queries += batch.pairs.len();
        let mut owned: Vec<Vec<(u32, u32)>> = vec![Vec::new(); addrs.len()];
        for &(a, c) in &batch.pairs {
            let pair = (a as u32, c as u32);
            owned[ring.replica_for(pair)].push(pair);
        }
        let mut sends = Vec::new();
        for (replica, pairs) in owned.into_iter().enumerate() {
            if pairs.is_empty() {
                continue;
            }
            expected_per_replica[replica] += 1;
            sends.push(PlannedSend {
                replica,
                frame: encode_request(&Request::Estimate { id: bi as u32, pairs }),
            });
        }
        plans.push(sends);
    }

    // One connection per replica; readers drain on cloned fds.
    let mut writers = Vec::with_capacity(addrs.len());
    let mut readers = Vec::with_capacity(addrs.len());
    for (&addr, &expected) in addrs.iter().zip(&expected_per_replica) {
        let writer = GateClient::connect(addr)?;
        let mut reader = GateClient::from_stream(writer.try_clone_stream()?);
        // tivlint: allow(pool-discipline, "loadgen reader threads are measurement harness, one per replica socket; latency aggregation is order-independent")
        readers.push(std::thread::spawn(move || -> io::Result<Vec<(u32, Instant, bool)>> {
            let mut seen = Vec::with_capacity(expected);
            for _ in 0..expected {
                let resp = reader.recv()?;
                let err = matches!(resp, Response::Error { .. });
                seen.push((resp.id(), Instant::now(), err));
            }
            Ok(seen)
        }));
        writers.push(writer);
    }

    // The paced send loop.
    let mut observations = 0usize;
    let mut undelivered = 0usize;
    let mut late_batches = 0usize;
    let mut max_lag = Duration::ZERO;
    let start = Instant::now();
    for (bi, sends) in plans.iter().enumerate() {
        let scheduled = Duration::from_secs_f64(schedule_s[bi]);
        let now = start.elapsed();
        if now < scheduled {
            std::thread::sleep(scheduled - now);
        } else if cfg.target_qps > 0.0 && now > scheduled {
            late_batches += 1;
            max_lag = max_lag.max(now - scheduled);
        }
        if let ObservePath::Channel(tx) = &observe {
            for &obs in &batches[bi].observations {
                if tx.send(obs).is_err() {
                    undelivered += 1;
                }
            }
        }
        observations += batches[bi].observations.len();
        for send in sends {
            writers[send.replica].send_bytes(&send.frame)?;
        }
    }

    // Gather completions; a batch completes when its last involved
    // replica answered.
    let mut completion: Vec<Option<Duration>> = vec![None; batches.len()];
    let mut error_frames = 0usize;
    for reader in readers {
        let seen = reader.join().expect("reader thread panicked")?;
        for (id, at, err) in seen {
            if err {
                error_frames += 1;
            }
            let done = at.duration_since(start);
            let slot = &mut completion[id as usize];
            *slot = Some(slot.map_or(done, |prev| prev.max(done)));
        }
    }
    let elapsed_s = start.elapsed().as_secs_f64();

    let mut latencies_us: Vec<f64> = Vec::with_capacity(batches.len());
    for (bi, done) in completion.iter().enumerate() {
        if let Some(done) = done {
            let scheduled = Duration::from_secs_f64(schedule_s[bi]);
            latencies_us.push(done.saturating_sub(scheduled).as_secs_f64() * 1e6);
        }
    }
    latencies_us.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        if latencies_us.is_empty() {
            return 0.0;
        }
        let idx = (p * (latencies_us.len() - 1) as f64).round() as usize;
        latencies_us[idx]
    };

    Ok(GateLoadReport {
        replicas: addrs.len(),
        queries,
        batches: batches.len(),
        observations,
        observations_undelivered: undelivered,
        elapsed_s,
        qps: if elapsed_s > 0.0 { queries as f64 / elapsed_s } else { 0.0 },
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        p999_us: pct(0.999),
        late_batches,
        max_lag_us: max_lag.as_secs_f64() * 1e6,
        error_frames,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::ReplicaSet;
    use crate::testutil::small_builder;
    use tivserve::loadgen::{generate, WorkloadConfig};

    fn workload(queries: usize) -> WorkloadConfig {
        WorkloadConfig { queries, batch: 16, observe_frac: 0.2, ..WorkloadConfig::default() }
    }

    #[test]
    fn unpaced_run_answers_everything() {
        let (builder, snap, serve_cfg) = small_builder();
        let matrix = snap.matrix().clone();
        let set = ReplicaSet::spawn(&snap, serve_cfg, 2).expect("spawn");
        drop(builder);
        let batches = generate(&workload(200), &matrix);
        let report =
            run_open_loop(&set.addrs(), &batches, OpenLoopConfig::default(), ObservePath::Drop)
                .expect("run");
        assert_eq!(report.queries, 200);
        assert_eq!(report.batches, batches.len());
        assert_eq!(report.error_frames, 0);
        assert!(report.qps > 0.0);
        assert!(report.p50_us <= report.p99_us && report.p99_us <= report.p999_us);
        // Unpaced mode has no schedule to fall behind.
        assert_eq!(report.late_batches, 0);
        assert_eq!(report.max_lag_us, 0.0);
        set.shutdown().expect("shutdown");
    }

    #[test]
    fn observation_accounting_balances_with_a_live_channel() {
        let (builder, snap, serve_cfg) = small_builder();
        let matrix = snap.matrix().clone();
        let set = ReplicaSet::spawn(&snap, serve_cfg, 1).expect("spawn");
        let stream = crate::replica::spawn_publisher(set.services().to_vec(), builder, 50);
        let tx = stream.sender();
        let batches = generate(&workload(150), &matrix);
        let sent: usize = batches.iter().map(|b| b.observations.len()).sum();
        assert!(sent > 0, "workload must carry observations for this test");
        let report = run_open_loop(
            &set.addrs(),
            &batches,
            OpenLoopConfig::default(),
            ObservePath::Channel(&tx),
        )
        .expect("run");
        drop(tx);
        let builder = stream.join();
        // sent == delivered + undelivered, and a live channel loses none.
        assert_eq!(report.observations, sent);
        assert_eq!(report.observations_undelivered, 0);
        assert_eq!(report.observations_delivered(), sent);
        assert_eq!(builder.ingested_total(), sent as u64);
        set.shutdown().expect("shutdown");
    }

    #[test]
    fn dead_publisher_shows_up_as_undelivered_not_silence() {
        let (builder, snap, serve_cfg) = small_builder();
        let matrix = snap.matrix().clone();
        drop(builder);
        let set = ReplicaSet::spawn(&snap, serve_cfg, 1).expect("spawn");
        // A dead publisher from the generator's point of view is a
        // channel whose receiving end is gone.
        let (tx, rx) = std::sync::mpsc::channel();
        drop(rx);
        let batches = generate(&workload(100), &matrix);
        let sent: usize = batches.iter().map(|b| b.observations.len()).sum();
        assert!(sent > 0);
        let report = run_open_loop(
            &set.addrs(),
            &batches,
            OpenLoopConfig::default(),
            ObservePath::Channel(&tx),
        )
        .expect("run");
        assert_eq!(report.observations, sent);
        assert_eq!(report.observations_undelivered, sent, "every send hit a closed channel");
        assert_eq!(report.observations_delivered(), 0);
        assert_eq!(report.observations_delivered() + report.observations_undelivered, sent);
        set.shutdown().expect("shutdown");
    }

    #[test]
    fn paced_run_respects_the_schedule_shape() {
        let (builder, snap, serve_cfg) = small_builder();
        let matrix = snap.matrix().clone();
        drop(builder);
        let set = ReplicaSet::spawn(&snap, serve_cfg, 1).expect("spawn");
        let batches = generate(&workload(60), &matrix);
        // A generous rate the tiny service can trivially sustain: the
        // run should take about queries/qps seconds.
        let report = run_open_loop(
            &set.addrs(),
            &batches,
            OpenLoopConfig { target_qps: 2000.0 },
            ObservePath::Drop,
        )
        .expect("run");
        assert!(report.elapsed_s >= 60.0 / 2000.0 * 0.5, "pacing was ignored: {report}");
        assert_eq!(report.queries, 60);
        set.shutdown().expect("shutdown");
    }
}
