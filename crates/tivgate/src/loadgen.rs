//! Open-loop socket load generation against a replica set.
//!
//! This extends tivserve's Zipf workload generator
//! ([`tivserve::loadgen::generate`] produces the batches; the pure
//! replayability that the in-process equivalence tests rely on carries
//! over unchanged) from closed-loop in-process calls to **open-loop
//! wire traffic**: batches are sent at pre-scheduled arrival times
//! regardless of whether earlier answers have come back, the way real
//! client populations behave. Latency is measured from the *scheduled*
//! time, not the send time, so queueing delay — the thing closed-loop
//! generators structurally cannot see — shows up in the tail
//! percentiles, and a generator that falls behind its own schedule
//! reports that too ([`GateLoadReport::late_batches`],
//! [`GateLoadReport::max_lag_us`]) instead of silently measuring a
//! slower workload than asked for.
//!
//! One connection per replica; a writer paces sends on the ring
//! ([`HashRing`]) while one reader thread per replica drains responses,
//! so a replica stalling never blocks measurement of the others.

use crate::client::GateClient;
use crate::front::HashRing;
use crate::proto::{encode_request, Request, Response};
use std::fmt;
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};
use tivserve::loadgen::{LoadReport, LoadSpec, ObservePath, QueryBatch};

/// The measured outcome of an open-loop wire run: the shared
/// [`LoadReport`] core (counts, observation accounting, percentiles —
/// computed by the one constructor in `tivserve::loadgen`) plus what
/// only an open-loop wire client can see: schedule adherence and
/// error frames.
#[derive(Clone, Copy, Debug)]
pub struct GateLoadReport {
    /// The shared measurement core. Batch latency is measured from the
    /// *scheduled* send time to the last involved replica's answer.
    pub load: LoadReport,
    /// Replicas the traffic was spread over.
    pub replicas: usize,
    /// Batches whose actual send started after their scheduled time
    /// (the generator itself was backpressured).
    pub late_batches: usize,
    /// Worst send lag behind schedule, microseconds.
    pub max_lag_us: f64,
    /// Error frames received instead of answers (0 in a healthy run).
    pub error_frames: usize,
}

impl fmt::Display for GateLoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "gate load: {} queries in {} batches over {} replicas, {:.2}s",
            self.load.queries, self.load.batches, self.replicas, self.load.elapsed_s
        )?;
        writeln!(
            f,
            "  qps {:.0}  p50 {:.0}us  p99 {:.0}us  p999 {:.0}us",
            self.load.qps, self.load.p50_us, self.load.p99_us, self.load.p999_us
        )?;
        writeln!(
            f,
            "  late batches {}  max lag {:.0}us  error frames {}",
            self.late_batches, self.max_lag_us, self.error_frames
        )?;
        write!(
            f,
            "  observations {} = delivered {} + undelivered {}",
            self.load.observations,
            self.load.observations_delivered(),
            self.load.observations_undelivered
        )
    }
}

/// One pre-encoded send: which replica, which batch, the wire bytes,
/// and how many answers it will produce.
struct PlannedSend {
    replica: usize,
    frame: Vec<u8>,
}

/// Plays `batches` against the replicas at `addrs`, open loop, paced
/// at `spec.target_qps` (0 = unpaced back-to-back sends).
///
/// Observations ride along exactly as in the closed-loop generator:
/// delivered to `observe` at their batch's send point, with failures
/// counted, never silently dropped.
pub fn run_open_loop(
    addrs: &[SocketAddr],
    batches: &[QueryBatch],
    spec: LoadSpec,
    observe: ObservePath<'_>,
) -> io::Result<GateLoadReport> {
    assert!(!addrs.is_empty(), "open loop needs at least one replica");
    let ring = HashRing::new(addrs.len());

    // Pre-encode every frame and pre-compute the schedule so the timed
    // loop does nothing but pacing and writes.
    let mut plans: Vec<Vec<PlannedSend>> = Vec::with_capacity(batches.len());
    let mut schedule_s: Vec<f64> = Vec::with_capacity(batches.len());
    let mut expected_per_replica = vec![0usize; addrs.len()];
    let mut queries = 0usize;
    let mut cum_queries = 0usize;
    for (bi, batch) in batches.iter().enumerate() {
        schedule_s.push(if spec.target_qps > 0.0 {
            cum_queries as f64 / spec.target_qps
        } else {
            0.0
        });
        cum_queries += batch.pairs.len();
        queries += batch.pairs.len();
        let mut owned: Vec<Vec<(u32, u32)>> = vec![Vec::new(); addrs.len()];
        for &(a, c) in &batch.pairs {
            let pair = (a as u32, c as u32);
            owned[ring.replica_for(pair)].push(pair);
        }
        let mut sends = Vec::new();
        for (replica, pairs) in owned.into_iter().enumerate() {
            if pairs.is_empty() {
                continue;
            }
            expected_per_replica[replica] += 1;
            sends.push(PlannedSend {
                replica,
                frame: encode_request(&Request::Estimate { id: bi as u32, pairs }),
            });
        }
        plans.push(sends);
    }

    // One connection per replica; readers drain on cloned fds.
    let mut writers = Vec::with_capacity(addrs.len());
    let mut readers = Vec::with_capacity(addrs.len());
    for (&addr, &expected) in addrs.iter().zip(&expected_per_replica) {
        let writer = GateClient::connect(addr)?;
        let mut reader = GateClient::from_stream(writer.try_clone_stream()?);
        // tivlint: allow(pool-discipline, "loadgen reader threads are measurement harness, one per replica socket; latency aggregation is order-independent")
        readers.push(std::thread::spawn(move || -> io::Result<Vec<(u32, Instant, bool)>> {
            let mut seen = Vec::with_capacity(expected);
            for _ in 0..expected {
                let resp = reader.recv()?;
                let err = matches!(resp, Response::Error { .. });
                seen.push((resp.id(), Instant::now(), err));
            }
            Ok(seen)
        }));
        writers.push(writer);
    }

    // The paced send loop.
    let mut observations = 0usize;
    let mut undelivered = 0usize;
    let mut late_batches = 0usize;
    let mut max_lag = Duration::ZERO;
    let start = Instant::now();
    for (bi, sends) in plans.iter().enumerate() {
        let scheduled = Duration::from_secs_f64(schedule_s[bi]);
        let now = start.elapsed();
        if now < scheduled {
            std::thread::sleep(scheduled - now);
        } else if spec.target_qps > 0.0 && now > scheduled {
            late_batches += 1;
            max_lag = max_lag.max(now - scheduled);
        }
        if let ObservePath::Channel(tx) = &observe {
            for &obs in &batches[bi].observations {
                if tx.observe(obs).is_err() {
                    undelivered += 1;
                }
            }
        }
        observations += batches[bi].observations.len();
        for send in sends {
            writers[send.replica].send_bytes(&send.frame)?;
        }
    }

    // Gather completions; a batch completes when its last involved
    // replica answered.
    let mut completion: Vec<Option<Duration>> = vec![None; batches.len()];
    let mut error_frames = 0usize;
    for reader in readers {
        let seen = reader.join().expect("reader thread panicked")?;
        for (id, at, err) in seen {
            if err {
                error_frames += 1;
            }
            let done = at.duration_since(start);
            let slot = &mut completion[id as usize];
            *slot = Some(slot.map_or(done, |prev| prev.max(done)));
        }
    }
    let elapsed_s = start.elapsed().as_secs_f64();

    let mut latencies_us: Vec<f64> = Vec::with_capacity(batches.len());
    for (bi, done) in completion.iter().enumerate() {
        if let Some(done) = done {
            let scheduled = Duration::from_secs_f64(schedule_s[bi]);
            latencies_us.push(done.saturating_sub(scheduled).as_secs_f64() * 1e6);
        }
    }

    Ok(GateLoadReport {
        load: LoadReport::from_latencies(
            queries,
            batches.len(),
            observations,
            undelivered,
            elapsed_s,
            latencies_us,
        ),
        replicas: addrs.len(),
        late_batches,
        max_lag_us: max_lag.as_secs_f64() * 1e6,
        error_frames,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::ReplicaSet;
    use crate::testutil::small_builder;
    use tivserve::epoch::FeedSender;
    use tivserve::loadgen::{generate, WorkloadConfig};

    fn workload(queries: usize) -> WorkloadConfig {
        WorkloadConfig { queries, batch: 16, observe_frac: 0.2, ..WorkloadConfig::default() }
    }

    #[test]
    fn unpaced_run_answers_everything() {
        let (builder, snap, serve_cfg) = small_builder();
        let matrix = snap.matrix().clone();
        let set = ReplicaSet::spawn(&snap, serve_cfg, 2).expect("spawn");
        drop(builder);
        let batches = generate(&workload(200), &matrix);
        let report = run_open_loop(&set.addrs(), &batches, LoadSpec::default(), ObservePath::Drop)
            .expect("run");
        assert_eq!(report.load.queries, 200);
        assert_eq!(report.load.batches, batches.len());
        assert_eq!(report.error_frames, 0);
        assert!(report.load.qps > 0.0);
        assert!(report.load.p50_us <= report.load.p99_us);
        assert!(report.load.p99_us <= report.load.p999_us);
        // Unpaced mode has no schedule to fall behind.
        assert_eq!(report.late_batches, 0);
        assert_eq!(report.max_lag_us, 0.0);
        set.shutdown().expect("shutdown");
    }

    #[test]
    fn observation_accounting_balances_with_a_live_channel() {
        let (builder, snap, serve_cfg) = small_builder();
        let matrix = snap.matrix().clone();
        let set = ReplicaSet::spawn(&snap, serve_cfg, 1).expect("spawn");
        let stream = crate::replica::spawn_publisher(set.services().to_vec(), builder, 50);
        let tx = stream.sender();
        let batches = generate(&workload(150), &matrix);
        let sent: usize = batches.iter().map(|b| b.observations.len()).sum();
        assert!(sent > 0, "workload must carry observations for this test");
        let report =
            run_open_loop(&set.addrs(), &batches, LoadSpec::default(), ObservePath::Channel(&tx))
                .expect("run");
        drop(tx);
        let builder = stream.join();
        // sent == delivered + undelivered, and a live channel loses none.
        assert_eq!(report.load.observations, sent);
        assert_eq!(report.load.observations_undelivered, 0);
        assert_eq!(report.load.observations_delivered(), sent);
        assert_eq!(builder.ingested_total(), sent as u64);
        set.shutdown().expect("shutdown");
    }

    #[test]
    fn dead_publisher_shows_up_as_undelivered_not_silence() {
        let (builder, snap, serve_cfg) = small_builder();
        let matrix = snap.matrix().clone();
        drop(builder);
        let set = ReplicaSet::spawn(&snap, serve_cfg, 1).expect("spawn");
        // A dead publisher from the generator's point of view is a
        // feed with no engine behind it.
        let tx = FeedSender::disconnected();
        let batches = generate(&workload(100), &matrix);
        let sent: usize = batches.iter().map(|b| b.observations.len()).sum();
        assert!(sent > 0);
        let report =
            run_open_loop(&set.addrs(), &batches, LoadSpec::default(), ObservePath::Channel(&tx))
                .expect("run");
        assert_eq!(report.load.observations, sent);
        assert_eq!(report.load.observations_undelivered, sent, "every send hit a closed feed");
        assert_eq!(report.load.observations_delivered(), 0);
        assert_eq!(
            report.load.observations_delivered() + report.load.observations_undelivered,
            sent
        );
        set.shutdown().expect("shutdown");
    }

    #[test]
    fn paced_run_respects_the_schedule_shape() {
        let (builder, snap, serve_cfg) = small_builder();
        let matrix = snap.matrix().clone();
        drop(builder);
        let set = ReplicaSet::spawn(&snap, serve_cfg, 1).expect("spawn");
        let batches = generate(&workload(60), &matrix);
        // A generous rate the tiny service can trivially sustain: the
        // run should take about queries/qps seconds.
        let spec = LoadSpec { target_qps: 2000.0, ..LoadSpec::default() };
        let report = run_open_loop(&set.addrs(), &batches, spec, ObservePath::Drop).expect("run");
        assert!(report.load.elapsed_s >= 60.0 / 2000.0 * 0.5, "pacing was ignored: {report}");
        assert_eq!(report.load.queries, 60);
        set.shutdown().expect("shutdown");
    }
}
