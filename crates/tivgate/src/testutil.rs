//! Deterministic fixtures shared by this crate's unit tests,
//! integration tests, and the workspace's gate benchmarks.
//!
//! Everything here is a pure function of fixed seeds, so two processes
//! (say, a wire client and an in-process reference) building "the same
//! fixture" really do hold bit-identical snapshots.

use delayspace::matrix::DelayMatrix;
use delayspace::synth::{Dataset, InternetDelaySpace};
use std::sync::Arc;
use tivserve::epoch::{EpochBuilder, EpochConfig};
use tivserve::service::{ServeConfig, TivServe};
use tivserve::snapshot::EpochSnapshot;

/// Node count of the small fixtures.
pub const SMALL_NODES: usize = 24;

/// A small synthetic delay matrix (fixed preset, fixed seed).
pub fn small_matrix() -> DelayMatrix {
    InternetDelaySpace::preset(Dataset::Ds2).with_nodes(SMALL_NODES).build(11).into_matrix()
}

/// An epoch config with short embedding runs — fast, still exercising
/// every code path.
pub fn fast_epochs() -> EpochConfig {
    EpochConfig { bootstrap_rounds: 12, epoch_rounds: 6, seed: 7, ..EpochConfig::default() }
}

/// Bootstrapped builder + epoch-0 snapshot + a small serve config, the
/// standard trio for spawning fixture services and replica sets.
pub fn small_builder() -> (EpochBuilder, EpochSnapshot, ServeConfig) {
    let (builder, snapshot) = EpochBuilder::bootstrap(small_matrix(), fast_epochs());
    let serve_cfg = ServeConfig { shards: 2, ..ServeConfig::default() };
    (builder, snapshot, serve_cfg)
}

/// A ready in-process service over an `n`-node synthetic snapshot.
pub fn small_service(n: usize) -> Arc<TivServe> {
    let matrix = InternetDelaySpace::preset(Dataset::Ds2).with_nodes(n).build(11).into_matrix();
    let (_, snapshot) = EpochBuilder::bootstrap(matrix, fast_epochs());
    Arc::new(TivServe::new(ServeConfig { shards: 2, ..ServeConfig::default() }, snapshot))
}
