//! A minimal blocking client for the gate protocol.
//!
//! One [`GateClient`] wraps one TCP connection and exposes both a typed
//! request/response call and raw-bytes entry points. The raw layer is
//! deliberate API, not plumbing: the wire-equivalence suite compares
//! *frames*, byte for byte, against locally encoded expectations, and
//! the malformed-input suite needs to put arbitrary garbage on the
//! wire — both go through [`GateClient::send_bytes`] /
//! [`GateClient::recv_frame`].

use crate::proto::{self, decode_response, encode_request, FrameStep, Request, Response};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;
use tivserve::query::{QueryBatch, ReplyBatch};

/// A blocking connection to one gate replica.
#[derive(Debug)]
pub struct GateClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl GateClient {
    /// Connects (with Nagle disabled — this is a small-frame
    /// request/response protocol).
    pub fn connect(addr: SocketAddr) -> io::Result<GateClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(GateClient { stream, buf: Vec::new() })
    }

    /// Wraps an existing (blocking) stream — how the open-loop load
    /// generator builds its response-reader half over a cloned fd.
    pub fn from_stream(stream: TcpStream) -> GateClient {
        GateClient { stream, buf: Vec::new() }
    }

    /// Bounds how long [`recv_frame`](GateClient::recv_frame) blocks
    /// (`None` = forever). Tests use this so a server bug cannot hang
    /// the suite.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one typed request and blocks for its response.
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        self.send_bytes(&encode_request(req))?;
        self.recv()
    }

    /// Answers one unified [`QueryBatch`] over this connection: encodes
    /// it via [`Request::from_query`], checks the echoed id, and
    /// unwraps the reply. An error frame (including a newer kind's
    /// `unsupported-kind` answer from an older server) surfaces as
    /// `InvalidData`, never a hang or a closed session.
    pub fn query(&mut self, id: u32, query: &QueryBatch) -> io::Result<ReplyBatch> {
        let resp = self.call(&Request::from_query(id, query))?;
        if resp.id() != id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("server echoed id {} for request {id}", resp.id()),
            ));
        }
        match resp {
            Response::Error { code, message, .. } => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("error frame [{code}]: {message}"),
            )),
            other => other.into_reply().ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "non-query response kind")
            }),
        }
    }

    /// Sends one typed request and returns the raw response *frame*
    /// (length prefix included) — the byte-level equivalence entry
    /// point.
    pub fn call_frame(&mut self, req: &Request) -> io::Result<Vec<u8>> {
        self.send_bytes(&encode_request(req))?;
        self.recv_frame()
    }

    /// Writes arbitrary bytes to the connection — also how the
    /// malformed-input tests inject broken frames.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Shuts down the write half, signalling EOF to the server while
    /// keeping the read half open for trailing responses.
    pub fn shutdown_write(&self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }

    /// Blocks until one complete frame arrives and returns it whole
    /// (length prefix included). EOF mid-frame is `UnexpectedEof`; an
    /// oversized length prefix from the server is `InvalidData`.
    pub fn recv_frame(&mut self) -> io::Result<Vec<u8>> {
        let mut scratch = [0u8; 64 * 1024];
        loop {
            match proto::next_frame(&self.buf) {
                FrameStep::Frame { consumed, .. } => {
                    let frame: Vec<u8> = self.buf.drain(..consumed).collect();
                    return Ok(frame);
                }
                FrameStep::TooLarge(len) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("server sent an oversized frame ({len} bytes)"),
                    ));
                }
                FrameStep::Incomplete => {}
            }
            match self.stream.read(&mut scratch) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!("connection closed with {} buffered bytes", self.buf.len()),
                    ));
                }
                Ok(n) => self.buf.extend_from_slice(&scratch[..n]),
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Blocks for one frame and decodes it.
    pub fn recv(&mut self) -> io::Result<Response> {
        let frame = self.recv_frame()?;
        decode_response(&frame[4..])
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Clones the underlying stream (shared fd) so a reader thread can
    /// drain responses while this handle keeps sending — the open-loop
    /// load generator's split.
    pub fn try_clone_stream(&self) -> io::Result<TcpStream> {
        self.stream.try_clone()
    }
}
