//! The front: consistent-hash dispatch of query batches over replicas.
//!
//! Replicas are interchangeable — each holds a full snapshot and any of
//! them can answer any pair — so the hash ring here is about cache
//! locality, not data placement: routing a given `(a, c)` pair to the
//! same replica every time keeps that replica's shard LRUs hot for it.
//! The ring is a **pure function of the replica count and the pair**
//! (no randomness, no connection order), which the wire-equivalence
//! suite relies on: the same query stream hits the same replicas in
//! every run.
//!
//! [`Front::query`] (and the per-kind wrappers) splits a batch by ring
//! owner, sends one sub-request per involved replica, and reassembles
//! the answers in the caller's original pair order — so a front over
//! N replicas is answer-for-answer identical to one replica, which is
//! answer-for-answer identical to an in-process [`tivserve`] call.

use crate::client::GateClient;
use crate::proto::{to_node_pairs, to_wire_pairs, Request, Response, WirePair};
use std::io;
use std::net::SocketAddr;
use tivserve::query::{QueryBatch, ReplyBatch};
use tivserve::snapshot::{EdgeEstimate, RouteEstimate};
use tivserve::SeverityEstimate;

/// SplitMix64: a tiny, well-mixed hash step (the same finalizer the
/// workspace's deterministic RNG seeds with).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A consistent-hash ring over replica indices, with virtual nodes so
/// load stays even at small replica counts.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `(ring position, replica index)`, sorted by position.
    points: Vec<(u64, usize)>,
    replicas: usize,
}

impl HashRing {
    /// Virtual nodes per replica.
    pub const VNODES: usize = 64;

    /// A ring over `replicas` replicas.
    ///
    /// # Panics
    /// Panics when `replicas` is zero.
    pub fn new(replicas: usize) -> HashRing {
        assert!(replicas >= 1, "a ring needs at least one replica");
        let mut points = Vec::with_capacity(replicas * Self::VNODES);
        for replica in 0..replicas {
            for vnode in 0..Self::VNODES {
                let pos = splitmix64(((replica as u64) << 32) | vnode as u64);
                points.push((pos, replica));
            }
        }
        points.sort_unstable();
        HashRing { points, replicas }
    }

    /// Replicas on the ring.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The replica owning `pair`: the first ring point at or after the
    /// pair's hash, wrapping at the top.
    pub fn replica_for(&self, pair: (u32, u32)) -> usize {
        let key = splitmix64(((pair.0 as u64) << 32) | pair.1 as u64);
        let idx = self.points.partition_point(|&(pos, _)| pos < key);
        self.points[idx % self.points.len()].1
    }
}

/// A connected front: one [`GateClient`] per replica plus the ring.
#[derive(Debug)]
pub struct Front {
    clients: Vec<GateClient>,
    ring: HashRing,
    next_id: u32,
}

impl Front {
    /// Connects to every replica.
    ///
    /// # Panics
    /// Panics when `addrs` is empty (the ring's contract).
    pub fn connect(addrs: &[SocketAddr]) -> io::Result<Front> {
        let clients = addrs.iter().map(|&a| GateClient::connect(a)).collect::<Result<_, _>>()?;
        Ok(Front { clients, ring: HashRing::new(addrs.len()), next_id: 1 })
    }

    /// The ring, for callers partitioning work themselves (the load
    /// generator pre-splits batches with it).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Splits `pairs` by ring owner. Returns, per replica, the original
    /// indices it owns — empty vectors for uninvolved replicas.
    fn partition(&self, pairs: &[(u32, u32)]) -> Vec<Vec<usize>> {
        let mut owned: Vec<Vec<usize>> = vec![Vec::new(); self.clients.len()];
        for (i, &pair) in pairs.iter().enumerate() {
            owned[self.ring.replica_for(pair)].push(i);
        }
        owned
    }

    fn fresh_id(&mut self) -> u32 {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        id
    }

    /// Scatter/gather over the replicas for one request kind: sends the
    /// owned sub-batch to each involved replica, reassembles answers in
    /// original pair order.
    fn scatter<T>(
        &mut self,
        pairs: &[(u32, u32)],
        make: impl Fn(u32, Vec<(u32, u32)>) -> Request,
        extract: impl Fn(Response) -> io::Result<Vec<T>>,
    ) -> io::Result<Vec<T>> {
        let owned = self.partition(pairs);
        let mut slots: Vec<Option<T>> = Vec::with_capacity(pairs.len());
        slots.resize_with(pairs.len(), || None);
        for (replica, indices) in owned.into_iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let sub: Vec<(u32, u32)> = indices.iter().map(|&i| pairs[i]).collect();
            let id = self.fresh_id();
            let resp = self.clients[replica].call(&make(id, sub))?;
            if resp.id() != id {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("replica {replica} echoed id {} for request {id}", resp.id()),
                ));
            }
            let items = extract(resp)?;
            if items.len() != indices.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "replica {replica} answered {} items for {} pairs",
                        items.len(),
                        indices.len()
                    ),
                ));
            }
            for (slot, item) in indices.into_iter().zip(items) {
                slots[slot] = Some(item);
            }
        }
        Ok(slots.into_iter().map(|s| s.expect("every pair answered")).collect())
    }

    /// Answers one unified [`QueryBatch`] across the replicas, answers
    /// in pair order — the primary entry point; the per-kind batch
    /// methods are thin wrappers over this. Kind dispatch happens once,
    /// in [`Request::from_query`], so a new query kind needs no front
    /// changes.
    pub fn query(&mut self, query: &QueryBatch) -> io::Result<ReplyBatch> {
        let wire = to_wire_pairs(query.pairs());
        match query {
            QueryBatch::Estimate(_) => self
                .scatter(
                    &wire,
                    |id, pairs| Request::Estimate { id, pairs },
                    |resp| match resp {
                        Response::Estimate { items, .. } => Ok(items),
                        other => Err(unexpected(other)),
                    },
                )
                .map(ReplyBatch::Estimate),
            QueryBatch::Route(_) => self
                .scatter(
                    &wire,
                    |id, pairs| Request::Route { id, pairs },
                    |resp| match resp {
                        Response::Route { items, .. } => Ok(items),
                        other => Err(unexpected(other)),
                    },
                )
                .map(ReplyBatch::Route),
            QueryBatch::Severity(_) => self
                .scatter(
                    &wire,
                    |id, pairs| Request::Severity { id, pairs },
                    |resp| match resp {
                        Response::Severity { items, .. } => Ok(items),
                        other => Err(unexpected(other)),
                    },
                )
                .map(ReplyBatch::Severity),
            QueryBatch::Alerts(_) => self
                .scatter(
                    &wire,
                    |id, pairs| Request::Alerts { id, pairs },
                    |resp| match resp {
                        Response::Alerts { items, .. } => Ok(items),
                        other => Err(unexpected(other)),
                    },
                )
                .map(ReplyBatch::Alerts),
            QueryBatch::SampledSeverity { witnesses, .. } => {
                let witnesses = *witnesses;
                self.scatter(
                    &wire,
                    move |id, pairs| Request::SampledSeverity { id, witnesses, pairs },
                    |resp| match resp {
                        Response::SampledSeverity { items, .. } => Ok(items),
                        other => Err(unexpected(other)),
                    },
                )
                .map(ReplyBatch::SampledSeverity)
            }
        }
    }

    /// Edge-estimate batch across the replicas, answers in pair order.
    /// Legacy wrapper — prefer [`Front::query`].
    pub fn estimate_batch(&mut self, pairs: &[WirePair]) -> io::Result<Vec<EdgeEstimate>> {
        match self.query(&QueryBatch::Estimate(to_node_pairs(pairs)))? {
            ReplyBatch::Estimate(items) => Ok(items),
            _ => unreachable!("query preserves the kind"),
        }
    }

    /// Detour-route batch across the replicas, answers in pair order.
    /// Legacy wrapper — prefer [`Front::query`].
    pub fn route_batch(&mut self, pairs: &[WirePair]) -> io::Result<Vec<RouteEstimate>> {
        match self.query(&QueryBatch::Route(to_node_pairs(pairs)))? {
            ReplyBatch::Route(items) => Ok(items),
            _ => unreachable!("query preserves the kind"),
        }
    }

    /// Severity batch across the replicas, answers in pair order.
    /// Legacy wrapper — prefer [`Front::query`].
    pub fn severity_batch(&mut self, pairs: &[WirePair]) -> io::Result<Vec<Option<f64>>> {
        match self.query(&QueryBatch::Severity(to_node_pairs(pairs)))? {
            ReplyBatch::Severity(items) => Ok(items),
            _ => unreachable!("query preserves the kind"),
        }
    }

    /// Alert batch across the replicas, answers in pair order.
    /// Legacy wrapper — prefer [`Front::query`].
    pub fn alerts_batch(&mut self, pairs: &[WirePair]) -> io::Result<Vec<bool>> {
        match self.query(&QueryBatch::Alerts(to_node_pairs(pairs)))? {
            ReplyBatch::Alerts(items) => Ok(items),
            _ => unreachable!("query preserves the kind"),
        }
    }

    /// Sampled-severity batch across the replicas, answers in pair
    /// order (`witnesses == 0` = server default).
    pub fn sampled_severity_batch(
        &mut self,
        pairs: &[WirePair],
        witnesses: u32,
    ) -> io::Result<Vec<Option<SeverityEstimate>>> {
        let q = QueryBatch::SampledSeverity { pairs: to_node_pairs(pairs), witnesses };
        match self.query(&q)? {
            ReplyBatch::SampledSeverity(items) => Ok(items),
            _ => unreachable!("query preserves the kind"),
        }
    }

    /// Pings every replica, returning `(epoch, nodes)` per replica.
    pub fn ping_all(&mut self) -> io::Result<Vec<(u64, u32)>> {
        let mut out = Vec::with_capacity(self.clients.len());
        for i in 0..self.clients.len() {
            let id = self.fresh_id();
            match self.clients[i].call(&Request::Ping { id })? {
                Response::Pong { epoch, nodes, .. } => out.push((epoch, nodes)),
                other => return Err(unexpected(other)),
            }
        }
        Ok(out)
    }
}

fn unexpected(resp: Response) -> io::Error {
    let detail = match resp {
        Response::Error { code, message, .. } => format!("error frame [{code}]: {message}"),
        other => format!("unexpected response kind for id {}", other.id()),
    };
    io::Error::new(io::ErrorKind::InvalidData, detail)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_total() {
        let ring = HashRing::new(4);
        let again = HashRing::new(4);
        for a in 0..32u32 {
            for c in 0..32u32 {
                let r = ring.replica_for((a, c));
                assert!(r < 4);
                assert_eq!(r, again.replica_for((a, c)), "ring must be a pure function");
            }
        }
    }

    #[test]
    fn single_replica_ring_owns_everything() {
        let ring = HashRing::new(1);
        for a in 0..50u32 {
            assert_eq!(ring.replica_for((a, a + 1)), 0);
        }
    }

    #[test]
    fn ring_spreads_load_roughly_evenly() {
        let ring = HashRing::new(4);
        let mut counts = [0usize; 4];
        for a in 0..100u32 {
            for c in 0..100u32 {
                counts[ring.replica_for((a, c))] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        assert_eq!(total, 10_000);
        for (i, &cnt) in counts.iter().enumerate() {
            // 64 vnodes keeps every replica within a loose band of the
            // fair share (2500).
            assert!((1200..=4000).contains(&cnt), "replica {i} owns {cnt}/10000");
        }
    }

    #[test]
    fn growing_the_ring_moves_only_some_keys() {
        let small = HashRing::new(3);
        let big = HashRing::new(4);
        let mut moved = 0usize;
        let mut total = 0usize;
        for a in 0..100u32 {
            for c in 0..100u32 {
                total += 1;
                let before = small.replica_for((a, c));
                let after = big.replica_for((a, c));
                if before != after {
                    moved += 1;
                    // Consistent hashing: keys only move *to* the new
                    // replica, never shuffle between the old ones.
                    assert_eq!(after, 3, "({a},{c}) moved {before}->{after}, not to the new node");
                }
            }
        }
        assert!(moved > 0, "the new replica must take some keys");
        assert!(moved < total / 2, "only a minority of keys may move: {moved}/{total}");
    }
}
